// Command mcfigures regenerates every figure and table of the paper's
// evaluation section on the simulator and prints them as aligned text,
// optionally writing CSVs.
//
// Usage:
//
//	mcfigures [-scale quick|standard] [-only "Figure 1"] [-csv DIR]
//	          [-cycles N] [-warm N] [-seed N] [-par N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cloudmc/internal/experiment"
)

func main() {
	scale := flag.String("scale", "standard", "run scale: quick or standard")
	only := flag.String("only", "", "render only the artifact with this ID (e.g. \"Figure 1\", \"Table 4\")")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files")
	cycles := flag.Uint64("cycles", 0, "override measured cycles per run")
	warm := flag.Uint64("warm", 0, "override timed warmup cycles per run")
	seed := flag.Uint64("seed", 0, "override simulation seed")
	par := flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
	flag.Parse()

	var cfg experiment.Config
	switch *scale {
	case "quick":
		cfg = experiment.Quick()
	case "standard":
		cfg = experiment.Standard()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *cycles > 0 {
		cfg.MeasureCycles = *cycles
	}
	if *warm > 0 {
		cfg.WarmupCycles = *warm
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	cfg.Parallelism = *par

	study := experiment.NewStudy(cfg)
	start := time.Now()
	tables := study.All()
	elapsed := time.Since(start)

	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		fmt.Println(t.Render())
		if *csvDir != "" {
			name := strings.ToLower(strings.ReplaceAll(t.ID, " ", "_")) + ".csv"
			path := filepath.Join(*csvDir, name)
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "total simulation wall time: %s\n", elapsed.Round(time.Millisecond))
}
