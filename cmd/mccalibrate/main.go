// Command mccalibrate runs every workload on the baseline system and
// reports measured characterization metrics against their calibration
// targets (paper Figures 2, 4, 7 and 8). Use it after changing
// workload profiles or timing parameters to check the synthetic
// streams still reproduce the paper's characterization.
//
// Usage:
//
//	mccalibrate [-cycles N] [-warm N] [-seed N] [-workload ACR]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudmc/internal/core"
	"cloudmc/internal/workload"
)

func main() {
	cycles := flag.Uint64("cycles", 1_000_000, "measured cycles per run")
	warm := flag.Uint64("warm", 100_000, "timed warmup cycles per run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	only := flag.String("workload", "", "run a single workload by acronym")
	flag.Parse()

	profiles := workload.All()
	if *only != "" {
		p, err := workload.ByAcronym(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		profiles = []workload.Profile{p}
	}

	fmt.Printf("%-9s %7s %7s | %6s %6s | %6s %6s | %6s %6s | %6s %6s %6s\n",
		"workload", "ipc", "lat",
		"mpki", "tgt", "hit%", "tgt", "1acc%", "tgt", "bw%", "rq", "wq")
	for _, p := range profiles {
		cfg := core.DefaultConfig(p)
		cfg.MeasureCycles = *cycles
		cfg.WarmupCycles = *warm
		cfg.Seed = *seed
		sys, err := core.NewSystem(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m := sys.Run()
		fmt.Printf("%-9s %7.3f %7.1f | %6.2f %6.2f | %6.1f %6.1f | %6.1f %6.1f | %6.1f %6.2f %6.2f\n",
			p.Acronym, m.UserIPC, m.AvgReadLatency,
			m.MPKI, p.TargetMPKI,
			100*m.RowHitRate, 100*p.TargetRowHit,
			100*m.SingleAccessFrac, 100*p.TargetSingleAccess,
			100*m.BandwidthUtil, m.AvgReadQ, m.AvgWriteQ)
	}
}
