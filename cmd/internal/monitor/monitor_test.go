package monitor

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"cloudmc/internal/obs"
)

func TestStatusEndpoint(t *testing.T) {
	sample := &obs.Sample{Run: "test", Phase: "measure", Interval: 3, Cycle: 42_000}
	srv, err := Start("127.0.0.1:0", func() Status {
		return Status{Run: "test", Cycle: 42_000, TotalCycles: 100_000, Sample: sample}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Run != "test" || st.Cycle != 42_000 || st.TotalCycles != 100_000 {
		t.Fatalf("bad status: %+v", st)
	}
	if st.WallSeconds <= 0 {
		t.Fatalf("wall seconds not stamped: %+v", st)
	}
	if st.CyclesPerSec <= 0 {
		t.Fatalf("cycles/sec not stamped: %+v", st)
	}
	if st.Sample == nil || st.Sample.Interval != 3 {
		t.Fatalf("sample not carried: %+v", st.Sample)
	}

	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", pp.StatusCode)
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}

	// Disabled profiles are a no-op.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
