// Package monitor is the live run monitor behind the CLIs' -status,
// -cpuprofile and -memprofile flags: a small HTTP server exposing run
// progress and the latest obs interval sample as JSON, plus pprof.
//
// It lives under cmd/ deliberately. The simulator core under
// internal/ is wall-clock-free (mclint's nodeterm analyzer enforces
// that), so everything that needs time.Now — sims/sec rates, wall
// duration, HTTP serving — belongs to the command layer. The core
// only ever sees the pure obs.Recorder; this package reads from it.
package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cloudmc/internal/obs"
)

// Status is one /status response. The source callback fills the run
// fields; the server stamps WallSeconds and CyclesPerSec from its own
// wall clock.
type Status struct {
	Run          string  `json:"run"`
	WallSeconds  float64 `json:"wall_seconds"`
	Cycle        uint64  `json:"cycle"`
	TotalCycles  uint64  `json:"total_cycles,omitempty"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	CellsDone    int     `json:"cells_done,omitempty"`
	CellsTotal   int     `json:"cells_total,omitempty"`
	Simulations  uint64  `json:"simulations,omitempty"`
	// Sample is the most recent obs interval sample, if a recorder is
	// attached.
	Sample *obs.Sample `json:"sample,omitempty"`
}

// Server is a running status endpoint.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Start serves /status (JSON from the source callback) and
// /debug/pprof on addr. Pass ":0" to bind an ephemeral port; Addr
// reports the bound address. The source callback is invoked from the
// server's goroutines and must be safe for concurrent use.
func Start(addr string, source func() Status) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	s := &Server{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		st := source()
		st.WallSeconds = time.Since(s.start).Seconds()
		if st.WallSeconds > 0 {
			st.CyclesPerSec = float64(st.Cycle) / st.WallSeconds
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
	// net/http/pprof registers its handlers on the default mux only;
	// delegate the whole /debug/pprof tree to it.
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// StartProfiles starts a CPU profile and/or arms a heap profile,
// returning a stop function that finishes both. Empty paths disable
// the corresponding profile; StartProfiles("", "") is a no-op.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("monitor: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("monitor: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("monitor: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("monitor: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("monitor: %w", err)
			}
		}
		return nil
	}, nil
}
