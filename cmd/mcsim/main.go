// Command mcsim runs a single simulation of the study's system and
// prints its metrics — the low-level tool behind the figure harness.
//
// Usage:
//
//	mcsim [-workload DS] [-sched FR-FCFS] [-page OpenAdaptive]
//	      [-channels 1] [-map RoRaBaCoCh] [-cycles N] [-warm N]
//	      [-seed N] [-percore]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudmc/internal/addrmap"
	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

func main() {
	wl := flag.String("workload", "DS", "workload acronym (Table 1)")
	schedName := flag.String("sched", "FR-FCFS", "scheduler: FR-FCFS, FCFS_Banks, PAR-BS, ATLAS, RL")
	page := flag.String("page", "OpenAdaptive", "page policy: Open, Close, OpenAdaptive, CloseAdaptive, RBPP, ABPP")
	channels := flag.Int("channels", 1, "memory channels (1, 2 or 4)")
	mapping := flag.String("map", "RoRaBaCoCh", "address mapping scheme")
	cycles := flag.Uint64("cycles", 1_000_000, "measured cycles")
	warm := flag.Uint64("warm", 100_000, "timed warmup cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	perCore := flag.Bool("percore", false, "print per-core IPC")
	ff := flag.Bool("ff", true, "event-horizon fast-forward (off = naive per-cycle loop; metrics are bit-identical)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	prof, err := workload.ByAcronym(*wl)
	if err != nil {
		die(err)
	}
	kind, err := sched.ParseKind(*schedName)
	if err != nil {
		die(err)
	}
	scheme, err := addrmap.ParseScheme(*mapping)
	if err != nil {
		die(err)
	}

	cfg := core.DefaultConfig(prof)
	cfg.Scheduler = kind
	cfg.PagePolicy = *page
	cfg.Channels = *channels
	cfg.Mapping = scheme
	cfg.MeasureCycles = *cycles
	cfg.WarmupCycles = *warm
	cfg.Seed = *seed
	cfg.FastForward = *ff
	// Scale ATLAS's quantum to the measurement window (DESIGN.md).
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles: *cycles / 10, Alpha: 0.875,
		StarvationThreshold: *cycles / 80, ScanDepth: 1,
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		die(err)
	}
	m := sys.Run()

	fmt.Printf("workload=%s sched=%s page=%s channels=%d map=%s cycles=%d\n",
		prof.Acronym, kind, cfg.PagePolicy, cfg.Channels, scheme, m.Cycles)
	fmt.Printf("  user IPC:          %.4f\n", m.UserIPC)
	fmt.Printf("  mem latency:       %.1f cycles\n", m.AvgReadLatency)
	fmt.Printf("  row hit rate:      %.1f%% (hits %d, misses %d, conflicts %d)\n",
		100*m.RowHitRate, m.RowHits, m.RowMisses, m.RowConflicts)
	fmt.Printf("  L2 MPKI:           %.2f\n", m.MPKI)
	fmt.Printf("  read/write queue:  %.2f / %.2f\n", m.AvgReadQ, m.AvgWriteQ)
	fmt.Printf("  bandwidth:         %.1f%%\n", 100*m.BandwidthUtil)
	fmt.Printf("  1-access rows:     %.1f%%\n", 100*m.SingleAccessFrac)
	fmt.Printf("  reads/writes:      %d / %d (forwarded %d)\n",
		m.ReadsServed, m.WritesServed, m.ForwardedReads)
	fmt.Printf("  activates:         %d (policy closes %d, conflict closes %d)\n",
		m.Activates, m.PolicyCloses, m.ConflictCloses)
	fmt.Printf("  fairness:          %.2f (min/max per-core IPC)\n", m.IPCDisparity())
	if *perCore {
		for i, v := range m.PerCoreIPC {
			fmt.Printf("  core %2d IPC: %.4f\n", i, v)
		}
	}
}
