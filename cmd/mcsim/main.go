// Command mcsim runs a single simulation of the study's system and
// prints its metrics — the low-level tool behind the figure harness.
//
// Usage:
//
//	mcsim [-workload DS] [-sched FR-FCFS] [-page OpenAdaptive]
//	      [-channels 1] [-map RoRaBaCoCh] [-cycles N] [-warm N]
//	      [-seed N] [-percore] [-workers N]
//	      [-obs out.jsonl] [-obs-csv out.csv] [-obs-interval N]
//	      [-trace trace.jsonl] [-status :8080]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The observability flags attach the internal/obs stack: -obs and
// -obs-csv stream interval samples (every -obs-interval simulated
// cycles) as JSONL or CSV, -trace streams every DRAM command as
// JSONL, and -status serves live progress plus /debug/pprof over
// HTTP. None of them change simulation results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"cloudmc/cmd/internal/monitor"
	"cloudmc/internal/addrmap"
	"cloudmc/internal/core"
	"cloudmc/internal/obs"
	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

func main() {
	wl := flag.String("workload", "DS", "workload acronym (Table 1)")
	schedName := flag.String("sched", "FR-FCFS", "scheduler: FR-FCFS, FCFS_Banks, PAR-BS, ATLAS, RL")
	page := flag.String("page", "OpenAdaptive", "page policy: Open, Close, OpenAdaptive, CloseAdaptive, RBPP, ABPP")
	channels := flag.Int("channels", 1, "memory channels (1, 2 or 4)")
	mapping := flag.String("map", "RoRaBaCoCh", "address mapping scheme")
	cycles := flag.Uint64("cycles", 1_000_000, "measured cycles")
	warm := flag.Uint64("warm", 100_000, "timed warmup cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	perCore := flag.Bool("percore", false, "print per-core IPC")
	ff := flag.Bool("ff", true, "event-horizon fast-forward (off = naive per-cycle loop; metrics are bit-identical)")
	workers := flag.Int("workers", 1, "shard the controller phase across N goroutines (0 = all CPUs; clamped to -channels; results are bit-identical)")
	obsPath := flag.String("obs", "", "write interval samples as JSONL to this file")
	obsCSV := flag.String("obs-csv", "", "write interval samples as CSV to this file")
	obsInterval := flag.Uint64("obs-interval", 10_000, "sampling interval in simulated cycles")
	tracePath := flag.String("trace", "", "write per-command DRAM trace as JSONL to this file")
	statusAddr := flag.String("status", "", "serve live /status JSON and /debug/pprof on this address (e.g. :8080)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	prof, err := workload.ByAcronym(*wl)
	if err != nil {
		die(err)
	}
	kind, err := sched.ParseKind(*schedName)
	if err != nil {
		die(err)
	}
	scheme, err := addrmap.ParseScheme(*mapping)
	if err != nil {
		die(err)
	}

	cfg := core.DefaultConfig(prof)
	cfg.Scheduler = kind
	cfg.PagePolicy = *page
	cfg.Channels = *channels
	cfg.Mapping = scheme
	cfg.MeasureCycles = *cycles
	cfg.WarmupCycles = *warm
	cfg.Seed = *seed
	cfg.FastForward = *ff
	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	cfg.Workers = *workers
	// Scale ATLAS's quantum to the measurement window (DESIGN.md).
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles: *cycles / 10, Alpha: 0.875,
		StarvationThreshold: *cycles / 80, ScanDepth: 1,
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		die(err)
	}

	stopProfiles, err := monitor.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		die(err)
	}

	// Interval recorder: sinks stream samples as they are recorded,
	// so a watcher can tail the files (or hit -status) mid-run. The
	// -status endpoint needs a recorder for progress even when no
	// sample file was requested.
	var rec *obs.Recorder
	var obsFiles []*os.File
	if *obsPath != "" || *obsCSV != "" || *statusAddr != "" {
		var sinks []obs.Sink
		for _, fs := range []struct {
			path string
			mk   func(*os.File) obs.Sink
		}{
			{*obsPath, func(f *os.File) obs.Sink { return obs.NewJSONLSink(f) }},
			{*obsCSV, func(f *os.File) obs.Sink { return obs.NewCSVSink(f) }},
		} {
			if fs.path == "" {
				continue
			}
			f, err := os.Create(fs.path)
			if err != nil {
				die(err)
			}
			obsFiles = append(obsFiles, f)
			sinks = append(sinks, fs.mk(f))
		}
		rec = obs.NewRecorder(prof.Acronym, *obsInterval, sinks...)
		sys.AttachRecorder(rec)
	}

	var tw *obs.TraceWriter
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			die(err)
		}
		tw = obs.NewTraceWriter(traceFile, prof.Acronym)
		sys.AttachTrace(tw)
	}

	if *statusAddr != "" {
		total := *warm + *cycles
		srv, err := monitor.Start(*statusAddr, func() monitor.Status {
			st := monitor.Status{
				Run:         prof.Acronym,
				Cycle:       rec.LastCycle(),
				TotalCycles: total,
			}
			if s, ok := rec.Latest(); ok {
				st.Sample = &s
			}
			return st
		})
		if err != nil {
			die(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "status: http://%s/status\n", srv.Addr())
	}

	m := sys.Run()

	if rec != nil {
		if err := rec.Flush(); err != nil {
			die(err)
		}
		if err := rec.Err(); err != nil {
			die(err)
		}
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			die(err)
		}
		if err := tw.Err(); err != nil {
			die(err)
		}
		if err := traceFile.Close(); err != nil {
			die(err)
		}
	}
	for _, f := range obsFiles {
		if err := f.Close(); err != nil {
			die(err)
		}
	}
	if err := stopProfiles(); err != nil {
		die(err)
	}

	fmt.Printf("workload=%s sched=%s page=%s channels=%d map=%s cycles=%d\n",
		prof.Acronym, kind, cfg.PagePolicy, cfg.Channels, scheme, m.Cycles)
	fmt.Printf("  user IPC:          %.4f\n", m.UserIPC)
	fmt.Printf("  mem latency:       %.1f cycles\n", m.AvgReadLatency)
	fmt.Printf("  row hit rate:      %.1f%% (hits %d, misses %d, conflicts %d)\n",
		100*m.RowHitRate, m.RowHits, m.RowMisses, m.RowConflicts)
	fmt.Printf("  L2 MPKI:           %.2f\n", m.MPKI)
	fmt.Printf("  read/write queue:  %.2f / %.2f\n", m.AvgReadQ, m.AvgWriteQ)
	fmt.Printf("  bandwidth:         %.1f%%\n", 100*m.BandwidthUtil)
	fmt.Printf("  1-access rows:     %.1f%%\n", 100*m.SingleAccessFrac)
	fmt.Printf("  reads/writes:      %d / %d (forwarded %d)\n",
		m.ReadsServed, m.WritesServed, m.ForwardedReads)
	fmt.Printf("  activates:         %d (policy closes %d, conflict closes %d)\n",
		m.Activates, m.PolicyCloses, m.ConflictCloses)
	fmt.Printf("  fairness:          %.2f (min/max per-core IPC)\n", m.IPCDisparity())
	if *perCore {
		for i, v := range m.PerCoreIPC {
			fmt.Printf("  core %2d IPC: %.4f\n", i, v)
		}
	}
}
