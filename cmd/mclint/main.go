// Command mclint runs the repository's determinism- and
// lifetime-invariant analyzer suite (internal/lint: maprange,
// nodeterm, epochbump, horizonarm, shardsafe, groupsync, freelive,
// hotalloc) over the named package patterns and exits non-zero on any
// finding. The interprocedural analyzers share one module-wide call
// graph (internal/lint/callgraph), built once per run.
//
// Usage:
//
//	go run ./cmd/mclint ./...
//	go run ./cmd/mclint ./internal/lint/testdata/broken/src/...
//
// Diagnostics print as file:line:col: message (analyzer). See the
// README section "Determinism lint" for the invariants and the
// justification directives (//mclint:order-insensitive,
// //mclint:owns, //mclint:alloc-ok, ...); every directive must carry
// a `-- <justification>` explaining why the exemption is sound.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudmc/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mclint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
