// Command mcmix sweeps multi-tenant colocation mixes across memory
// schedulers, channel counts and isolation modes and prints the
// fairness study: per-tenant slowdown versus running alone, weighted
// speedup, harmonic speedup, and maximum slowdown. Solo baselines are
// memoized and shared across mixes and isolation cells, so a full
// sweep costs far fewer simulations than mixes x tenants x cells.
//
// Usage:
//
//	mcmix [-mixes all|NAME,...] [-gen N] [-mixsize K]
//	      [-scheds FR-FCFS,ATLAS] [-channels 1]
//	      [-isolation none|banks|ways|banks+ways,...] [-slo 2.0]
//	      [-cycles N] [-warm N] [-seed N] [-workers N] [-list] [-detail]
//	      [-progress] [-obs out.jsonl] [-obs-csv out.csv]
//	      [-obs-interval N] [-trace trace.jsonl] [-status :8080]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -progress streams per-cell start/finish lines (with cells done /
// total and per-cell wall time) to stderr while the sweep runs. The
// observability flags attach the internal/obs stack to every
// simulated cell: interval samples and DRAM command traces from all
// cells stream into the shared output files, each row tagged with the
// cell's run label; -status serves live sweep progress, the latest
// interval sample and /debug/pprof over HTTP. None of them change
// simulation results.
//
// Custom mixes can be given as core-count-annotated acronym lists,
// e.g. -mixes "DS:8+HOG:8,WS:4+MR:4+SS:8". -gen N samples N seeded
// mixes of -mixsize total cores from the full Table 1 profile
// cross-product (tenant.GenerateMixes) — the way to sweep 32- and
// 64-core machines without hand-writing mix lists; the generated
// mixes replace the canonical list unless -mixes names more. The
// isolation axis selects the mitigation mechanisms: bank partitioning
// in the address map, LLC way-partitioning, or both; the QoS
// scheduler (-scheds QoS) targets the -slo max-slowdown budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudmc/cmd/internal/monitor"
	"cloudmc/internal/core"
	"cloudmc/internal/experiment"
	"cloudmc/internal/obs"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

func main() {
	mixesFlag := flag.String("mixes", "all", "comma-separated mix list (all = canonical study mixes; custom: DS:8+HOG:8,...)")
	gen := flag.Int("gen", 0, "generate N seeded mixes from the Table 1 profile cross-product (replaces the canonical list; explicit -mixes are kept)")
	mixsize := flag.Int("mixsize", 32, "total cores per generated mix, split evenly among 2-4 tenants (with -gen)")
	schedsFlag := flag.String("scheds", "FR-FCFS,ATLAS", "comma-separated schedulers to sweep")
	channelsFlag := flag.String("channels", "1", "comma-separated channel counts to sweep")
	isolationFlag := flag.String("isolation", "none", "comma-separated isolation modes to sweep (none, banks, ways, banks+ways, or all)")
	slo := flag.Float64("slo", 0, "QoS scheduler max-slowdown SLO (0 = scheduler default)")
	workers := flag.Int("workers", 1, "shard each cell's controller phase across N goroutines (0 = all CPUs; cells already run in parallel, so >1 mostly pays off for single-cell sweeps)")
	cycles := flag.Uint64("cycles", 300_000, "measured cycles per simulation")
	warm := flag.Uint64("warm", 50_000, "timed warmup cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list the canonical mixes and exit")
	detail := flag.Bool("detail", false, "print the per-tenant breakdown of every cell")
	progress := flag.Bool("progress", false, "stream per-cell start/finish lines to stderr")
	obsPath := flag.String("obs", "", "write interval samples from every cell as JSONL to this file")
	obsCSV := flag.String("obs-csv", "", "write interval samples from every cell as CSV to this file")
	obsInterval := flag.Uint64("obs-interval", 10_000, "sampling interval in simulated cycles")
	tracePath := flag.String("trace", "", "write per-command DRAM traces from every cell as JSONL to this file")
	statusAddr := flag.String("status", "", "serve live /status JSON and /debug/pprof on this address (e.g. :8080)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		for _, m := range tenant.StudyMixes() {
			fmt.Printf("%-28s %2d cores, footprint %.1f GB\n",
				m.Name, m.TotalCores(), float64(m.Footprint())/(1<<30))
		}
		return
	}

	var mixes []tenant.Mix
	var err error
	// -gen replaces the implicit canonical list; an explicit -mixes
	// selection is kept alongside the generated mixes.
	if *gen == 0 || (*mixesFlag != "all" && *mixesFlag != "") {
		if mixes, err = parseMixes(*mixesFlag); err != nil {
			die(err)
		}
	}
	if *gen < 0 {
		die(fmt.Errorf("mcmix: -gen %d must be positive", *gen))
	}
	if *gen > 0 {
		generated, err := tenant.GenerateMixes(*seed, *gen, *mixsize)
		if err != nil {
			die(fmt.Errorf("mcmix: %w", err))
		}
		seen := map[string]bool{}
		for _, m := range mixes {
			seen[m.Name] = true
		}
		for _, m := range generated {
			if seen[m.Name] {
				// A mix name fully determines its spec, so a generated
				// duplicate of an explicitly listed mix is the same
				// scenario; keep the explicit one.
				continue
			}
			mixes = append(mixes, m)
		}
	}
	scheds, err := parseScheds(*schedsFlag)
	if err != nil {
		die(err)
	}
	channels, err := parseInts(*channelsFlag)
	if err != nil {
		die(err)
	}
	isolations, err := parseIsolations(*isolationFlag)
	if err != nil {
		die(err)
	}

	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	cfg := experiment.Config{
		MeasureCycles:  *cycles,
		WarmupCycles:   *warm,
		Seed:           *seed,
		MaxSlowdownSLO: *slo,
		Workers:        *workers,
	}

	stopProfiles, err := monitor.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		die(err)
	}

	// Observability: every simulated cell gets its own recorder and
	// trace writer, all streaming into shared output files. The sinks
	// are mutex-wrapped (cells run in parallel) and every row carries
	// the cell's run label, so the streams demultiplex by the "run"
	// column.
	var obsMu sync.Mutex
	var recs []*obs.Recorder
	var tws []*obs.TraceWriter
	var latestRec *obs.Recorder
	var obsFiles []*os.File
	var traceFile *os.File
	if *obsPath != "" || *obsCSV != "" || *tracePath != "" || *statusAddr != "" {
		var sinks []obs.Sink
		for _, fs := range []struct {
			path string
			mk   func(*os.File) obs.Sink
		}{
			{*obsPath, func(f *os.File) obs.Sink { return obs.NewJSONLSink(f) }},
			{*obsCSV, func(f *os.File) obs.Sink { return obs.NewCSVSink(f) }},
		} {
			if fs.path == "" {
				continue
			}
			f, err := os.Create(fs.path)
			if err != nil {
				die(err)
			}
			obsFiles = append(obsFiles, f)
			sinks = append(sinks, obs.SyncSink(fs.mk(f)))
		}
		if *tracePath != "" {
			if traceFile, err = os.Create(*tracePath); err != nil {
				die(err)
			}
		}
		cfg.Instrument = func(label string, sys *core.System) {
			rec := obs.NewRecorder(label, *obsInterval, sinks...)
			sys.AttachRecorder(rec)
			var tw *obs.TraceWriter
			if traceFile != nil {
				// TraceWriter flushes whole lines in a single Write,
				// so concurrent cells can share one file.
				tw = obs.NewTraceWriter(traceFile, label)
				sys.AttachTrace(tw)
			}
			obsMu.Lock()
			recs = append(recs, rec)
			latestRec = rec
			if tw != nil {
				tws = append(tws, tw)
			}
			obsMu.Unlock()
		}
	}

	// Per-cell progress to stderr, and done/total counters for the
	// status endpoint. Progress invocations are serialized by the
	// study, so the start-time map needs no lock of its own.
	var cellsDone, cellsTotal atomic.Int64
	if *progress || *statusAddr != "" {
		starts := map[int]time.Time{}
		cfg.Progress = func(ev experiment.CellEvent) {
			cellsDone.Store(int64(ev.Done))
			cellsTotal.Store(int64(ev.Total))
			if ev.Start {
				starts[ev.Index] = time.Now()
				if *progress {
					fmt.Fprintf(os.Stderr, "[%d/%d] start %s\n", ev.Done, ev.Total, ev.Label)
				}
				return
			}
			elapsed := time.Since(starts[ev.Index])
			delete(starts, ev.Index)
			if *progress {
				fmt.Fprintf(os.Stderr, "[%d/%d] done  %s (%.2fs)\n", ev.Done, ev.Total, ev.Label, elapsed.Seconds())
			}
		}
	}

	ms := experiment.NewMixStudy(cfg, mixes, scheds, channels, isolations)

	if *statusAddr != "" {
		srv, err := monitor.Start(*statusAddr, func() monitor.Status {
			st := monitor.Status{
				Run:         "mcmix",
				CellsDone:   int(cellsDone.Load()),
				CellsTotal:  int(cellsTotal.Load()),
				Simulations: ms.Study().Simulations(),
			}
			obsMu.Lock()
			rec := latestRec
			obsMu.Unlock()
			if rec != nil {
				st.Run = rec.Run()
				st.Cycle = rec.LastCycle()
				st.TotalCycles = *warm + *cycles
				if s, ok := rec.Latest(); ok {
					st.Sample = &s
				}
			}
			return st
		})
		if err != nil {
			die(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "status: http://%s/status\n", srv.Addr())
	}

	results := ms.Results()

	for _, rec := range recs {
		if err := rec.Flush(); err != nil {
			die(err)
		}
		if err := rec.Err(); err != nil {
			die(err)
		}
	}
	for _, tw := range tws {
		if err := tw.Flush(); err != nil {
			die(err)
		}
		if err := tw.Err(); err != nil {
			die(err)
		}
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			die(err)
		}
	}
	for _, f := range obsFiles {
		if err := f.Close(); err != nil {
			die(err)
		}
	}
	if err := stopProfiles(); err != nil {
		die(err)
	}

	for _, ch := range channels {
		fmt.Printf("=== %d channel(s), %d cycles measured ===\n\n", ch, *cycles)
		for _, m := range mixes {
			for _, iso := range isolations {
				fmt.Printf("%s [%s]\n", m.Name, iso)
				for _, k := range scheds {
					r, ok := find(results, m.Name, k, ch, iso)
					if !ok {
						continue
					}
					fmt.Printf("  %-10s WS=%.3f HS=%.3f MaxSlow=%.3f  slowdowns:", k, r.Fairness.WeightedSpeedup, r.Fairness.HarmonicSpeedup, r.Fairness.MaxSlowdown)
					for i, t := range r.Shared.Tenants {
						fmt.Printf(" %s=%.3f", t.Name, r.Fairness.Slowdowns[i])
					}
					fmt.Println()
					if *detail {
						for i, t := range r.Shared.Tenants {
							fmt.Printf("    %-10s ipc=%.4f (solo %.4f) lat=%.1f hit=%.3f mpki=%.2f\n",
								t.Name, t.IPC, r.SoloIPC[i], t.AvgReadLatency, t.RowHitRate, t.MPKI)
						}
					}
				}
				fmt.Println()
			}
		}
	}
	fmt.Print(ms.FairnessTable(results).Render())
	fmt.Printf("\n%d simulations for %d cells (solo baselines shared via run cache)\n",
		ms.Study().Simulations(), len(results))
}

func find(results []experiment.MixResult, mix string, k sched.Kind, ch int, iso core.Isolation) (experiment.MixResult, bool) {
	for _, r := range results {
		if r.Mix.Name == mix && r.Scheduler == k && r.Channels == ch && r.Isolation == iso {
			return r, true
		}
	}
	return experiment.MixResult{}, false
}

// parseMixes resolves "all", canonical mix names, or custom specs of
// the form "DS:8+HOG:8" (acronym:cores joined by '+'). Unknown tokens
// are rejected with an error that lists the canonical mix names and
// the custom syntax, so a typo never silently shrinks the sweep.
func parseMixes(s string) ([]tenant.Mix, error) {
	if s == "all" || s == "" {
		return tenant.StudyMixes(), nil
	}
	canonical := map[string]tenant.Mix{}
	var names []string
	for _, m := range tenant.StudyMixes() {
		canonical[m.Name] = m
		names = append(names, m.Name)
	}
	var out []tenant.Mix
	seen := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		m, ok := canonical[name]
		if !ok {
			var err error
			if m, err = parseCustomMix(name); err != nil {
				return nil, fmt.Errorf("mcmix: unknown mix %q: %w\n(canonical mixes: %s; custom syntax: ACR:cores+ACR:cores)",
					name, err, strings.Join(names, ", "))
			}
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("mcmix: mix %q listed twice", m.Name)
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	return out, nil
}

func parseCustomMix(s string) (tenant.Mix, error) {
	var specs []tenant.Spec
	for _, part := range strings.Split(s, "+") {
		acr, coresStr, hasCores := strings.Cut(part, ":")
		p, err := workload.ByAcronym(strings.TrimSpace(acr))
		if err != nil {
			return tenant.Mix{}, err
		}
		cores := 8
		if hasCores {
			cores, err = strconv.Atoi(coresStr)
			if err != nil || cores <= 0 {
				return tenant.Mix{}, fmt.Errorf("mcmix: bad core count in %q (want a positive integer)", part)
			}
		}
		specs = append(specs, tenant.Spec{Profile: p, Cores: cores})
	}
	if len(specs) < 2 {
		return tenant.Mix{}, fmt.Errorf("mcmix: mix %q needs at least two tenants (acronym:cores joined by '+')", s)
	}
	return tenant.NewMix("", specs...), nil
}

// parseScheds resolves scheduler names case-insensitively; unknown
// names are rejected by sched.ParseKind with the list of valid ones.
func parseScheds(s string) ([]sched.Kind, error) {
	var out []sched.Kind
	for _, name := range strings.Split(s, ",") {
		k, err := sched.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// parseIsolations resolves the isolation axis ("all" sweeps every
// mode); unknown names are rejected with the valid vocabulary.
func parseIsolations(s string) ([]core.Isolation, error) {
	if s == "all" {
		return append([]core.Isolation(nil), core.Isolations...), nil
	}
	var out []core.Isolation
	seen := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		iso, err := core.ParseIsolation(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if seen[iso.String()] {
			return nil, fmt.Errorf("mcmix: isolation mode %q listed twice", iso)
		}
		seen[iso.String()] = true
		out = append(out, iso)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, v := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("mcmix: bad channel count %q (want a positive integer)", strings.TrimSpace(v))
		}
		if n <= 0 || n&(n-1) != 0 {
			return nil, fmt.Errorf("mcmix: channel count %d must be a positive power of two", n)
		}
		out = append(out, n)
	}
	return out, nil
}
