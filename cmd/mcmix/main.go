// Command mcmix sweeps multi-tenant colocation mixes across memory
// schedulers and channel counts and prints the fairness study: per-
// tenant slowdown versus running alone, weighted speedup, harmonic
// speedup, and maximum slowdown. Solo baselines are memoized and
// shared across mixes, so a full sweep costs far fewer simulations
// than mixes x tenants.
//
// Usage:
//
//	mcmix [-mixes all|NAME,...] [-scheds FR-FCFS,ATLAS] [-channels 1]
//	      [-cycles N] [-warm N] [-seed N] [-list] [-detail]
//
// Custom mixes can be given as core-count-annotated acronym lists,
// e.g. -mixes "DS:8+HOG:8,WS:4+MR:4+SS:8".
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cloudmc/internal/experiment"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

func main() {
	mixesFlag := flag.String("mixes", "all", "comma-separated mix list (all = canonical study mixes; custom: DS:8+HOG:8,...)")
	schedsFlag := flag.String("scheds", "FR-FCFS,ATLAS", "comma-separated schedulers to sweep")
	channelsFlag := flag.String("channels", "1", "comma-separated channel counts to sweep")
	cycles := flag.Uint64("cycles", 300_000, "measured cycles per simulation")
	warm := flag.Uint64("warm", 50_000, "timed warmup cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list the canonical mixes and exit")
	detail := flag.Bool("detail", false, "print the per-tenant breakdown of every cell")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		for _, m := range tenant.StudyMixes() {
			fmt.Printf("%-28s %2d cores, footprint %.1f GB\n",
				m.Name, m.TotalCores(), float64(m.Footprint())/(1<<30))
		}
		return
	}

	mixes, err := parseMixes(*mixesFlag)
	if err != nil {
		die(err)
	}
	scheds, err := parseScheds(*schedsFlag)
	if err != nil {
		die(err)
	}
	channels, err := parseInts(*channelsFlag)
	if err != nil {
		die(err)
	}

	cfg := experiment.Config{
		MeasureCycles: *cycles,
		WarmupCycles:  *warm,
		Seed:          *seed,
	}
	ms := experiment.NewMixStudy(cfg, mixes, scheds, channels)
	results := ms.Results()

	for _, ch := range channels {
		fmt.Printf("=== %d channel(s), %d cycles measured ===\n\n", ch, *cycles)
		for _, m := range mixes {
			fmt.Printf("%s\n", m.Name)
			for _, k := range scheds {
				r, ok := find(results, m.Name, k, ch)
				if !ok {
					continue
				}
				fmt.Printf("  %-10s WS=%.3f HS=%.3f MaxSlow=%.3f  slowdowns:", k, r.Fairness.WeightedSpeedup, r.Fairness.HarmonicSpeedup, r.Fairness.MaxSlowdown)
				for i, t := range r.Shared.Tenants {
					fmt.Printf(" %s=%.3f", t.Name, r.Fairness.Slowdowns[i])
				}
				fmt.Println()
				if *detail {
					for i, t := range r.Shared.Tenants {
						fmt.Printf("    %-10s ipc=%.4f (solo %.4f) lat=%.1f hit=%.3f mpki=%.2f\n",
							t.Name, t.IPC, r.SoloIPC[i], t.AvgReadLatency, t.RowHitRate, t.MPKI)
					}
				}
			}
			fmt.Println()
		}
	}
	fmt.Print(ms.FairnessTable(results).Render())
	fmt.Printf("\n%d simulations for %d cells (solo baselines shared via run cache)\n",
		ms.Study().Simulations(), len(results))
}

func find(results []experiment.MixResult, mix string, k sched.Kind, ch int) (experiment.MixResult, bool) {
	for _, r := range results {
		if r.Mix.Name == mix && r.Scheduler == k && r.Channels == ch {
			return r, true
		}
	}
	return experiment.MixResult{}, false
}

// parseMixes resolves "all", canonical mix names, or custom specs of
// the form "DS:8+HOG:8" (acronym:cores joined by '+').
func parseMixes(s string) ([]tenant.Mix, error) {
	if s == "all" || s == "" {
		return tenant.StudyMixes(), nil
	}
	canonical := map[string]tenant.Mix{}
	for _, m := range tenant.StudyMixes() {
		canonical[m.Name] = m
	}
	var out []tenant.Mix
	seen := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		m, ok := canonical[name]
		if !ok {
			var err error
			if m, err = parseCustomMix(name); err != nil {
				return nil, err
			}
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("mcmix: mix %q listed twice", m.Name)
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	return out, nil
}

func parseCustomMix(s string) (tenant.Mix, error) {
	var specs []tenant.Spec
	for _, part := range strings.Split(s, "+") {
		acr, coresStr, hasCores := strings.Cut(part, ":")
		p, err := workload.ByAcronym(strings.TrimSpace(acr))
		if err != nil {
			return tenant.Mix{}, err
		}
		cores := 8
		if hasCores {
			cores, err = strconv.Atoi(coresStr)
			if err != nil || cores <= 0 {
				return tenant.Mix{}, fmt.Errorf("mcmix: bad core count in %q (want a positive integer)", part)
			}
		}
		specs = append(specs, tenant.Spec{Profile: p, Cores: cores})
	}
	if len(specs) < 2 {
		return tenant.Mix{}, fmt.Errorf("mcmix: mix %q needs at least two tenants (acronym:cores joined by '+')", s)
	}
	return tenant.NewMix("", specs...), nil
}

func parseScheds(s string) ([]sched.Kind, error) {
	var out []sched.Kind
	for _, name := range strings.Split(s, ",") {
		k, err := sched.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, v := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
