// Command mcmix sweeps multi-tenant colocation mixes across memory
// schedulers, channel counts and isolation modes and prints the
// fairness study: per-tenant slowdown versus running alone, weighted
// speedup, harmonic speedup, and maximum slowdown. Solo baselines are
// memoized and shared across mixes and isolation cells, so a full
// sweep costs far fewer simulations than mixes x tenants x cells.
//
// Usage:
//
//	mcmix [-mixes all|NAME,...] [-gen N] [-mixsize K]
//	      [-scheds FR-FCFS,ATLAS] [-channels 1]
//	      [-isolation none|banks|ways|banks+ways,...] [-slo 2.0]
//	      [-cycles N] [-warm N] [-seed N] [-list] [-detail]
//
// Custom mixes can be given as core-count-annotated acronym lists,
// e.g. -mixes "DS:8+HOG:8,WS:4+MR:4+SS:8". -gen N samples N seeded
// mixes of -mixsize total cores from the full Table 1 profile
// cross-product (tenant.GenerateMixes) — the way to sweep 32- and
// 64-core machines without hand-writing mix lists; the generated
// mixes replace the canonical list unless -mixes names more. The
// isolation axis selects the mitigation mechanisms: bank partitioning
// in the address map, LLC way-partitioning, or both; the QoS
// scheduler (-scheds QoS) targets the -slo max-slowdown budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cloudmc/internal/core"
	"cloudmc/internal/experiment"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

func main() {
	mixesFlag := flag.String("mixes", "all", "comma-separated mix list (all = canonical study mixes; custom: DS:8+HOG:8,...)")
	gen := flag.Int("gen", 0, "generate N seeded mixes from the Table 1 profile cross-product (replaces the canonical list; explicit -mixes are kept)")
	mixsize := flag.Int("mixsize", 32, "total cores per generated mix, split evenly among 2-4 tenants (with -gen)")
	schedsFlag := flag.String("scheds", "FR-FCFS,ATLAS", "comma-separated schedulers to sweep")
	channelsFlag := flag.String("channels", "1", "comma-separated channel counts to sweep")
	isolationFlag := flag.String("isolation", "none", "comma-separated isolation modes to sweep (none, banks, ways, banks+ways, or all)")
	slo := flag.Float64("slo", 0, "QoS scheduler max-slowdown SLO (0 = scheduler default)")
	cycles := flag.Uint64("cycles", 300_000, "measured cycles per simulation")
	warm := flag.Uint64("warm", 50_000, "timed warmup cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list the canonical mixes and exit")
	detail := flag.Bool("detail", false, "print the per-tenant breakdown of every cell")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		for _, m := range tenant.StudyMixes() {
			fmt.Printf("%-28s %2d cores, footprint %.1f GB\n",
				m.Name, m.TotalCores(), float64(m.Footprint())/(1<<30))
		}
		return
	}

	var mixes []tenant.Mix
	var err error
	// -gen replaces the implicit canonical list; an explicit -mixes
	// selection is kept alongside the generated mixes.
	if *gen == 0 || (*mixesFlag != "all" && *mixesFlag != "") {
		if mixes, err = parseMixes(*mixesFlag); err != nil {
			die(err)
		}
	}
	if *gen < 0 {
		die(fmt.Errorf("mcmix: -gen %d must be positive", *gen))
	}
	if *gen > 0 {
		generated, err := tenant.GenerateMixes(*seed, *gen, *mixsize)
		if err != nil {
			die(fmt.Errorf("mcmix: %w", err))
		}
		seen := map[string]bool{}
		for _, m := range mixes {
			seen[m.Name] = true
		}
		for _, m := range generated {
			if seen[m.Name] {
				// A mix name fully determines its spec, so a generated
				// duplicate of an explicitly listed mix is the same
				// scenario; keep the explicit one.
				continue
			}
			mixes = append(mixes, m)
		}
	}
	scheds, err := parseScheds(*schedsFlag)
	if err != nil {
		die(err)
	}
	channels, err := parseInts(*channelsFlag)
	if err != nil {
		die(err)
	}
	isolations, err := parseIsolations(*isolationFlag)
	if err != nil {
		die(err)
	}

	cfg := experiment.Config{
		MeasureCycles:  *cycles,
		WarmupCycles:   *warm,
		Seed:           *seed,
		MaxSlowdownSLO: *slo,
	}
	ms := experiment.NewMixStudy(cfg, mixes, scheds, channels, isolations)
	results := ms.Results()

	for _, ch := range channels {
		fmt.Printf("=== %d channel(s), %d cycles measured ===\n\n", ch, *cycles)
		for _, m := range mixes {
			for _, iso := range isolations {
				fmt.Printf("%s [%s]\n", m.Name, iso)
				for _, k := range scheds {
					r, ok := find(results, m.Name, k, ch, iso)
					if !ok {
						continue
					}
					fmt.Printf("  %-10s WS=%.3f HS=%.3f MaxSlow=%.3f  slowdowns:", k, r.Fairness.WeightedSpeedup, r.Fairness.HarmonicSpeedup, r.Fairness.MaxSlowdown)
					for i, t := range r.Shared.Tenants {
						fmt.Printf(" %s=%.3f", t.Name, r.Fairness.Slowdowns[i])
					}
					fmt.Println()
					if *detail {
						for i, t := range r.Shared.Tenants {
							fmt.Printf("    %-10s ipc=%.4f (solo %.4f) lat=%.1f hit=%.3f mpki=%.2f\n",
								t.Name, t.IPC, r.SoloIPC[i], t.AvgReadLatency, t.RowHitRate, t.MPKI)
						}
					}
				}
				fmt.Println()
			}
		}
	}
	fmt.Print(ms.FairnessTable(results).Render())
	fmt.Printf("\n%d simulations for %d cells (solo baselines shared via run cache)\n",
		ms.Study().Simulations(), len(results))
}

func find(results []experiment.MixResult, mix string, k sched.Kind, ch int, iso core.Isolation) (experiment.MixResult, bool) {
	for _, r := range results {
		if r.Mix.Name == mix && r.Scheduler == k && r.Channels == ch && r.Isolation == iso {
			return r, true
		}
	}
	return experiment.MixResult{}, false
}

// parseMixes resolves "all", canonical mix names, or custom specs of
// the form "DS:8+HOG:8" (acronym:cores joined by '+'). Unknown tokens
// are rejected with an error that lists the canonical mix names and
// the custom syntax, so a typo never silently shrinks the sweep.
func parseMixes(s string) ([]tenant.Mix, error) {
	if s == "all" || s == "" {
		return tenant.StudyMixes(), nil
	}
	canonical := map[string]tenant.Mix{}
	var names []string
	for _, m := range tenant.StudyMixes() {
		canonical[m.Name] = m
		names = append(names, m.Name)
	}
	var out []tenant.Mix
	seen := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		m, ok := canonical[name]
		if !ok {
			var err error
			if m, err = parseCustomMix(name); err != nil {
				return nil, fmt.Errorf("mcmix: unknown mix %q: %w\n(canonical mixes: %s; custom syntax: ACR:cores+ACR:cores)",
					name, err, strings.Join(names, ", "))
			}
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("mcmix: mix %q listed twice", m.Name)
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	return out, nil
}

func parseCustomMix(s string) (tenant.Mix, error) {
	var specs []tenant.Spec
	for _, part := range strings.Split(s, "+") {
		acr, coresStr, hasCores := strings.Cut(part, ":")
		p, err := workload.ByAcronym(strings.TrimSpace(acr))
		if err != nil {
			return tenant.Mix{}, err
		}
		cores := 8
		if hasCores {
			cores, err = strconv.Atoi(coresStr)
			if err != nil || cores <= 0 {
				return tenant.Mix{}, fmt.Errorf("mcmix: bad core count in %q (want a positive integer)", part)
			}
		}
		specs = append(specs, tenant.Spec{Profile: p, Cores: cores})
	}
	if len(specs) < 2 {
		return tenant.Mix{}, fmt.Errorf("mcmix: mix %q needs at least two tenants (acronym:cores joined by '+')", s)
	}
	return tenant.NewMix("", specs...), nil
}

// parseScheds resolves scheduler names case-insensitively; unknown
// names are rejected by sched.ParseKind with the list of valid ones.
func parseScheds(s string) ([]sched.Kind, error) {
	var out []sched.Kind
	for _, name := range strings.Split(s, ",") {
		k, err := sched.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// parseIsolations resolves the isolation axis ("all" sweeps every
// mode); unknown names are rejected with the valid vocabulary.
func parseIsolations(s string) ([]core.Isolation, error) {
	if s == "all" {
		return append([]core.Isolation(nil), core.Isolations...), nil
	}
	var out []core.Isolation
	seen := map[string]bool{}
	for _, name := range strings.Split(s, ",") {
		iso, err := core.ParseIsolation(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if seen[iso.String()] {
			return nil, fmt.Errorf("mcmix: isolation mode %q listed twice", iso)
		}
		seen[iso.String()] = true
		out = append(out, iso)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, v := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("mcmix: bad channel count %q (want a positive integer)", strings.TrimSpace(v))
		}
		if n <= 0 || n&(n-1) != 0 {
			return nil, fmt.Errorf("mcmix: channel count %d must be a positive power of two", n)
		}
		out = append(out, n)
	}
	return out, nil
}
