// Package cloudmc_test hosts the benchmark harness: one benchmark per
// table and figure in the paper's evaluation (§4), plus ablation
// benches for the design choices called out in DESIGN.md. Each
// BenchmarkFigureNN regenerates its artifact at a reduced scale; the
// full-scale numbers in EXPERIMENTS.md come from cmd/mcfigures.
//
// Run a single figure with e.g.:
//
//	go test -bench BenchmarkFigure01 -benchtime 1x
package cloudmc_test

import (
	"io"
	"sync"
	"testing"

	"cloudmc/internal/core"
	"cloudmc/internal/dram"
	"cloudmc/internal/experiment"
	"cloudmc/internal/memctrl"
	"cloudmc/internal/obs"
	"cloudmc/internal/pagepolicy"
	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

// benchConfig is smaller than experiment.Quick so the whole harness
// stays minutes, not hours, on a laptop.
func benchConfig() experiment.Config {
	return experiment.Config{
		MeasureCycles: 60_000,
		WarmupCycles:  15_000,
		Seed:          1,
	}
}

// sharedStudy memoizes simulations across benchmarks in one `go test`
// invocation: Figures 1-7 share the scheduler grid, 9-11 the page
// grid, 12-14 and Table 4 the channel grid.
var (
	studyOnce sync.Once
	study     *experiment.Study
)

func sharedStudyInstance() *experiment.Study {
	studyOnce.Do(func() { study = experiment.NewStudy(benchConfig()) })
	return study
}

// tableSink prevents dead-code elimination of table construction.
var tableSink *experiment.Table

func benchTable(b *testing.B, build func(*experiment.Study) *experiment.Table) {
	b.Helper()
	s := sharedStudyInstance()
	for i := 0; i < b.N; i++ {
		tableSink = build(s)
	}
	if tableSink == nil || len(tableSink.Rows) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkFigure01UserIPC regenerates Figure 1 (user IPC by
// scheduler, normalized to FR-FCFS).
func BenchmarkFigure01UserIPC(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure01() })
}

// BenchmarkFigure02RowHitRate regenerates Figure 2 (row-buffer hit
// rate by scheduler).
func BenchmarkFigure02RowHitRate(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure02() })
}

// BenchmarkFigure03MemLatency regenerates Figure 3 (normalized average
// memory access latency by scheduler).
func BenchmarkFigure03MemLatency(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure03() })
}

// BenchmarkFigure04MPKI regenerates Figure 4 (L2 MPKI by scheduler).
func BenchmarkFigure04MPKI(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure04() })
}

// BenchmarkFigure05ReadQueue regenerates Figure 5 (average read queue
// length).
func BenchmarkFigure05ReadQueue(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure05() })
}

// BenchmarkFigure06WriteQueue regenerates Figure 6 (average write
// queue length).
func BenchmarkFigure06WriteQueue(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure06() })
}

// BenchmarkFigure07Bandwidth regenerates Figure 7 (memory bandwidth
// utilization).
func BenchmarkFigure07Bandwidth(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure07() })
}

// BenchmarkFigure08SingleAccess regenerates Figure 8 (single-access
// row-buffer activation percentage under OAPM).
func BenchmarkFigure08SingleAccess(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure08() })
}

// BenchmarkFigure09PagePolicyHits regenerates Figure 9 (row-buffer hit
// rate by page policy, normalized to OAPM).
func BenchmarkFigure09PagePolicyHits(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure09() })
}

// BenchmarkFigure10PagePolicyLatency regenerates Figure 10 (memory
// latency by page policy).
func BenchmarkFigure10PagePolicyLatency(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure10() })
}

// BenchmarkFigure11PagePolicyIPC regenerates Figure 11 (user IPC by
// page policy).
func BenchmarkFigure11PagePolicyIPC(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure11() })
}

// BenchmarkFigure12Channels regenerates Figure 12 (user IPC vs channel
// count, best mapping per workload).
func BenchmarkFigure12Channels(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure12() })
}

// BenchmarkFigure13ChannelHits regenerates Figure 13 (row-buffer hit
// rate vs channel count).
func BenchmarkFigure13ChannelHits(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure13() })
}

// BenchmarkFigure14ChannelLatency regenerates Figure 14 (memory access
// latency vs channel count).
func BenchmarkFigure14ChannelLatency(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Figure14() })
}

// BenchmarkTable04AddressMapping regenerates Table 4 (best mapping
// scheme per workload at 2 and 4 channels).
func BenchmarkTable04AddressMapping(b *testing.B) {
	benchTable(b, func(s *experiment.Study) *experiment.Table { return s.Table4() })
}

// --- Ablation benches (DESIGN.md §7) ------------------------------

// metricsSink keeps ablation results alive.
var metricsSink core.Metrics

func runOnce(b *testing.B, mutate func(*core.Config)) core.Metrics {
	b.Helper()
	cfg := core.DefaultConfig(workload.TPCHQ6())
	cfg.MeasureCycles = 80_000
	cfg.WarmupCycles = 20_000
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys.Run()
}

// BenchmarkAblationWriteDrain sweeps the write-drain watermarks — the
// mechanism behind Figure 6's scheduler differences.
func BenchmarkAblationWriteDrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, hi := range []int{16, 32, 48} {
			hi := hi
			m := runOnce(b, func(c *core.Config) {
				c.MC.WriteHi = hi
				c.MC.WriteLo = hi / 4
			})
			metricsSink = m
			b.ReportMetric(m.UserIPC, "ipc_hi"+itoa(hi))
		}
	}
}

// BenchmarkAblationQueueCapacity sweeps the read-queue capacity,
// supporting §4.1.3's finding that short queues suffice.
func BenchmarkAblationQueueCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cap := range []int{8, 16, 64} {
			cap := cap
			m := runOnce(b, func(c *core.Config) { c.MC.ReadQueueCap = cap })
			metricsSink = m
			b.ReportMetric(m.UserIPC, "ipc_rq"+itoa(cap))
		}
	}
}

// BenchmarkAblationMLP sweeps the per-core MLP limit on a
// decision-support profile, supporting §4.1.2's latency-sensitivity
// argument.
func BenchmarkAblationMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mlp := range []int{1, 3, 6} {
			mlp := mlp
			m := runOnce(b, func(c *core.Config) { c.Profile.MLPLimit = mlp })
			metricsSink = m
			b.ReportMetric(m.UserIPC, "ipc_mlp"+itoa(mlp))
		}
	}
}

// BenchmarkAblationBatchCap sweeps PAR-BS's batching cap (Table 3).
func BenchmarkAblationBatchCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cap := range []int{1, 5, 16} {
			cap := cap
			m := runOnce(b, func(c *core.Config) {
				c.Scheduler = sched.PARBS
				c.SchedOpts.PARBS = sched.PARBSConfig{BatchingCap: cap}
			})
			metricsSink = m
			b.ReportMetric(m.UserIPC, "ipc_cap"+itoa(cap))
		}
	}
}

// BenchmarkAblationATLASScanDepth sweeps the ATLAS scan window, the
// modeling choice documented in DESIGN.md/EXPERIMENTS.md.
func BenchmarkAblationATLASScanDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{1, 2, 8} {
			depth := depth
			cfg := core.DefaultConfig(workload.MapReduce())
			cfg.MeasureCycles = 80_000
			cfg.WarmupCycles = 20_000
			cfg.Scheduler = sched.ATLAS
			cfg.SchedOpts.ATLAS = sched.ATLASConfig{
				QuantumCycles: 8_000, Alpha: 0.875,
				StarvationThreshold: 1_000, ScanDepth: depth,
			}
			sys, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			m := sys.Run()
			metricsSink = m
			b.ReportMetric(m.UserIPC, "ipc_scan"+itoa(depth))
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (ns per
// simulated cycle) per workload under the three execution modes:
// ff=off (naive per-cycle loop), ff=scan (the PR 1 horizon-scan
// fast-forward engine, Config.LegacyScan) and ff=on (the event
// kernel, the default). The ff=on/ff=scan ratio per profile is the
// BENCH trajectory number for the kernel refactor; the 64-core
// profile is the regime the kernel exists for, where the per-step
// O(n) scans dominate the legacy engine. WH (write-heavy) and BC
// (high bank-conflict) pin the park-heavy regime the per-bank wake-up
// horizons optimize: drain shadows and precharge/tFAW stalls, where
// controllers spend most cycles parked and enqueues re-arm them.
func BenchmarkSimulatorThroughput(b *testing.B) {
	ds64 := workload.DataServing()
	ds64.Cores = 64
	ds64.Acronym = "DS-64c"
	wh := workload.MapReduce()
	wh.StoreFraction = 0.6
	wh.BurstStoreFraction = 0.7
	wh.Acronym = "WH"
	bc := workload.DataServing()
	bc.TargetRowHit = 0.05 // nearly every access conflicts: ACT/PRE bound
	bc.MLPLimit = 4
	bc.Acronym = "BC"
	profiles := []workload.Profile{
		workload.DataServing(),
		workload.SATSolver(),
		workload.WebSearch(),
		workload.TPCHQ6(),
		ds64,
		wh,
		bc,
	}
	modes := []struct {
		name        string
		fastForward bool
		legacyScan  bool
	}{
		{"ff=off", false, false},
		{"ff=scan", true, true},
		{"ff=on", true, false},
	}
	for _, p := range profiles {
		for _, mode := range modes {
			b.Run(p.Acronym+"/"+mode.name, func(b *testing.B) {
				cfg := core.DefaultConfig(p)
				cfg.FastForward = mode.fastForward
				cfg.LegacyScan = mode.legacyScan
				sys, err := core.NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sys.FunctionalWarmup(0)
				b.ResetTimer()
				sys.Advance(uint64(b.N))
			})
		}
	}

	// Parallel-scaling variants: the sharded event kernel
	// (Config.Workers) on multi-channel large-core configs — DS-64c
	// over 4 channels and the ROADMAP's 256-core 8-channel profile.
	// The workers=N/workers=1 ratio per family is the parallel
	// efficiency the bench gate reports (scaling check, not yet
	// gated); workers=1 is the in-family serial baseline, so the
	// ratio isolates the barrier + merge cost from everything else.
	// MSHR capacity scales with the core count so the big machines
	// keep their controllers busy rather than convoying on miss slots.
	scaling := []struct {
		p        workload.Profile
		channels int
		mshrCap  int
	}{
		{ds64, 4, 96},
		{workload.DataServing256(), 8, 256},
	}
	for _, sc := range scaling {
		for _, w := range []int{1, 2, 4} {
			sc, w := sc, w
			name := sc.p.Acronym + "/ch" + itoa(sc.channels) + "/workers=" + itoa(w)
			b.Run(name, func(b *testing.B) {
				cfg := core.DefaultConfig(sc.p)
				cfg.Channels = sc.channels
				cfg.MSHRCap = sc.mshrCap
				cfg.Workers = w
				sys, err := core.NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sys.FunctionalWarmup(0)
				b.ResetTimer()
				sys.Advance(uint64(b.N))
			})
		}
	}

	// Deep-queue variant: the 256-core 8-channel profile with the MSHR
	// cap lifted far above the default and the per-controller queues
	// widened to match, so the controllers actually run with long
	// resident queues instead of convoying on miss slots. This is the
	// regime the incremental candidate-group index exists for — the
	// per-tick option build used to be O(queue) here — and the profile
	// the bench gate watches for the O(changes) claim at system level.
	deep := workload.DataServing256()
	deep.Acronym = "DS-256c-deep"
	b.Run(deep.Acronym+"/ch8/workers=1", func(b *testing.B) {
		cfg := core.DefaultConfig(deep)
		cfg.Channels = 8
		cfg.MSHRCap = 1024
		cfg.MC.ReadQueueCap = 256
		cfg.MC.WriteQueueCap = 256
		sys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sys.FunctionalWarmup(0)
		b.ResetTimer()
		sys.Advance(uint64(b.N))
	})
}

// BenchmarkObsOverhead measures the cost of the observability stack
// on the default event-kernel loop: obs=off is the baseline one-nil-
// check fast path, obs=rec attaches an interval recorder with a JSONL
// sink, and obs=rec+trace adds per-command tracing (the worst case:
// one callback per DRAM command issued). The off/rec ratio is the
// number the "zero overhead when off" claim is judged by; the CI
// bench gate only watches BenchmarkSimulatorThroughput, so this
// benchmark reports without gating.
func BenchmarkObsOverhead(b *testing.B) {
	variants := []struct {
		name     string
		recorder bool
		trace    bool
	}{
		{"obs=off", false, false},
		{"obs=rec", true, false},
		{"obs=rec+trace", true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := core.DefaultConfig(workload.DataServing())
			sys, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if v.recorder {
				sys.AttachRecorder(obs.NewRecorder("bench", 10_000, obs.NewJSONLSink(io.Discard)))
			}
			if v.trace {
				sys.AttachTrace(obs.NewTraceWriter(io.Discard, "bench"))
			}
			sys.FunctionalWarmup(0)
			b.ResetTimer()
			sys.Advance(uint64(b.N))
		})
	}
}

// BenchmarkControllerParkReArm isolates the exact path the per-bank
// wake-up horizons optimize, without the core/cache simulation that
// dominates the system benchmarks: a controller parked mid-write-drain
// (the next precharge is in the tWR shadow, a ~20-cycle window with a
// known future horizon) receives a burst of read enqueues, the
// kernel's enqueue-notify pattern applied after each one. Before the
// per-bank horizons, every enqueue reset the horizon to "unknown" and
// the resulting tick re-scanned the whole write queue plus every bank
// (O(queued + ranks×banks) per enqueue); now each enqueue re-arms the
// park in O(1). Each timed op is one enqueue plus whatever tick the
// controller then demands.
func BenchmarkControllerParkReArm(b *testing.B) {
	geo := dram.Geometry{Channels: 1, Ranks: 2, Banks: 8, Rows: 1 << 12, Columns: 64, BlockBytes: 64}
	src := memctrl.Source{Core: 1, Tenant: -1}
	// build returns a controller parked inside a drain shadow: 42
	// same-bank conflicting writes engage drain mode, and after the
	// first column access the next precharge must wait out tWR.
	build := func() (*memctrl.Controller, uint64) {
		ch := dram.NewChannel(0, geo, dram.DDR3_1600())
		pol := sched.NewFactoryOpts(sched.FRFCFS, sched.Opts{Cores: 16})(0)
		ctl, err := memctrl.New(memctrl.DefaultConfig(), ch, pol, pagepolicy.NewOpenAdaptive())
		if err != nil {
			b.Fatal(err)
		}
		ctl.SetFastForward(true)
		for i := 0; i < 42; i++ {
			loc := dram.Location{Channel: 0, Rank: 0, Bank: i % 2, Row: i, Column: 3}
			ctl.EnqueueWrite(0, src, uint64(1)<<40|uint64(i)<<8, loc, nil)
		}
		for now := uint64(0); ; now++ {
			if w := ctl.NextEvent(now); w > now+1 {
				return ctl, now
			}
			ctl.Tick(now)
		}
	}
	// One controller serves every burst: between bursts (untimed) the
	// queues drain so every request recycles through the free list,
	// then the same 42-write pattern re-engages the drain shadow. After
	// the priming cycle below, the timed enqueues pop recycled requests
	// instead of minting them — the steady state the CI alloc gate pins
	// at exactly 0 allocs/op.
	b.StopTimer()
	ctl, now := build()
	rearm := func(now uint64) uint64 {
		for ctl.Pending() > 0 {
			ctl.Tick(now)
			now++
		}
		for i := 0; i < 42; i++ {
			loc := dram.Location{Channel: 0, Rank: 0, Bank: i % 2, Row: i, Column: 3}
			ctl.EnqueueWrite(now, src, uint64(1)<<40|uint64(i)<<8, loc, nil)
		}
		for {
			if w := ctl.NextEvent(now); w > now+1 {
				return now
			}
			ctl.Tick(now)
			now++
		}
	}
	// Prime the free list with one full untimed burst-and-drain cycle.
	for j := 0; j < 48; j++ {
		loc := dram.Location{Channel: 0, Rank: 1, Bank: j % 8, Row: 100 + j, Column: 1}
		ctl.EnqueueRead(now, src, uint64(3)<<40|uint64(j)<<8, loc, memctrl.ReadDemand, nil)
	}
	now = rearm(now)
	i := 0
	for i < b.N {
		b.StartTimer()
		// Up to 48 read enqueues land in the parked cycle (well under
		// the read-queue cap); reads are invisible during the drain, so
		// the park must simply survive each one.
		for j := 0; j < 48 && i < b.N; j, i = j+1, i+1 {
			loc := dram.Location{Channel: 0, Rank: 1, Bank: j % 8, Row: 100 + j, Column: 1}
			ctl.EnqueueRead(now, src, uint64(2)<<40|uint64(i)<<8, loc, memctrl.ReadDemand, nil)
			if w := ctl.NextEvent(now); w <= now {
				ctl.Tick(now)
			}
		}
		b.StopTimer()
		now = rearm(now)
	}
	b.StartTimer()
}

// BenchmarkBuildOptions isolates the busy-path option builder: a
// controller with a standing read queue ticks under FR-FCFS, issuing
// one command per cycle while enqueues keep the queue at a fixed
// depth — the steady-state busy regime where the per-tick candidate
// grouping dominates. q48 fits the default queue caps; q224 is the
// deep-queue variant (the hyperscale regime ISSUE 9 targets), where
// rebuilding the group table per tick costs O(queue) but the actual
// change per tick is one dequeue plus one enqueue. Requests spread
// over every bank with a few rows per bank, so the option set holds a
// realistic mix of activates, row hits and conflicts. allocs/op is
// reported: the steady-state busy path is expected to run
// allocation-free.
func BenchmarkBuildOptions(b *testing.B) {
	geo := dram.Geometry{Channels: 1, Ranks: 4, Banks: 8, Rows: 1 << 14, Columns: 64, BlockBytes: 64}
	src := memctrl.Source{Core: 1, Tenant: -1}
	for _, depth := range []int{48, 224} {
		depth := depth
		b.Run("q"+itoa(depth), func(b *testing.B) {
			cfg := memctrl.DefaultConfig()
			cfg.ReadQueueCap = depth + 16
			cfg.WriteQueueCap = depth + 16
			cfg.WriteHi = depth
			cfg.WriteLo = depth / 4
			ch := dram.NewChannel(0, geo, dram.DDR3_1600())
			pol := sched.NewFactoryOpts(sched.FRFCFS, sched.Opts{Cores: 16})(0)
			ctl, err := memctrl.New(cfg, ch, pol, pagepolicy.NewOpenAdaptive())
			if err != nil {
				b.Fatal(err)
			}
			ctl.SetFastForward(true)
			banks := geo.Ranks * geo.Banks
			seq := 0
			enq := func(now uint64) bool {
				loc := dram.Location{
					Channel: 0,
					Rank:    (seq % banks) / geo.Banks,
					Bank:    seq % geo.Banks,
					Row:     (seq / banks) % 4,
					Column:  seq % geo.Columns,
				}
				ok := ctl.EnqueueRead(now, src, uint64(seq)<<6, loc, memctrl.ReadDemand, nil)
				if ok {
					seq++
				}
				return ok
			}
			now := uint64(0)
			for r, _ := ctl.QueueLens(); r < depth; r, _ = ctl.QueueLens() {
				if !enq(now) {
					b.Fatal("could not pre-fill the read queue")
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctl.Tick(now)
				now++
				for r, _ := ctl.QueueLens(); r < depth; r, _ = ctl.QueueLens() {
					if !enq(now) {
						break
					}
				}
			}
		})
	}
}

// BenchmarkControllerTick measures one controller decision cycle under
// a standing queue.
func BenchmarkControllerTick(b *testing.B) {
	cfg := core.DefaultConfig(workload.TPCHQ17())
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys.FunctionalWarmup(0)
	for i := 0; i < 50_000; i++ {
		sys.Step()
	}
	ctl := sys.Controllers()[0]
	_ = ctl
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
	_ = memctrl.DefaultConfig()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
