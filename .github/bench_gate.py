#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares two raw `go test -bench` output files (merge-base vs PR head)
and fails when the geometric mean of the per-benchmark median time
ratios regresses by more than the threshold. Parsing the raw benchmark
lines (a format the Go tool has kept stable for a decade) keeps the
gate independent of benchstat's report layout; benchstat is still run
separately for the human-readable table.

Usage: bench_gate.py base.txt head.txt [threshold]
  threshold: maximum allowed geomean head/base time ratio
             (default 1.10 = 10% slower)
"""

import math
import re
import statistics
import sys

LINE = re.compile(r"^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op")


def medians(path):
    """Parse one bench file into {benchmark name: median ns/op}."""
    samples = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if m:
                samples.setdefault(m.group(1), []).append(float(m.group(2)))
    return {name: statistics.median(v) for name, v in samples.items()}


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    base = medians(sys.argv[1])
    head = medians(sys.argv[2])
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 1.10

    common = sorted(set(base) & set(head))
    if not common:
        print("no common benchmarks between base and head; skipping gate")
        return
    ratios = []
    for name in common:
        if base[name] <= 0 or head[name] <= 0:
            continue
        r = head[name] / base[name]
        ratios.append(r)
        print(f"{name}: {base[name]:.1f} -> {head[name]:.1f} ns/op ({r - 1:+.1%} vs base)")
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    print(f"\ngeomean head/base time ratio: {geomean:.4f} over {len(ratios)} benchmarks")
    if geomean > threshold:
        print(f"FAIL: geomean regression exceeds {threshold - 1:.0%} budget")
        sys.exit(1)
    print("PASS")


if __name__ == "__main__":
    main()
