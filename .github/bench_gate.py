#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares two raw `go test -bench` output files (merge-base vs PR head)
and fails when the geometric mean of the per-benchmark median time
ratios regresses by more than the threshold. Parsing the raw benchmark
lines (a format the Go tool has kept stable for a decade) keeps the
gate independent of benchstat's report layout; benchstat is still run
separately for the human-readable table.

Edge cases are reported, never silently swallowed:
  - benchmarks present only in head (newly added profiles) are listed
    and excluded from the ratio;
  - benchmarks present only in base (dropped from head) are listed as
    a loud warning — a rename shows up as one of each;
  - an empty base file (nothing to gate against, e.g. the benchmark
    was just introduced) SKIPs with an explicit message;
  - a non-empty base with an empty intersection FAILs: the head lost
    every gated benchmark, which must not pass as "no data".

Benchmarks named .../workers=N additionally feed a parallel-scaling
report: for every group sharing a prefix, speedup and efficiency of
each workers=N variant against its workers=1 sibling. The report is
purely informational — the sharded kernel is gated on bit-identical
results (the CI correctness matrix), never on speedup, because CI
runners have few cores and shared tenancy.

Usage: bench_gate.py base.txt head.txt [threshold]
  threshold: maximum allowed geomean head/base time ratio
             (default 1.10 = 10% slower)

Scaling report only: bench_gate.py --scaling head.txt
  prints the workers=N report plus the allocs/op column for one bench
  file (no base needed); always exits 0.

With -benchmem output, an allocs/op column is printed alongside the
gate. It is informational and never affects the verdict: the ns/op
geomean is the gate, but a hot path that starts allocating shows up in
the column before it costs enough wall time to trip it.

Alloc gate: bench_gate.py --alloc-gate REGEX head.txt
  the annotated-hotpath allocation gate: every benchmark whose name
  matches REGEX must report a median of exactly 0 allocs/op. Unlike
  the comparison gate this needs no base file — zero is an absolute
  contract (mirroring the //mclint:hotpath static invariant), not a
  ratio. FAILs when a matching benchmark allocates, when the file has
  no -benchmem data, or when nothing matches the regex (a rename must
  not silently drop the gate).

Self-test: bench_gate.py --self-test
  exercises the parser and every edge case above on synthetic files;
  CI runs it before trusting the gate.
"""

import math
import os
import re
import statistics
import sys
import tempfile

LINE = re.compile(r"^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op")
# -benchmem appends "B/op" and "allocs/op" columns to the same line.
ALLOCS = re.compile(r"\s([0-9.]+(?:e[+-]?\d+)?) allocs/op")
# A scaling variant: .../workers=N, with go test's -GOMAXPROCS suffix.
WORKERS = re.compile(r"^(Benchmark\S+?)/workers=(\d+)(?:-\d+)?$")


def medians(path):
    """Parse one bench file into {benchmark name: median ns/op}."""
    samples = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if m:
                samples.setdefault(m.group(1), []).append(float(m.group(2)))
    return {name: statistics.median(v) for name, v in samples.items()}


def alloc_medians(path):
    """Parse -benchmem allocs/op into {benchmark name: median allocs/op}.

    Empty when the file was produced without -benchmem; allocations are
    reported, never gated (see allocs_report).
    """
    samples = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if not m:
                continue
            a = ALLOCS.search(line)
            if a:
                samples.setdefault(m.group(1), []).append(float(a.group(1)))
    return {name: statistics.median(v) for name, v in samples.items()}


def allocs_report(base, head):
    """Print the allocs/op column for parsed alloc medians.

    Informational only (always returns 0): the ns/op geomean is the
    gate, but a hot path that starts allocating shows up here before it
    costs enough time to trip it. base may be empty (no -benchmem run,
    or standalone mode); entries missing on either side print one-sided.
    """
    names = sorted(set(base) | set(head))
    if not names:
        print("\nallocs/op: no -benchmem data found")
        return 0
    print("\nallocs/op (informational, never gated):")
    for name in names:
        if name in base and name in head:
            delta = head[name] - base[name]
            print(f"  {name}: {base[name]:.0f} -> {head[name]:.0f}"
                  f" allocs/op ({delta:+.0f})")
        elif name in head:
            print(f"  {name}: {head[name]:.0f} allocs/op (head only)")
        else:
            print(f"  {name}: {base[name]:.0f} allocs/op (base only)")
    return 0


def scaling_report(head):
    """Print the workers=N parallel-scaling report for parsed medians.

    Informational only (always returns 0): efficiency on a shared
    low-core CI runner says little, but the trend across PRs does.
    """
    groups = {}
    for name, med in head.items():
        m = WORKERS.match(name)
        if m:
            groups.setdefault(m.group(1), {})[int(m.group(2))] = med
    printed = False
    for prefix in sorted(groups):
        byw = groups[prefix]
        if 1 not in byw or len(byw) < 2 or byw[1] <= 0:
            continue
        if not printed:
            print("\nparallel scaling (informational, never gated):")
            printed = True
        t1 = byw[1]
        print(f"  {prefix}: workers=1 {t1:.0f} ns/op (baseline)")
        for w in sorted(byw):
            if w == 1 or byw[w] <= 0:
                continue
            speedup = t1 / byw[w]
            print(f"  {prefix}: workers={w} {byw[w]:.0f} ns/op"
                  f"  speedup {speedup:.2f}x  efficiency {speedup / w:.0%}")
    if not printed:
        print("\nparallel scaling: no .../workers=N benchmark groups found")
    return 0


def alloc_gate(pattern, head_path):
    """Gate matching benchmarks on exactly 0 median allocs/op.

    Returns the process exit code (0 pass, 1 fail). The gate is
    absolute — no base file — because the annotated hot paths promise
    allocation-freedom, not merely no-regression. Missing -benchmem
    data or an empty match set fails loudly: both would otherwise turn
    the gate into a no-op without anyone noticing.
    """
    rx = re.compile(pattern)
    allocs = alloc_medians(head_path)
    if not allocs:
        print(f"FAIL: {head_path} has no -benchmem allocs/op data to gate")
        return 1
    matched = sorted(name for name in allocs if rx.search(name))
    if not matched:
        print(f"FAIL: no benchmark matches alloc-gate pattern {pattern!r} "
              f"(a rename must not silently drop the gate)")
        return 1
    bad = []
    print(f"alloc gate (must be exactly 0 allocs/op): {len(matched)} benchmark(s)")
    for name in matched:
        verdict = "ok" if allocs[name] == 0 else "FAIL"
        print(f"  {name}: {allocs[name]:.0f} allocs/op {verdict}")
        if allocs[name] != 0:
            bad.append(name)
    if bad:
        print(f"FAIL: {len(bad)} hot-path benchmark(s) allocate; "
              f"the //mclint:hotpath contract requires 0 allocs/op")
        return 1
    print("PASS")
    return 0


def gate(base_path, head_path, threshold):
    """Run the gate; returns the process exit code (0 pass/skip, 1 fail)."""
    base = medians(base_path)
    head = medians(head_path)
    scaling_report(head)
    allocs_report(alloc_medians(base_path), alloc_medians(head_path))

    head_only = sorted(set(head) - set(base))
    base_only = sorted(set(base) - set(head))
    if head_only:
        print(f"NOTE: {len(head_only)} benchmark(s) only in head (new, not gated):")
        for name in head_only:
            print(f"  {name}")
    if base_only:
        print(f"WARNING: {len(base_only)} benchmark(s) only in base (missing from head):")
        for name in base_only:
            print(f"  {name}")

    if not base:
        print("SKIP: base has no benchmarks to gate against")
        return 0
    common = sorted(set(base) & set(head))
    if not common:
        print("FAIL: base and head share no benchmarks — head lost all gated coverage")
        return 1

    ratios = []
    for name in common:
        if base[name] <= 0 or head[name] <= 0:
            print(f"NOTE: skipping {name}: non-positive median (base {base[name]}, head {head[name]})")
            continue
        r = head[name] / base[name]
        ratios.append(r)
        print(f"{name}: {base[name]:.1f} -> {head[name]:.1f} ns/op ({r - 1:+.1%} vs base)")
    if not ratios:
        print("FAIL: no usable benchmark pairs after filtering non-positive medians")
        return 1
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    print(f"\ngeomean head/base time ratio: {geomean:.4f} over {len(ratios)} benchmarks")
    if geomean > threshold:
        print(f"FAIL: geomean regression exceeds {threshold - 1:.0%} budget")
        return 1
    print("PASS")
    return 0


def self_test():
    """Exercise the parser and every edge case on synthetic files."""
    def bench_file(lines):
        fd, path = tempfile.mkstemp(suffix=".txt")
        with os.fdopen(fd, "w") as f:
            f.write("\n".join(lines) + "\n")
        return path

    def run(base_lines, head_lines, threshold=1.10):
        base, head = bench_file(base_lines), bench_file(head_lines)
        try:
            return gate(base, head, threshold)
        finally:
            os.unlink(base)
            os.unlink(head)

    failures = []

    def check(name, got, want):
        status = "ok" if got == want else f"FAIL (exit {got}, want {want})"
        print(f"--- self-test: {name}: {status}")
        if got != want:
            failures.append(name)

    b = ["BenchmarkX/a 100 50.0 ns/op", "BenchmarkX/a 100 52.0 ns/op",
         "BenchmarkX/b 100 80.0 ns/op"]

    # 1. Unchanged medians pass.
    check("identical pass", run(b, b), 0)
    # 2. A clear regression fails.
    worse = ["BenchmarkX/a 100 90.0 ns/op", "BenchmarkX/b 100 150.0 ns/op"]
    check("regression fails", run(b, worse), 1)
    # 3. A benchmark only in head (new profile) is excluded, gate still passes.
    head_extra = b + ["BenchmarkX/new 100 10.0 ns/op"]
    check("head-only benchmark tolerated", run(b, head_extra), 0)
    # 4. Empty base (no benchmarks yet) skips, does not crash.
    check("empty base skips", run(["unrelated output"], b), 0)
    # 5. Non-empty base with empty intersection fails, does not pass silently.
    check("empty intersection fails", run(b, ["BenchmarkY/z 100 10.0 ns/op"]), 1)
    # 6. Improvement passes under the threshold.
    better = ["BenchmarkX/a 100 30.0 ns/op", "BenchmarkX/b 100 60.0 ns/op"]
    check("improvement passes", run(b, better), 0)
    # 7. Scientific-notation medians parse.
    sci = ["BenchmarkX/a 1000000 5.1e+01 ns/op", "BenchmarkX/b 100 8.0e+01 ns/op"]
    check("scientific notation parses", run(b, sci), 0)
    # 8. workers=N variants produce the scaling report without
    # changing the verdict — even when workers=4 scales badly.
    scaled = ["BenchmarkX/w/workers=1-8 100 100.0 ns/op",
              "BenchmarkX/w/workers=2-8 100 60.0 ns/op",
              "BenchmarkX/w/workers=4-8 100 110.0 ns/op"]
    check("scaling variants never gate", run(scaled, scaled), 0)
    # 9. The standalone scaling mode parses a file and always passes,
    # groups or not.
    scaled_file = bench_file(scaled)
    plain_file = bench_file(b)
    try:
        check("standalone scaling report", scaling_report(medians(scaled_file)), 0)
        check("standalone scaling, no groups", scaling_report(medians(plain_file)), 0)
    finally:
        os.unlink(scaled_file)
        os.unlink(plain_file)
    # 10. -benchmem columns parse into the allocs report and a large
    # alloc increase never changes the gate verdict — ns/op gates,
    # allocations only report.
    membase = ["BenchmarkX/a 100 50.0 ns/op 128 B/op 0 allocs/op",
               "BenchmarkX/b 100 80.0 ns/op 64 B/op 2 allocs/op"]
    memhead = ["BenchmarkX/a 100 50.0 ns/op 4096 B/op 37 allocs/op",
               "BenchmarkX/b 100 80.0 ns/op 64 B/op 2 allocs/op"]
    check("alloc increase never gates", run(membase, memhead), 0)
    mem_file = bench_file(memhead)
    plain_file = bench_file(b)
    try:
        parsed = alloc_medians(mem_file)
        got = 0 if parsed == {"BenchmarkX/a": 37.0, "BenchmarkX/b": 2.0} else 1
        check("benchmem columns parse", got, 0)
        check("no benchmem data tolerated", 0 if alloc_medians(plain_file) == {} else 1, 0)
        check("standalone allocs report", allocs_report({}, parsed), 0)
        check("allocs report, no data", allocs_report({}, {}), 0)
    finally:
        os.unlink(mem_file)
        os.unlink(plain_file)
    # 11. A benchmem head against a plain base prints one-sided, still
    # gated only on ns/op.
    check("mixed benchmem/plain pair", run(b, memhead), 0)
    # 12. The standalone alloc gate: zero passes, any allocation fails,
    # missing benchmem data fails, and an empty match set fails rather
    # than silently passing.
    zeroed = ["BenchmarkHot/park 100 50.0 ns/op 0 B/op 0 allocs/op",
              "BenchmarkHot/build 100 80.0 ns/op 0 B/op 0 allocs/op",
              "BenchmarkCold/setup 10 900.0 ns/op 4096 B/op 12 allocs/op"]
    leaky = ["BenchmarkHot/park 100 50.0 ns/op 153 B/op 1 allocs/op",
             "BenchmarkHot/build 100 80.0 ns/op 0 B/op 0 allocs/op"]
    zero_file, leak_file, plain_file = bench_file(zeroed), bench_file(leaky), bench_file(b)
    try:
        check("alloc gate: zero passes", alloc_gate(r"BenchmarkHot/", zero_file), 0)
        check("alloc gate: cold benchmarks outside the pattern ignored",
              alloc_gate(r"BenchmarkHot/", zero_file), 0)
        check("alloc gate: allocation fails", alloc_gate(r"BenchmarkHot/", leak_file), 1)
        check("alloc gate: no benchmem data fails", alloc_gate(r"BenchmarkHot/", plain_file), 1)
        check("alloc gate: empty match fails", alloc_gate(r"BenchmarkRenamed/", zero_file), 1)
    finally:
        os.unlink(zero_file)
        os.unlink(leak_file)
        os.unlink(plain_file)

    if failures:
        print(f"self-test FAILED: {', '.join(failures)}")
        return 1
    print("self-test PASSED")
    return 0


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        sys.exit(self_test())
    if len(sys.argv) == 3 and sys.argv[1] == "--scaling":
        scaling_report(medians(sys.argv[2]))
        sys.exit(allocs_report({}, alloc_medians(sys.argv[2])))
    if len(sys.argv) == 4 and sys.argv[1] == "--alloc-gate":
        sys.exit(alloc_gate(sys.argv[2], sys.argv[3]))
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 1.10
    sys.exit(gate(sys.argv[1], sys.argv[2], threshold))


if __name__ == "__main__":
    main()
