#!/usr/bin/env python3
"""Validate obs output files against the documented schemas.

CI smoke runs the CLIs with -obs/-obs-csv/-trace and feeds the outputs
here; a drift between what internal/obs emits and what README.md
documents fails the build instead of silently breaking downstream
tooling.

Usage: validate_obs.py [--jsonl FILE] [--csv FILE] [--trace FILE]
"""

import argparse
import json
import sys

CSV_HEADER = (
    "run,phase,interval,cycle,cycles,scope,ipc,retired,demand_misses,"
    "stall_load,stall_store,mshr,reads,writes,row_hits,row_misses,"
    "row_conflicts,row_hit_rate,forwarded,enqueue_failures,read_q,"
    "write_q,lat_mean,lat_p50,lat_p95,lat_p99,avg_read_latency,"
    "activates,precharges,bw_util,parks,wakes"
)

SAMPLE_KEYS = {
    "phase", "interval", "cycle", "cycles", "retired", "ipc",
    "demand_misses", "stall_load", "stall_store", "mshr", "controllers",
}

CTRL_KEYS = {
    "channel", "reads", "writes", "row_hits", "row_misses",
    "row_conflicts", "row_hit_rate", "forwarded", "enqueue_failures",
    "read_q", "write_q", "lat_mean", "lat_p50", "lat_p95", "lat_p99",
    "activates", "precharges", "bw_util", "parks", "wakes",
}

TRACE_KEYS = {"run", "cycle", "cmd", "channel", "rank", "bank", "row"}
TRACE_CMDS = {"ACT", "PRE", "RD", "WR"}

PHASES = {"warmup", "measure"}


def fail(path, lineno, msg):
    sys.exit(f"{path}:{lineno}: {msg}")


def lines(path):
    with open(path) as f:
        out = [(i, ln.rstrip("\n")) for i, ln in enumerate(f, 1) if ln.strip()]
    if not out:
        sys.exit(f"{path}: empty")
    return out


def validate_jsonl(path):
    for lineno, ln in lines(path):
        try:
            s = json.loads(ln)
        except json.JSONDecodeError as e:
            fail(path, lineno, f"bad JSON: {e}")
        missing = SAMPLE_KEYS - s.keys()
        if missing:
            fail(path, lineno, f"sample missing keys {sorted(missing)}")
        if s["phase"] not in PHASES:
            fail(path, lineno, f"bad phase {s['phase']!r}")
        if s["cycles"] <= 0:
            fail(path, lineno, "non-positive interval width")
        if not s["controllers"]:
            fail(path, lineno, "sample without controllers")
        for c in s["controllers"]:
            cmissing = CTRL_KEYS - c.keys()
            if cmissing:
                fail(path, lineno, f"controller missing keys {sorted(cmissing)}")
    print(f"{path}: {lineno} interval samples ok")


def validate_csv(path):
    rows = lines(path)
    lineno, header = rows[0]
    if header != CSV_HEADER:
        fail(path, lineno, f"header drifted from documented schema:\n got: {header}\nwant: {CSV_HEADER}")
    want = len(CSV_HEADER.split(","))
    scopes = set()
    for lineno, ln in rows[1:]:
        fields = ln.split(",")
        if len(fields) != want:
            fail(path, lineno, f"{len(fields)} fields, want {want}")
        scope = fields[5]
        if not (scope == "sys" or scope.startswith("mc") or scope.startswith("tenant")):
            fail(path, lineno, f"bad scope {scope!r}")
        if fields[1] not in PHASES:
            fail(path, lineno, f"bad phase {fields[1]!r}")
        scopes.add(scope)
    if "sys" not in scopes:
        sys.exit(f"{path}: no sys rows")
    if not any(s.startswith("mc") for s in scopes):
        sys.exit(f"{path}: no per-controller rows")
    print(f"{path}: {len(rows) - 1} rows ok, scopes: {sorted(scopes)}")


def validate_trace(path):
    cmds_seen = set()
    for lineno, ln in lines(path):
        try:
            ev = json.loads(ln)
        except json.JSONDecodeError as e:
            fail(path, lineno, f"bad JSON: {e}")
        missing = TRACE_KEYS - ev.keys()
        if missing:
            fail(path, lineno, f"trace event missing keys {sorted(missing)}")
        if ev["cmd"] not in TRACE_CMDS:
            fail(path, lineno, f"bad command {ev['cmd']!r}")
        if "tenant" in ev and not isinstance(ev["tenant"], int):
            fail(path, lineno, "tenant is not an integer")
        cmds_seen.add(ev["cmd"])
    if "ACT" not in cmds_seen:
        sys.exit(f"{path}: no activates traced")
    if not cmds_seen & {"RD", "WR"}:
        sys.exit(f"{path}: no column accesses traced")
    print(f"{path}: {lineno} trace events ok, commands: {sorted(cmds_seen)}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--jsonl")
    ap.add_argument("--csv")
    ap.add_argument("--trace")
    args = ap.parse_args()
    if not (args.jsonl or args.csv or args.trace):
        ap.error("nothing to validate")
    if args.jsonl:
        validate_jsonl(args.jsonl)
    if args.csv:
        validate_csv(args.csv)
    if args.trace:
        validate_trace(args.trace)


if __name__ == "__main__":
    main()
