module cloudmc

go 1.24
