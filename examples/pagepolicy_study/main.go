// Page-policy study: compare the six page-management policies on one
// workload, including the static open/close policies the paper uses as
// context for §4.2, and report the activation-reuse evidence behind
// Figure 8.
//
//	go run ./examples/pagepolicy_study [acronym]
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmc/internal/core"
	"cloudmc/internal/workload"
)

func main() {
	acr := "TPCH-Q6"
	if len(os.Args) > 1 {
		acr = os.Args[1]
	}
	prof, err := workload.ByAcronym(acr)
	if err != nil {
		log.Fatal(err)
	}

	policies := []string{"OpenAdaptive", "CloseAdaptive", "Open", "Close", "RBPP", "ABPP"}
	var base core.Metrics
	fmt.Printf("%s under six page-management policies (normalized to OpenAdaptive):\n\n", prof.Name)
	fmt.Printf("%-14s %8s %8s %10s %12s %12s\n",
		"policy", "IPC", "latency", "row-hit%", "policy-PRE", "conflict-PRE")
	for i, pol := range policies {
		cfg := core.DefaultConfig(prof)
		cfg.PagePolicy = pol
		cfg.MeasureCycles = 400_000
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := sys.Run()
		if i == 0 {
			base = m
			fmt.Printf("(baseline: %.1f%% of row activations are single-access — paper Figure 8 reports 77-90%%)\n\n",
				100*m.SingleAccessFrac)
		}
		fmt.Printf("%-14s %8.3f %8.3f %10.1f %12d %12d\n",
			pol,
			m.UserIPC/base.UserIPC,
			m.AvgReadLatency/base.AvgReadLatency,
			100*m.RowHitRate,
			m.PolicyCloses,
			m.ConflictCloses)
	}
	fmt.Println("\npolicy-PRE: precharges chosen by the policy; conflict-PRE: forced by a waiting request.")
}
