// Isolation study walkthrough: take the DoS scenario of the
// colocation study — a well-behaved Data Serving tenant sharing the
// machine with a memory-hog adversary — and turn on the mitigation
// levers one at a time:
//
//   - banks: the address map carves the rank x bank index space into
//     per-tenant slices, so the hog can never open or close a row in
//     the victim's banks (the bank/row-conflict channel of Zhang et
//     al.'s memory DoS attacks is closed by construction);
//   - ways: the shared LLC's ways are split between the tenants, so
//     the hog's flood cannot flush the victim's working set;
//   - banks+ways: both.
//
// It also swaps the scheduler from throughput-first FR-FCFS to the
// SLO-targeting QoS policy, which boosts any tenant whose estimated
// memory slowdown is projected above a configured budget. The output
// is the mitigation table: victim slowdown under every (scheduler,
// isolation) cell.
//
//	go run ./examples/isolation_study
package main

import (
	"fmt"
	"log"

	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

const (
	measureCycles = 150_000
	maxSlowdown   = 1.2 // the operator's per-tenant slowdown budget
)

// scalePolicies shrinks the ATLAS/QoS monitoring quanta to the
// compressed measurement window, exactly as the experiment harness
// does.
func scalePolicies(cfg *core.Config) {
	quantum := uint64(measureCycles / 10)
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles: quantum, Alpha: 0.875,
		StarvationThreshold: quantum / 8, ScanDepth: 2,
	}
	qos := sched.DefaultQoSConfig()
	qos.QuantumCycles = quantum
	qos.StarvationThreshold = quantum / 8
	qos.MaxSlowdownSLO = maxSlowdown
	cfg.SchedOpts.QoS = qos
}

func main() {
	mix := tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)

	fmt.Printf("victim slowdown in %s (SLO budget %.1fx):\n\n", mix.Name, maxSlowdown)
	fmt.Printf("%-10s %-12s %8s %8s %10s %10s\n", "scheduler", "isolation", "DS slow", "HOG slow", "DS lat", "DS row-hit")
	for _, kind := range []sched.Kind{sched.FRFCFS, sched.QoS} {
		// Solo baselines: each tenant alone on its own cores with the
		// whole memory system to itself, under the same scheduler —
		// the same per-scheduler baseline experiment.RunSolo uses, so
		// this table is reproducible with cmd/mcmix.
		solo := make([]float64, len(mix.Tenants))
		for i, sp := range mix.Tenants {
			cfg := core.DefaultConfig(sp.Adjusted())
			cfg.Scheduler = kind
			cfg.MeasureCycles = measureCycles
			scalePolicies(&cfg)
			sys, err := core.NewSystem(cfg)
			if err != nil {
				log.Fatal(err)
			}
			solo[i] = sys.Run().UserIPC
		}
		for _, iso := range core.Isolations {
			cfg := core.DefaultMixConfig(mix)
			cfg.Scheduler = kind
			cfg.Isolation = iso
			cfg.MeasureCycles = measureCycles
			scalePolicies(&cfg)
			sys, err := core.NewSystem(cfg)
			if err != nil {
				log.Fatal(err)
			}
			m := sys.Run()
			shared := make([]float64, len(m.Tenants))
			for i, tm := range m.Tenants {
				shared[i] = tm.IPC
			}
			f := tenant.ComputeFairness(solo, shared)
			verdict := ""
			if f.Slowdowns[0] <= maxSlowdown {
				verdict = "  <- meets SLO"
			}
			fmt.Printf("%-10s %-12s %8.3f %8.3f %9.0fc %9.1f%%%s\n",
				kind, iso, f.Slowdowns[0], f.Slowdowns[1],
				m.Tenants[0].AvgReadLatency, 100*m.Tenants[0].RowHitRate, verdict)
		}
		fmt.Println()
	}

	fmt.Println("Bank partitioning closes the row-conflict channel (watch the")
	fmt.Println("victim's latency collapse and its row-hit rate recover); way")
	fmt.Println("partitioning keeps the hog out of the victim's LLC share; the")
	fmt.Println("QoS scheduler meets the slowdown budget even with no hardware")
	fmt.Println("isolation at all, at the cost of hog throughput. Sweep every")
	fmt.Println("mix with `go run ./cmd/mcmix -isolation all -scheds FR-FCFS,QoS`.")
}
