// Channel sweep: reproduce the §4.3 experiment for one workload — vary
// the memory channel count across 1/2/4 and compare all four address
// mapping schemes at each point.
//
//	go run ./examples/channel_sweep [acronym]
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmc/internal/addrmap"
	"cloudmc/internal/core"
	"cloudmc/internal/workload"
)

func main() {
	acr := "TPCH-Q17"
	if len(os.Args) > 1 {
		acr = os.Args[1]
	}
	prof, err := workload.ByAcronym(acr)
	if err != nil {
		log.Fatal(err)
	}

	run := func(channels int, scheme addrmap.Scheme) core.Metrics {
		cfg := core.DefaultConfig(prof)
		cfg.Channels = channels
		cfg.Mapping = scheme
		cfg.MeasureCycles = 300_000
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return sys.Run()
	}

	base := run(1, addrmap.RoRaBaCoCh)
	fmt.Printf("%s: channel/mapping sweep (IPC normalized to 1-channel RoRaBaCoCh)\n\n", prof.Name)
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "", "IPC", "latency", "row-hit%", "bandwidth%")
	fmt.Printf("%-14s %8.3f %10.1f %10.1f %10.1f   <- baseline\n",
		"1ch RoRaBaCoCh",
		1.0, base.AvgReadLatency, 100*base.RowHitRate, 100*base.BandwidthUtil)
	for _, ch := range []int{2, 4} {
		for _, scheme := range addrmap.Schemes {
			m := run(ch, scheme)
			fmt.Printf("%dch %-10s %7.3f %10.1f %10.1f %10.1f\n",
				ch, scheme,
				m.UserIPC/base.UserIPC,
				m.AvgReadLatency,
				100*m.RowHitRate,
				100*m.BandwidthUtil)
		}
	}
	fmt.Println("\npaper §4.3: decision-support gains ~19% at 4 channels; scale-out ~1.7%.")
}
