// Scheduler comparison: run one workload across all five memory
// scheduling algorithms the paper studies (§4.1) and print the
// normalized comparison — a single-workload slice of Figures 1-3.
//
//	go run ./examples/scheduler_comparison [acronym]
//
// The optional argument is a Table 1 acronym (default MR, whose
// mapper/reducer imbalance is what exposes ATLAS's quantum unfairness).
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

func main() {
	acr := "MR"
	if len(os.Args) > 1 {
		acr = os.Args[1]
	}
	prof, err := workload.ByAcronym(acr)
	if err != nil {
		log.Fatal(err)
	}

	var base core.Metrics
	fmt.Printf("%s under the five schedulers (normalized to FR-FCFS):\n\n", prof.Name)
	fmt.Printf("%-12s %8s %8s %8s %10s\n", "scheduler", "IPC", "latency", "row-hit%", "fairness")
	for _, kind := range []sched.Kind{sched.FRFCFS, sched.FCFSBanks, sched.PARBS, sched.ATLAS, sched.RL} {
		cfg := core.DefaultConfig(prof)
		cfg.Scheduler = kind
		cfg.MeasureCycles = 400_000
		// Scale ATLAS's 10M-cycle quantum to the compressed window
		// (see DESIGN.md on time compression).
		cfg.SchedOpts.ATLAS = sched.ATLASConfig{
			QuantumCycles: cfg.MeasureCycles / 10, Alpha: 0.875,
			StarvationThreshold: cfg.MeasureCycles / 80, ScanDepth: 1,
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := sys.Run()
		if kind == sched.FRFCFS {
			base = m
		}
		fmt.Printf("%-12s %8.3f %8.3f %8.1f %10.2f\n",
			kind,
			m.UserIPC/base.UserIPC,
			m.AvgReadLatency/base.AvgReadLatency,
			100*m.RowHitRate,
			m.IPCDisparity())
	}
	fmt.Println("\nfairness = min/max per-core IPC; low values mean some cores starve.")
}
