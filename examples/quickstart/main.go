// Quickstart: simulate the paper's baseline system (Table 2) running
// the Data Serving workload and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cloudmc/internal/core"
	"cloudmc/internal/workload"
)

func main() {
	// The baseline: 16 in-order cores, 32KB L1s, 4MB shared L2,
	// FR-FCFS scheduling, open-adaptive paging, one DDR3-1600 channel.
	cfg := core.DefaultConfig(workload.DataServing())
	cfg.MeasureCycles = 500_000

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := sys.Run()

	fmt.Printf("workload:               %s\n", cfg.Profile.Name)
	fmt.Printf("user IPC (aggregate):   %.3f\n", m.UserIPC)
	fmt.Printf("avg memory latency:     %.1f core cycles\n", m.AvgReadLatency)
	fmt.Printf("row-buffer hit rate:    %.1f%%\n", 100*m.RowHitRate)
	fmt.Printf("L2 MPKI:                %.2f\n", m.MPKI)
	fmt.Printf("read queue occupancy:   %.2f\n", m.AvgReadQ)
	fmt.Printf("write queue occupancy:  %.2f\n", m.AvgWriteQ)
	fmt.Printf("bandwidth utilization:  %.1f%%\n", 100*m.BandwidthUtil)
	fmt.Printf("1-access activations:   %.1f%%\n", 100*m.SingleAccessFrac)
}
