// Colocation study walkthrough: put a well-behaved tenant (Data
// Serving) on half the machine and a memory-hog adversary on the other
// half, then watch what each scheduler does to the victim.
//
// The paper evaluates every workload running alone; multi-tenant
// clouds colocate them, and a hostile neighbor can inflate a victim's
// memory latency by an order of magnitude (Zhang et al., Memory DoS
// Attacks in Multi-tenant Clouds). This example runs the same mix
// under FR-FCFS (throughput-first, hog-friendly) and ATLAS
// (least-attained-service, hog-resistant) and prints the fairness
// verdict.
//
//	go run ./examples/colocation_study
package main

import (
	"fmt"
	"log"

	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

const measureCycles = 300_000

// scaleATLAS shrinks the paper's 10M-cycle ATLAS quantum to the
// compressed measurement window (about ten quanta per run), exactly as
// the experiment harness does; with the stock quantum the ranking
// would never update inside a short run.
func scaleATLAS(cfg *core.Config) {
	quantum := uint64(measureCycles / 10)
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles: quantum, Alpha: 0.875,
		StarvationThreshold: quantum / 8, ScanDepth: 2,
	}
}

func main() {
	// A 16-core machine, split 8/8 between a victim and an adversary.
	mix := tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)

	for _, kind := range []sched.Kind{sched.FRFCFS, sched.ATLAS} {
		// 1. Solo baselines: each tenant alone on its own cores, with
		//    the whole memory system to itself.
		solo := make([]float64, len(mix.Tenants))
		for i, sp := range mix.Tenants {
			cfg := core.DefaultConfig(sp.Adjusted())
			cfg.Scheduler = kind
			cfg.MeasureCycles = measureCycles
			scaleATLAS(&cfg)
			sys, err := core.NewSystem(cfg)
			if err != nil {
				log.Fatal(err)
			}
			solo[i] = sys.Run().UserIPC
		}

		// 2. The colocation run: same machine, both tenants contending
		//    for the shared L2 and the memory controller.
		cfg := core.DefaultMixConfig(mix)
		cfg.Scheduler = kind
		cfg.MeasureCycles = measureCycles
		scaleATLAS(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := sys.Run()

		// 3. Fairness: slowdown vs solo, weighted/harmonic speedup.
		shared := make([]float64, len(m.Tenants))
		for i, tm := range m.Tenants {
			shared[i] = tm.IPC
		}
		f := tenant.ComputeFairness(solo, shared)

		fmt.Printf("%s scheduling %s:\n", kind, mix.Name)
		for i, tm := range m.Tenants {
			fmt.Printf("  %-4s ipc %.3f (solo %.3f, slowdown %.2fx)  latency %.0f cycles  row-hit %.1f%%\n",
				tm.Name, tm.IPC, solo[i], f.Slowdowns[i], tm.AvgReadLatency, 100*tm.RowHitRate)
		}
		fmt.Printf("  weighted speedup %.3f / %d, harmonic %.3f, max slowdown %.2fx\n\n",
			f.WeightedSpeedup, len(mix.Tenants), f.HarmonicSpeedup, f.MaxSlowdown)
	}

	fmt.Println("FR-FCFS rewards the hog's row locality-free flood with equal")
	fmt.Println("service; ATLAS ranks tenants by attained service, so the hog's")
	fmt.Println("appetite demotes it and the victim claws back its throughput.")
	fmt.Println("Run `go run ./cmd/mcmix` for the full mix x scheduler sweep.")
}
