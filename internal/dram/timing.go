package dram

import "fmt"

// Timing holds the DRAM timing parameters, all in controller clock
// cycles. Field names follow the JEDEC parameters cited in the paper's
// Table 2.
type Timing struct {
	// CAS is the read column-access latency (tCAS/tCL): cycles from a
	// READ command to the first data beat.
	CAS int
	// CWL is the write column-access latency: cycles from a WRITE
	// command to the first data beat.
	CWL int
	// RCD is the ACTIVATE-to-column-command delay (tRCD).
	RCD int
	// RP is the PRECHARGE-to-ACTIVATE delay (tRP).
	RP int
	// RAS is the minimum ACTIVATE-to-PRECHARGE delay (tRAS).
	RAS int
	// RC is the minimum ACTIVATE-to-ACTIVATE delay for one bank (tRC).
	RC int
	// WR is the write recovery time: last write data beat to PRECHARGE
	// (tWR).
	WR int
	// WTR is the write-to-read turnaround: last write data beat to the
	// next READ command on the channel (tWTR).
	WTR int
	// RTP is the READ-to-PRECHARGE delay (tRTP).
	RTP int
	// RRD is the ACTIVATE-to-ACTIVATE delay between different banks of
	// the same rank (tRRD).
	RRD int
	// FAW is the four-activate window per rank (tFAW): at most four
	// ACTIVATEs may issue to one rank in any window of this length.
	FAW int
	// Burst is the number of cycles one block transfer occupies the
	// data bus (BL8 on DDR3: 4 bus cycles).
	Burst int
	// RTW is the extra bus-turnaround gap inserted between the end of
	// read data and the start of write data on the same channel.
	RTW int
}

// DDR3_1600 returns the paper's Table 2 timing parameters, expressed
// in DRAM bus cycles at 800MHz:
//
//	tCAS-tRCD-tRP-tRAS = 11-11-11-28
//	tRC-tWR-tWTR-tRTP  = 39-12-6-6
//	tRRD-tFAW          = 5-24
//
// CWL=8 and Burst=4 (BL8) are standard DDR3-1600 values; RTW=2 is the
// conventional read-to-write turnaround bubble.
func DDR3_1600() Timing {
	return Timing{
		CAS:   11,
		CWL:   8,
		RCD:   11,
		RP:    11,
		RAS:   28,
		RC:    39,
		WR:    12,
		WTR:   6,
		RTP:   6,
		RRD:   5,
		FAW:   24,
		Burst: 4,
		RTW:   2,
	}
}

// ScaleFrom converts a timing set expressed in DRAM bus cycles into
// controller cycles, where the controller runs num/den times faster
// than the DRAM bus. Each parameter is rounded up (conservative: never
// issues a command earlier than the datasheet allows).
//
// The baseline system runs 2GHz cores against an 800MHz DDR3 bus, so
// the simulator uses ScaleFrom(5, 2): one DRAM cycle is 2.5 CPU
// cycles.
func (t Timing) ScaleFrom(num, den int) Timing {
	if num <= 0 || den <= 0 {
		panic(fmt.Sprintf("dram: invalid clock ratio %d/%d", num, den))
	}
	ceil := func(v int) int { return (v*num + den - 1) / den }
	return Timing{
		CAS:   ceil(t.CAS),
		CWL:   ceil(t.CWL),
		RCD:   ceil(t.RCD),
		RP:    ceil(t.RP),
		RAS:   ceil(t.RAS),
		RC:    ceil(t.RC),
		WR:    ceil(t.WR),
		WTR:   ceil(t.WTR),
		RTP:   ceil(t.RTP),
		RRD:   ceil(t.RRD),
		FAW:   ceil(t.FAW),
		Burst: ceil(t.Burst),
		RTW:   ceil(t.RTW),
	}
}

// Validate reports an error if any parameter is non-positive or the
// set is internally inconsistent.
func (t Timing) Validate() error {
	fields := []struct {
		name string
		v    int
	}{
		{"CAS", t.CAS}, {"CWL", t.CWL}, {"RCD", t.RCD}, {"RP", t.RP},
		{"RAS", t.RAS}, {"RC", t.RC}, {"WR", t.WR}, {"WTR", t.WTR},
		{"RTP", t.RTP}, {"RRD", t.RRD}, {"FAW", t.FAW}, {"Burst", t.Burst},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("dram: timing %s = %d must be positive", f.name, f.v)
		}
	}
	if t.RTW < 0 {
		return fmt.Errorf("dram: timing RTW = %d must be non-negative", t.RTW)
	}
	if t.RC < t.RAS {
		return fmt.Errorf("dram: tRC (%d) must be >= tRAS (%d)", t.RC, t.RAS)
	}
	return nil
}
