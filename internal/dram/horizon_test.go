package dram

import (
	"testing"
	"testing/quick"
)

// TestEarliestIssueExact verifies the event-horizon contract on which
// the fast-forward engine rests: for any reachable channel state and
// any candidate command, EarliestIssue returns exactly the first cycle
// CanIssue holds — never later (a skipped legal cycle would change
// scheduling) and never earlier (a late wake-up would too).
func TestEarliestIssueExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		c := testChannel()
		check := func(now uint64, cmd Command) bool {
			at := c.EarliestIssue(cmd)
			if at == Never {
				// Must not be legal for a long while without a state
				// change (sample a window).
				for tt := now; tt < now+400; tt += 7 {
					if c.CanIssue(tt, cmd) {
						return false
					}
				}
				return true
			}
			probe := at
			if probe < now {
				probe = now
			}
			if !c.CanIssue(probe, cmd) {
				return false
			}
			if probe > now && probe > 0 && c.CanIssue(probe-1, cmd) {
				return false
			}
			return true
		}
		for now := uint64(0); now < 2000; now++ {
			// Probe a few random candidates against the current state.
			for i := 0; i < 3; i++ {
				kind := CommandKind(1 + next(4))
				l := loc(next(2), next(4), next(16), next(32))
				if (kind == CmdRead || kind == CmdWrite) && next(2) == 0 {
					if row, open := c.OpenRow(l.Rank, l.Bank); open {
						l.Row = row
					}
				}
				if !check(now, Command{Kind: kind, Loc: l}) {
					return false
				}
			}
			// Advance the state with a random legal command.
			kind := CommandKind(1 + next(4))
			l := loc(next(2), next(4), next(16), next(32))
			if kind == CmdRead || kind == CmdWrite {
				if row, open := c.OpenRow(l.Rank, l.Bank); open {
					l.Row = row
				}
			}
			cmd := Command{Kind: kind, Loc: l}
			if c.CanIssue(now, cmd) {
				c.Issue(now, cmd)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestBankNextEventAccessors pins the per-bank horizon methods to the
// legality predicates they mirror.
func TestBankNextEventAccessors(t *testing.T) {
	c := testChannel()
	l := loc(0, 0, 7, 0)
	b := c.Bank(0, 0)

	if got := b.NextActivateAt(); got != 0 {
		t.Fatalf("idle bank NextActivateAt = %d, want 0", got)
	}
	if got := b.NextColumnAt(7); got != Never {
		t.Fatalf("idle bank NextColumnAt = %d, want Never", got)
	}
	if got := b.NextPrechargeAt(); got != Never {
		t.Fatalf("idle bank NextPrechargeAt = %d, want Never", got)
	}

	c.Issue(0, Command{Kind: CmdActivate, Loc: l})
	if got, want := b.NextColumnAt(7), uint64(c.Tim.RCD); got != want {
		t.Fatalf("NextColumnAt after ACT = %d, want tRCD=%d", got, want)
	}
	if got := b.NextColumnAt(8); got != Never {
		t.Fatalf("NextColumnAt other row = %d, want Never", got)
	}
	if got, want := b.NextPrechargeAt(), uint64(c.Tim.RAS); got != want {
		t.Fatalf("NextPrechargeAt after ACT = %d, want tRAS=%d", got, want)
	}
	if got := b.NextActivateAt(); got != Never {
		t.Fatalf("active bank NextActivateAt = %d, want Never", got)
	}
}

// TestRankNextActivateAt pins the rank-level tRRD/tFAW horizon.
func TestRankNextActivateAt(t *testing.T) {
	c := testChannel()
	r := &c.Ranks[0]
	if got := r.NextActivateAt(&c.Tim); got != 0 {
		t.Fatalf("fresh rank NextActivateAt = %d, want 0", got)
	}
	now := uint64(0)
	for bank := 0; bank < 4; bank++ {
		cmd := Command{Kind: CmdActivate, Loc: loc(0, bank, 1, 0)}
		at := c.EarliestIssue(cmd)
		if at < now {
			at = now
		}
		c.Issue(at, cmd)
		now = at + 1
	}
	// Four activates issued: the window constraint must now bind.
	got := r.NextActivateAt(&c.Tim)
	if want := r.actTimes[0] + uint64(c.Tim.FAW); got != want {
		t.Fatalf("NextActivateAt after 4 ACTs = %d, want tFAW bound %d", got, want)
	}
}

// TestConstraintEpochs pins the invalidation contract of the horizon
// caches layered on top of this package: every command bumps exactly
// the epochs whose constraint families it can move — its bank's epoch
// always, the rank activation epoch only on ACTIVATE (tRRD/tFAW), the
// channel data epoch only on column accesses (data bus, tWTR, the
// read-to-write bubble) — and read-only queries bump nothing.
func TestConstraintEpochs(t *testing.T) {
	c := testChannel()
	loc := Location{Channel: 0, Rank: 0, Bank: 1, Row: 7}
	other := c.Bank(1, 0)

	snap := func() (bank, rank, otherBank, otherRank, data uint32) {
		return c.Bank(0, 1).Epoch(), c.Ranks[0].ActEpoch(),
			other.Epoch(), c.Ranks[1].ActEpoch(), c.DataEpoch()
	}

	// Queries must not disturb any epoch.
	b0, r0, ob0, or0, d0 := snap()
	c.CanIssue(0, Command{Kind: CmdActivate, Loc: loc})
	c.EarliestIssue(Command{Kind: CmdRead, Loc: loc})
	if b1, r1, ob1, or1, d1 := snap(); b1 != b0 || r1 != r0 || ob1 != ob0 || or1 != or0 || d1 != d0 {
		t.Fatal("read-only queries moved a constraint epoch")
	}

	now := c.EarliestIssue(Command{Kind: CmdActivate, Loc: loc})
	c.Issue(now, Command{Kind: CmdActivate, Loc: loc})
	b1, r1, ob1, or1, d1 := snap()
	if b1 != b0+1 || r1 != r0+1 {
		t.Fatalf("ACTIVATE: bank %d->%d rank %d->%d, want both +1", b0, b1, r0, r1)
	}
	if ob1 != ob0 || or1 != or0 || d1 != d0 {
		t.Fatal("ACTIVATE leaked into another bank/rank or the data epoch")
	}

	now = c.EarliestIssue(Command{Kind: CmdRead, Loc: loc})
	c.Issue(now, Command{Kind: CmdRead, Loc: loc})
	b2, r2, _, _, d2 := snap()
	if b2 != b1+1 || d2 != d1+1 || r2 != r1 {
		t.Fatalf("READ: bank %d->%d data %d->%d rank %d->%d, want bank+1 data+1 rank unchanged", b1, b2, d1, d2, r1, r2)
	}

	now = c.EarliestIssue(Command{Kind: CmdWrite, Loc: loc})
	c.Issue(now, Command{Kind: CmdWrite, Loc: loc})
	b3, _, _, _, d3 := snap()
	if b3 != b2+1 || d3 != d2+1 {
		t.Fatalf("WRITE: bank %d->%d data %d->%d, want both +1", b2, b3, d2, d3)
	}

	now = c.EarliestIssue(Command{Kind: CmdPrecharge, Loc: loc})
	c.Issue(now, Command{Kind: CmdPrecharge, Loc: loc})
	b4, r4, _, _, d4 := snap()
	if b4 != b3+1 || d4 != d3 || r4 != r2 {
		t.Fatalf("PRECHARGE: bank %d->%d data %d->%d rank %d->%d, want bank+1 only", b3, b4, d3, d4, r2, r4)
	}
}
