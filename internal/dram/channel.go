package dram

import "fmt"

// Stats accumulates device-level statistics for one channel.
type Stats struct {
	// Activates, Precharges, Reads, Writes count issued commands.
	Activates  uint64
	Precharges uint64
	Reads      uint64
	Writes     uint64
	// DataBusBusy is the number of cycles the data bus carried data;
	// DataBusBusy / elapsed cycles is the bandwidth utilization the
	// paper reports in Figure 7.
	DataBusBusy uint64
	// ActivationReuse[i] counts row activations that received exactly
	// i column accesses before closing (i saturates at the last
	// bucket). Bucket 1 / sum(buckets) is the single-access activation
	// fraction the paper reports in Figure 8.
	ActivationReuse [maxReuseBuckets]uint64
}

const maxReuseBuckets = 65

// recordReuse files one closed activation that served n accesses.
func (s *Stats) recordReuse(n int) {
	if n >= maxReuseBuckets {
		n = maxReuseBuckets - 1
	}
	s.ActivationReuse[n]++
}

// SingleAccessFraction returns the fraction of activations that
// received exactly one column access, and the total activation count
// it was computed over. Activations closed with zero accesses (e.g. a
// conflict precharge before any column command) are excluded, matching
// the paper's definition of "accessed only once before closure".
func (s *Stats) SingleAccessFraction() (frac float64, total uint64) {
	for i := 1; i < maxReuseBuckets; i++ {
		total += s.ActivationReuse[i]
	}
	if total == 0 {
		return 0, 0
	}
	return float64(s.ActivationReuse[1]) / float64(total), total
}

// Channel is the device model of one memory channel: its ranks and
// banks, the shared command bus (one command per cycle) and the shared
// data bus (one burst at a time, with turnaround penalties).
type Channel struct {
	ID    int
	Geo   Geometry
	Tim   Timing
	Ranks []Rank
	Stats Stats

	lastCmdAt  uint64
	anyCmd     bool
	dataFreeAt uint64 // cycle at which the data bus becomes free

	// lastWriteDataEnd feeds the tWTR write-to-read constraint;
	// lastReadDataEnd feeds the read-to-write turnaround.
	lastWriteDataEnd uint64
	lastReadDataEnd  uint64

	// dataEpoch counts column accesses on this channel. The
	// channel-level data-bus constraints (dataFreeAt, tWTR, the
	// read-to-write bubble) move only on a READ or WRITE, so cached
	// column horizons stamped with it revalidate by comparison. The
	// command bus deliberately has no epoch: its constraint is
	// lastCmdAt+1, which never exceeds the current cycle of a parked
	// controller and is therefore always absorbed by the horizon's
	// now+1 clamp.
	dataEpoch uint32
}

// NewChannel returns a channel with all banks precharged.
func NewChannel(id int, geo Geometry, tim Timing) *Channel {
	ranks := make([]Rank, geo.Ranks)
	for i := range ranks {
		ranks[i] = newRank(geo.Banks)
	}
	return &Channel{ID: id, Geo: geo, Tim: tim, Ranks: ranks}
}

// Bank returns the addressed bank.
func (c *Channel) Bank(rank, bank int) *Bank {
	return &c.Ranks[rank].Banks[bank]
}

// DataEpoch returns the channel's data-bus constraint epoch (see
// dataEpoch).
func (c *Channel) DataEpoch() uint32 { return c.dataEpoch }

// OpenRow returns the open row of the addressed bank and whether any
// row is open.
func (c *Channel) OpenRow(rank, bank int) (int, bool) {
	b := c.Bank(rank, bank)
	if b.State != BankActive {
		return 0, false
	}
	return b.OpenRow, true
}

// commandBusFree reports whether the command bus can carry a command
// at cycle now (one command per cycle).
func (c *Channel) commandBusFree(now uint64) bool {
	return !c.anyCmd || now > c.lastCmdAt
}

// CanIssue reports whether cmd is legal at cycle now under all bank,
// rank and bus constraints.
func (c *Channel) CanIssue(now uint64, cmd Command) bool {
	if cmd.Kind == CmdNop {
		return true
	}
	if !c.commandBusFree(now) {
		return false
	}
	if cmd.Loc.Channel != c.ID {
		return false
	}
	rank := &c.Ranks[cmd.Loc.Rank]
	bank := &rank.Banks[cmd.Loc.Bank]
	switch cmd.Kind {
	case CmdActivate:
		return bank.CanActivate(now) && rank.CanActivate(now, &c.Tim)
	case CmdPrecharge:
		return bank.CanPrecharge(now)
	case CmdRead:
		if !bank.CanColumn(now, cmd.Loc.Row) {
			return false
		}
		// tWTR: a read command must wait for the write-to-read
		// turnaround after the last write data beat.
		if now < c.lastWriteDataEnd+uint64(c.Tim.WTR) {
			return false
		}
		return now+uint64(c.Tim.CAS) >= c.dataFreeAt
	case CmdWrite:
		if !bank.CanColumn(now, cmd.Loc.Row) {
			return false
		}
		start := now + uint64(c.Tim.CWL)
		if start < c.dataFreeAt {
			return false
		}
		// Read-to-write turnaround bubble on the data bus.
		return start >= c.lastReadDataEnd+uint64(c.Tim.RTW)
	default:
		return false
	}
}

// EarliestIssue returns the smallest cycle t with CanIssue(t, cmd),
// assuming no other command is issued in the meantime, or Never when
// cmd cannot become legal without an intervening state change (e.g. a
// column access to a row that is not open). Every timing constraint in
// CanIssue is an absolute-cycle threshold frozen at the last Issue, so
// the result is exact, not a bound — the fast-forward engine relies on
// both directions: no wake-up is late, and no legal cycle is skipped.
func (c *Channel) EarliestIssue(cmd Command) uint64 {
	if cmd.Kind == CmdNop {
		return 0
	}
	if cmd.Loc.Channel != c.ID {
		return Never
	}
	var at uint64
	if c.anyCmd {
		at = c.lastCmdAt + 1
	}
	rank := &c.Ranks[cmd.Loc.Rank]
	bank := &rank.Banks[cmd.Loc.Bank]
	switch cmd.Kind {
	case CmdActivate:
		b := bank.NextActivateAt()
		if b == Never {
			return Never
		}
		at = max(at, b)
		at = max(at, rank.NextActivateAt(&c.Tim))
	case CmdPrecharge:
		b := bank.NextPrechargeAt()
		if b == Never {
			return Never
		}
		at = max(at, b)
	case CmdRead:
		b := bank.NextColumnAt(cmd.Loc.Row)
		if b == Never {
			return Never
		}
		at = max(at, b)
		at = max(at, c.lastWriteDataEnd+uint64(c.Tim.WTR))
		// now + CAS >= dataFreeAt.
		if free := c.dataFreeAt; free > uint64(c.Tim.CAS) {
			at = max(at, free-uint64(c.Tim.CAS))
		}
	case CmdWrite:
		b := bank.NextColumnAt(cmd.Loc.Row)
		if b == Never {
			return Never
		}
		at = max(at, b)
		// now + CWL >= dataFreeAt.
		if free := c.dataFreeAt; free > uint64(c.Tim.CWL) {
			at = max(at, free-uint64(c.Tim.CWL))
		}
		// now + CWL >= lastReadDataEnd + RTW.
		if rtw := c.lastReadDataEnd + uint64(c.Tim.RTW); rtw > uint64(c.Tim.CWL) {
			at = max(at, rtw-uint64(c.Tim.CWL))
		}
	default:
		return Never
	}
	return at
}

// Issue applies cmd at cycle now. For CmdRead it returns the cycle at
// which the requested data has fully arrived; for other commands the
// returned cycle is when the command's effect completes (ACT: row
// usable; PRE: bank usable; WR: data written). Issue panics if the
// command is illegal — callers must check CanIssue first; the
// controller is required to be timing-correct by construction.
func (c *Channel) Issue(now uint64, cmd Command) uint64 {
	if cmd.Kind == CmdNop {
		return now
	}
	if !c.CanIssue(now, cmd) {
		panic(fmt.Sprintf("dram: illegal command %s at cycle %d", cmd, now))
	}
	c.lastCmdAt = now
	c.anyCmd = true
	rank := &c.Ranks[cmd.Loc.Rank]
	bank := &rank.Banks[cmd.Loc.Bank]
	switch cmd.Kind {
	case CmdActivate:
		bank.activate(now, cmd.Loc.Row, &c.Tim)
		rank.recordActivate(now)
		c.Stats.Activates++
		return now + uint64(c.Tim.RCD)
	case CmdPrecharge:
		accesses := bank.precharge(now, &c.Tim)
		c.Stats.recordReuse(accesses)
		c.Stats.Precharges++
		return now + uint64(c.Tim.RP)
	case CmdRead:
		bank.read(now, &c.Tim)
		c.dataEpoch++
		end := now + uint64(c.Tim.CAS+c.Tim.Burst)
		c.dataFreeAt = end
		c.lastReadDataEnd = end
		c.Stats.Reads++
		c.Stats.DataBusBusy += uint64(c.Tim.Burst)
		return end
	case CmdWrite:
		bank.write(now, &c.Tim)
		c.dataEpoch++
		end := now + uint64(c.Tim.CWL+c.Tim.Burst)
		c.dataFreeAt = end
		c.lastWriteDataEnd = end
		c.Stats.Writes++
		c.Stats.DataBusBusy += uint64(c.Tim.Burst)
		return end
	default:
		panic(fmt.Sprintf("dram: unknown command kind %v", cmd.Kind))
	}
}

// RowHitPossible reports whether a column access to loc would hit the
// currently open row (ignoring timing, only row-buffer state).
func (c *Channel) RowHitPossible(loc Location) bool {
	row, open := c.OpenRow(loc.Rank, loc.Bank)
	return open && row == loc.Row
}
