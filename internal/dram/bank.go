package dram

// Never is the event-horizon sentinel: no future cycle at which the
// queried state change can occur without an intervening command.
const Never = ^uint64(0)

// BankState is the coarse state of one DRAM bank.
type BankState uint8

const (
	// BankIdle means all rows are precharged.
	BankIdle BankState = iota
	// BankActive means a row is open in the row buffer (possibly still
	// within tRCD of the ACTIVATE that opened it).
	BankActive
)

func (s BankState) String() string {
	if s == BankIdle {
		return "idle"
	}
	return "active"
}

// Bank tracks the row-buffer state of one DRAM bank together with the
// earliest cycles at which each command class becomes legal. Times are
// absolute controller cycles.
type Bank struct {
	State   BankState
	OpenRow int

	// epoch counts the commands applied to this bank. Every mutation
	// of the bank-level constraint state (activate, read, write,
	// precharge) bumps it, so a cached earliest-issue horizon stamped
	// with the epoch is valid exactly while the stamp matches — the
	// invalidation scheme behind the controller's per-bank wake-up
	// cache.
	epoch uint32

	// actAllowedAt is the earliest cycle an ACTIVATE may issue
	// (constrained by tRP after a precharge and tRC after the previous
	// ACTIVATE to this bank).
	actAllowedAt uint64
	// colAllowedAt is the earliest cycle a READ/WRITE may issue
	// (constrained by tRCD after the ACTIVATE).
	colAllowedAt uint64
	// preAllowedAt is the earliest cycle a PRECHARGE may issue
	// (constrained by tRAS after ACTIVATE, tRTP after a read, and tWR
	// after the last write data beat).
	preAllowedAt uint64

	// rowAccesses counts column accesses to the currently open row;
	// the activation-reuse histogram (paper Figure 8) is fed from this
	// count when the row closes.
	rowAccesses int
}

// RowAccesses returns the number of column accesses the currently
// open row has received during this activation (0 for an idle bank).
func (b *Bank) RowAccesses() int { return b.rowAccesses }

// Epoch returns the bank's constraint epoch: it changes whenever a
// command to this bank changes the bank-level legality thresholds
// (state, open row, act/col/pre allowed-at times). Horizon caches
// stamp entries with it and revalidate by comparison.
func (b *Bank) Epoch() uint32 { return b.epoch }

// CanActivate reports whether an ACTIVATE is legal at cycle now,
// considering only this bank's constraints (rank-level tRRD/tFAW are
// checked by Rank).
func (b *Bank) CanActivate(now uint64) bool {
	return b.State == BankIdle && now >= b.actAllowedAt
}

// CanColumn reports whether a READ/WRITE to row is legal at cycle now,
// considering only this bank's constraints (bus constraints are
// checked by Channel).
func (b *Bank) CanColumn(now uint64, row int) bool {
	return b.State == BankActive && b.OpenRow == row && now >= b.colAllowedAt
}

// CanPrecharge reports whether a PRECHARGE is legal at cycle now.
func (b *Bank) CanPrecharge(now uint64) bool {
	return b.State == BankActive && now >= b.preAllowedAt
}

// NextActivateAt returns the earliest cycle at which this bank's
// constraints admit an ACTIVATE, or Never while a row is open (the
// bank must be precharged first, which is itself a command).
func (b *Bank) NextActivateAt() uint64 {
	if b.State != BankIdle {
		return Never
	}
	return b.actAllowedAt
}

// NextColumnAt returns the earliest cycle at which a READ/WRITE to row
// becomes legal under this bank's constraints, or Never when the bank
// does not hold row open.
func (b *Bank) NextColumnAt(row int) uint64 {
	if b.State != BankActive || b.OpenRow != row {
		return Never
	}
	return b.colAllowedAt
}

// NextPrechargeAt returns the earliest cycle at which a PRECHARGE
// becomes legal, or Never for an idle bank.
func (b *Bank) NextPrechargeAt() uint64 {
	if b.State != BankActive {
		return Never
	}
	return b.preAllowedAt
}

// activate applies an ACTIVATE at cycle now.
func (b *Bank) activate(now uint64, row int, t *Timing) {
	b.epoch++
	b.State = BankActive
	b.OpenRow = row
	b.rowAccesses = 0
	b.colAllowedAt = now + uint64(t.RCD)
	b.preAllowedAt = now + uint64(t.RAS)
	b.actAllowedAt = now + uint64(t.RC)
}

// read applies a READ at cycle now.
func (b *Bank) read(now uint64, t *Timing) {
	b.epoch++
	b.rowAccesses++
	// A precharge may not issue until tRTP after the read command.
	if at := now + uint64(t.RTP); at > b.preAllowedAt {
		b.preAllowedAt = at
	}
}

// write applies a WRITE at cycle now; the write data finishes at
// now+CWL+Burst and the bank must then observe tWR before precharge.
func (b *Bank) write(now uint64, t *Timing) {
	b.epoch++
	b.rowAccesses++
	if at := now + uint64(t.CWL+t.Burst+t.WR); at > b.preAllowedAt {
		b.preAllowedAt = at
	}
}

// precharge applies a PRECHARGE at cycle now and returns the number of
// column accesses the closing row received during this activation.
func (b *Bank) precharge(now uint64, t *Timing) int {
	b.epoch++
	accesses := b.rowAccesses
	b.State = BankIdle
	b.rowAccesses = 0
	if at := now + uint64(t.RP); at > b.actAllowedAt {
		b.actAllowedAt = at
	}
	return accesses
}

// Rank groups the banks of one rank and enforces the rank-level
// activation constraints tRRD and tFAW.
type Rank struct {
	Banks []Bank

	lastActAt   uint64
	anyActivate bool
	// actTimes is a ring of the last four ACTIVATE issue cycles,
	// used for the four-activate-window check.
	actTimes [4]uint64
	actCount int

	// actEpoch counts ACTIVATEs issued to this rank. The rank-level
	// constraints (tRRD, tFAW) move only on an ACTIVATE, so a cached
	// activation horizon stamped with the epoch stays exact for every
	// bank of the rank until the stamp mismatches.
	actEpoch uint32
}

func newRank(banks int) Rank {
	return Rank{Banks: make([]Bank, banks)}
}

// CanActivate reports whether rank-level constraints allow an ACTIVATE
// at cycle now.
func (r *Rank) CanActivate(now uint64, t *Timing) bool {
	if r.anyActivate && now < r.lastActAt+uint64(t.RRD) {
		return false
	}
	if r.actCount >= 4 {
		oldest := r.actTimes[r.actCount%4]
		if now < oldest+uint64(t.FAW) {
			return false
		}
	}
	return true
}

// NextActivateAt returns the earliest cycle at which rank-level
// constraints (tRRD, tFAW) admit an ACTIVATE.
func (r *Rank) NextActivateAt(t *Timing) uint64 {
	var at uint64
	if r.anyActivate {
		at = r.lastActAt + uint64(t.RRD)
	}
	if r.actCount >= 4 {
		if faw := r.actTimes[r.actCount%4] + uint64(t.FAW); faw > at {
			at = faw
		}
	}
	return at
}

// ActEpoch returns the rank's activation-constraint epoch (see
// actEpoch).
func (r *Rank) ActEpoch() uint32 { return r.actEpoch }

// recordActivate notes an ACTIVATE issued to this rank at cycle now.
func (r *Rank) recordActivate(now uint64) {
	r.actEpoch++
	r.lastActAt = now
	r.anyActivate = true
	r.actTimes[r.actCount%4] = now
	r.actCount++
}
