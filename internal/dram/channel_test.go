package dram

import (
	"testing"
	"testing/quick"
)

// testChannel returns a small channel with unscaled DDR3 timing so
// constraint distances are easy to reason about in tests.
func testChannel() *Channel {
	geo := Geometry{Channels: 1, Ranks: 2, Banks: 4, Rows: 1 << 10, Columns: 32, BlockBytes: 64}
	return NewChannel(0, geo, DDR3_1600())
}

func loc(rank, bank, row, col int) Location {
	return Location{Channel: 0, Rank: rank, Bank: bank, Row: row, Column: col}
}

func TestActivateThenReadRespectsRCD(t *testing.T) {
	c := testChannel()
	l := loc(0, 0, 5, 3)
	if !c.CanIssue(0, Command{Kind: CmdActivate, Loc: l}) {
		t.Fatal("ACT illegal on idle bank at cycle 0")
	}
	c.Issue(0, Command{Kind: CmdActivate, Loc: l})

	rd := Command{Kind: CmdRead, Loc: l}
	for now := uint64(1); now < uint64(c.Tim.RCD); now++ {
		if c.CanIssue(now, rd) {
			t.Fatalf("read legal at %d, before tRCD=%d", now, c.Tim.RCD)
		}
	}
	if !c.CanIssue(uint64(c.Tim.RCD), rd) {
		t.Fatalf("read illegal at tRCD=%d", c.Tim.RCD)
	}
}

func TestReadWrongRowIllegal(t *testing.T) {
	c := testChannel()
	l := loc(0, 0, 5, 3)
	c.Issue(0, Command{Kind: CmdActivate, Loc: l})
	other := l
	other.Row = 6
	if c.CanIssue(uint64(c.Tim.RCD), Command{Kind: CmdRead, Loc: other}) {
		t.Fatal("read to a non-open row accepted")
	}
}

func TestPrechargeRespectsRAS(t *testing.T) {
	c := testChannel()
	l := loc(0, 0, 5, 3)
	c.Issue(0, Command{Kind: CmdActivate, Loc: l})
	pre := Command{Kind: CmdPrecharge, Loc: l}
	if c.CanIssue(uint64(c.Tim.RAS)-1, pre) {
		t.Fatal("precharge legal before tRAS")
	}
	if !c.CanIssue(uint64(c.Tim.RAS), pre) {
		t.Fatal("precharge illegal at tRAS")
	}
}

func TestActivateAfterPrechargeRespectsRP(t *testing.T) {
	c := testChannel()
	l := loc(0, 0, 5, 3)
	c.Issue(0, Command{Kind: CmdActivate, Loc: l})
	preAt := uint64(c.Tim.RAS)
	c.Issue(preAt, Command{Kind: CmdPrecharge, Loc: l})
	act := Command{Kind: CmdActivate, Loc: l}
	if c.CanIssue(preAt+uint64(c.Tim.RP)-1, act) {
		t.Fatal("activate legal before tRP elapsed")
	}
	// tRC from the first activate is RAS+RP=39=RC here, so this is
	// also the tRC boundary.
	if !c.CanIssue(preAt+uint64(c.Tim.RP), act) {
		t.Fatal("activate illegal after tRP")
	}
}

func TestRRDBetweenBanksOfSameRank(t *testing.T) {
	c := testChannel()
	c.Issue(0, Command{Kind: CmdActivate, Loc: loc(0, 0, 1, 0)})
	act := Command{Kind: CmdActivate, Loc: loc(0, 1, 1, 0)}
	if c.CanIssue(uint64(c.Tim.RRD)-1, act) {
		t.Fatal("activate to sibling bank legal before tRRD")
	}
	if !c.CanIssue(uint64(c.Tim.RRD), act) {
		t.Fatal("activate to sibling bank illegal at tRRD")
	}
}

func TestOtherRankNotBoundByRRD(t *testing.T) {
	c := testChannel()
	c.Issue(0, Command{Kind: CmdActivate, Loc: loc(0, 0, 1, 0)})
	// Command bus is busy at cycle 0, so use cycle 1 (< tRRD).
	if !c.CanIssue(1, Command{Kind: CmdActivate, Loc: loc(1, 0, 1, 0)}) {
		t.Fatal("activate to another rank blocked by tRRD")
	}
}

func TestFourActivateWindow(t *testing.T) {
	c := testChannel()
	rrd := uint64(c.Tim.RRD)
	var at uint64
	for i := 0; i < 4; i++ {
		cmd := Command{Kind: CmdActivate, Loc: loc(0, i, 1, 0)}
		if !c.CanIssue(at, cmd) {
			t.Fatalf("ACT %d illegal at %d", i, at)
		}
		c.Issue(at, cmd)
		at += rrd
	}
	// The 5th activate must wait for tFAW after the first, even though
	// tRRD from the fourth has elapsed. Reuse bank 0 after closing it
	// is not possible this early, so use rank 0's bank 0 row change...
	// simply try bank 0 again: it is still active, so use a different
	// bank index beyond the four: geometry has 4 banks, so precharge
	// bank 0 is not allowed yet either. Instead verify the window on a
	// fresh bank of the same rank by checking rank-level CanActivate.
	fifth := Command{Kind: CmdActivate, Loc: loc(0, 0, 2, 0)}
	_ = fifth
	faw := uint64(c.Tim.FAW)
	if c.Ranks[0].CanActivate(at, &c.Tim) && at < faw {
		t.Fatalf("rank allows 5th ACT at %d inside tFAW=%d", at, faw)
	}
	if !c.Ranks[0].CanActivate(faw, &c.Tim) {
		t.Fatal("rank blocks ACT after tFAW has elapsed")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	c := testChannel()
	l := loc(0, 0, 5, 3)
	c.Issue(0, Command{Kind: CmdActivate, Loc: l})
	wrAt := uint64(c.Tim.RCD)
	c.Issue(wrAt, Command{Kind: CmdWrite, Loc: l})
	dataEnd := wrAt + uint64(c.Tim.CWL+c.Tim.Burst)
	rd := Command{Kind: CmdRead, Loc: l}
	if c.CanIssue(dataEnd+uint64(c.Tim.WTR)-1, rd) {
		t.Fatal("read legal before tWTR after write data")
	}
	if !c.CanIssue(dataEnd+uint64(c.Tim.WTR), rd) {
		t.Fatal("read illegal after tWTR")
	}
}

func TestWriteRecoveryBeforePrecharge(t *testing.T) {
	c := testChannel()
	l := loc(0, 0, 5, 3)
	c.Issue(0, Command{Kind: CmdActivate, Loc: l})
	wrAt := uint64(c.Tim.RCD)
	c.Issue(wrAt, Command{Kind: CmdWrite, Loc: l})
	preOK := wrAt + uint64(c.Tim.CWL+c.Tim.Burst+c.Tim.WR)
	pre := Command{Kind: CmdPrecharge, Loc: l}
	if c.CanIssue(preOK-1, pre) {
		t.Fatal("precharge legal before write recovery")
	}
	if !c.CanIssue(preOK, pre) {
		t.Fatal("precharge illegal after write recovery")
	}
}

func TestCommandBusOneCommandPerCycle(t *testing.T) {
	c := testChannel()
	c.Issue(5, Command{Kind: CmdActivate, Loc: loc(0, 0, 1, 0)})
	if c.CanIssue(5, Command{Kind: CmdActivate, Loc: loc(1, 0, 1, 0)}) {
		t.Fatal("two commands accepted in the same cycle")
	}
	if !c.CanIssue(6, Command{Kind: CmdActivate, Loc: loc(1, 0, 1, 0)}) {
		t.Fatal("command bus still busy one cycle later")
	}
}

func TestIssuePanicsOnIllegalCommand(t *testing.T) {
	c := testChannel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for illegal command")
		}
	}()
	c.Issue(0, Command{Kind: CmdRead, Loc: loc(0, 0, 1, 0)}) // bank idle
}

func TestActivationReuseHistogram(t *testing.T) {
	c := testChannel()
	l := loc(0, 0, 5, 0)
	now := uint64(0)
	c.Issue(now, Command{Kind: CmdActivate, Loc: l})
	now += uint64(c.Tim.RCD)
	// Three reads to the open row.
	for i := 0; i < 3; i++ {
		l.Column = i
		c.Issue(now, Command{Kind: CmdRead, Loc: l})
		now += uint64(c.Tim.Burst + 1)
	}
	now += uint64(c.Tim.RAS)
	c.Issue(now, Command{Kind: CmdPrecharge, Loc: l})
	if got := c.Stats.ActivationReuse[3]; got != 1 {
		t.Fatalf("reuse[3] = %d, want 1", got)
	}
	frac, total := c.Stats.SingleAccessFraction()
	if total != 1 || frac != 0 {
		t.Fatalf("single-access = (%f, %d), want (0, 1)", frac, total)
	}
}

func TestSingleAccessFraction(t *testing.T) {
	var s Stats
	s.recordReuse(1)
	s.recordReuse(1)
	s.recordReuse(1)
	s.recordReuse(5)
	s.recordReuse(0) // zero-access activation excluded
	frac, total := s.SingleAccessFraction()
	if total != 4 {
		t.Fatalf("total = %d, want 4", total)
	}
	if frac != 0.75 {
		t.Fatalf("fraction = %f, want 0.75", frac)
	}
}

// TestPropertyNoIllegalInterleavings drives the channel with randomly
// chosen commands, issuing only those CanIssue accepts, and checks the
// device invariants hold throughout: at most one open row per bank,
// data-bus slots never overlap, and every accepted command keeps the
// state machine consistent.
func TestPropertyNoIllegalInterleavings(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		c := testChannel()
		lastDataStart := int64(-1)
		var lastDataEnd uint64
		for now := uint64(0); now < 3000; now++ {
			kind := CommandKind(1 + next(4))
			l := loc(next(2), next(4), next(16), next(32))
			if kind == CmdRead || kind == CmdWrite {
				if row, open := c.OpenRow(l.Rank, l.Bank); open {
					l.Row = row // target the open row half the time
				}
			}
			cmd := Command{Kind: kind, Loc: l}
			if !c.CanIssue(now, cmd) {
				continue
			}
			before := c.Bank(l.Rank, l.Bank).State
			done := c.Issue(now, cmd)
			bank := c.Bank(l.Rank, l.Bank)
			switch kind {
			case CmdActivate:
				if before != BankIdle || bank.State != BankActive || bank.OpenRow != l.Row {
					return false
				}
			case CmdPrecharge:
				if before != BankActive || bank.State != BankIdle {
					return false
				}
			case CmdRead, CmdWrite:
				if bank.State != BankActive || bank.OpenRow != l.Row {
					return false
				}
				start := done - uint64(c.Tim.Burst)
				if int64(start) < lastDataStart {
					return false // bus slots must be ordered
				}
				if start < lastDataEnd {
					return false // bus slots must not overlap
				}
				lastDataStart = int64(start)
				lastDataEnd = done
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
