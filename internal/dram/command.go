package dram

import "fmt"

// CommandKind enumerates the DRAM commands the controller can issue.
type CommandKind uint8

const (
	// CmdNop issues nothing this cycle.
	CmdNop CommandKind = iota
	// CmdActivate opens Loc.Row in the addressed bank.
	CmdActivate
	// CmdPrecharge closes the open row of the addressed bank.
	CmdPrecharge
	// CmdRead performs a column read from the open row.
	CmdRead
	// CmdWrite performs a column write to the open row.
	CmdWrite
)

var commandNames = [...]string{
	CmdNop:       "NOP",
	CmdActivate:  "ACT",
	CmdPrecharge: "PRE",
	CmdRead:      "RD",
	CmdWrite:     "WR",
}

func (k CommandKind) String() string {
	if int(k) < len(commandNames) {
		return commandNames[k]
	}
	return fmt.Sprintf("CommandKind(%d)", uint8(k))
}

// IsColumn reports whether the command transfers data (READ or WRITE).
func (k CommandKind) IsColumn() bool { return k == CmdRead || k == CmdWrite }

// Command is one DRAM command addressed to a location. For ACTIVATE
// the column is ignored; for PRECHARGE both row and column are
// ignored.
type Command struct {
	Kind CommandKind
	Loc  Location
}

func (c Command) String() string {
	switch c.Kind {
	case CmdNop:
		return "NOP"
	case CmdPrecharge:
		return fmt.Sprintf("PRE ch%d/ra%d/ba%d", c.Loc.Channel, c.Loc.Rank, c.Loc.Bank)
	case CmdActivate:
		return fmt.Sprintf("ACT ch%d/ra%d/ba%d/row%d", c.Loc.Channel, c.Loc.Rank, c.Loc.Bank, c.Loc.Row)
	default:
		return fmt.Sprintf("%s %s", c.Kind, c.Loc)
	}
}
