// Package dram models an off-chip DDR3 memory system at cycle
// granularity: channels, ranks, banks, row buffers, the command and
// data buses, and the JEDEC-style timing constraints between commands.
//
// The package is a pure device model: it knows nothing about request
// queues or scheduling policies. The memory controller (package
// memctrl) decides which command to issue; this package answers
// whether a command is legal at a given cycle and tracks the state
// transitions and statistics that follow from issuing it.
//
// All times are expressed in controller clock cycles. The simulator
// runs the controller at the CPU clock; datasheet values given in DRAM
// bus cycles are converted with Timing.ScaleFrom.
package dram

import "fmt"

// Geometry describes the organization of one memory system.
//
// All fields must be powers of two so that physical addresses can be
// split into bit fields by package addrmap.
type Geometry struct {
	// Channels is the number of independent memory channels, each
	// with its own command/data bus and controller.
	Channels int
	// Ranks is the number of ranks per channel.
	Ranks int
	// Banks is the number of banks per rank.
	Banks int
	// Rows is the number of rows per bank.
	Rows int
	// Columns is the number of cache-block-sized columns per row,
	// i.e. row-buffer bytes / BlockBytes.
	Columns int
	// BlockBytes is the transfer granularity (cache block size).
	BlockBytes int
}

// DefaultGeometry returns the paper's Table 2 organization: 1 channel,
// 2 ranks, 8 banks per rank, 8KB row buffers, 64B blocks, and 32GB of
// total capacity.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:   1,
		Ranks:      2,
		Banks:      8,
		Rows:       1 << 18, // 32GB / (2 ranks * 8 banks * 8KB rows)
		Columns:    128,     // 8KB row / 64B block
		BlockBytes: 64,
	}
}

// WithChannels returns a copy of g with the channel count replaced and
// the row count scaled down so that total capacity is unchanged. The
// multi-channel study (paper §4.3) holds capacity constant while
// varying channel count.
func (g Geometry) WithChannels(channels int) Geometry {
	if channels <= 0 || channels&(channels-1) != 0 {
		panic(fmt.Sprintf("dram: channel count %d is not a positive power of two", channels))
	}
	scaled := g
	scaled.Rows = g.Rows * g.Channels / channels
	scaled.Channels = channels
	return scaled
}

// Validate reports an error if any dimension is not a positive power
// of two.
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("dram: %s = %d must be a positive power of two", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"Ranks", g.Ranks},
		{"Banks", g.Banks},
		{"Rows", g.Rows},
		{"Columns", g.Columns},
		{"BlockBytes", g.BlockBytes},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// TotalBytes returns the capacity of the whole memory system.
func (g Geometry) TotalBytes() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.Banks) *
		uint64(g.Rows) * uint64(g.Columns) * uint64(g.BlockBytes)
}

// BanksPerChannel returns ranks * banks for one channel.
func (g Geometry) BanksPerChannel() int { return g.Ranks * g.Banks }

// RowBufferBytes returns the size of one row buffer.
func (g Geometry) RowBufferBytes() int { return g.Columns * g.BlockBytes }

// Location identifies one cache-block-sized column in the memory
// system. It is the decoded form of a physical block address.
type Location struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Column  int
}

// SameRow reports whether two locations fall in the same row of the
// same bank (and therefore can row-buffer hit on each other).
func (l Location) SameRow(o Location) bool {
	return l.Channel == o.Channel && l.Rank == o.Rank && l.Bank == o.Bank && l.Row == o.Row
}

// SameBank reports whether two locations share a bank.
func (l Location) SameBank(o Location) bool {
	return l.Channel == o.Channel && l.Rank == o.Rank && l.Bank == o.Bank
}

func (l Location) String() string {
	return fmt.Sprintf("ch%d/ra%d/ba%d/row%d/col%d", l.Channel, l.Rank, l.Bank, l.Row, l.Column)
}
