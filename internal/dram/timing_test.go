package dram

import "testing"

func TestDDR3TimingMatchesPaperTable2(t *testing.T) {
	tim := DDR3_1600()
	// Table 2: tCAS-tRCD-tRP-tRAS = 11-11-11-28,
	// tRC-tWR-tWTR-tRTP = 39-12-6-6, tRRD-tFAW = 5-24.
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"CAS", tim.CAS, 11}, {"RCD", tim.RCD, 11}, {"RP", tim.RP, 11},
		{"RAS", tim.RAS, 28}, {"RC", tim.RC, 39}, {"WR", tim.WR, 12},
		{"WTR", tim.WTR, 6}, {"RTP", tim.RTP, 6}, {"RRD", tim.RRD, 5},
		{"FAW", tim.FAW, 24},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if err := tim.Validate(); err != nil {
		t.Fatalf("paper timing invalid: %v", err)
	}
}

func TestTimingScaleFromRoundsUp(t *testing.T) {
	tim := Timing{CAS: 11, CWL: 8, RCD: 11, RP: 11, RAS: 28, RC: 39,
		WR: 12, WTR: 6, RTP: 6, RRD: 5, FAW: 24, Burst: 4, RTW: 2}
	scaled := tim.ScaleFrom(5, 2) // 2.5 CPU cycles per DRAM cycle
	cases := []struct {
		name      string
		got, want int
	}{
		{"CAS", scaled.CAS, 28}, // ceil(27.5)
		{"RCD", scaled.RCD, 28}, // ceil(27.5)
		{"RAS", scaled.RAS, 70}, // exact
		{"RC", scaled.RC, 98},   // ceil(97.5)
		{"RRD", scaled.RRD, 13}, // ceil(12.5)
		{"FAW", scaled.FAW, 60}, // exact
		{"Burst", scaled.Burst, 10},
		{"RTW", scaled.RTW, 5},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("scaled %s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestTimingScaleIdentity(t *testing.T) {
	tim := DDR3_1600()
	if got := tim.ScaleFrom(1, 1); got != tim {
		t.Fatalf("identity scale changed timing: %+v vs %+v", got, tim)
	}
}

func TestTimingValidateRejectsBadValues(t *testing.T) {
	tim := DDR3_1600()
	tim.CAS = 0
	if err := tim.Validate(); err == nil {
		t.Error("zero CAS accepted")
	}
	tim = DDR3_1600()
	tim.RC = tim.RAS - 1
	if err := tim.Validate(); err == nil {
		t.Error("RC < RAS accepted")
	}
	tim = DDR3_1600()
	tim.RTW = -1
	if err := tim.Validate(); err == nil {
		t.Error("negative RTW accepted")
	}
}

func TestGeometryDefaults(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.TotalBytes(); got != 32<<30 {
		t.Errorf("capacity = %d, want 32GiB", got)
	}
	if got := g.RowBufferBytes(); got != 8<<10 {
		t.Errorf("row buffer = %d, want 8KiB", got)
	}
	if got := g.BanksPerChannel(); got != 16 {
		t.Errorf("banks per channel = %d, want 16", got)
	}
}

func TestGeometryWithChannelsKeepsCapacity(t *testing.T) {
	g := DefaultGeometry()
	for _, ch := range []int{1, 2, 4, 8} {
		scaled := g.WithChannels(ch)
		if err := scaled.Validate(); err != nil {
			t.Fatalf("channels=%d: %v", ch, err)
		}
		if scaled.TotalBytes() != g.TotalBytes() {
			t.Errorf("channels=%d: capacity changed to %d", ch, scaled.TotalBytes())
		}
		if scaled.Channels != ch {
			t.Errorf("channels=%d: got %d", ch, scaled.Channels)
		}
	}
}

func TestGeometryWithChannelsPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 3 channels")
		}
	}()
	DefaultGeometry().WithChannels(3)
}

func TestGeometryValidateRejectsNonPowerOfTwo(t *testing.T) {
	g := DefaultGeometry()
	g.Rows = 1000
	if err := g.Validate(); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
}

func TestLocationPredicates(t *testing.T) {
	a := Location{Channel: 0, Rank: 1, Bank: 2, Row: 3, Column: 4}
	b := a
	if !a.SameRow(b) || !a.SameBank(b) {
		t.Error("identical locations should share row and bank")
	}
	b.Column = 9
	if !a.SameRow(b) {
		t.Error("different column should still share row")
	}
	b.Row = 7
	if a.SameRow(b) {
		t.Error("different row reported as same row")
	}
	if !a.SameBank(b) {
		t.Error("different row should still share bank")
	}
	b.Bank = 5
	if a.SameBank(b) {
		t.Error("different bank reported as same bank")
	}
}
