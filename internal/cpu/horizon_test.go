package cpu

import (
	"testing"

	"cloudmc/internal/workload"
)

// blockCore ticks a core against a port whose every access goes
// pending until the core hits its MLP limit and blocks, returning the
// cycle after the blocking tick.
func blockCore(t *testing.T, c *Core, port Port) uint64 {
	t.Helper()
	for now := uint64(0); now < 100_000; now++ {
		c.Tick(now, port)
		if c.Blocked() {
			return now + 1
		}
	}
	t.Fatal("core never blocked")
	return 0
}

type pendingPort struct{}

func (pendingPort) Load(uint64, int, uint64) AccessResult {
	return AccessResult{Pending: true}
}
func (pendingPort) Store(uint64, int, uint64) AccessResult {
	return AccessResult{Pending: true}
}

func blockedTestCore(t *testing.T) (*Core, uint64) {
	t.Helper()
	p := workload.TPCHQ6() // MLP limit 1: the first load miss blocks
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, Config{MLPLimit: 1, StoreBufferCap: 4, BaseCPI: 1}, gen)
	now := blockCore(t, c, pendingPort{})
	return c, now
}

// TestNextEventBlockedCore: a core at its MLP limit has no
// self-generated future event; only a fill can wake it.
func TestNextEventBlockedCore(t *testing.T) {
	c, now := blockedTestCore(t)
	if got := c.NextEvent(now); got != Never {
		t.Fatalf("blocked core NextEvent = %d, want Never", got)
	}
	c.LoadReturned(now)
	if got := c.NextEvent(now); got != now {
		t.Fatalf("unblocked core NextEvent = %d, want %d (active)", got, now)
	}
}

// TestAdvanceBlockedMatchesTicks: bulk-advancing a blocked core must
// accumulate exactly the stall cycles the per-cycle loop would.
func TestAdvanceBlockedMatchesTicks(t *testing.T) {
	a, nowA := blockedTestCore(t)
	b, nowB := blockedTestCore(t)
	if nowA != nowB {
		t.Fatalf("paired cores diverged before the stall: %d vs %d", nowA, nowB)
	}
	const window = 137
	for i := uint64(0); i < window; i++ {
		a.Tick(nowA+i, pendingPort{})
	}
	b.Advance(nowB, nowB+window)
	if a.Stats != b.Stats {
		t.Fatalf("stall accounting diverged:\nticked:   %+v\nadvanced: %+v", a.Stats, b.Stats)
	}
	if a.Stats.StallLoad == 0 {
		t.Fatal("expected load-stall cycles in the window")
	}
}

// TestNextEventTimedStall: after retiring an instruction with BaseCPI
// debt, the core's next event is the end of the issue stall.
func TestNextEventTimedStall(t *testing.T) {
	p := workload.WebSearch()
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, Config{MLPLimit: 2, StoreBufferCap: 2, BaseCPI: 4}, gen)
	port := &scriptPort{} // every access hits
	c.Tick(0, port)
	if c.Stats.Retired != 1 {
		t.Fatalf("expected one retire, got %d", c.Stats.Retired)
	}
	// BaseCPI 4 charges 3 cycles of debt: stall until cycle 4.
	if got := c.NextEvent(1); got != 4 {
		t.Fatalf("NextEvent during issue stall = %d, want 4", got)
	}
	// Advancing over the stall window changes no statistics.
	before := c.Stats
	c.Advance(1, 4)
	if c.Stats != before {
		t.Fatalf("Advance over a timed stall changed stats: %+v -> %+v", before, c.Stats)
	}
}

// storePendingPort serves loads from cache but leaves every store
// pending, so the store buffer fills deterministically.
type storePendingPort struct{}

func (storePendingPort) Load(uint64, int, uint64) AccessResult { return AccessResult{} }
func (storePendingPort) Store(uint64, int, uint64) AccessResult {
	return AccessResult{Pending: true}
}

// TestNextEventStoreBufferStall: a core stuck behind a full store
// buffer waits for an external drain, and Advance counts the stall
// cycles exactly as Tick would.
func TestNextEventStoreBufferStall(t *testing.T) {
	p := workload.TPCHQ6()
	mk := func() *Core {
		gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
		return New(0, Config{MLPLimit: 8, StoreBufferCap: 1, BaseCPI: 1}, gen)
	}
	fill := func(c *Core) uint64 {
		for now := uint64(0); now < 200_000; now++ {
			c.Tick(now, storePendingPort{})
			if c.Stats.StallStore > 0 {
				return now + 1
			}
		}
		t.Fatal("store buffer never filled")
		return 0
	}
	a, b := mk(), mk()
	nowA, nowB := fill(a), fill(b)
	if nowA != nowB {
		t.Fatalf("paired cores diverged: %d vs %d", nowA, nowB)
	}
	if got := a.NextEvent(nowA); got != Never {
		t.Fatalf("store-stalled core NextEvent = %d, want Never", got)
	}
	const window = 91
	for i := uint64(0); i < window; i++ {
		a.Tick(nowA+i, storePendingPort{})
	}
	b.Advance(nowB, nowB+window)
	if a.Stats != b.Stats {
		t.Fatalf("store-stall accounting diverged:\nticked:   %+v\nadvanced: %+v", a.Stats, b.Stats)
	}
	a.StoreDrained(nowA + window)
	if got := a.NextEvent(nowA + window); got != nowA+window {
		t.Fatalf("drained core NextEvent = %d, want %d (active)", got, nowA+window)
	}
}
