// Package cpu models the in-order cores of the scale-out pod (paper
// Table 2): single-issue 2GHz cores that block on load misses, with a
// small outstanding-miss window standing in for the limited
// memory-level parallelism of in-order pipelines, and a store buffer
// that makes stores non-blocking until it fills.
package cpu

import (
	"fmt"

	"cloudmc/internal/workload"
)

// Never is the event-horizon sentinel: the core cannot change state on
// its own; only an external event (a load fill or a store drain) can
// wake it.
const Never = ^uint64(0)

// AccessResult is the memory hierarchy's answer to a core request.
type AccessResult struct {
	// Rejected means the hierarchy could not accept the access
	// (MSHR or queue full); the core must retry the same instruction.
	Rejected bool
	// Pending means the access missed the LLC; completion will be
	// signalled via LoadReturned/StoreDrained.
	Pending bool
	// ExtraStall is the number of cycles the core stalls for a
	// non-pending access (0 for an L1 hit, the L2 round trip for an
	// L2 hit).
	ExtraStall int
}

// Port is the memory hierarchy interface the system model implements.
type Port interface {
	// Load issues a load from the core; addr is block-aligned by the
	// hierarchy.
	Load(now uint64, core int, addr uint64) AccessResult
	// Store issues a store.
	Store(now uint64, core int, addr uint64) AccessResult
}

// Config sizes one core.
type Config struct {
	// MLPLimit is the maximum outstanding load misses before the core
	// blocks.
	MLPLimit int
	// StoreBufferCap is the store buffer depth.
	StoreBufferCap int
	// BaseCPI is the average issue cost of one instruction in cycles
	// (>= 1); it models fetch and dependency stalls that are not
	// memory-hierarchy events.
	BaseCPI float64
}

// Validate reports an error for an unusable configuration.
func (c Config) Validate() error {
	if c.MLPLimit <= 0 {
		return fmt.Errorf("cpu: MLPLimit must be positive")
	}
	if c.StoreBufferCap <= 0 {
		return fmt.Errorf("cpu: StoreBufferCap must be positive")
	}
	if c.BaseCPI < 1 {
		return fmt.Errorf("cpu: BaseCPI must be >= 1")
	}
	return nil
}

// Stats counts per-core events over the measurement window.
type Stats struct {
	Retired    uint64
	Loads      uint64
	Stores     uint64
	LoadMisses uint64 // loads that went pending (LLC misses)
	StallLoad  uint64 // cycles blocked waiting for a load fill
	StallStore uint64 // cycles blocked on a full store buffer
}

// Core is one in-order core.
type Core struct {
	// ID is the core index.
	ID  int
	cfg Config
	gen *workload.Generator

	// pending is an instruction fetched from the generator but not yet
	// accepted by the hierarchy (retry after Rejected).
	pending    workload.Op
	hasPending bool

	stallUntil  uint64
	outstanding int  // load misses in flight
	blocked     bool // at MLP limit, waiting for any fill
	storeBuf    int

	// issueDebt implements fractional BaseCPI: every instruction adds
	// BaseCPI-1 cycles of debt paid before the next issue.
	issueDebt float64

	Stats Stats
}

// New builds a core running the given generator.
func New(id int, cfg Config, gen *workload.Generator) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{ID: id, cfg: cfg, gen: gen}
}

// Blocked reports whether the core is waiting on the memory system.
func (c *Core) Blocked() bool { return c.blocked }

// Outstanding returns the in-flight load-miss count.
func (c *Core) Outstanding() int { return c.outstanding }

// LoadReturned signals that one of the core's load misses has filled.
func (c *Core) LoadReturned(now uint64) {
	if c.outstanding <= 0 {
		panic(fmt.Sprintf("cpu: core %d fill with no outstanding miss", c.ID))
	}
	c.outstanding--
	if c.outstanding < c.cfg.MLPLimit {
		c.blocked = false
	}
}

// StoreDrained signals that a buffered store finished its cache
// transaction.
func (c *Core) StoreDrained(now uint64) {
	if c.storeBuf <= 0 {
		panic(fmt.Sprintf("cpu: core %d store drain with empty buffer", c.ID))
	}
	c.storeBuf--
}

// Tick advances the core one cycle, executing at most one instruction.
func (c *Core) Tick(now uint64, port Port) {
	if c.blocked {
		c.Stats.StallLoad++
		return
	}
	if now < c.stallUntil {
		return
	}
	if !c.hasPending {
		c.pending = c.gen.Next()
		c.hasPending = true
	}
	op := c.pending
	switch op.Kind {
	case workload.OpNonMem:
		c.retire(now)
	case workload.OpLoad:
		res := port.Load(now, c.ID, op.Addr)
		if res.Rejected {
			return // retry the same instruction next cycle
		}
		c.Stats.Loads++
		if res.Pending {
			c.Stats.LoadMisses++
			c.outstanding++
			if c.outstanding >= c.cfg.MLPLimit {
				c.blocked = true
			}
		} else if res.ExtraStall > 0 {
			c.stallUntil = now + uint64(res.ExtraStall)
		}
		c.retire(now)
	case workload.OpStore:
		if c.storeBuf >= c.cfg.StoreBufferCap {
			c.Stats.StallStore++
			return // wait for the buffer to drain
		}
		res := port.Store(now, c.ID, op.Addr)
		if res.Rejected {
			return
		}
		c.Stats.Stores++
		if res.Pending {
			c.storeBuf++
		}
		c.retire(now)
	}
}

// NextEvent returns the earliest cycle >= now at which this core can
// change state: now itself when the core would issue this cycle,
// stallUntil while a timed stall runs, and Never while the core is
// waiting on the memory system (a load fill at the MLP limit, or a
// store stuck behind a full store buffer). Between now and the
// returned cycle, Tick is a no-op except for the stall counters, which
// Advance applies in bulk. The event kernel (core/kernel.go) uses this
// value as the core's wake-up time; the legacy horizon scan polls it
// per fast-forward attempt.
func (c *Core) NextEvent(now uint64) uint64 {
	if c.blocked {
		return Never
	}
	if now < c.stallUntil {
		return c.stallUntil
	}
	if c.hasPending && c.pending.Kind == workload.OpStore && c.storeBuf >= c.cfg.StoreBufferCap {
		return Never
	}
	return now
}

// Advance applies the effect of the quiescent cycles [from, to) in one
// step, replicating exactly the stall statistics the per-cycle Tick
// loop would have accumulated. It must only be called for windows in
// which NextEvent(from) >= to held and no fill or drain arrived.
// Windows are additive: splitting [from, to) at any boundary and
// calling Advance per segment accumulates the same totals, which is
// what lets the event kernel settle blocked cores lazily (on wake-up
// or at an Advance boundary) instead of on every clock jump.
func (c *Core) Advance(from, to uint64) {
	if to <= from {
		return
	}
	if c.blocked {
		// Tick counts a load-stall cycle whenever the core is blocked,
		// regardless of any overlapping timed stall.
		c.Stats.StallLoad += to - from
		return
	}
	if c.hasPending && c.pending.Kind == workload.OpStore && c.storeBuf >= c.cfg.StoreBufferCap {
		// Store-buffer stalls only count once the timed stall has
		// elapsed (Tick returns at the stallUntil check first).
		start := from
		if c.stallUntil > start {
			start = c.stallUntil
		}
		if to > start {
			c.Stats.StallStore += to - start
		}
	}
}

// retire commits the pending instruction and charges base-CPI debt.
// Memory stalls assigned before retire (L2 hits) are preserved: the
// core resumes at whichever stall ends later.
func (c *Core) retire(now uint64) {
	c.hasPending = false
	c.Stats.Retired++
	c.issueDebt += c.cfg.BaseCPI - 1
	if c.issueDebt >= 1 {
		whole := uint64(c.issueDebt)
		c.issueDebt -= float64(whole)
		if at := now + 1 + whole; at > c.stallUntil {
			c.stallUntil = at
		}
	}
}

// ResetStats zeroes the measurement counters (after warmup).
func (c *Core) ResetStats() { c.Stats = Stats{} }
