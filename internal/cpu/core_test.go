package cpu

import (
	"testing"

	"cloudmc/internal/workload"
)

// scriptPort replays canned results and records accesses.
type scriptPort struct {
	results []AccessResult
	loads   int
	stores  int
}

func (p *scriptPort) next() AccessResult {
	if len(p.results) == 0 {
		return AccessResult{}
	}
	r := p.results[0]
	p.results = p.results[1:]
	return r
}

func (p *scriptPort) Load(now uint64, core int, addr uint64) AccessResult {
	p.loads++
	return p.next()
}

func (p *scriptPort) Store(now uint64, core int, addr uint64) AccessResult {
	p.stores++
	return p.next()
}

// loadGen produces an endless stream of loads (or stores).
func loadGen(t *testing.T, kind workload.OpKind) *workload.Generator {
	t.Helper()
	// A profile that makes every instruction a cold memory reference.
	p := workload.DataServing()
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	_ = gen
	return gen
}

func coreCfg() Config {
	return Config{MLPLimit: 2, StoreBufferCap: 2, BaseCPI: 1}
}

func TestCoreRetiresNonMem(t *testing.T) {
	p := workload.WebSearch() // low memory intensity
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, coreCfg(), gen)
	port := &scriptPort{}
	for now := uint64(0); now < 1000; now++ {
		c.Tick(now, port)
	}
	if c.Stats.Retired == 0 {
		t.Fatal("core retired nothing")
	}
}

func TestCoreBlocksAtMLPLimit(t *testing.T) {
	p := workload.DataServing()
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, Config{MLPLimit: 2, StoreBufferCap: 8, BaseCPI: 1}, gen)
	// Every load misses (Pending), stores complete instantly.
	port := &scriptPort{}
	pending := AccessResult{Pending: true}
	for i := 0; i < 64; i++ {
		port.results = append(port.results, pending)
	}
	for now := uint64(0); now < 100_000 && c.Outstanding() < 2; now++ {
		c.Tick(now, port)
	}
	if c.Outstanding() != 2 {
		t.Skipf("stream produced too few loads in window (outstanding=%d)", c.Outstanding())
	}
	if !c.Blocked() {
		t.Fatal("core not blocked at MLP limit")
	}
	retired := c.Stats.Retired
	c.Tick(200_000, port)
	if c.Stats.Retired != retired {
		t.Fatal("blocked core retired an instruction")
	}
	c.LoadReturned(200_001)
	if c.Blocked() {
		t.Fatal("core still blocked after a fill")
	}
}

func TestLoadReturnedPanicsWithoutOutstanding(t *testing.T) {
	p := workload.WebSearch()
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, coreCfg(), gen)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.LoadReturned(0)
}

func TestBaseCPIPacesRetirement(t *testing.T) {
	p := workload.WebSearch()
	run := func(baseCPI float64) uint64 {
		gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
		c := New(0, Config{MLPLimit: 4, StoreBufferCap: 8, BaseCPI: baseCPI}, gen)
		port := &scriptPort{} // everything hits
		for now := uint64(0); now < 30_000; now++ {
			c.Tick(now, port)
		}
		return c.Stats.Retired
	}
	fast, slow := run(1.0), run(3.0)
	ratio := float64(fast) / float64(slow)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("BaseCPI 1 vs 3 retirement ratio = %f, want ~3", ratio)
	}
}

func TestExtraStallDelaysNextInstruction(t *testing.T) {
	p := workload.WebSearch()
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, Config{MLPLimit: 4, StoreBufferCap: 8, BaseCPI: 1}, gen)
	// First access stalls 50 cycles, everything after hits.
	port := &scriptPort{results: []AccessResult{{ExtraStall: 50}}}
	var retiredAt []uint64
	last := uint64(0)
	for now := uint64(0); now < 400; now++ {
		before := c.Stats.Retired
		c.Tick(now, port)
		if c.Stats.Retired != before && port.loads+port.stores > 0 && len(retiredAt) == 0 {
			retiredAt = append(retiredAt, now)
			last = now
		}
	}
	_ = last
	if port.loads == 0 {
		t.Skip("no loads in window")
	}
	if c.Stats.Retired == 0 {
		t.Fatal("nothing retired")
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	p := workload.DataServing()
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, Config{MLPLimit: 64, StoreBufferCap: 1, BaseCPI: 1}, gen)
	// Stores always miss (Pending) and never drain; loads hit.
	port := &scriptPort{}
	for i := 0; i < 256; i++ {
		port.results = append(port.results, AccessResult{Pending: true})
	}
	for now := uint64(0); now < 200_000 && c.Stats.StallStore == 0; now++ {
		c.Tick(now, port)
	}
	if c.storeBuf == 0 {
		t.Skip("no store issued in window")
	}
	if c.Stats.StallStore == 0 {
		t.Fatal("full store buffer did not stall the core")
	}
	c.StoreDrained(1)
	if c.storeBuf != 0 {
		t.Fatal("store buffer not drained")
	}
}

func TestRejectedAccessRetriesSameInstruction(t *testing.T) {
	p := workload.TPCHQ6() // memory-heavy: loads arrive quickly
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, Config{MLPLimit: 8, StoreBufferCap: 8, BaseCPI: 1}, gen)
	// Reject everything: memory instructions must not retire.
	rejecting := &scriptPort{}
	for i := 0; i < 4096; i++ {
		rejecting.results = append(rejecting.results, AccessResult{Rejected: true})
	}
	for now := uint64(0); now < 4096; now++ {
		c.Tick(now, rejecting)
	}
	attempts := rejecting.loads + rejecting.stores
	if attempts < 2 {
		t.Skip("not enough memory ops in window")
	}
	// Retired counts only non-memory ops: every memory op was retried,
	// so attempts can far exceed distinct instructions. The pending op
	// must still be the same one: now let it succeed and check exactly
	// one instruction retires from it.
	retired := c.Stats.Retired
	ok := &scriptPort{}
	c.Tick(5000, ok)
	if c.Stats.Retired != retired+1 {
		t.Fatalf("retired %d -> %d, want one instruction", retired, c.Stats.Retired)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{MLPLimit: 1, StoreBufferCap: 1, BaseCPI: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MLPLimit: 0, StoreBufferCap: 1, BaseCPI: 1},
		{MLPLimit: 1, StoreBufferCap: 0, BaseCPI: 1},
		{MLPLimit: 1, StoreBufferCap: 1, BaseCPI: 0.9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestResetStats(t *testing.T) {
	p := workload.WebSearch()
	gen := workload.NewGenerator(p, workload.NewLayout(p), 0, 1)
	c := New(0, coreCfg(), gen)
	port := &scriptPort{}
	for now := uint64(0); now < 100; now++ {
		c.Tick(now, port)
	}
	c.ResetStats()
	if c.Stats.Retired != 0 {
		t.Fatal("reset failed")
	}
}
