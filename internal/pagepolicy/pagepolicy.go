// Package pagepolicy implements the DRAM page-management policies the
// paper studies (§2.2, §4.2): static open/close, the adaptive
// open/close variants, and the predictive RBPP and ABPP policies.
//
// A page policy decides, after each column access, whether the open
// row should be precharged proactively. The memory controller consults
// the policy twice: once right after the column access and again when
// the precharge actually becomes timing-legal (pending same-row
// arrivals in between cancel the close).
package pagepolicy

import "cloudmc/internal/dram"

// CloseContext describes an open row when the controller asks whether
// to close it.
type CloseContext struct {
	// Loc identifies the bank; Loc.Row is the open row.
	Loc dram.Location
	// Accesses is the number of column accesses the row has received
	// during this activation (including the one just issued).
	Accesses int
	// PendingSameRow is the number of queued requests that would hit
	// the open row.
	PendingSameRow int
	// PendingOtherRow is the number of queued requests to the same
	// bank that need a different row.
	PendingOtherRow int
}

// Policy is a page-management policy.
type Policy interface {
	// Name returns the policy name used in reports.
	Name() string
	// ShouldClose reports whether the open row described by ctx should
	// be precharged proactively.
	ShouldClose(ctx CloseContext) bool
	// OnActivate is called when a row is opened.
	OnActivate(loc dram.Location)
	// OnRowClosed is called when a row closes; accesses is the number
	// of column accesses during the activation, and conflict reports
	// that the close was forced by a different-row request rather than
	// chosen by the policy.
	OnRowClosed(loc dram.Location, accesses int, conflict bool)
}

// PureClose marks page policies whose ShouldClose is a pure function
// of its CloseContext: the call neither reads mutable internal state
// nor mutates any. The static and adaptive policies qualify; the
// predictive RBPP/ABPP do not (their lookup touches predictor
// LRU/clock state on every call). The memory controller uses the
// marker to skip re-validating pending closes on cycles where their
// context is provably unchanged — for a pure policy the skipped calls
// are invisible, for a stateful one every call matters.
type PureClose interface{ pureShouldClose() }

// IsPure reports whether p's ShouldClose is pure (see PureClose).
func IsPure(p Policy) bool { _, ok := p.(PureClose); return ok }

// Open is the static open-page policy (OPM): rows stay open until a
// conflicting request forces a precharge.
type Open struct{}

// NewOpen returns the open-page policy.
func NewOpen() Open { return Open{} }

// Name implements Policy.
func (Open) Name() string { return "Open" }

// ShouldClose implements Policy: never close proactively.
func (Open) ShouldClose(CloseContext) bool { return false }

// OnActivate implements Policy.
func (Open) OnActivate(dram.Location) {}

// OnRowClosed implements Policy.
func (Open) OnRowClosed(dram.Location, int, bool) {}

func (Open) pureShouldClose() {}

// Close is the static close-page policy (CPM): every row is precharged
// immediately after its column access.
type Close struct{}

// NewClose returns the close-page policy.
func NewClose() Close { return Close{} }

// Name implements Policy.
func (Close) Name() string { return "Close" }

// ShouldClose implements Policy: always close.
func (Close) ShouldClose(CloseContext) bool { return true }

// OnActivate implements Policy.
func (Close) OnActivate(dram.Location) {}

// OnRowClosed implements Policy.
func (Close) OnRowClosed(dram.Location, int, bool) {}

func (Close) pureShouldClose() {}

// OpenAdaptive is the paper's baseline OAPM: close only when no queued
// request would hit the open row AND some queued request needs a
// different row in this bank.
type OpenAdaptive struct{}

// NewOpenAdaptive returns the open-adaptive policy.
func NewOpenAdaptive() OpenAdaptive { return OpenAdaptive{} }

// Name implements Policy.
func (OpenAdaptive) Name() string { return "OpenAdaptive" }

// ShouldClose implements Policy.
func (OpenAdaptive) ShouldClose(ctx CloseContext) bool {
	return ctx.PendingSameRow == 0 && ctx.PendingOtherRow > 0
}

// OnActivate implements Policy.
func (OpenAdaptive) OnActivate(dram.Location) {}

// OnRowClosed implements Policy.
func (OpenAdaptive) OnRowClosed(dram.Location, int, bool) {}

func (OpenAdaptive) pureShouldClose() {}

// CloseAdaptive is CAPM: close as soon as no queued request would hit
// the open row, whether or not other work is waiting.
type CloseAdaptive struct{}

// NewCloseAdaptive returns the close-adaptive policy.
func NewCloseAdaptive() CloseAdaptive { return CloseAdaptive{} }

// Name implements Policy.
func (CloseAdaptive) Name() string { return "CloseAdaptive" }

// ShouldClose implements Policy.
func (CloseAdaptive) ShouldClose(ctx CloseContext) bool {
	return ctx.PendingSameRow == 0
}

// OnActivate implements Policy.
func (CloseAdaptive) OnActivate(dram.Location) {}

// OnRowClosed implements Policy.
func (CloseAdaptive) OnRowClosed(dram.Location, int, bool) {}

func (CloseAdaptive) pureShouldClose() {}
