package pagepolicy

import "cloudmc/internal/dram"

// abppEntry records the most recent activation outcome for a row.
type abppEntry struct {
	row   int
	hits  int
	valid bool
	used  uint64
}

// ABPP is the Access-Based Page Policy of Awasthi et al. (§2.2): each
// bank keeps a table of recently accessed rows and the number of hits
// they received during their last activation, and predicts a row will
// repeat that hit count. With a table entry the row is closed once the
// predicted hits have been served; without one the row stays open
// until a conflict forces it to close (as specified in the paper).
type ABPP struct {
	entriesPerBank int
	banks          map[bankKey][]abppEntry
	clock          uint64
}

// NewABPP returns an ABPP policy with the given per-bank table size
// (default 16 entries, following the original proposal's "most
// recently accessed rows" tables).
func NewABPP(entriesPerBank int) *ABPP {
	if entriesPerBank <= 0 {
		entriesPerBank = 16
	}
	return &ABPP{
		entriesPerBank: entriesPerBank,
		banks:          make(map[bankKey][]abppEntry),
	}
}

// Name implements Policy.
func (p *ABPP) Name() string { return "ABPP" }

func (p *ABPP) entries(loc dram.Location) []abppEntry {
	k := bankKey{loc.Channel, loc.Rank, loc.Bank}
	e, ok := p.banks[k]
	if !ok {
		e = make([]abppEntry, p.entriesPerBank)
		p.banks[k] = e
	}
	return e
}

// ShouldClose implements Policy.
func (p *ABPP) ShouldClose(ctx CloseContext) bool {
	if ctx.PendingSameRow > 0 {
		return false
	}
	entries := p.entries(ctx.Loc)
	for i := range entries {
		e := &entries[i]
		if e.valid && e.row == ctx.Loc.Row {
			p.clock++
			e.used = p.clock
			// Close once the row has reached its predicted accesses.
			return ctx.Accesses >= e.hits+1
		}
	}
	// No history: leave the row open until a conflict closes it.
	return false
}

// OnActivate implements Policy.
func (p *ABPP) OnActivate(dram.Location) {}

// OnRowClosed implements Policy: record the observed hit count,
// evicting the LRU entry if needed. Unlike RBPP, ABPP records
// zero-hit activations too — that is what lets it close single-access
// rows the next time around, and also what makes its table thrash
// under low-locality streams.
func (p *ABPP) OnRowClosed(loc dram.Location, accesses int, conflict bool) {
	hits := accesses - 1
	if hits < 0 {
		hits = 0
	}
	p.clock++
	entries := p.entries(loc)
	for i := range entries {
		if entries[i].valid && entries[i].row == loc.Row {
			entries[i].hits = hits
			entries[i].used = p.clock
			return
		}
	}
	victim := 0
	for i := range entries {
		if !entries[i].valid {
			victim = i
			break
		}
		if entries[i].used < entries[victim].used {
			victim = i
		}
	}
	entries[victim] = abppEntry{row: loc.Row, hits: hits, valid: true, used: p.clock}
}

// ByName constructs the page policy with the given name using default
// parameters. Recognized names: Open, Close, OpenAdaptive,
// CloseAdaptive, RBPP, ABPP.
func ByName(name string) (Policy, bool) {
	switch name {
	case "Open":
		return NewOpen(), true
	case "Close":
		return NewClose(), true
	case "OpenAdaptive":
		return NewOpenAdaptive(), true
	case "CloseAdaptive":
		return NewCloseAdaptive(), true
	case "RBPP":
		return NewRBPP(0), true
	case "ABPP":
		return NewABPP(0), true
	default:
		return nil, false
	}
}
