package pagepolicy

import (
	"testing"

	"cloudmc/internal/dram"
)

func ctx(pendingSame, pendingOther, accesses int) CloseContext {
	return CloseContext{
		Loc:             dram.Location{Rank: 0, Bank: 0, Row: 7},
		Accesses:        accesses,
		PendingSameRow:  pendingSame,
		PendingOtherRow: pendingOther,
	}
}

func TestOpenNeverCloses(t *testing.T) {
	p := NewOpen()
	if p.ShouldClose(ctx(0, 5, 1)) || p.ShouldClose(ctx(0, 0, 10)) {
		t.Fatal("open policy closed a row")
	}
}

func TestCloseAlwaysCloses(t *testing.T) {
	p := NewClose()
	if !p.ShouldClose(ctx(3, 0, 1)) {
		t.Fatal("close policy kept a row open under pending hits")
	}
}

func TestOpenAdaptiveRules(t *testing.T) {
	p := NewOpenAdaptive()
	if p.ShouldClose(ctx(1, 3, 1)) {
		t.Fatal("OAPM closed with pending same-row work")
	}
	if p.ShouldClose(ctx(0, 0, 1)) {
		t.Fatal("OAPM closed with no pending other-row work")
	}
	if !p.ShouldClose(ctx(0, 2, 1)) {
		t.Fatal("OAPM kept row open against pending other-row work")
	}
}

func TestCloseAdaptiveRules(t *testing.T) {
	p := NewCloseAdaptive()
	if p.ShouldClose(ctx(1, 0, 1)) {
		t.Fatal("CAPM closed with pending same-row work")
	}
	if !p.ShouldClose(ctx(0, 0, 1)) {
		t.Fatal("CAPM kept an idle row open")
	}
}

func TestRBPPClosesUntrackedRowsImmediately(t *testing.T) {
	p := NewRBPP(4)
	if !p.ShouldClose(ctx(0, 0, 1)) {
		t.Fatal("RBPP kept an untracked row open")
	}
	if p.ShouldClose(ctx(2, 0, 1)) {
		t.Fatal("RBPP closed under pending same-row work")
	}
}

func TestRBPPTracksRowsWithHits(t *testing.T) {
	p := NewRBPP(4)
	loc := dram.Location{Rank: 0, Bank: 0, Row: 7}
	// The row closes having served 4 accesses (3 hits): it earns a
	// register predicting 3 hits.
	p.OnRowClosed(loc, 4, false)
	// Next activation: with only 2 accesses so far, keep open.
	if p.ShouldClose(CloseContext{Loc: loc, Accesses: 2}) {
		t.Fatal("RBPP closed before predicted hits were served")
	}
	// At 4 accesses the prediction is met: close.
	if !p.ShouldClose(CloseContext{Loc: loc, Accesses: 4}) {
		t.Fatal("RBPP kept row open past its prediction")
	}
}

func TestRBPPDropsRowsThatStopHitting(t *testing.T) {
	p := NewRBPP(4)
	loc := dram.Location{Rank: 0, Bank: 0, Row: 7}
	p.OnRowClosed(loc, 4, false) // tracked
	p.OnRowClosed(loc, 1, true)  // single access: register revoked
	if !p.ShouldClose(CloseContext{Loc: loc, Accesses: 1}) {
		t.Fatal("revoked row still treated as tracked")
	}
}

func TestRBPPEvictsLRURegister(t *testing.T) {
	p := NewRBPP(2)
	mk := func(row int) dram.Location { return dram.Location{Rank: 0, Bank: 0, Row: row} }
	p.OnRowClosed(mk(1), 3, false)
	p.OnRowClosed(mk(2), 3, false)
	// Touch row 1 so row 2 is LRU, then insert row 3.
	p.lookup(mk(1))
	p.OnRowClosed(mk(3), 5, false)
	if _, tracked := p.lookup(mk(2)); tracked {
		t.Fatal("LRU register not evicted")
	}
	if _, tracked := p.lookup(mk(1)); !tracked {
		t.Fatal("recently used register evicted")
	}
	if hits, tracked := p.lookup(mk(3)); !tracked || hits != 4 {
		t.Fatalf("new register = (%d, %v), want (4, true)", hits, tracked)
	}
}

func TestABPPStaysOpenWithoutHistory(t *testing.T) {
	p := NewABPP(4)
	if p.ShouldClose(ctx(0, 5, 1)) {
		t.Fatal("ABPP closed a row with no table entry")
	}
}

func TestABPPFollowsLastActivationHits(t *testing.T) {
	p := NewABPP(4)
	loc := dram.Location{Rank: 0, Bank: 0, Row: 9}
	p.OnRowClosed(loc, 3, false) // 2 hits last time
	if p.ShouldClose(CloseContext{Loc: loc, Accesses: 2}) {
		t.Fatal("ABPP closed before predicted hits")
	}
	if !p.ShouldClose(CloseContext{Loc: loc, Accesses: 3}) {
		t.Fatal("ABPP kept row open past prediction")
	}
}

func TestABPPRecordsZeroHitActivations(t *testing.T) {
	p := NewABPP(4)
	loc := dram.Location{Rank: 0, Bank: 0, Row: 9}
	p.OnRowClosed(loc, 1, true) // single access, conflict close
	// Prediction is now zero hits: close right after the first access.
	if !p.ShouldClose(CloseContext{Loc: loc, Accesses: 1}) {
		t.Fatal("ABPP ignored its zero-hit history")
	}
}

func TestABPPNeverClosesUnderPendingHits(t *testing.T) {
	p := NewABPP(4)
	loc := dram.Location{Rank: 0, Bank: 0, Row: 9}
	p.OnRowClosed(loc, 1, true)
	if p.ShouldClose(CloseContext{Loc: loc, Accesses: 1, PendingSameRow: 1}) {
		t.Fatal("ABPP closed under a pending row hit")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Open", "Close", "OpenAdaptive", "CloseAdaptive", "RBPP", "ABPP"} {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, ok := ByName("Bogus"); ok {
		t.Fatal("bogus policy name accepted")
	}
}

func TestPoliciesAreIndependentPerBank(t *testing.T) {
	p := NewRBPP(2)
	a := dram.Location{Rank: 0, Bank: 0, Row: 5}
	b := dram.Location{Rank: 0, Bank: 1, Row: 5} // same row id, other bank
	p.OnRowClosed(a, 4, false)
	if _, tracked := p.lookup(b); tracked {
		t.Fatal("register leaked across banks")
	}
}
