package pagepolicy

import "cloudmc/internal/dram"

// bankKey identifies one bank across channels.
type bankKey struct {
	channel, rank, bank int
}

// marrEntry is one most-accessed-row register: a row that received at
// least one row-buffer hit, together with the hit count it achieved
// during its last activation.
type marrEntry struct {
	row   int
	hits  int
	valid bool
	used  uint64 // LRU stamp
}

// RBPP is the Row-Based Page Policy of Shen et al. (§2.2): each bank
// keeps a small set of most-accessed-row registers (MARRs) recording
// rows that received at least one hit and how many hits they received
// last time. A tracked row stays open until it has collected its
// predicted number of hits; an untracked row is predicted to be
// single-access and is closed as soon as no queued request would hit
// it (the close-adaptive rule).
type RBPP struct {
	registersPerBank int
	banks            map[bankKey][]marrEntry
	clock            uint64
}

// NewRBPP returns an RBPP policy with the given number of MARRs per
// bank (the paper's proposal uses "a few"; 4 is the default used in
// our experiments).
func NewRBPP(registersPerBank int) *RBPP {
	if registersPerBank <= 0 {
		registersPerBank = 4
	}
	return &RBPP{
		registersPerBank: registersPerBank,
		banks:            make(map[bankKey][]marrEntry),
	}
}

// Name implements Policy.
func (p *RBPP) Name() string { return "RBPP" }

func (p *RBPP) entries(loc dram.Location) []marrEntry {
	k := bankKey{loc.Channel, loc.Rank, loc.Bank}
	e, ok := p.banks[k]
	if !ok {
		e = make([]marrEntry, p.registersPerBank)
		p.banks[k] = e
	}
	return e
}

// lookup returns the predicted hit count for the row and whether the
// row is tracked.
func (p *RBPP) lookup(loc dram.Location) (int, bool) {
	for i := range p.entries(loc) {
		e := &p.entries(loc)[i]
		if e.valid && e.row == loc.Row {
			p.clock++
			e.used = p.clock
			return e.hits, true
		}
	}
	return 0, false
}

// ShouldClose implements Policy.
func (p *RBPP) ShouldClose(ctx CloseContext) bool {
	if ctx.PendingSameRow > 0 {
		// Never close under a pending hit; all studied policies
		// capture queued same-row work first.
		return false
	}
	hits, tracked := p.lookup(ctx.Loc)
	if !tracked {
		// Untracked rows are predicted single-access: close now.
		return true
	}
	// Keep the row open until it has served its predicted hits
	// (accesses = first access + hits).
	return ctx.Accesses >= hits+1
}

// OnActivate implements Policy.
func (p *RBPP) OnActivate(dram.Location) {}

// OnRowClosed implements Policy: rows that received at least one hit
// earn (or refresh) a MARR with the observed hit count.
func (p *RBPP) OnRowClosed(loc dram.Location, accesses int, conflict bool) {
	hits := accesses - 1
	entries := p.entries(loc)
	if hits < 1 {
		// A tracked row that got no hits this time loses its register:
		// the prediction no longer pays for the open-row penalty.
		for i := range entries {
			if entries[i].valid && entries[i].row == loc.Row {
				entries[i].valid = false
			}
		}
		return
	}
	p.clock++
	// Update in place if tracked.
	for i := range entries {
		if entries[i].valid && entries[i].row == loc.Row {
			entries[i].hits = hits
			entries[i].used = p.clock
			return
		}
	}
	// Otherwise replace the LRU (or first invalid) register.
	victim := 0
	for i := range entries {
		if !entries[i].valid {
			victim = i
			break
		}
		if entries[i].used < entries[victim].used {
			victim = i
		}
	}
	entries[victim] = marrEntry{row: loc.Row, hits: hits, valid: true, used: p.clock}
}
