package workload

import "testing"

// TestWithCores pins the scaling-profile constructor: core count and
// labels change, everything else is untouched, and the receiver is
// not mutated.
func TestWithCores(t *testing.T) {
	base := DataServing()
	p := base.WithCores(256)
	if p.Cores != 256 {
		t.Fatalf("Cores = %d, want 256", p.Cores)
	}
	if p.Acronym != "DS-256c" {
		t.Fatalf("Acronym = %q, want DS-256c", p.Acronym)
	}
	if base.Cores != DataServing().Cores || base.Acronym != "DS" {
		t.Fatal("WithCores mutated its receiver")
	}
	p.Cores = base.Cores
	p.Acronym = base.Acronym
	p.Name = base.Name
	if err := p.Validate(); err != nil {
		t.Fatalf("scaled profile invalid: %v", err)
	}
	if got := DataServing256(); got.Cores != 256 || got.Acronym != "DS-256c" {
		t.Fatalf("DataServing256 = %d cores %q", got.Cores, got.Acronym)
	}
}
