package workload

import "testing"

type ioEvent struct {
	cycle uint64
	addr  uint64
	write bool
}

// TestIOAgentScanEquivalence: driving the agent with Scan-sized jumps
// must reproduce the exact emission schedule (cycles, addresses, write
// flags) of calling Next every cycle — the random stream is shared, so
// any divergence would desynchronize fast-forwarded simulations.
func TestIOAgentScanEquivalence(t *testing.T) {
	p := WebFrontend()
	layout := NewLayout(p)
	const horizon = 2_000_000

	perCycle := NewIOAgent(p.IO, layout, 2, 7)
	var want []ioEvent
	for now := uint64(0); now < horizon; now++ {
		if addr, ok, write := perCycle.Next(); ok {
			want = append(want, ioEvent{now, addr, write})
		}
	}

	scanned := NewIOAgent(p.IO, layout, 2, 7)
	var got []ioEvent
	now := uint64(0)
	for now < horizon {
		idle, fired := scanned.Scan(horizon - now)
		scanned.Skip(idle)
		now += idle
		if !fired || now >= horizon {
			break
		}
		// The fire cycle (and every in-burst cycle after it) emits via
		// the normal per-cycle path.
		for now < horizon {
			addr, ok, write := scanned.Next()
			if !ok {
				now++
				break
			}
			got = append(got, ioEvent{now, addr, write})
			now++
			if scanned.pending == 0 {
				break
			}
		}
	}

	if len(want) == 0 {
		t.Fatal("per-cycle agent emitted nothing; test is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("emission counts differ: per-cycle %d, scanned %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emission %d differs: per-cycle %+v, scanned %+v", i, want[i], got[i])
		}
	}
}

// TestIOAgentScanZeroOffset: an agent mid-burst (or primed) must
// refuse to skip any cycles.
func TestIOAgentScanZeroOffset(t *testing.T) {
	p := MediaStreaming()
	layout := NewLayout(p)
	a := NewIOAgent(p.IO, layout, 1, 3)
	// Walk to the first burst via Scan, consuming the idle window.
	idle, fired := a.Scan(10_000_000)
	if !fired {
		t.Fatal("agent never fired within the scan window")
	}
	a.Skip(idle)
	// Primed with its idle window consumed: the next Scan may not skip.
	if idle, fired := a.Scan(1000); idle != 0 || !fired {
		t.Fatalf("primed agent Scan = (%d, %v), want (0, true)", idle, fired)
	}
	if _, ok, _ := a.Next(); !ok {
		t.Fatal("primed agent must emit on Next")
	}
	// Mid-burst: still no skipping.
	if a.pending > 0 {
		if idle, fired := a.Scan(1000); idle != 0 || !fired {
			t.Fatalf("mid-burst Scan = (%d, %v), want (0, true)", idle, fired)
		}
	}
}

// TestIOAgentPartialSkip: a jump cut short of the scanned idle window
// (as happens when another tenant's agent fires first) must leave the
// remaining confirmed-silent cycles to be absorbed by Next without
// disturbing the emission schedule. This drives the agent with a
// hostile mixture of short Scans, partial Skips and per-cycle Nexts
// and checks the schedule stays exact.
func TestIOAgentPartialSkip(t *testing.T) {
	p := MediaStreaming()
	layout := NewLayout(p)
	const horizon = 1_000_000

	perCycle := NewIOAgent(p.IO, layout, 1, 11)
	var want []ioEvent
	for now := uint64(0); now < horizon; now++ {
		if addr, ok, write := perCycle.Next(); ok {
			want = append(want, ioEvent{now, addr, write})
		}
	}

	driven := NewIOAgent(p.IO, layout, 1, 11)
	var got []ioEvent
	step := uint64(1)
	now := uint64(0)
	for now < horizon {
		window := 1 + (now/3)%977 // varying scan windows
		idle, _ := driven.Scan(window)
		// Jump at most half the confirmed window (rounded up), leaving
		// a remainder for Next to absorb.
		jump := (idle + 1) / 2
		driven.Skip(jump)
		now += jump
		// Then run a few plain cycles.
		for i := uint64(0); i < step && now < horizon; i++ {
			if addr, ok, write := driven.Next(); ok {
				got = append(got, ioEvent{now, addr, write})
			}
			now++
		}
		step = step%7 + 1
	}

	if len(want) == 0 {
		t.Fatal("per-cycle agent emitted nothing; test is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("emission counts differ: per-cycle %d, driven %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emission %d differs: per-cycle %+v, driven %+v", i, want[i], got[i])
		}
	}
}
