package workload

import "testing"

type ioEvent struct {
	cycle uint64
	addr  uint64
	write bool
}

// TestIOAgentScanEquivalence: driving the agent with Scan-sized jumps
// must reproduce the exact emission schedule (cycles, addresses, write
// flags) of calling Next every cycle — the random stream is shared, so
// any divergence would desynchronize fast-forwarded simulations.
func TestIOAgentScanEquivalence(t *testing.T) {
	p := WebFrontend()
	layout := NewLayout(p)
	const horizon = 2_000_000

	perCycle := NewIOAgent(p.IO, layout, 2, 7)
	var want []ioEvent
	for now := uint64(0); now < horizon; now++ {
		if addr, ok, write := perCycle.Next(); ok {
			want = append(want, ioEvent{now, addr, write})
		}
	}

	scanned := NewIOAgent(p.IO, layout, 2, 7)
	var got []ioEvent
	now := uint64(0)
	for now < horizon {
		idle, fired := scanned.Scan(horizon - now)
		now += idle
		if !fired || now >= horizon {
			break
		}
		// The fire cycle (and every in-burst cycle after it) emits via
		// the normal per-cycle path.
		for now < horizon {
			addr, ok, write := scanned.Next()
			if !ok {
				now++
				break
			}
			got = append(got, ioEvent{now, addr, write})
			now++
			if scanned.pending == 0 {
				break
			}
		}
	}

	if len(want) == 0 {
		t.Fatal("per-cycle agent emitted nothing; test is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("emission counts differ: per-cycle %d, scanned %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emission %d differs: per-cycle %+v, scanned %+v", i, want[i], got[i])
		}
	}
}

// TestIOAgentScanZeroOffset: an agent mid-burst (or primed) must
// refuse to skip any cycles.
func TestIOAgentScanZeroOffset(t *testing.T) {
	p := MediaStreaming()
	layout := NewLayout(p)
	a := NewIOAgent(p.IO, layout, 1, 3)
	// Walk to the first burst via Scan.
	idle, fired := a.Scan(10_000_000)
	if !fired {
		t.Fatal("agent never fired within the scan window")
	}
	_ = idle
	// Primed: the next Scan may not skip.
	if idle, fired := a.Scan(1000); idle != 0 || !fired {
		t.Fatalf("primed agent Scan = (%d, %v), want (0, true)", idle, fired)
	}
	if _, ok, _ := a.Next(); !ok {
		t.Fatal("primed agent must emit on Next")
	}
	// Mid-burst: still no skipping.
	if a.pending > 0 {
		if idle, fired := a.Scan(1000); idle != 0 || !fired {
			t.Fatalf("mid-burst Scan = (%d, %v), want (0, true)", idle, fired)
		}
	}
}
