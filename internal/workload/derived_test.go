package workload

import (
	"math"
	"strings"
	"testing"
)

// compensated replicates Derived's calibration compensation and
// clamping, returning the (row-hit, single-access) pair the mixture is
// solved for.
func compensated(p Profile) (h, a float64) {
	hitCalib, accCalib := p.HitCalib, p.AccCalib
	if hitCalib == 0 {
		hitCalib = 1.5
	}
	if accCalib == 0 {
		accCalib = -0.04
	}
	h = p.TargetRowHit * hitCalib
	if h > 0.92 {
		h = 0.92
	}
	a = p.TargetSingleAccess + accCalib
	if a < 0.50 {
		a = 0.50
	}
	if a > 0.92 {
		a = 0.92
	}
	return h, a
}

// TestDerivedReproducesTargetPair is the analytic inversion property:
// for every profile, the mixture Derived solves for must reproduce the
// pre-calibration (row-hit, single-access) target pair exactly. With
// bursts of expected length L, cold references produce single-access
// activations and bursts produce one activation with L accesses, so
//
//	rowHit       = PBurstStart*(L-1) / (PCold + PBurstStart*L)
//	singleAccess = PCold / (PCold + PBurstStart)
//
// must equal the compensated (h, a) Derived targeted.
func TestDerivedReproducesTargetPair(t *testing.T) {
	profiles := append(All(), MemoryHog())
	for _, p := range profiles {
		d := p.Derived()
		if d.BurstLen <= 1 {
			t.Fatalf("%s: burst length %v clamped; the inversion identity does not hold", p.Acronym, d.BurstLen)
		}
		h, a := compensated(p)
		accesses := d.PCold + d.PBurstStart*d.BurstLen
		gotH := d.PBurstStart * (d.BurstLen - 1) / accesses
		gotA := d.PCold / (d.PCold + d.PBurstStart)
		if math.Abs(gotH-h) > 1e-9 {
			t.Errorf("%s: mixture row-hit %.9f != compensated target %.9f", p.Acronym, gotH, h)
		}
		if math.Abs(gotA-a) > 1e-9 {
			t.Errorf("%s: mixture single-access %.9f != compensated target %.9f", p.Acronym, gotA, a)
		}
		// The miss budget must be conserved: cold + burst accesses ==
		// TargetMPKI, and hot references fill to the reference rate.
		if miss := p.TargetMPKI / 1000; math.Abs(accesses-miss) > 1e-12 {
			t.Errorf("%s: mixture miss rate %.9f != target %.9f", p.Acronym, accesses, miss)
		}
		wantHot := p.MemRefsPerKiloInstr/1000 - p.TargetMPKI/1000
		if wantHot < 0 {
			wantHot = 0
		}
		if math.Abs(d.PHot-wantHot) > 1e-12 {
			t.Errorf("%s: PHot %.9f != %.9f", p.Acronym, d.PHot, wantHot)
		}
	}
}

func TestByAcronymCaseInsensitive(t *testing.T) {
	for _, acr := range []string{"ds", "DS", "tpch-q6", "hog", "wspec99"} {
		p, err := ByAcronym(acr)
		if err != nil {
			t.Fatalf("ByAcronym(%q): %v", acr, err)
		}
		if !strings.EqualFold(p.Acronym, acr) {
			t.Fatalf("ByAcronym(%q) = %s", acr, p.Acronym)
		}
	}
}

func TestByAcronymErrorListsValid(t *testing.T) {
	_, err := ByAcronym("nope")
	if err == nil {
		t.Fatal("expected an error")
	}
	for _, want := range []string{"DS", "TPCH-Q17", "HOG"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %s", err, want)
		}
	}
}

func TestMemoryHogProfile(t *testing.T) {
	p := MemoryHog()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Category != ADVW {
		t.Fatalf("category = %v, want ADV", p.Category)
	}
	// The adversary must not join the paper's Table 1 grids.
	for _, q := range All() {
		if q.Acronym == p.Acronym {
			t.Fatal("MemoryHog leaked into All()")
		}
	}
	if ADVW.String() != "ADV" {
		t.Fatalf("ADVW.String() = %q", ADVW.String())
	}
}
