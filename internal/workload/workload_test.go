package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllProfilesValidate(t *testing.T) {
	if len(All()) != 12 {
		t.Fatalf("expected 12 workloads, got %d", len(All()))
	}
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Acronym, err)
		}
	}
}

func TestCategoriesMatchTable1(t *testing.T) {
	want := map[string]Category{
		"DS": SCOW, "MR": SCOW, "SS": SCOW, "WF": SCOW, "WS": SCOW, "MS": SCOW,
		"WSPEC99": TRSW, "TPC-C1": TRSW, "TPC-C2": TRSW,
		"TPCH-Q2": DSPW, "TPCH-Q6": DSPW, "TPCH-Q17": DSPW,
	}
	for _, p := range All() {
		if p.Category != want[p.Acronym] {
			t.Errorf("%s: category %v, want %v", p.Acronym, p.Category, want[p.Acronym])
		}
	}
	if len(ByCategory(SCOW)) != 6 || len(ByCategory(TRSW)) != 3 || len(ByCategory(DSPW)) != 3 {
		t.Error("category partition sizes wrong")
	}
}

func TestWebFrontendUsesEightCores(t *testing.T) {
	// Paper §3.2: "The Web Frontend benchmark uses only 8-cores".
	p, err := ByAcronym("WF")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cores != 8 {
		t.Fatalf("WF cores = %d, want 8", p.Cores)
	}
	if !p.IO.Enabled || !p.IO.ScalesWithChannels {
		t.Fatal("WF must carry channel-scaled IO traffic (paper §4.3)")
	}
}

func TestByAcronymUnknown(t *testing.T) {
	if _, err := ByAcronym("NOPE"); err == nil {
		t.Fatal("unknown acronym accepted")
	}
}

func TestDerivedMixtureIsConsistent(t *testing.T) {
	for _, p := range All() {
		d := p.Derived()
		if d.PCold < 0 || d.PBurstStart < 0 || d.PHot < 0 {
			t.Errorf("%s: negative probabilities %+v", p.Acronym, d)
		}
		if d.BurstLen < 1 {
			t.Errorf("%s: burst length %f < 1", p.Acronym, d.BurstLen)
		}
		total := d.PCold + d.PBurstStart*d.BurstLen
		missTarget := p.TargetMPKI / 1000
		if math.Abs(total-missTarget) > 1e-9 {
			t.Errorf("%s: miss rate %f, want %f", p.Acronym, total, missTarget)
		}
		if sum := d.PCold + d.PBurstStart + d.PHot; sum >= 1 {
			t.Errorf("%s: probability mass %f >= 1", p.Acronym, sum)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := DataServing()
	layout := NewLayout(p)
	a := NewGenerator(p, layout, 3, 42)
	b := NewGenerator(p, layout, 3, 42)
	for i := 0; i < 10_000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at op %d", i)
		}
	}
}

func TestGeneratorsDecorrelatedAcrossCores(t *testing.T) {
	p := DataServing()
	layout := NewLayout(p)
	a := NewGenerator(p, layout, 0, 42)
	b := NewGenerator(p, layout, 1, 42)
	same := 0
	for i := 0; i < 5000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	// Non-memory ops collide trivially; memory ops should not. With
	// ~70% non-mem ops, anything above 95% identical means the streams
	// are correlated.
	if same > 4750 {
		t.Fatalf("cores produce near-identical streams: %d/5000", same)
	}
}

func TestGeneratorMemRefRateMatchesProfile(t *testing.T) {
	p := DataServing()
	layout := NewLayout(p)
	g := NewGenerator(p, layout, 0, 7)
	const n = 400_000
	var mem, stores int
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind != OpNonMem {
			mem++
			if op.Kind == OpStore {
				stores++
			}
		}
	}
	// Hot+cold+stream mem refs per instruction. Burst gaps displace
	// some memory references, so allow a modest tolerance band.
	gotPerKI := 1000 * float64(mem) / n
	if gotPerKI < 0.5*p.MemRefsPerKiloInstr || gotPerKI > 1.2*p.MemRefsPerKiloInstr {
		t.Fatalf("mem refs per KI = %f, profile %f", gotPerKI, p.MemRefsPerKiloInstr)
	}
	if stores == 0 || stores == mem {
		t.Fatal("store mix degenerate")
	}
}

func TestGeneratorAddressesInLayoutBounds(t *testing.T) {
	f := func(seed uint64) bool {
		p := TPCHQ6()
		layout := NewLayout(p)
		g := NewGenerator(p, layout, int(seed%16), seed)
		for i := 0; i < 20_000; i++ {
			op := g.Next()
			if op.Kind == OpNonMem {
				continue
			}
			if op.Addr >= layout.Limit {
				return false
			}
			if op.Addr%64 != 0 {
				return false // must be block aligned
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorBurstsAreSequential(t *testing.T) {
	p := MediaStreaming()
	layout := NewLayout(p)
	g := NewGenerator(p, layout, 0, 11)
	var prev uint64
	var inStream, sequential int
	for i := 0; i < 2_000_000; i++ {
		op := g.Next()
		if op.Kind == OpNonMem {
			continue
		}
		if op.Addr >= layout.StreamBase && op.Addr < layout.ColdBase {
			if prev != 0 && op.Addr == prev+64 {
				sequential++
			}
			inStream++
			prev = op.Addr
		}
	}
	if inStream == 0 {
		t.Fatal("no stream references generated")
	}
	// Most stream references continue the previous block.
	if frac := float64(sequential) / float64(inStream); frac < 0.5 {
		t.Fatalf("sequential fraction = %f, want > 0.5", frac)
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	for _, p := range All() {
		l := NewLayout(p)
		hotEnd := l.HotBase + l.HotStride*uint64(p.Cores)
		if hotEnd > l.StreamBase {
			t.Errorf("%s: hot overlaps stream", p.Acronym)
		}
		if l.StreamBase+l.StreamSize > l.ColdBase {
			t.Errorf("%s: stream overlaps cold", p.Acronym)
		}
		if l.ColdBase+l.ColdSize != l.Limit {
			t.Errorf("%s: limit mismatch", p.Acronym)
		}
	}
}

func TestIOAgentDisabled(t *testing.T) {
	if NewIOAgent(IOProfile{}, NewLayout(DataServing()), 1, 1) != nil {
		t.Fatal("disabled IO profile built an agent")
	}
}

func TestIOAgentRateScalesWithChannels(t *testing.T) {
	p := WebFrontend()
	layout := NewLayout(p)
	count := func(channels int) int {
		a := NewIOAgent(p.IO, layout, channels, 99)
		n := 0
		for i := 0; i < 2_000_000; i++ {
			if _, ok, _ := a.Next(); ok {
				n++
			}
		}
		return n
	}
	one, four := count(1), count(4)
	if one == 0 {
		t.Fatal("agent produced no traffic")
	}
	ratio := float64(four) / float64(one)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("4-channel/1-channel IO ratio = %f, want ~4", ratio)
	}
}

func TestIOAgentBurstsSequential(t *testing.T) {
	p := MediaStreaming()
	a := NewIOAgent(p.IO, NewLayout(p), 1, 5)
	var prev uint64
	var seq, total int
	for i := 0; i < 3_000_000 && total < 2000; i++ {
		addr, ok, _ := a.Next()
		if !ok {
			prev = 0
			continue
		}
		if prev != 0 && addr == prev+64 {
			seq++
		}
		prev = addr
		total++
	}
	if total == 0 {
		t.Fatal("no IO traffic")
	}
	if frac := float64(seq) / float64(total); frac < 0.8 {
		t.Fatalf("IO sequential fraction = %f, want > 0.8", frac)
	}
}

func TestValidateRejectsBrokenProfiles(t *testing.T) {
	base := DataServing()
	mutations := []func(*Profile){
		func(p *Profile) { p.Cores = 0 },
		func(p *Profile) { p.MemRefsPerKiloInstr = 0 },
		func(p *Profile) { p.StoreFraction = 1.5 },
		func(p *Profile) { p.BaseCPI = 0.5 },
		func(p *Profile) { p.TargetMPKI = 0 },
		func(p *Profile) { p.TargetMPKI = p.MemRefsPerKiloInstr + 1 },
		func(p *Profile) { p.TargetRowHit = 1.0 },
		func(p *Profile) { p.TargetSingleAccess = 0 },
		func(p *Profile) { p.MLPLimit = 0 },
		func(p *Profile) { p.CoreIntensity = nil },
		func(p *Profile) { p.ColdBytes = 0 },
	}
	for i, mutate := range mutations {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if SCOW.String() != "SCO" || TRSW.String() != "TRS" || DSPW.String() != "DSP" {
		t.Fatal("category names wrong")
	}
}
