package workload

import (
	"fmt"
	"strings"
)

// Calibration targets are read off the paper's figures: TargetMPKI
// from Figure 4, TargetRowHit from Figure 2 (FR-FCFS, open-adaptive),
// TargetSingleAccess from Figure 8. MLPLimit and BaseCPI encode the
// qualitative characterization of §4.1.2 (scale-out: low MLP, heavy
// frontend stalls; decision support: some MLP, higher intensity).
// CoreIntensity patterns encode §4.1.1's per-core imbalance notes
// (MapReduce, Web Frontend and SPECweb99 show large IPC disparity
// under ATLAS, so their memory intensity must be skewed across cores).

const (
	kib = 1 << 10
	mib = 1 << 20
	gib = 1 << 30
)

var balanced = []float64{1}

// DataServing models the CloudSuite Cassandra-based data store.
func DataServing() Profile {
	return Profile{
		Name: "Data Serving", Acronym: "DS", Category: SCOW, Cores: 16,
		MemRefsPerKiloInstr: 300, StoreFraction: 0.30, BaseCPI: 2.0,
		TargetMPKI: 4, TargetRowHit: 0.30, TargetSingleAccess: 0.88,
		MLPLimit: 2, BurstGapInstr: 48, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      2.4, AccCalib: 0.04,
		HotBytesPerCore: 48 * kib, StreamBytes: 256 * mib, ColdBytes: 2 * gib,
	}
}

// MapReduce models the CloudSuite Hadoop analytics job. Its mapper/
// reducer split gives it the strongest per-core intensity imbalance,
// which is what exposes ATLAS's long-quantum unfairness (§4.1.1
// reports 52% degradation and a 7.78x latency blow-up).
func MapReduce() Profile {
	return Profile{
		Name: "MapReduce", Acronym: "MR", Category: SCOW, Cores: 16,
		MemRefsPerKiloInstr: 300, StoreFraction: 0.35, BaseCPI: 2.5,
		TargetMPKI: 6, TargetRowHit: 0.30, TargetSingleAccess: 0.88,
		MLPLimit: 2, BurstGapInstr: 48, BurstStoreFraction: 0.3,
		CoreIntensity: []float64{2.6, 2.6, 2.6, 2.6, 0.35, 0.35, 0.35, 0.35},
		HitCalib:      2.6, AccCalib: 0.04,
		HotBytesPerCore: 48 * kib, StreamBytes: 512 * mib, ColdBytes: 2 * gib,
	}
}

// SATSolver models the CloudSuite Klee symbolic-execution workload.
func SATSolver() Profile {
	return Profile{
		Name: "SAT Solver", Acronym: "SS", Category: SCOW, Cores: 16,
		MemRefsPerKiloInstr: 310, StoreFraction: 0.25, BaseCPI: 2.4,
		TargetMPKI: 8, TargetRowHit: 0.30, TargetSingleAccess: 0.85,
		MLPLimit: 2, BurstGapInstr: 48, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      2.2, AccCalib: 0.05,
		HotBytesPerCore: 48 * kib, StreamBytes: 256 * mib, ColdBytes: 2 * gib,
	}
}

// WebFrontend models the CloudSuite web-serving tier. It runs on 8
// cores (the configuration available to the authors), has the highest
// row-buffer locality of the scale-out suite, and carries DMA/atomic
// IO traffic that grows with available channel concurrency (§4.3
// reports +11%/+25% accesses on 2/4 channels and a ~10% IPC drop).
func WebFrontend() Profile {
	return Profile{
		Name: "Web Frontend", Acronym: "WF", Category: SCOW, Cores: 8,
		MemRefsPerKiloInstr: 290, StoreFraction: 0.30, BaseCPI: 2.1,
		TargetMPKI: 3, TargetRowHit: 0.55, TargetSingleAccess: 0.86,
		MLPLimit: 1, BurstGapInstr: 48, BurstStoreFraction: 0.3,
		CoreIntensity: []float64{1.9, 1.9, 1.9, 0.45, 0.45, 0.45, 0.45, 0.45},
		HitCalib:      1.7, AccCalib: 0.04,
		HotBytesPerCore: 48 * kib, StreamBytes: 256 * mib, ColdBytes: 1 * gib,
		IO: IOProfile{
			Enabled: true, BurstsPerMCycle: 60, ScalesWithChannels: true,
			BurstBlocks: 16, WriteFraction: 0.5,
		},
	}
}

// WebSearch models the CloudSuite Nutch index-serving node; it has the
// lowest off-chip intensity of the suite.
func WebSearch() Profile {
	return Profile{
		Name: "Web Search", Acronym: "WS", Category: SCOW, Cores: 16,
		MemRefsPerKiloInstr: 280, StoreFraction: 0.20, BaseCPI: 2.2,
		TargetMPKI: 2, TargetRowHit: 0.35, TargetSingleAccess: 0.85,
		MLPLimit: 1, BurstGapInstr: 48, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      2.2, AccCalib: 0.05,
		HotBytesPerCore: 48 * kib, StreamBytes: 256 * mib, ColdBytes: 1 * gib,
	}
}

// MediaStreaming models the CloudSuite Darwin streaming server: most
// activations are single-access, but the minority that stream buffers
// collect many hits (§4.2.1 reports 76% single-access yet a high hit
// rate), plus steady DMA traffic for the media buffers.
func MediaStreaming() Profile {
	return Profile{
		Name: "Media Streaming", Acronym: "MS", Category: SCOW, Cores: 16,
		MemRefsPerKiloInstr: 290, StoreFraction: 0.25, BaseCPI: 2.0,
		TargetMPKI: 5, TargetRowHit: 0.50, TargetSingleAccess: 0.76,
		MLPLimit: 3, BurstGapInstr: 48, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      2.0, AccCalib: 0.10,
		HotBytesPerCore: 48 * kib, StreamBytes: 1 * gib, ColdBytes: 1 * gib,
		IO: IOProfile{
			Enabled: true, BurstsPerMCycle: 40, ScalesWithChannels: false,
			BurstBlocks: 32, WriteFraction: 0.5,
		},
	}
}

// SPECweb99 models the traditional web-serving benchmark; its mix of
// static and dynamic request handlers skews per-core intensity (§4.1.1
// reports a 33% ATLAS loss from IPC disparity).
func SPECweb99() Profile {
	return Profile{
		Name: "SPECweb99", Acronym: "WSPEC99", Category: TRSW, Cores: 16,
		MemRefsPerKiloInstr: 300, StoreFraction: 0.30, BaseCPI: 3.0,
		TargetMPKI: 6, TargetRowHit: 0.35, TargetSingleAccess: 0.85,
		MLPLimit: 2, BurstGapInstr: 48, BurstStoreFraction: 0.3,
		CoreIntensity: []float64{2.2, 2.2, 2.2, 2.2, 0.4, 0.4, 0.4, 0.4},
		HitCalib:      2.6, AccCalib: 0.07,
		HotBytesPerCore: 48 * kib, StreamBytes: 256 * mib, ColdBytes: 1 * gib,
	}
}

// TPCC1 models TPC-C on commercial DBMS vendor A.
func TPCC1() Profile {
	return Profile{
		Name: "TPC-C1 (vendor A)", Acronym: "TPC-C1", Category: TRSW, Cores: 16,
		MemRefsPerKiloInstr: 320, StoreFraction: 0.35, BaseCPI: 4.5,
		TargetMPKI: 9, TargetRowHit: 0.33, TargetSingleAccess: 0.82,
		MLPLimit: 2, BurstGapInstr: 5, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      1.7, AccCalib: 0.06,
		HotBytesPerCore: 56 * kib, StreamBytes: 512 * mib, ColdBytes: 4 * gib,
	}
}

// TPCC2 models TPC-C on commercial DBMS vendor B; the paper finds it
// the least scheduler-sensitive workload.
func TPCC2() Profile {
	return Profile{
		Name: "TPC-C2 (vendor B)", Acronym: "TPC-C2", Category: TRSW, Cores: 16,
		MemRefsPerKiloInstr: 320, StoreFraction: 0.35, BaseCPI: 4.8,
		TargetMPKI: 10, TargetRowHit: 0.30, TargetSingleAccess: 0.80,
		MLPLimit: 3, BurstGapInstr: 5, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      1.55, AccCalib: 0.0,
		HotBytesPerCore: 56 * kib, StreamBytes: 512 * mib, ColdBytes: 4 * gib,
	}
}

// TPCHQ2 models TPC-H query 2 (select-intensive).
func TPCHQ2() Profile {
	return Profile{
		Name: "TPC-H Q2", Acronym: "TPCH-Q2", Category: DSPW, Cores: 16,
		MemRefsPerKiloInstr: 330, StoreFraction: 0.20, BaseCPI: 4.0,
		TargetMPKI: 16, TargetRowHit: 0.28, TargetSingleAccess: 0.78,
		MLPLimit: 1, BurstGapInstr: 5, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      2.0, AccCalib: -0.02,
		HotBytesPerCore: 56 * kib, StreamBytes: 1 * gib, ColdBytes: 4 * gib,
	}
}

// TPCHQ6 models TPC-H query 6 (scan-heavy).
func TPCHQ6() Profile {
	return Profile{
		Name: "TPC-H Q6", Acronym: "TPCH-Q6", Category: DSPW, Cores: 16,
		MemRefsPerKiloInstr: 330, StoreFraction: 0.15, BaseCPI: 4.0,
		TargetMPKI: 18, TargetRowHit: 0.27, TargetSingleAccess: 0.78,
		MLPLimit: 1, BurstGapInstr: 5, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      1.9, AccCalib: -0.02,
		HotBytesPerCore: 56 * kib, StreamBytes: 2 * gib, ColdBytes: 4 * gib,
	}
}

// TPCHQ17 models TPC-H query 17 (join-heavy).
func TPCHQ17() Profile {
	return Profile{
		Name: "TPC-H Q17", Acronym: "TPCH-Q17", Category: DSPW, Cores: 16,
		MemRefsPerKiloInstr: 330, StoreFraction: 0.20, BaseCPI: 3.8,
		TargetMPKI: 20, TargetRowHit: 0.28, TargetSingleAccess: 0.77,
		MLPLimit: 1, BurstGapInstr: 5, BurstStoreFraction: 0.3,
		CoreIntensity: balanced,
		HitCalib:      1.8, AccCalib: -0.02,
		HotBytesPerCore: 56 * kib, StreamBytes: 1 * gib, ColdBytes: 4 * gib,
	}
}

// MemoryHog is a synthetic adversary profile for colocation studies,
// modeled on the bank/row-conflict attacker of Zhang et al. (Memory
// DoS Attacks in Multi-tenant Clouds): every core floods the memory
// system with cache-missing references scattered over a large region,
// so almost every access activates a fresh row and conflicts with
// whatever its neighbors keep open. Low BaseCPI and a deep MLP window
// make the flood as dense as the in-order pipeline allows. It is not
// part of the paper's Table 1 and is excluded from All().
func MemoryHog() Profile {
	return Profile{
		Name: "Memory Hog", Acronym: "HOG", Category: ADVW, Cores: 16,
		MemRefsPerKiloInstr: 500, StoreFraction: 0.50, BaseCPI: 1.0,
		TargetMPKI: 60, TargetRowHit: 0.05, TargetSingleAccess: 0.90,
		MLPLimit: 8, BurstGapInstr: 0, BurstStoreFraction: 0.5,
		CoreIntensity: balanced,
		HitCalib:      1.0, AccCalib: 0.01,
		HotBytesPerCore: 4 * kib, StreamBytes: 64 * mib, ColdBytes: 2 * gib,
	}
}

// WithCores returns a copy of p resized to n cores, with the acronym
// re-labelled ("DS" becomes "DS-256c") so study cells and benchmark
// names stay self-describing. It is the constructor behind the
// large-machine scaling profiles: the ROADMAP's 256-1024-core
// multi-channel configs that the sharded kernel (core.Config.Workers)
// exists for. Per-core regions (hot bytes, intensity pattern) keep
// their per-core meaning; the intensity pattern tiles across the
// larger core count exactly as the generator already tiles it.
func (p Profile) WithCores(n int) Profile {
	out := p
	out.Cores = n
	out.Acronym = fmt.Sprintf("%s-%dc", p.Acronym, n)
	out.Name = fmt.Sprintf("%s (%d cores)", p.Name, n)
	return out
}

// DataServing256 is the 256-core scaling profile: the Table 1 data
// store resized to the ROADMAP's large-machine regime. Pair it with
// an 8-channel Config — 32 cores per channel, the same pressure ratio
// as the paper's 16-core/1-channel baseline — for the parallel-kernel
// scaling benchmarks.
func DataServing256() Profile {
	return DataServing().WithCores(256)
}

// table1 and lookup are built once; the per-call constructors above
// stay the source of truth. Profiles are treated as immutable by every
// caller (their slice fields are shared, as `balanced` already is).
var (
	table1 = []Profile{
		DataServing(), MapReduce(), SATSolver(), WebFrontend(), WebSearch(), MediaStreaming(),
		SPECweb99(), TPCC1(), TPCC2(),
		TPCHQ2(), TPCHQ6(), TPCHQ17(),
	}
	// lookup extends Table 1 with the synthetic profiles resolvable by
	// acronym but excluded from the paper's grids.
	lookup = append(append([]Profile{}, table1...), MemoryHog())
)

// All returns the twelve workloads in the paper's Table 1 order.
func All() []Profile {
	return append([]Profile(nil), table1...)
}

// ByCategory returns the workloads of one category, in table order.
func ByCategory(c Category) []Profile {
	var out []Profile
	for _, p := range table1 {
		if p.Category == c {
			out = append(out, p)
		}
	}
	return out
}

// ByAcronym finds a workload by its acronym (Table 1 plus the
// synthetic colocation profiles), matching case-insensitively.
func ByAcronym(acr string) (Profile, error) {
	for _, p := range lookup {
		if strings.EqualFold(p.Acronym, acr) {
			return p, nil
		}
	}
	valid := make([]string, len(lookup))
	for i, p := range lookup {
		valid[i] = p.Acronym
	}
	return Profile{}, fmt.Errorf("workload: unknown acronym %q (valid: %s)",
		acr, strings.Join(valid, ", "))
}
