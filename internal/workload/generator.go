package workload

// rng is a deterministic xorshift64* generator; the simulator cannot
// use math/rand's global state because runs must be reproducible per
// (workload, configuration, seed).
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform integer in [0,n).
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// geometric returns a sample with mean m (>=1).
func (r *rng) geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for r.float() > p && n < 1024 {
		n++
	}
	return n
}

const blockBytes = 64

// Layout fixes where each region lives in physical address space. The
// hot regions sit at the bottom (one per core), then the shared stream
// region, then the cold region.
type Layout struct {
	HotBase    uint64
	HotStride  uint64
	StreamBase uint64
	StreamSize uint64
	ColdBase   uint64
	ColdSize   uint64
	Limit      uint64
}

// NewLayout computes the region layout for a profile.
func NewLayout(p Profile) Layout {
	hotStride := p.HotBytesPerCore
	streamBase := hotStride * uint64(p.Cores)
	coldBase := streamBase + p.StreamBytes
	return Layout{
		HotBase:    0,
		HotStride:  hotStride,
		StreamBase: streamBase,
		StreamSize: p.StreamBytes,
		ColdBase:   coldBase,
		ColdSize:   p.ColdBytes,
		Limit:      coldBase + p.ColdBytes,
	}
}

// Shift returns the layout relocated by base bytes: every region moves
// up together, so one address space can host several tenants'
// non-overlapping layouts.
func (l Layout) Shift(base uint64) Layout {
	l.HotBase += base
	l.StreamBase += base
	l.ColdBase += base
	l.Limit += base
	return l
}

// Generator produces the instruction stream of one core.
type Generator struct {
	profile Profile
	derived Derived
	layout  Layout
	core    int
	rand    rng

	// intensity is this core's multiplier on all memory probabilities.
	intensity float64

	// burst state
	burstRemaining int
	burstNext      uint64
	gapLeft        int

	// stats
	emitted uint64
}

// NewGenerator builds the stream generator for one core of a workload.
// Generators for the same (profile, seed) pair but different cores
// produce decorrelated streams.
func NewGenerator(p Profile, layout Layout, core int, seed uint64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	intensity := p.CoreIntensity[core%len(p.CoreIntensity)]
	return &Generator{
		profile:   p,
		derived:   p.Derived(),
		layout:    layout,
		core:      core,
		rand:      newRNG(seed ^ (uint64(core)+1)*0xa0761d6478bd642f),
		intensity: intensity,
	}
}

// blockAlign masks addr to a block base.
func blockAlign(addr uint64) uint64 { return addr &^ (blockBytes - 1) }

// loadOrStore picks the reference type from the profile's store
// fraction.
func (g *Generator) loadOrStore() OpKind {
	if g.rand.float() < g.profile.StoreFraction {
		return OpStore
	}
	return OpLoad
}

// hotAddr returns a reference into this core's cache-resident region.
func (g *Generator) hotAddr() uint64 {
	base := g.layout.HotBase + uint64(g.core)*g.layout.HotStride
	return base + blockAlign(g.rand.intn(g.layout.HotStride))
}

// coldAddr returns a reference scattered over the cold region.
func (g *Generator) coldAddr() uint64 {
	return g.layout.ColdBase + blockAlign(g.rand.intn(g.layout.ColdSize))
}

// startBurst initializes a sequential run in the stream region.
func (g *Generator) startBurst() {
	g.burstRemaining = g.rand.geometric(g.derived.BurstLen)
	start := g.layout.StreamBase + blockAlign(g.rand.intn(g.layout.StreamSize))
	g.burstNext = start
	g.gapLeft = 0
}

// burstOp emits the next block of the active burst.
func (g *Generator) burstOp() Op {
	addr := g.burstNext
	g.burstNext += blockBytes
	if g.burstNext >= g.layout.ColdBase {
		g.burstNext = g.layout.StreamBase
	}
	g.burstRemaining--
	g.gapLeft = g.profile.BurstGapInstr
	kind := OpLoad
	storeFrac := g.profile.BurstStoreFraction
	if storeFrac == 0 {
		storeFrac = g.profile.StoreFraction
	}
	if g.rand.float() < storeFrac {
		kind = OpStore
	}
	return Op{Kind: kind, Addr: addr}
}

// Next returns the next instruction of this core's stream.
func (g *Generator) Next() Op {
	g.emitted++
	// Active burst, gap elapsed: emit the next block.
	bursting := g.burstRemaining > 0
	if bursting {
		if g.gapLeft <= 0 {
			return g.burstOp()
		}
		g.gapLeft--
	}
	// Background mix. It keeps flowing during burst gaps (the loop
	// processing a streamed buffer still touches its own hot and cold
	// data), so the miss rate does not dilute with the gap length;
	// only new bursts are suppressed while one is active.
	u := g.rand.float()
	d := g.derived
	pCold := d.PCold * g.intensity
	pBurst := d.PBurstStart * g.intensity
	if bursting {
		pBurst = 0
	}
	pHot := d.PHot * g.intensity
	switch {
	case u < pCold:
		return Op{Kind: g.loadOrStore(), Addr: g.coldAddr()}
	case u < pCold+pBurst:
		g.startBurst()
		return g.burstOp()
	case u < pCold+pBurst+pHot:
		return Op{Kind: g.loadOrStore(), Addr: g.hotAddr()}
	default:
		return Op{Kind: OpNonMem}
	}
}

// Emitted returns the number of instructions generated so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// IOAgent injects DMA traffic directly at the memory controllers,
// bypassing the caches (it models device DMA and OS atomic traffic,
// §4.3). Each burst touches BurstBlocks sequential blocks in a
// dedicated slice of the stream region.
type IOAgent struct {
	prof    IOProfile
	layout  Layout
	rand    rng
	rate    float64 // bursts per cycle
	pending int     // blocks left in the active burst
	next    uint64
	isWrite bool

	// primed records that Scan already consumed a future cycle's
	// injection decision (and the burst-setup draws): after idleLeft
	// more silent cycles, the next Next call must replay that decision
	// instead of drawing again.
	primed bool
	// idleLeft counts upcoming cycles whose injection draws Scan has
	// already consumed and confirmed silent. Next absorbs them one per
	// call without touching the random stream; Skip consumes them in
	// bulk when the simulator jumps the clock.
	idleLeft uint64
}

// NewIOAgent builds the agent; channels scales the rate when the
// profile asks for it. Returns nil when the profile has no IO
// component.
func NewIOAgent(p IOProfile, layout Layout, channels int, seed uint64) *IOAgent {
	if !p.Enabled {
		return nil
	}
	rate := p.BurstsPerMCycle / 1e6
	if p.ScalesWithChannels {
		rate *= float64(channels)
	}
	return &IOAgent{
		prof:   p,
		layout: layout,
		rand:   newRNG(seed ^ 0xd1b54a32d192ed03),
		rate:   rate,
	}
}

// Next returns the DMA block to issue this cycle, if any. The second
// result reports whether a request was produced; the third whether it
// is a write.
func (a *IOAgent) Next() (addr uint64, ok, write bool) {
	if a.idleLeft > 0 {
		// Scan already drew this cycle's decision: silent.
		a.idleLeft--
		return 0, false, false
	}
	if a.primed {
		// Replay the burst start Scan pre-drew; mirrors the fresh-burst
		// branch below exactly.
		a.primed = false
		if a.pending > 0 {
			a.pending--
			addr = a.next
			a.next += blockBytes
			return addr, true, a.isWrite
		}
		return 0, false, false
	}
	if a.pending > 0 {
		a.pending--
		addr = a.next
		a.next += blockBytes
		if a.next >= a.layout.ColdBase {
			a.next = a.layout.StreamBase
		}
		return addr, true, a.isWrite
	}
	if a.rand.float() >= a.rate {
		return 0, false, false
	}
	a.pending = a.prof.BurstBlocks
	a.next = a.layout.StreamBase + blockAlign(a.rand.intn(a.layout.StreamSize))
	a.isWrite = a.rand.float() < a.prof.WriteFraction
	if a.pending > 0 {
		a.pending--
		addr = a.next
		a.next += blockBytes
		return addr, true, a.isWrite
	}
	return 0, false, false
}

// Scan consumes the per-cycle injection decisions for up to n upcoming
// cycles without emitting requests, so a fast-forwarding simulator can
// jump over cycles in which the agent stays silent while keeping the
// random stream bit-identical to the per-cycle Next loop. It returns
// the number of leading cycles confirmed silent and whether the cycle
// after them fires. When it fires, the burst-setup draws have already
// been made; the Next call for that cycle replays them via primed.
// A result of (0, true) means the current cycle itself emits and no
// cycle may be skipped.
//
// The confirmed-silent window is remembered (idleLeft), so a jump
// shorter than the window — forced by another agent or component in a
// multi-tenant system — is safe: the caller reports the cycles it
// actually skipped via Skip, and Next absorbs the remainder one cycle
// at a time without re-drawing. Repeated Scans extend the window
// rather than re-consuming draws.
func (a *IOAgent) Scan(n uint64) (idle uint64, fired bool) {
	if a.primed {
		// A fire is already staged (pending/next/isWrite drawn); it
		// lands after the remaining confirmed-silent cycles.
		if a.idleLeft >= n {
			return n, false
		}
		return a.idleLeft, true
	}
	if a.pending > 0 {
		return 0, true
	}
	for a.idleLeft < n {
		if a.rand.float() < a.rate {
			a.pending = a.prof.BurstBlocks
			a.next = a.layout.StreamBase + blockAlign(a.rand.intn(a.layout.StreamSize))
			a.isWrite = a.rand.float() < a.prof.WriteFraction
			a.primed = true
			return a.idleLeft, true
		}
		a.idleLeft++
	}
	return n, false
}

// Skip consumes n cycles of the confirmed-silent window established by
// Scan, mirroring a clock jump of n cycles. n must not exceed the idle
// count the preceding Scan reported.
func (a *IOAgent) Skip(n uint64) {
	if n > a.idleLeft {
		panic("workload: IOAgent.Skip beyond the scanned idle window")
	}
	a.idleLeft -= n
}
