// Package workload synthesizes the memory behaviour of the paper's
// twelve server workloads (Table 1). The real study executed CloudSuite,
// SPECweb99, TPC-C and TPC-H binaries under full-system simulation;
// those binaries and traces are unavailable, so each workload is
// replaced by a stochastic instruction/address stream calibrated to the
// characterization the paper itself reports:
//
//   - memory intensity (L2 MPKI, Figure 4),
//   - row-buffer locality (hit rate, Figure 2),
//   - activation reuse (single-access fraction, Figure 8),
//   - memory-level parallelism (§4.1.2),
//   - per-core intensity imbalance (§4.1.1's ATLAS discussion), and
//   - DMA/IO traffic growth with channel count (§4.3, Web Frontend).
//
// Streams are mixtures of three components: hot references that stay
// cache-resident, cold references scattered over a footprint far larger
// than the LLC (single-access row activations), and sequential bursts
// that produce row-buffer hits. The mixture weights are derived
// analytically from the calibration targets; see Profile.Derived.
package workload

import "fmt"

// OpKind classifies one instruction of the synthetic stream.
type OpKind uint8

const (
	// OpNonMem is a non-memory instruction.
	OpNonMem OpKind = iota
	// OpLoad reads memory.
	OpLoad
	// OpStore writes memory.
	OpStore
)

// Op is one instruction.
type Op struct {
	Kind OpKind
	Addr uint64
}

// Category groups workloads the way the paper does.
type Category uint8

const (
	// SCOW is the scale-out (CloudSuite) category.
	SCOW Category = iota
	// TRSW is the traditional transactional server category.
	TRSW
	// DSPW is the decision-support category.
	DSPW
	// ADVW is the synthetic-adversary category (colocation studies);
	// these profiles are not part of the paper's Table 1 and are
	// excluded from All().
	ADVW
)

var categoryNames = [...]string{SCOW: "SCO", TRSW: "TRS", DSPW: "DSP", ADVW: "ADV"}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// IOProfile describes the DMA/IO agent traffic of a workload. The
// paper observes (§4.3) that Web Frontend's total memory accesses grow
// 11%/25% on 2-/4-channel systems from DMA and atomic traffic; the
// agent reproduces that by scaling its injection rate with the number
// of channels when ScalesWithChannels is set.
type IOProfile struct {
	// Enabled turns the agent on.
	Enabled bool
	// BurstsPerMCycle is the expected number of DMA bursts per million
	// cycles on a 1-channel system.
	BurstsPerMCycle float64
	// ScalesWithChannels multiplies the rate by the channel count.
	ScalesWithChannels bool
	// BurstBlocks is the number of sequential blocks per burst
	// (row-hitting traffic).
	BurstBlocks int
	// WriteFraction is the fraction of DMA bursts that are writes.
	WriteFraction float64
}

// Profile describes one workload.
type Profile struct {
	// Name and Acronym follow the paper's Table 1.
	Name    string
	Acronym string
	// Category is the paper's grouping.
	Category Category
	// Cores is the number of active cores (Web Frontend uses 8; the
	// paper's other workloads use all 16).
	Cores int

	// MemRefsPerKiloInstr is the L1 reference rate (loads+stores per
	// 1000 instructions).
	MemRefsPerKiloInstr float64
	// StoreFraction is the fraction of memory references that are
	// stores.
	StoreFraction float64
	// BaseCPI is the average cycles per instruction absent memory
	// stalls; it folds in the fetch stalls, branch penalties and
	// dependency bubbles the paper's in-order cores suffer (Ferdman et
	// al. report large frontend stalls for scale-out workloads).
	BaseCPI float64

	// TargetMPKI is the calibration target for L2 misses per kilo
	// instruction (paper Figure 4).
	TargetMPKI float64
	// TargetRowHit is the calibration target for the FR-FCFS/OAPM
	// row-buffer hit rate (paper Figure 2), as a fraction.
	TargetRowHit float64
	// TargetSingleAccess is the calibration target for the fraction of
	// activations receiving exactly one access (paper Figure 8).
	TargetSingleAccess float64

	// MLPLimit is the per-core outstanding-load-miss limit, the
	// simulator's model of memory-level parallelism (§4.1.2).
	MLPLimit int
	// BurstGapInstr is the number of non-memory instructions between
	// consecutive blocks of a sequential burst.
	BurstGapInstr int
	// BurstStoreFraction is the store fraction *within* sequential
	// bursts (buffer fills, copies, logging are store-heavy). Stores
	// are non-blocking, so store-dominated bursts reach the memory
	// controller back-to-back — the row locality FR-FCFS exploits.
	// Zero keeps StoreFraction.
	BurstStoreFraction float64

	// CoreIntensity scales MemRefsPerKiloInstr per core; the pattern
	// cycles over cores. Imbalanced patterns (MapReduce, Web Frontend,
	// SPECweb99) are what expose ATLAS's long-quantum unfairness.
	CoreIntensity []float64

	// HitCalib and AccCalib override the default timing-interference
	// compensation applied to TargetRowHit (multiplicative) and
	// TargetSingleAccess (additive) when deriving the mixture. Zero
	// selects the defaults (1.5 and -0.04). High-intensity workloads
	// need more compensation, low-intensity ones less; the values were
	// fitted with cmd/mccalibrate.
	HitCalib float64
	AccCalib float64

	// HotBytesPerCore, StreamBytes and ColdBytes size the address
	// regions. Cold and stream regions must be far larger than the LLC.
	HotBytesPerCore uint64
	StreamBytes     uint64
	ColdBytes       uint64

	// IO configures the DMA agent.
	IO IOProfile
}

// Validate reports an error for a profile the generator cannot run.
func (p Profile) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("workload %s: Cores must be positive", p.Acronym)
	}
	if p.MemRefsPerKiloInstr <= 0 || p.MemRefsPerKiloInstr > 1000 {
		return fmt.Errorf("workload %s: MemRefsPerKiloInstr %.1f out of (0,1000]", p.Acronym, p.MemRefsPerKiloInstr)
	}
	if p.StoreFraction < 0 || p.StoreFraction > 1 {
		return fmt.Errorf("workload %s: StoreFraction out of [0,1]", p.Acronym)
	}
	if p.BaseCPI < 1 {
		return fmt.Errorf("workload %s: BaseCPI %.2f must be >= 1", p.Acronym, p.BaseCPI)
	}
	if p.TargetMPKI <= 0 || p.TargetMPKI > p.MemRefsPerKiloInstr {
		return fmt.Errorf("workload %s: TargetMPKI %.1f out of (0, MemRefs]", p.Acronym, p.TargetMPKI)
	}
	if p.TargetRowHit < 0 || p.TargetRowHit >= 1 {
		return fmt.Errorf("workload %s: TargetRowHit out of [0,1)", p.Acronym)
	}
	if p.TargetSingleAccess <= 0 || p.TargetSingleAccess >= 1 {
		return fmt.Errorf("workload %s: TargetSingleAccess out of (0,1)", p.Acronym)
	}
	if p.MLPLimit <= 0 {
		return fmt.Errorf("workload %s: MLPLimit must be positive", p.Acronym)
	}
	if len(p.CoreIntensity) == 0 {
		return fmt.Errorf("workload %s: CoreIntensity must be non-empty", p.Acronym)
	}
	if p.HotBytesPerCore == 0 || p.StreamBytes == 0 || p.ColdBytes == 0 {
		return fmt.Errorf("workload %s: all region sizes must be non-zero", p.Acronym)
	}
	return nil
}

// Derived holds the mixture parameters computed from the calibration
// targets.
type Derived struct {
	// PCold is the per-instruction probability of a cold (random,
	// LLC-missing) reference.
	PCold float64
	// PBurstStart is the per-instruction probability of starting a
	// sequential burst.
	PBurstStart float64
	// BurstLen is the expected burst length in blocks.
	BurstLen float64
	// PHot is the per-instruction probability of a cache-resident
	// reference.
	PHot float64
}

// Derived computes the mixture parameters. With
//
//	H = target row-hit rate, A = target single-access fraction,
//
// the fraction of LLC misses that belong to sequential bursts is
// fs = 1 − A·(1 − H), and the burst length satisfies
// L = A·fs / ((1 − fs)(1 − A)): bursts of length L produce one
// activation and L−1 hits, cold references produce single-access
// activations, which yields exactly the target pair (H, A) in the
// absence of timing interference. (Interference shifts both; the
// targets are hit to within a few points in practice, which is all the
// study's normalized comparisons need.)
func (p Profile) Derived() Derived {
	// Timing interference (write drains, bank conflicts, adaptive
	// page closure) splits bursts, so the realized hit rate runs at
	// roughly 2/3 of the mixture's analytic value and the realized
	// single-access fraction a few points high. Compensate here so the
	// *measured* baseline lands on the paper's targets; the constants
	// were fitted against the FR-FCFS/OAPM baseline (cmd/mccalibrate).
	hitCalib, accCalib := p.HitCalib, p.AccCalib
	if hitCalib == 0 {
		hitCalib = 1.5
	}
	if accCalib == 0 {
		accCalib = -0.04
	}
	h := p.TargetRowHit * hitCalib
	if h > 0.92 {
		h = 0.92
	}
	a := p.TargetSingleAccess + accCalib
	if a < 0.50 {
		a = 0.50
	}
	if a > 0.92 {
		a = 0.92
	}
	fs := 1 - a*(1-h)
	l := a * fs / ((1 - fs) * (1 - a))
	if l < 1 {
		l = 1
	}
	missPerInstr := p.TargetMPKI / 1000
	memPerInstr := p.MemRefsPerKiloInstr / 1000
	d := Derived{
		PCold:       missPerInstr * (1 - fs),
		PBurstStart: missPerInstr * fs / l,
		BurstLen:    l,
		PHot:        memPerInstr - missPerInstr,
	}
	if d.PHot < 0 {
		d.PHot = 0
	}
	return d
}
