package core

import (
	"testing"

	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

// shortConfig shrinks the run for fast tests.
func shortConfig(p workload.Profile) Config {
	cfg := DefaultConfig(p)
	cfg.WarmupCycles = 50_000
	cfg.MeasureCycles = 150_000
	return cfg
}

func TestSystemSmoke(t *testing.T) {
	sys, err := NewSystem(shortConfig(workload.DataServing()))
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run()
	t.Logf("DS: %v", m)
	if m.Retired == 0 {
		t.Fatal("no instructions retired")
	}
	if m.UserIPC <= 0 || m.UserIPC > float64(len(m.PerCoreIPC)) {
		t.Fatalf("implausible user IPC %f", m.UserIPC)
	}
	if m.ReadsServed == 0 {
		t.Fatal("no DRAM reads served")
	}
	if m.WritesServed == 0 {
		t.Fatal("no DRAM writes served")
	}
	if m.RowHitRate < 0 || m.RowHitRate > 1 {
		t.Fatalf("row hit rate out of range: %f", m.RowHitRate)
	}
	if m.AvgReadLatency <= 0 {
		t.Fatalf("non-positive read latency %f", m.AvgReadLatency)
	}
	if m.SingleAccessFrac <= 0 || m.SingleAccessFrac >= 1 {
		t.Fatalf("single-access fraction out of range: %f", m.SingleAccessFrac)
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() Metrics {
		sys, err := NewSystem(shortConfig(workload.WebSearch()))
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	if a.Retired != b.Retired || a.ReadsServed != b.ReadsServed || a.RowHits != b.RowHits {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestAllWorkloadsAllSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("grid too slow for -short")
	}
	for _, p := range workload.All() {
		for _, k := range sched.Kinds {
			cfg := shortConfig(p)
			cfg.WarmupCycles = 20_000
			cfg.MeasureCycles = 60_000
			cfg.Scheduler = k
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Acronym, k, err)
			}
			m := sys.Run()
			if m.Retired == 0 || m.ReadsServed == 0 {
				t.Fatalf("%s/%s: dead system: %v", p.Acronym, k, m)
			}
		}
	}
}
