package core

import (
	"fmt"

	"cloudmc/internal/addrmap"
	"cloudmc/internal/cache"
	"cloudmc/internal/cpu"
	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
	"cloudmc/internal/obs"
	"cloudmc/internal/pagepolicy"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// mshrEntry tracks one outstanding LLC miss and its merged waiters.
// Entries are recycled through System.freeMSHR; ch and onDone exist
// so one closure per entry serves every life (the closure reads ch at
// fire time, and an entry is only recycled after its fill delivered,
// when no controller holds the closure any more).
type mshrEntry struct {
	addr   uint64
	tenant int   // owning tenant (fills respect LLC way partitions)
	ch     int   // channel serving the current miss
	loads  []int // cores blocked on a load of this block
	stores []int // cores with a buffered store to this block
	onDone func(uint64)
}

// pendingWrite is a writeback waiting for write-queue space.
type pendingWrite struct {
	addr   uint64
	core   int
	tenant int
}

// pendingIO is a DMA request waiting for queue space.
type pendingIO struct {
	addr   uint64
	write  bool
	tenant int
}

// delayedFill is a completed DRAM read traversing the on-chip return
// path (crossbar + miss handling), applied at cycle `at`.
type delayedFill struct {
	at uint64
	//mclint:owns -- a fill holds its entry only while queued on the return path; deliverFills/drainFillBufs pop the fill and complete it before fill() (the sole recycle point) can run for that entry
	e *mshrEntry
}

// primeRNG is a tiny xorshift generator for cache priming, independent
// of the workload generators so priming does not perturb their
// streams.
type primeRNG struct{ s uint64 }

func (r *primeRNG) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

func (r *primeRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func newPrimeRNG(seed uint64) primeRNG {
	if seed == 0 {
		seed = 1
	}
	return primeRNG{s: seed ^ 0x6c62272e07bb0142}
}

// tenantRT is the runtime state of one tenant: its resized profile,
// its slice of the physical address space, and its core range. The
// tenant's DMA agent (if any) lives in System.ios/ioTenant.
type tenantRT struct {
	spec      tenant.Spec
	profile   workload.Profile
	layout    workload.Layout
	firstCore int
	base      uint64 // inclusive start of the tenant's address range
	limit     uint64 // exclusive end (layout.Limit)
}

// tenantSalt decorrelates per-tenant random streams. Salt zero keeps
// tenant 0 (and therefore every solo run) bit-identical to the
// pre-tenancy simulator.
func tenantSalt(i int) uint64 { return uint64(i) * 0x9e3779b97f4a7c15 }

// tenantAlign rounds tenant base addresses up to 1MB so no DRAM row
// is shared between tenants under any mapping scheme.
const tenantAlign = 1 << 20

// System is one assembled simulation: cores, caches, controllers, and
// the DRAM device models, advanced in lockstep by Run.
type System struct {
	cfg     Config
	tenants []tenantRT
	cores   []*cpu.Core
	gens    []*workload.Generator
	l1      []*cache.Cache
	l2      *cache.Cache
	mapper  *addrmap.Mapper
	// pmapper replaces mapper for address decode when bank
	// partitioning is on (Config.Isolation.BankPartition); nil
	// otherwise, keeping the shared decode path untouched.
	pmapper *addrmap.PartitionedMapper
	ctrls   []*memctrl.Controller
	// ios lists the tenants' DMA agents in tenant order (tenants
	// without IO traffic are skipped); ioTenant holds the owning
	// tenant index of each agent.
	ios      []*workload.IOAgent
	ioTenant []int
	// coreTenant maps a global core index to its tenant index.
	coreTenant []int
	warmed     bool

	// kernelState is the event-kernel bookkeeping (see kernel.go);
	// initialised only in the default execution mode (FastForward set,
	// LegacyScan clear).
	kernelState

	mshr      mshrTable
	wbq       []pendingWrite
	ioq       []pendingIO
	fillq     []delayedFill
	blockMask uint64

	// freeMSHR recycles miss entries: a filled entry goes back on the
	// list and the next primary miss reuses it — struct, waiter
	// slices, and its OnDone closure (created once per entry), so the
	// steady-state miss path allocates nothing.
	//mclint:owns -- freeMSHR IS the free list; pushing here is the recycle point itself
	freeMSHR []*mshrEntry

	// measurement
	demandMisses uint64
	tenantMisses []uint64
	cycle        uint64

	// rec, when non-nil, is the attached interval recorder
	// (AttachRecorder). Advance chunks at its interval boundaries so
	// samples land on identical cycles in every loop mode; everything
	// else about the run is untouched — obs-on is bit-identical to
	// obs-off (TestObsDifferential). Nil costs one branch per Advance.
	rec *obs.Recorder

	// ffRetryAt throttles fast-forward attempts: after horizon() finds
	// an active component, the system steps at least ffBackoff cycles
	// before scanning again. Purely a cost control — jumps are
	// semantics-preserving whenever they are taken, so deferring an
	// attempt never changes results.
	ffRetryAt uint64
}

// ffBackoff is the number of per-cycle steps taken after a failed
// fast-forward attempt before the horizon is scanned again.
const ffBackoff = 8

// NewSystem builds a System from a validated Config.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo := cfg.channelGeometry()
	tim := cfg.coreTiming()
	mapper, err := addrmap.New(cfg.Mapping, geo)
	if err != nil {
		return nil, err
	}
	specs := cfg.tenantSpecs()
	totalCores := 0
	for _, sp := range specs {
		totalCores += sp.CoreCount()
	}
	opts := cfg.SchedOpts
	opts.Cores = totalCores
	opts.Seed = cfg.Seed
	if cfg.multiTenant() {
		opts.Tenants = len(specs)
	}
	factory := sched.NewFactoryOpts(cfg.Scheduler, opts)

	s := &System{
		cfg:          cfg,
		mapper:       mapper,
		mshr:         newMSHRTable(cfg.MSHRCap),
		l2:           cache.New(cfg.L2),
		blockMask:    ^(uint64(cfg.L1.BlockBytes) - 1),
		tenantMisses: make([]uint64, len(specs)),
	}

	for chID := 0; chID < geo.Channels; chID++ {
		chann := dram.NewChannel(chID, geo, tim)
		page := pagePolicyFor(cfg)
		ctl, err := memctrl.New(cfg.MC, chann, factory(chID), page)
		if err != nil {
			return nil, err
		}
		ctl.SetFastForward(cfg.FastForward)
		if cfg.multiTenant() {
			ctl.TrackTenants(len(specs))
		}
		s.ctrls = append(s.ctrls, ctl)
	}

	// First pass: place every tenant in the physical address space.
	// The partitioned mapper needs the bases before any generator is
	// built.
	var base uint64
	firstCore := 0
	for _, sp := range specs {
		p := sp.Adjusted()
		layout := workload.NewLayout(p).Shift(base)
		if layout.Limit > geo.TotalBytes() {
			return nil, fmt.Errorf("core: workload footprint %d exceeds memory capacity %d", layout.Limit, geo.TotalBytes())
		}
		s.tenants = append(s.tenants, tenantRT{
			spec: sp, profile: p, layout: layout,
			firstCore: firstCore, base: base, limit: layout.Limit,
		})
		firstCore += p.Cores
		base = (layout.Limit + tenantAlign - 1) &^ (tenantAlign - 1)
	}
	if err := s.applyIsolation(); err != nil {
		return nil, err
	}

	// Second pass: build the tenants' cores, caches, generators and
	// DMA agents.
	for ti := range s.tenants {
		rt := &s.tenants[ti]
		p := rt.profile
		for local := 0; local < p.Cores; local++ {
			gen := workload.NewGenerator(p, rt.layout, local, cfg.Seed^tenantSalt(ti))
			s.gens = append(s.gens, gen)
			s.cores = append(s.cores, cpu.New(len(s.cores), cpu.Config{
				MLPLimit:       p.MLPLimit,
				StoreBufferCap: cfg.StoreBufferCap,
				BaseCPI:        p.BaseCPI,
			}, gen))
			s.l1 = append(s.l1, cache.New(cfg.L1))
			s.coreTenant = append(s.coreTenant, ti)
		}
		if io := workload.NewIOAgent(p.IO, rt.layout, geo.Channels, cfg.Seed^tenantSalt(ti)); io != nil {
			s.ios = append(s.ios, io)
			s.ioTenant = append(s.ioTenant, ti)
		}
	}
	if cfg.FastForward && !cfg.LegacyScan {
		s.initKernel()
	}
	return s, nil
}

// applyIsolation compiles Config.Isolation into the partitioned
// address mapper and the LLC way partition. Shares of both resources
// are carved proportionally to core counts (the unit clouds sell). No
// isolation means no state change at all: the shared decode and
// install paths stay bit-identical to the pre-isolation simulator.
func (s *System) applyIsolation() error {
	iso := s.cfg.Isolation
	if !iso.Enabled() {
		return nil
	}
	weights := make([]int, len(s.tenants))
	for i := range s.tenants {
		weights[i] = s.tenants[i].profile.Cores
	}
	if iso.BankPartition {
		geo := s.cfg.channelGeometry()
		shares, err := tenant.CarvePow2(geo.BanksPerChannel(), weights)
		if err != nil {
			return fmt.Errorf("core: bank partition: %w", err)
		}
		tb := make([]addrmap.TenantBanks, len(s.tenants))
		for i := range s.tenants {
			tb[i] = addrmap.TenantBanks{
				Base:  s.tenants[i].base,
				Start: shares[i].Start,
				Count: shares[i].Count,
			}
		}
		pm, err := addrmap.NewPartitioned(s.cfg.Mapping, geo, tb)
		if err != nil {
			return err
		}
		for i := range s.tenants {
			rt := &s.tenants[i]
			if size := rt.limit - rt.base; size > pm.TenantCapacity(i) {
				return fmt.Errorf("core: tenant %d footprint %d exceeds its bank partition capacity %d (%d of %d banks)",
					i, size, pm.TenantCapacity(i), shares[i].Count, geo.BanksPerChannel())
			}
		}
		s.pmapper = pm
	}
	if iso.WayPartition {
		shares, err := tenant.CarveProportional(s.cfg.L2.Ways, weights)
		if err != nil {
			return fmt.Errorf("core: way partition: %w", err)
		}
		ws := make([]cache.WayShare, len(shares))
		for i, sh := range shares {
			ws[i] = cache.WayShare{First: sh.Start, Count: sh.Count}
		}
		if err := s.l2.PartitionWays(ws); err != nil {
			return err
		}
	}
	return nil
}

// decode maps a block address to DRAM coordinates, tenant-aware when
// bank partitioning is on.
func (s *System) decode(ten int, addr uint64) dram.Location {
	if s.pmapper != nil {
		return s.pmapper.DecodeFor(ten, addr)
	}
	return s.mapper.Decode(addr)
}

// pagePolicyFor returns the configured page policy; the RL scheduler
// owns precharge decisions, so it runs over the static open policy.
func pagePolicyFor(cfg Config) pagepolicy.Policy {
	if cfg.Scheduler == sched.RL {
		return pagepolicy.NewOpen()
	}
	p, _ := pagepolicy.ByName(cfg.PagePolicy)
	return p
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Controllers exposes the per-channel controllers (tests use this).
func (s *System) Controllers() []*memctrl.Controller { return s.ctrls }

// tenantOfAddr attributes a physical block address to the tenant whose
// layout contains it (-1 if none does; cannot happen for addresses the
// generators produce).
func (s *System) tenantOfAddr(addr uint64) int {
	for i := range s.tenants {
		if addr >= s.tenants[i].base && addr < s.tenants[i].limit {
			return i
		}
	}
	return -1
}

// Load implements cpu.Port.
func (s *System) Load(now uint64, core int, addr uint64) cpu.AccessResult {
	addr &= s.blockMask
	if s.l1[core].Access(addr, false) {
		return cpu.AccessResult{}
	}
	if s.l2.Access(addr, false) {
		s.installL1(now, core, addr, false)
		return cpu.AccessResult{ExtraStall: s.cfg.L2HitLatency}
	}
	return s.miss(now, core, addr, false)
}

// Store implements cpu.Port.
func (s *System) Store(now uint64, core int, addr uint64) cpu.AccessResult {
	addr &= s.blockMask
	if s.l1[core].Access(addr, true) {
		return cpu.AccessResult{}
	}
	if s.l2.Access(addr, false) {
		// Write-allocate into L1; the store buffer hides the L2 trip.
		s.installL1(now, core, addr, true)
		return cpu.AccessResult{}
	}
	return s.miss(now, core, addr, true)
}

// miss handles an LLC miss for a load or store.
//
//mclint:hotpath
func (s *System) miss(now uint64, core int, addr uint64, store bool) cpu.AccessResult {
	if e := s.mshr.get(addr); e != nil {
		// Secondary miss: merge into the outstanding fill.
		if store {
			e.stores = append(e.stores, core)
		} else {
			e.loads = append(e.loads, core)
		}
		return cpu.AccessResult{Pending: true}
	}
	if s.mshr.len() >= s.cfg.MSHRCap {
		return cpu.AccessResult{Rejected: true}
	}
	ten := s.coreTenant[core]
	loc := s.decode(ten, addr)
	kind := memctrl.ReadDemand
	if store {
		kind = memctrl.ReadStore
	}
	e := s.newMSHREntry(addr, ten, loc.Channel)
	if store {
		e.stores = append(e.stores, core)
	} else {
		e.loads = append(e.loads, core)
	}
	// The fixed on-chip path latency is charged by queueing the fill
	// for MemPathLatency cycles after the data leaves the controller
	// (folded in by e.onDone).
	ok := s.ctrls[loc.Channel].EnqueueRead(now, memctrl.Source{Core: core, Tenant: ten}, addr, loc, kind, e.onDone)
	if !ok {
		s.freeMSHR = append(s.freeMSHR, e)
		return cpu.AccessResult{Rejected: true}
	}
	s.notifyCtrl(loc.Channel, now)
	s.mshr.put(e)
	s.demandMisses++
	s.tenantMisses[ten]++
	return cpu.AccessResult{Pending: true}
}

// completeFill routes a finished DRAM read toward the fill queue.
// Controllers fire it (through the OnDone closure above) strictly
// from inside Controller.Tick. In kernel mode the completion is
// buffered per channel and merged into the fill queue by
// drainFillBufs after the controller phase — the deferral that lets
// the sharded run tick controllers concurrently, and equally the path
// the serial kernel takes so both share one semantics (see shard.go).
// The per-cycle and legacy-scan loops (fillBuf nil) schedule
// directly, unchanged.
//
//mclint:shard
func (s *System) completeFill(ch int, at uint64, e *mshrEntry) {
	if s.fillBuf == nil {
		s.scheduleFill(at, e) //mclint:shard-ok -- fillBuf is nil only when the kernel (and with it sharding) is off
		return
	}
	s.fillBuf[ch] = append(s.fillBuf[ch], delayedFill{at: at, e: e})
}

// scheduleFill queues a completed read for delivery at cycle `at`
// (insertion sort; the queue is bounded by the MSHR capacity).
// Merge-only under the sharded kernel: it mutates the shared fill
// queue and arms the coordinator-owned wake-up queue, so shard bodies
// must route through completeFill instead.
//
//mclint:merge-only
func (s *System) scheduleFill(at uint64, e *mshrEntry) {
	s.insertFill(at, e)
	s.armFill()
}

// insertFill places one completed read into the fill queue (insertion
// sort, stable in arrival order for equal cycles; the queue is bounded
// by the MSHR capacity) without touching the wake-up queue — batch
// callers arm once after the last insert. Merge-only under the
// sharded kernel: it mutates the shared fill queue.
//
//mclint:merge-only
func (s *System) insertFill(at uint64, e *mshrEntry) {
	i := len(s.fillq)
	s.fillq = append(s.fillq, delayedFill{})
	for i > 0 && s.fillq[i-1].at > at {
		s.fillq[i] = s.fillq[i-1]
		i--
	}
	s.fillq[i] = delayedFill{at: at, e: e}
}

// deliverFills applies all fills due by `now`.
//
//mclint:hotpath
func (s *System) deliverFills(now uint64) {
	for len(s.fillq) > 0 && s.fillq[0].at <= now {
		e := s.fillq[0].e
		s.fillq = s.fillq[1:]
		s.fill(now, e)
	}
}

// fill completes an LLC miss: installs the block, routes the L2
// victim's writeback, and wakes the merged waiters.
func (s *System) fill(now uint64, e *mshrEntry) {
	s.mshr.remove(e.addr)
	victim := s.l2.InstallFor(e.tenant, e.addr, false)
	if victim.Valid && victim.Dirty {
		s.wbq = append(s.wbq, pendingWrite{addr: victim.Addr, core: -1, tenant: s.tenantOfAddr(victim.Addr)})
	}
	for _, c := range e.loads {
		s.wakeCore(c, now)
		s.installL1(now, c, e.addr, false)
		s.cores[c].LoadReturned(now)
	}
	for _, c := range e.stores {
		s.wakeCore(c, now)
		s.installL1(now, c, e.addr, true)
		s.cores[c].StoreDrained(now)
	}
	// The entry left the table and the fill queue, and its closure
	// fired before the fill was scheduled — nothing references it now.
	s.freeMSHR = append(s.freeMSHR, e)
}

// newMSHREntry takes a miss entry from the free list (or allocates
// one) for a primary miss on addr served by channel ch. The waiter
// slices keep their capacity across lives, and the OnDone closure is
// created once per entry — it reads e.ch at fire time, so reuse needs
// no new closure.
func (s *System) newMSHREntry(addr uint64, ten, ch int) *mshrEntry {
	if n := len(s.freeMSHR); n > 0 {
		e := s.freeMSHR[n-1]
		s.freeMSHR[n-1] = nil
		s.freeMSHR = s.freeMSHR[:n-1]
		e.addr, e.tenant, e.ch = addr, ten, ch
		e.loads, e.stores = e.loads[:0], e.stores[:0]
		return e
	}
	e := &mshrEntry{addr: addr, tenant: ten, ch: ch} //mclint:alloc-ok -- free-list cold path: minted only until the MSHR working set exists; steady-state misses pop freeMSHR above
	//mclint:owns -- created once per entry and recycled with it; the closure re-reads e's fields at fire time, and fires only while the entry is resident in the table
	e.onDone = func(at uint64) { //mclint:alloc-ok -- the closure is created once per entry (cold path) and recycled with it; reuse re-reads e.ch at fire time instead of re-closing
		s.completeFill(e.ch, at+uint64(s.cfg.MemPathLatency), e)
	}
	return e
}

// installL1 puts a block in a core's L1, pushing any dirty victim down
// into the L2 (and the L2's own victim toward memory).
func (s *System) installL1(now uint64, core int, addr uint64, dirty bool) {
	victim := s.l1[core].Install(addr, dirty)
	if !victim.Valid || !victim.Dirty {
		return
	}
	if s.l2.Access(victim.Addr, true) {
		return // merged into the L2 copy
	}
	// Non-inclusive corner: the L2 no longer holds the line; allocate
	// it dirty (the victim carries the whole block).
	l2v := s.l2.InstallFor(s.coreTenant[core], victim.Addr, true)
	if l2v.Valid && l2v.Dirty {
		s.wbq = append(s.wbq, pendingWrite{addr: l2v.Addr, core: core, tenant: s.tenantOfAddr(l2v.Addr)})
	}
}

// drainWritebacks pushes pending writebacks into the controllers,
// preserving order, stopping at the first rejection.
func (s *System) drainWritebacks(now uint64) {
	for len(s.wbq) > 0 {
		wb := s.wbq[0]
		loc := s.decode(wb.tenant, wb.addr)
		if !s.ctrls[loc.Channel].EnqueueWrite(now, memctrl.Source{Core: wb.core, Tenant: wb.tenant}, wb.addr, loc, nil) {
			return
		}
		s.notifyCtrl(loc.Channel, now)
		s.wbq = s.wbq[1:]
	}
}

// tickIO injects each tenant's DMA traffic, retrying rejected requests
// in order.
func (s *System) tickIO(now uint64) {
	for i, a := range s.ios {
		if addr, ok, write := a.Next(); ok {
			s.ioq = append(s.ioq, pendingIO{addr: addr, write: write, tenant: s.ioTenant[i]})
		}
	}
	for len(s.ioq) > 0 {
		req := s.ioq[0]
		loc := s.decode(req.tenant, req.addr)
		ctl := s.ctrls[loc.Channel]
		src := memctrl.Source{Core: -1, Tenant: req.tenant}
		var ok bool
		if req.write {
			ok = ctl.EnqueueWrite(now, src, req.addr, loc, nil)
		} else {
			ok = ctl.EnqueueRead(now, src, req.addr, loc, memctrl.ReadPrefetch, nil)
		}
		if !ok {
			return
		}
		s.notifyCtrl(loc.Channel, now)
		s.ioq = s.ioq[1:]
	}
}

// resetStats clears all measurement state at the warmup boundary.
func (s *System) resetStats(now uint64) {
	for _, c := range s.cores {
		c.ResetStats()
	}
	for _, ctl := range s.ctrls {
		ctl.ResetStats(now)
	}
	s.l2.Stats.Reset()
	for _, l1 := range s.l1 {
		l1.Stats.Reset()
	}
	s.demandMisses = 0
	for i := range s.tenantMisses {
		s.tenantMisses[i] = 0
	}
}

// primeCaches installs a steady-state content sample into the L2:
// every core's hot region (resident by construction) plus a random
// sample of cold-region blocks filling the remaining capacity, dirty
// with the profile's store fraction. Streaming the equivalent miss
// history would take tens of millions of instructions (the paper warms
// one billion); for a random miss stream the steady-state tag-array
// content is statistically just such a sample, so installing it
// directly is equivalent and ~1000x faster. The short functional
// warmup that follows settles L1s and LRU order.
//
// Multi-tenant systems split the installed sample in proportion to
// each tenant's core share — the same proportional cache occupancy an
// unmanaged shared LLC converges to under equal per-core pressure.
func (s *System) primeCaches() {
	totalCores := len(s.cores)
	for ti := range s.tenants {
		rt := &s.tenants[ti]
		p := rt.profile
		layout := rt.layout
		rng := newPrimeRNG(s.cfg.Seed ^ tenantSalt(ti))
		block := uint64(s.cfg.L2.BlockBytes)
		d := p.Derived()
		// Install-history mixture: a miss is a stream-burst block with
		// probability fs, else a cold block. Stream blocks arrive in
		// sequential dirty runs (store-dominated bursts), cold blocks
		// are scattered and dirty with the store fraction. Replaying
		// 1.2x the L2 capacity of such installs reproduces the
		// steady-state content, dirtiness and LRU grouping of a long
		// warmup.
		streamShare := 0.0
		if total := d.PCold + d.PBurstStart*d.BurstLen; total > 0 {
			streamShare = d.PBurstStart * d.BurstLen / total
		}
		burstDirty := p.BurstStoreFraction
		if burstDirty == 0 {
			burstDirty = p.StoreFraction
		}
		installs := s.cfg.L2.SizeBytes / s.cfg.L2.BlockBytes * 6 / 5 * p.Cores / totalCores
		for i := 0; i < installs; {
			if rng.float() < streamShare {
				run := int(d.BurstLen)
				if run < 1 {
					run = 1
				}
				start := layout.StreamBase + (rng.next()%layout.StreamSize)&^(block-1)
				for j := 0; j < run && i < installs; j++ {
					s.l2.InstallFor(ti, start+uint64(j)*block, rng.float() < burstDirty)
					i++
				}
			} else {
				addr := layout.ColdBase + (rng.next()%layout.ColdSize)&^(block-1)
				s.l2.InstallFor(ti, addr, rng.float() < p.StoreFraction)
				i++
			}
		}
	}
	// Hot regions last: resident and most recently used.
	for ti := range s.tenants {
		rt := &s.tenants[ti]
		block := uint64(s.cfg.L2.BlockBytes)
		for core := 0; core < rt.profile.Cores; core++ {
			base := rt.layout.HotBase + uint64(core)*rt.layout.HotStride
			for off := uint64(0); off < rt.layout.HotStride; off += block {
				s.l2.InstallFor(ti, base+off, false)
			}
		}
	}
}

// autoWarmupInstr sizes the functional warmup that follows cache
// priming: enough to populate the L1s and realistic LRU/dirty state.
func (s *System) autoWarmupInstr() uint64 {
	return 60_000
}

// FunctionalWarmup primes the caches and then streams instrPerCore
// instructions from every core through the cache hierarchy with no
// timing — the SimFlex-style functional warming of §3.2. DRAM and
// controllers are untouched; dirty victims are dropped (their
// writebacks belong to the un-timed past). Zero selects the automatic
// sizing.
func (s *System) FunctionalWarmup(instrPerCore uint64) {
	s.primeCaches()
	if instrPerCore == 0 {
		instrPerCore = s.autoWarmupInstr()
	}
	for coreID, gen := range s.gens {
		l1 := s.l1[coreID]
		ten := s.coreTenant[coreID]
		for n := uint64(0); n < instrPerCore; n++ {
			op := gen.Next()
			if op.Kind == workload.OpNonMem {
				continue
			}
			addr := op.Addr & s.blockMask
			write := op.Kind == workload.OpStore
			if l1.Access(addr, write) {
				continue
			}
			if !s.l2.Access(addr, false) {
				s.l2.InstallFor(ten, addr, false) // victim writeback dropped
			}
			v := l1.Install(addr, write)
			if v.Valid && v.Dirty && !s.l2.Access(v.Addr, true) {
				s.l2.InstallFor(ten, v.Addr, true)
			}
		}
	}
	s.warmed = true
}

// Step advances the whole system by one cycle. Most callers use Run;
// Step exists for fine-grained tests and incremental benchmarks. In
// kernel mode the parked cores' stall counters are settled before
// returning, so single-stepped statistics read exactly as the
// per-cycle loop's would.
func (s *System) Step() {
	if s.kernelOn() {
		s.stepKernel()
		s.settleCores()
		return
	}
	s.stepNaive()
}

// stepNaive is the reference per-cycle loop: every component is ticked
// every cycle. It drives the FastForward=false mode and the legacy
// horizon-scan mode, and is the baseline every accelerated mode must
// match bit-for-bit.
func (s *System) stepNaive() {
	now := s.cycle
	s.deliverFills(now)
	s.tickIO(now)
	s.drainWritebacks(now)
	for _, c := range s.cores {
		c.Tick(now, s)
	}
	for _, ctl := range s.ctrls {
		ctl.Tick(now)
	}
	s.cycle++
}

// horizon returns the earliest cycle >= s.cycle at which any component
// can change state, by scanning every component (the PR 1 engine; the
// event kernel in kernel.go replaces this scan with queue lookups). A
// result equal to s.cycle means some component is active now and the
// clock must advance cycle-by-cycle.
func (s *System) horizon() uint64 {
	now := s.cycle
	// Pending writebacks and rejected DMA requests retry every cycle.
	if len(s.wbq) > 0 || len(s.ioq) > 0 {
		return now
	}
	h := cpu.Never
	for _, c := range s.cores {
		e := c.NextEvent(now)
		if e == now {
			return now
		}
		if e < h {
			h = e
		}
	}
	if len(s.fillq) > 0 {
		at := s.fillq[0].at
		if at <= now {
			return now
		}
		if at < h {
			h = at
		}
	}
	for _, ctl := range s.ctrls {
		e := ctl.NextEvent(now)
		if e == now {
			return now
		}
		if e < h {
			h = e
		}
	}
	return h
}

// fastForward jumps the clock to the event horizon, bounded by limit
// (the warmup boundary or the end of the run). It reports whether any
// cycles were skipped; when it returns false the caller must Step. The
// skipped cycles are provably inert: every core is stalled (their
// stall counters are applied in bulk), every controller is inside its
// own event horizon, no fill is due, and each IO agent's per-cycle
// injection draws are replayed exactly by Scan/Skip — a jump cut short
// by one agent leaves the others' scanned-silent windows to be
// absorbed by their later Next calls.
func (s *System) fastForward(limit uint64) bool {
	h := s.horizon()
	if h > limit {
		h = limit
	}
	if h <= s.cycle {
		return false
	}
	n := s.negotiateIOJump(h - s.cycle)
	if n == 0 {
		return false
	}
	to := s.cycle + n
	for _, c := range s.cores {
		c.Advance(s.cycle, to)
	}
	s.cycle = to
	return true
}

// negotiateIOJump asks every IO agent to confirm up to n upcoming
// cycles silent (consuming their per-cycle injection draws exactly
// once via Scan) and returns the largest jump all agents agree to,
// consuming that many confirmed-silent cycles with Skip. Zero means
// some agent fires this cycle and the caller must step. A jump cut
// short by one agent leaves the others' scanned-silent windows to be
// absorbed by their later Next calls; both fast-forward engines share
// this negotiation so their replay semantics cannot drift apart.
func (s *System) negotiateIOJump(n uint64) uint64 {
	for _, a := range s.ios {
		idle, fired := a.Scan(n)
		if fired && idle == 0 {
			return 0
		}
		if idle < n {
			n = idle
		}
	}
	for _, a := range s.ios {
		a.Skip(n)
	}
	return n
}

// Advance simulates n cycles from the current clock, using the event
// kernel by default, the legacy horizon-scan fast-forward engine when
// Config.LegacyScan asks for it, and the per-cycle Step loop when
// FastForward is off. All three paths produce bit-identical state and
// statistics (kernel_test.go runs them side by side).
func (s *System) Advance(n uint64) {
	end := s.cycle + n
	if s.rec == nil {
		s.advanceTo(end)
		return
	}
	// Interval recorder attached: chunk the advance at recorder
	// boundaries so samples land on identical cycles in every loop
	// mode. Chunked advances compose bit-identically (the PR 4
	// equivalence suite pins Advance(a); Advance(b) == Advance(a+b)),
	// so the only observable difference is the snapshots themselves.
	for s.cycle < end {
		stop := end
		if nb := s.rec.NextBoundary(); nb < stop {
			stop = nb
		}
		s.advanceTo(stop)
		if s.cycle == s.rec.NextBoundary() {
			s.rec.Record(s.obsSnapshot())
		}
	}
}

// advanceTo runs the configured loop mode up to the absolute cycle
// end. In kernel mode advanceKernel settles parked cores' stall
// counters before returning, so counters read at a chunk boundary are
// exactly the per-cycle loop's values.
func (s *System) advanceTo(end uint64) {
	if s.kernelOn() {
		s.advanceKernel(end)
		return
	}
	for s.cycle < end {
		if s.cfg.FastForward && s.cycle >= s.ffRetryAt {
			if s.fastForward(end) {
				continue
			}
			s.ffRetryAt = s.cycle + ffBackoff
		}
		s.stepNaive()
	}
}

// Run performs functional warming (unless already done), timed warmup,
// then measurement, and returns the metrics of the measurement window.
func (s *System) Run() Metrics {
	if !s.warmed {
		s.FunctionalWarmup(s.cfg.WarmupInstrPerCore)
	}
	total := s.cfg.WarmupCycles + s.cfg.MeasureCycles
	if s.cycle < s.cfg.WarmupCycles {
		s.Advance(s.cfg.WarmupCycles - s.cycle)
	}
	if s.cycle == s.cfg.WarmupCycles {
		s.resetStats(s.cycle)
		if s.rec != nil {
			// Re-anchor the interval series exactly like the aggregate
			// stats reset: the measure phase starts from zero here.
			s.rec.Reset(s.obsSnapshot())
		}
	}
	if s.cycle < total {
		s.Advance(total - s.cycle)
	}
	if s.rec != nil && s.cycle > s.rec.LastCycle() {
		// Close the final partial interval when the run length is not
		// a multiple of the recorder period.
		s.rec.Record(s.obsSnapshot())
	}
	return s.collect(total)
}

// collect assembles Metrics at endCycle.
func (s *System) collect(endCycle uint64) Metrics {
	m := Metrics{Cycles: s.cfg.MeasureCycles}
	for _, c := range s.cores {
		m.Retired += c.Stats.Retired
		m.PerCoreIPC = append(m.PerCoreIPC, float64(c.Stats.Retired)/float64(s.cfg.MeasureCycles))
	}
	m.UserIPC = float64(m.Retired) / float64(s.cfg.MeasureCycles)
	m.DemandMisses = s.demandMisses
	if m.Retired > 0 {
		m.MPKI = float64(s.demandMisses) / (float64(m.Retired) / 1000)
	}

	var latSum, latCount float64
	var rq, wq, bw float64
	var act1, actTotal uint64
	for _, ctl := range s.ctrls {
		st := &ctl.Stats
		m.ReadsServed += st.ReadsServed
		m.WritesServed += st.WritesServed
		m.RowHits += st.RowHits
		m.RowMisses += st.RowMisses
		m.RowConflicts += st.RowConflicts
		m.PolicyCloses += st.PolicyCloses
		m.ConflictCloses += st.ConflictCloses
		m.ForwardedReads += st.ForwardedReads
		latSum += st.ReadLatency.Mean() * float64(st.ReadLatency.Count())
		latCount += float64(st.ReadLatency.Count())
		rq += st.ReadQ.Average(endCycle)
		wq += st.WriteQ.Average(endCycle)

		dev := &ctl.Channel().Stats
		m.Activates += dev.Activates
		bw += float64(dev.DataBusBusy) / float64(s.cfg.MeasureCycles)
		for i := 1; i < len(dev.ActivationReuse); i++ {
			actTotal += dev.ActivationReuse[i]
		}
		act1 += dev.ActivationReuse[1]
	}
	n := float64(len(s.ctrls))
	if latCount > 0 {
		m.AvgReadLatency = latSum/latCount + float64(s.cfg.MemPathLatency) + float64(s.cfg.L2HitLatency)
	}
	total := m.RowHits + m.RowMisses + m.RowConflicts
	if total > 0 {
		m.RowHitRate = float64(m.RowHits) / float64(total)
	}
	m.AvgReadQ = rq / n
	m.AvgWriteQ = wq / n
	m.BandwidthUtil = bw / n
	if actTotal > 0 {
		m.SingleAccessFrac = float64(act1) / float64(actTotal)
	}
	if s.cfg.multiTenant() {
		m.Tenants = s.collectTenants()
	}
	return m
}

// collectTenants assembles the per-tenant breakdown (multi-tenant runs
// only; solo Metrics are unchanged from the single-tenant simulator).
func (s *System) collectTenants() []TenantMetrics {
	out := make([]TenantMetrics, len(s.tenants))
	for ti := range s.tenants {
		rt := &s.tenants[ti]
		tm := TenantMetrics{
			Tenant: ti,
			Name:   rt.spec.Label(),
			Cores:  rt.profile.Cores,
		}
		for c := rt.firstCore; c < rt.firstCore+rt.profile.Cores; c++ {
			tm.Retired += s.cores[c].Stats.Retired
		}
		tm.IPC = float64(tm.Retired) / float64(s.cfg.MeasureCycles)
		tm.DemandMisses = s.tenantMisses[ti]
		if tm.Retired > 0 {
			tm.MPKI = float64(tm.DemandMisses) / (float64(tm.Retired) / 1000)
		}
		var latSum uint64
		for _, ctl := range s.ctrls {
			ts := ctl.TenantStatsSlice()
			if ti >= len(ts) {
				continue
			}
			st := &ts[ti]
			tm.ReadsServed += st.ReadsServed
			tm.WritesServed += st.WritesServed
			tm.RowHits += st.RowHits
			tm.RowMisses += st.RowMisses
			tm.RowConflicts += st.RowConflicts
			latSum += st.ReadLatencySum
		}
		if tm.ReadsServed > 0 {
			tm.AvgReadLatency = float64(latSum)/float64(tm.ReadsServed) +
				float64(s.cfg.MemPathLatency) + float64(s.cfg.L2HitLatency)
		}
		if total := tm.RowHits + tm.RowMisses + tm.RowConflicts; total > 0 {
			tm.RowHitRate = float64(tm.RowHits) / float64(total)
		}
		out[ti] = tm
	}
	return out
}
