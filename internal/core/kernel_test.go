package core

import (
	"math/rand"
	"reflect"
	"testing"

	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// runModes executes one Config under all four execution modes — the
// naive per-cycle loop, the legacy horizon scan, the event kernel,
// and the sharded parallel kernel (Workers=4) — and fails unless the
// Metrics and final clock agree bit-for-bit. The naive loop ticks
// every component every cycle, so agreement means the accelerated
// modes observed exactly the same event ordering. The parallel mode
// runs whatever sharding the config admits (clamped to the channel
// count, serial fallback for cross-channel schedulers); the matrix
// test in parallel_test.go additionally pins configs where sharding
// provably engages.
func runModes(t *testing.T, cfg Config, label string) Metrics {
	t.Helper()
	run := func(ff, legacy bool, workers int) (Metrics, uint64) {
		c := cfg
		c.FastForward = ff
		c.LegacyScan = legacy
		c.Workers = workers
		sys, err := NewSystem(c)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return sys.Run(), sys.cycle
	}
	naive, naiveCycle := run(false, false, 0)
	scan, scanCycle := run(true, true, 0)
	kernel, kernelCycle := run(true, false, 0)
	parallel, parallelCycle := run(true, false, 4)
	if naiveCycle != scanCycle || naiveCycle != kernelCycle || naiveCycle != parallelCycle {
		t.Fatalf("%s: final clocks diverged: naive=%d scan=%d kernel=%d parallel=%d",
			label, naiveCycle, scanCycle, kernelCycle, parallelCycle)
	}
	if !reflect.DeepEqual(naive, scan) {
		t.Fatalf("%s: legacy scan diverged from naive loop:\nnaive: %+v\nscan:  %+v", label, naive, scan)
	}
	if !reflect.DeepEqual(naive, kernel) {
		t.Fatalf("%s: event kernel diverged from naive loop:\nnaive: %+v\nkernel: %+v", label, naive, kernel)
	}
	if !reflect.DeepEqual(naive, parallel) {
		t.Fatalf("%s: sharded kernel (workers=4) diverged from naive loop:\nnaive:    %+v\nparallel: %+v", label, naive, parallel)
	}
	return kernel
}

// randomProfile draws a valid profile from the whole parameter space
// the generator supports: any intensity, store mix, fractional CPI,
// MLP depth, burst shape, per-core imbalance, region sizing, core
// count (beyond the paper's 16) and optional DMA traffic.
func randomProfile(rng *rand.Rand) workload.Profile {
	cores := 2 + rng.Intn(23) // 2..24 — crosses the 16-core baseline
	intensity := []float64{1}
	if rng.Intn(2) == 0 {
		intensity = make([]float64, 1+rng.Intn(4))
		for i := range intensity {
			intensity[i] = 0.3 + 2.2*rng.Float64()
		}
	}
	memRefs := 100 + rng.Float64()*300
	p := workload.Profile{
		Name: "Random", Acronym: "RND", Category: workload.SCOW,
		Cores:               cores,
		MemRefsPerKiloInstr: memRefs,
		StoreFraction:       rng.Float64() * 0.5,
		BaseCPI:             1 + rng.Float64()*3,
		TargetMPKI:          1 + rng.Float64()*29,
		TargetRowHit:        0.05 + rng.Float64()*0.55,
		TargetSingleAccess:  0.6 + rng.Float64()*0.3,
		MLPLimit:            1 + rng.Intn(6),
		BurstGapInstr:       rng.Intn(49),
		BurstStoreFraction:  rng.Float64() * 0.6,
		CoreIntensity:       intensity,
		HotBytesPerCore:     uint64(16+rng.Intn(49)) << 10,
		StreamBytes:         uint64(64+rng.Intn(193)) << 20,
		ColdBytes:           uint64(512+rng.Intn(1537)) << 20,
	}
	if rng.Intn(3) == 0 {
		p.IO = workload.IOProfile{
			Enabled:            true,
			BurstsPerMCycle:    20 + rng.Float64()*80,
			ScalesWithChannels: rng.Intn(2) == 0,
			BurstBlocks:        1 + rng.Intn(32),
			WriteFraction:      rng.Float64(),
		}
	}
	return p
}

// TestKernelDifferential is the differential property test of the
// event-kernel refactor: random workloads (random traces by
// construction — the generators are seeded stochastic streams) stepped
// through the legacy horizon scan and the engine queue side by side
// must produce identical event orderings and Metrics. The naive
// per-cycle loop runs as the ground truth for both.
func TestKernelDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	kinds := []sched.Kind{sched.FRFCFS, sched.ATLAS, sched.PARBS, sched.FCFSBanks}
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 10; trial++ {
		p := randomProfile(rng)
		cfg := DefaultConfig(p)
		cfg.Scheduler = kinds[rng.Intn(len(kinds))]
		cfg.Channels = 1 << rng.Intn(3)
		cfg.Seed = rng.Uint64() | 1
		cfg.WarmupCycles = 2_000
		cfg.MeasureCycles = 10_000
		cfg.WarmupInstrPerCore = 2_000
		cfg.SchedOpts.ATLAS = sched.ATLASConfig{
			QuantumCycles: 3_000, Alpha: 0.875,
			StarvationThreshold: 500, ScanDepth: 2,
		}
		label := p.Acronym + "/" + cfg.Scheduler.String()
		t.Run(label, func(t *testing.T) {
			m := runModes(t, cfg, label)
			if m.Retired == 0 {
				t.Fatalf("%s: degenerate trial retired nothing", label)
			}
		})
	}
}

// TestKernel64CoreEquivalence pins the regime the kernel was built
// for: a 64-core machine must still be bit-identical to the naive
// per-cycle loop and the legacy scan.
func TestKernel64CoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	p := workload.DataServing()
	p.Cores = 64
	cfg := DefaultConfig(p)
	cfg.WarmupCycles = 2_000
	cfg.MeasureCycles = 15_000
	cfg.WarmupInstrPerCore = 2_000
	m := runModes(t, cfg, "DS-64c")
	if m.Retired == 0 {
		t.Fatal("64-core run retired nothing")
	}
}

// TestKernelMixEquivalence covers the colocation stack on the kernel:
// a four-tenant 32-core mix under the QoS scheduler with bank and way
// partitioning enabled, including per-tenant metrics.
func TestKernelMixEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	mix := tenant.NewMix("",
		tenant.Spec{Profile: workload.DataServing(), Cores: 8},
		tenant.Spec{Profile: workload.WebFrontend(), Cores: 8},
		tenant.Spec{Profile: workload.TPCHQ6(), Cores: 8},
		tenant.Spec{Profile: workload.MemoryHog(), Cores: 8},
	)
	cfg := DefaultMixConfig(mix)
	cfg.Scheduler = sched.QoS
	cfg.Isolation = Isolation{BankPartition: true, WayPartition: true}
	cfg.WarmupCycles = 2_000
	cfg.MeasureCycles = 15_000
	cfg.WarmupInstrPerCore = 2_000
	m := runModes(t, cfg, "mix-32c")
	if len(m.Tenants) != 4 {
		t.Fatalf("expected 4 tenant breakdowns, got %d", len(m.Tenants))
	}
}

// TestKernelChunkedAdvance checks that kernel-mode Advance composes:
// uneven chunk boundaries (which force settles and jump truncation)
// land on the same state as one call.
func TestKernelChunkedAdvance(t *testing.T) {
	cfg := DefaultConfig(workload.WebSearch())
	cfg.WarmupInstrPerCore = 1_000
	build := func() *System {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.FunctionalWarmup(1_000)
		return sys
	}
	a, b := build(), build()
	a.Advance(9_000)
	for _, n := range []uint64{1, 7, 2_492, 3_000, 3_500} {
		b.Advance(n)
	}
	am, bm := a.collect(9_000), b.collect(9_000)
	if !reflect.DeepEqual(am, bm) {
		t.Fatalf("chunked kernel Advance diverged:\none-shot: %+v\nchunked:  %+v", am, bm)
	}
}

// stepAndAudit single-steps a kernel-mode system and, every time a
// controller's park horizon moves (a park, a re-park, or a
// bank-granular re-arm from an enqueue), replays the parked window
// cycle by cycle against the raw DRAM legality rules: horizons must
// be exact — never late (a legal command inside the window would
// desynchronize the engines) and never early (a spurious wake would
// mask lateness bugs by brute force).
func stepAndAudit(t *testing.T, cfg Config, cycles uint64, label string) {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !sys.kernelOn() {
		t.Fatalf("%s: expected kernel mode", label)
	}
	sys.FunctionalWarmup(2_000)
	last := make([]uint64, len(sys.ctrls))
	audits := 0
	for i := uint64(0); i < cycles; i++ {
		sys.Step()
		now := sys.cycle - 1
		for ci, ctl := range sys.ctrls {
			w := ctl.ParkHorizon()
			if w == last[ci] {
				continue
			}
			last[ci] = w
			if err := ctl.VerifyParkHorizon(now, 4_096); err != nil {
				t.Fatalf("%s: mc%d at cycle %d: %v", label, ci, now, err)
			}
			audits++
		}
	}
	if audits == 0 {
		t.Fatalf("%s: no park horizons were ever established — audit exercised nothing", label)
	}
}

// TestParkHorizonExactness is the system-level property test of the
// per-bank wake-up horizons: randomized profiles (including >16-core
// configs and DMA agents) under FR-FCFS, ATLAS, PAR-BS and QoS, plus
// an isolated multi-tenant mix, all audited park by park.
func TestParkHorizonExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-stepped audits are slow")
	}
	kinds := []sched.Kind{sched.FRFCFS, sched.ATLAS, sched.PARBS, sched.QoS}
	rng := rand.New(rand.NewSource(20260731))
	for trial := 0; trial < 6; trial++ {
		p := randomProfile(rng)
		cfg := DefaultConfig(p)
		cfg.Scheduler = kinds[trial%len(kinds)]
		cfg.Channels = 1 << rng.Intn(2)
		cfg.Seed = rng.Uint64() | 1
		cfg.SchedOpts.ATLAS = sched.ATLASConfig{
			QuantumCycles: 3_000, Alpha: 0.875,
			StarvationThreshold: 500, ScanDepth: 2,
		}
		cfg.SchedOpts.QoS = sched.QoSConfig{
			MaxSlowdownSLO: 1.5, QuantumCycles: 5_000, Alpha: 0.875,
			StarvationThreshold: 1_000, ScanDepth: 4, BaselineLatency: 70,
		}
		label := p.Acronym + "/" + cfg.Scheduler.String()
		t.Run(label, func(t *testing.T) {
			stepAndAudit(t, cfg, 12_000, label)
		})
	}

	t.Run("isolated-mix-32c", func(t *testing.T) {
		mix := tenant.NewMix("",
			tenant.Spec{Profile: workload.DataServing(), Cores: 8},
			tenant.Spec{Profile: workload.TPCHQ6(), Cores: 8},
			tenant.Spec{Profile: workload.MemoryHog(), Cores: 16},
		)
		cfg := DefaultMixConfig(mix)
		cfg.Scheduler = sched.QoS
		cfg.Isolation = Isolation{BankPartition: true, WayPartition: true}
		cfg.SchedOpts.QoS = sched.QoSConfig{
			MaxSlowdownSLO: 1.5, QuantumCycles: 5_000, Alpha: 0.875,
			StarvationThreshold: 1_000, ScanDepth: 4, BaselineLatency: 70,
		}
		stepAndAudit(t, cfg, 12_000, "isolated-mix-32c")
	})
}

// TestKernelWriteHeavyEquivalence pins the park-heavy regime the
// per-bank horizons optimize: a write-dominated profile spends most
// of its time in drain shadows, where enqueues into parked
// controllers take the O(1) re-arm path. All three engines must stay
// bit-identical through it.
func TestKernelWriteHeavyEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	p := workload.MapReduce()
	p.StoreFraction = 0.6
	p.BurstStoreFraction = 0.7
	p.Acronym = "WH"
	cfg := DefaultConfig(p)
	cfg.WarmupCycles = 2_000
	cfg.MeasureCycles = 15_000
	cfg.WarmupInstrPerCore = 2_000
	m := runModes(t, cfg, "WH")
	if m.WritesServed == 0 {
		t.Fatal("write-heavy run served no writes")
	}
}
