package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"cloudmc/internal/obs"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// workersFlag parameterizes the parallel-correctness matrix: CI runs
// the suite once per cell of Workers x GOMAXPROCS
// (go test ./internal/core -run TestParallelCorrectnessMatrix
// -args -parallel.workers=N). 0 selects runtime.NumCPU().
var workersFlag = flag.Int("parallel.workers", 4, "worker count for TestParallelCorrectnessMatrix (0 = NumCPU)")

// matrixWorkers resolves the -parallel.workers flag.
func matrixWorkers() int {
	if *workersFlag == 0 {
		return runtime.NumCPU()
	}
	return *workersFlag
}

// parallelCase is one serial-vs-sharded comparison config.
type parallelCase struct {
	label string
	cfg   Config
}

// parallelCases spans the regimes the sharded phase must cover:
// multi-channel per-channel schedulers (where sharding engages),
// cross-channel schedulers (serial fallback), isolation, DMA traffic,
// and more channels than the paper's study uses.
func parallelCases() []parallelCase {
	short := func(cfg Config) Config {
		cfg.WarmupCycles = 2_000
		cfg.MeasureCycles = 10_000
		cfg.WarmupInstrPerCore = 2_000
		return cfg
	}

	ds4 := DefaultConfig(workload.DataServing())
	ds4.Channels = 4

	io8 := DefaultConfig(workload.MediaStreaming())
	io8.Channels = 8
	io8.Scheduler = sched.PARBS

	bank2 := DefaultConfig(workload.TPCHQ6())
	bank2.Channels = 2
	bank2.Scheduler = sched.FCFSBanks

	rl4 := DefaultConfig(workload.WebSearch())
	rl4.Channels = 4
	rl4.Scheduler = sched.RL

	atlas4 := DefaultConfig(workload.MapReduce())
	atlas4.Channels = 4
	atlas4.Scheduler = sched.ATLAS
	atlas4.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles: 3_000, Alpha: 0.875,
		StarvationThreshold: 500, ScanDepth: 2,
	}

	mix := tenant.NewMix("",
		tenant.Spec{Profile: workload.DataServing(), Cores: 8},
		tenant.Spec{Profile: workload.WebFrontend(), Cores: 8},
		tenant.Spec{Profile: workload.MemoryHog(), Cores: 8},
	)
	qosMix := DefaultMixConfig(mix)
	qosMix.Channels = 4
	qosMix.Scheduler = sched.QoS
	qosMix.Isolation = Isolation{BankPartition: true, WayPartition: true}

	return []parallelCase{
		{"DS/FR-FCFS/ch4", short(ds4)},
		{"MS/PAR-BS/ch8", short(io8)},
		{"TPCH-Q6/FCFS_Banks/ch2", short(bank2)},
		{"WS/RL/ch4", short(rl4)},
		{"MR/ATLAS/ch4", short(atlas4)},
		{"mix/QoS/ch4", short(qosMix)},
	}
}

// runPair runs one config serial and with the given worker count and
// returns both Metrics plus the sharded system's effective shard
// count.
func runPair(t *testing.T, cfg Config, workers int, label string) (serial, parallel Metrics, effective int) {
	t.Helper()
	run := func(w int) (Metrics, int) {
		c := cfg
		c.FastForward = true
		c.LegacyScan = false
		c.Workers = w
		sys, err := NewSystem(c)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return sys.Run(), sys.Workers()
	}
	serial, _ = run(0)
	parallel, effective = run(workers)
	return serial, parallel, effective
}

// TestParallelCorrectnessMatrix is the CI matrix body: every case of
// parallelCases must be bit-identical between the serial kernel and
// the sharded kernel at the -parallel.workers count, and sharding
// must actually engage for the per-channel schedulers (the matrix
// would otherwise pass vacuously).
func TestParallelCorrectnessMatrix(t *testing.T) {
	workers := matrixWorkers()
	for _, tc := range parallelCases() {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			serial, parallel, effective := runPair(t, tc.cfg, workers, tc.label)
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s: workers=%d diverged from serial:\nserial:   %+v\nparallel: %+v",
					tc.label, workers, serial, parallel)
			}
			want := workers
			if tc.cfg.Channels < want {
				want = tc.cfg.Channels
			}
			if sched.CrossChannel(tc.cfg.Scheduler) {
				want = 1
			}
			if want < 1 {
				want = 1
			}
			if effective != want {
				t.Fatalf("%s: effective workers = %d, want %d", tc.label, effective, want)
			}
			if serial.Retired == 0 {
				t.Fatalf("%s: degenerate case retired nothing", tc.label)
			}
		})
	}
}

// TestParallelWorkerClamping pins the effective-shard-count rules on
// their own: clamped to the channel count, serial for cross-channel
// schedulers, 0/1 = serial.
func TestParallelWorkerClamping(t *testing.T) {
	build := func(mutate func(*Config)) *System {
		cfg := DefaultConfig(workload.DataServing())
		cfg.Channels = 4
		mutate(&cfg)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	if got := build(func(c *Config) { c.Workers = 16 }).Workers(); got != 4 {
		t.Errorf("workers=16 over 4 channels: effective %d, want 4 (clamp)", got)
	}
	if got := build(func(c *Config) { c.Workers = 4; c.Scheduler = sched.ATLAS }).Workers(); got != 1 {
		t.Errorf("ATLAS with workers=4: effective %d, want 1 (cross-channel fallback)", got)
	}
	if got := build(func(c *Config) { c.Workers = 4; c.Scheduler = sched.QoS }).Workers(); got != 1 {
		t.Errorf("QoS with workers=4: effective %d, want 1 (cross-channel fallback)", got)
	}
	if got := build(func(c *Config) { c.Workers = 1 }).Workers(); got != 1 {
		t.Errorf("workers=1: effective %d, want 1", got)
	}
	if got := build(func(c *Config) { c.Workers = 0 }).Workers(); got != 1 {
		t.Errorf("workers=0: effective %d, want 1", got)
	}
	if got := build(func(c *Config) { c.Workers = 2; c.FastForward = false }).Workers(); got != 1 {
		t.Errorf("naive loop with workers=2: effective %d, want 1 (kernel off)", got)
	}
}

// TestShardedRaceStress is the race-detector stress body CI's race
// job runs explicitly: short randomized profiles at worker counts
// beyond the host's core count, exercising dispatch, barrier, panic
// plumbing and the merge under the race detector. It also asserts
// serial equality so a scheduling-dependent divergence cannot hide
// behind a clean race report.
func TestShardedRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	kinds := []sched.Kind{sched.FRFCFS, sched.PARBS, sched.FCFSBanks, sched.RL}
	for trial := 0; trial < 4; trial++ {
		p := randomProfile(rng)
		cfg := DefaultConfig(p)
		cfg.Scheduler = kinds[trial%len(kinds)]
		cfg.Channels = 8
		cfg.Seed = rng.Uint64() | 1
		cfg.WarmupCycles = 1_000
		cfg.MeasureCycles = 5_000
		cfg.WarmupInstrPerCore = 1_000
		workers := runtime.NumCPU() + 3 // over-subscribe; clamped to 8 channels
		label := p.Acronym + "/" + cfg.Scheduler.String()
		t.Run(label, func(t *testing.T) {
			serial, parallel, effective := runPair(t, cfg, workers, label)
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s: workers=%d diverged from serial", label, workers)
			}
			if effective < 2 {
				t.Fatalf("%s: stress ran with %d effective workers — nothing exercised", label, effective)
			}
		})
	}
}

// traceKey is the documented deterministic sort key of a trace line:
// (cycle, channel). A controller issues at most one DRAM command per
// tick, so the key is a total order over any one run's lines; sorting
// by it makes a sharded run's trace byte-identical to the serial
// run's (see obs.TraceWriter).
type traceKey struct {
	Cycle   uint64 `json:"cycle"`
	Channel int    `json:"channel"`
}

// sortTraceLines stable-sorts JSONL trace lines by (cycle, channel).
func sortTraceLines(t *testing.T, raw []byte) []byte {
	t.Helper()
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	keys := make([]traceKey, len(lines))
	for i, ln := range lines {
		if err := json.Unmarshal(ln, &keys[i]); err != nil {
			t.Fatalf("trace line %d: %v", i, err)
		}
	}
	idx := make([]int, len(lines))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.Cycle != kb.Cycle {
			return ka.Cycle < kb.Cycle
		}
		return ka.Channel < kb.Channel
	})
	var out bytes.Buffer
	for _, i := range idx {
		out.Write(lines[i])
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// obsArtifacts runs one config with the full observability stack
// attached and returns the recorder JSONL, recorder CSV and raw
// trace bytes.
func obsArtifacts(t *testing.T, cfg Config, workers int) (jsonl, csv, trace []byte) {
	t.Helper()
	c := cfg
	c.Workers = workers
	sys, err := NewSystem(c)
	if err != nil {
		t.Fatal(err)
	}
	var jb, cb, tb bytes.Buffer
	rec := obs.NewRecorder("par", 2_500, obs.NewJSONLSink(&jb), obs.NewCSVSink(&cb))
	sys.AttachRecorder(rec)
	tw := obs.NewTraceWriter(&tb, "par")
	sys.AttachTrace(tw)
	sys.Run()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() == 0 {
		t.Fatal("trace recorded no commands")
	}
	return jb.Bytes(), cb.Bytes(), tb.Bytes()
}

// TestParallelObsEquivalence covers the obs merge order: recorder
// JSONL and CSV from a workers=4 run must be byte-identical to the
// serial run as written (snapshots are coordinator-only, taken at
// barrier-settled chunk boundaries), and the command trace must be
// byte-identical after a stable sort by its documented (cycle,
// channel) key — the only artifact where worker interleaving can
// reorder lines within a cycle.
func TestParallelObsEquivalence(t *testing.T) {
	cfg := DefaultConfig(workload.DataServing())
	cfg.Channels = 4
	cfg.WarmupCycles = 2_000
	cfg.MeasureCycles = 10_000
	cfg.WarmupInstrPerCore = 2_000

	sj, sc, st := obsArtifacts(t, cfg, 0)
	pj, pc, pt := obsArtifacts(t, cfg, 4)

	if !bytes.Equal(sj, pj) {
		t.Errorf("recorder JSONL diverged between serial and workers=4 (%d vs %d bytes)", len(sj), len(pj))
	}
	if !bytes.Equal(sc, pc) {
		t.Errorf("recorder CSV diverged between serial and workers=4 (%d vs %d bytes)", len(sc), len(pc))
	}
	ss, ps := sortTraceLines(t, st), sortTraceLines(t, pt)
	if !bytes.Equal(ss, ps) {
		t.Errorf("command trace diverged after (cycle, channel) sort (%d vs %d bytes)", len(ss), len(ps))
	}
	// The serial trace is already in key order — sorting it must be a
	// no-op, otherwise the documented key is not the serial order and
	// the comparison above proves nothing.
	if !bytes.Equal(st, ss) {
		t.Error("serial trace is not in (cycle, channel) order; documented sort key is wrong")
	}
}

// TestParallel256CoreEquivalence pins the regime the sharding exists
// for — the ROADMAP's 256-core, 8-channel configuration — comparing
// the serial and sharded kernels directly (the naive loop at this
// scale belongs to the nightly suite).
func TestParallel256CoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("256-core paired simulations are slow")
	}
	cfg := DefaultConfig(workload.DataServing256())
	cfg.Channels = 8
	cfg.MSHRCap = 256
	cfg.WarmupCycles = 1_000
	cfg.MeasureCycles = 6_000
	cfg.WarmupInstrPerCore = 1_000
	serial, parallel, effective := runPair(t, cfg, 4, "DS-256c/ch8")
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("DS-256c/ch8: workers=4 diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if effective != 4 {
		t.Fatalf("DS-256c/ch8: effective workers = %d, want 4", effective)
	}
	if serial.Retired == 0 {
		t.Fatal("256-core run retired nothing")
	}
}

// nightly reports whether the long-form nightly suite is requested
// (the scheduled workflow sets MCSIM_NIGHTLY=1; too slow for per-PR
// CI).
func nightly() bool { return os.Getenv("MCSIM_NIGHTLY") != "" }

// TestNightlyParallelDifferential is the long-form differential
// suite: many randomized trials across all four loop modes plus a
// sharded run at NumCPU workers, at 4x the per-PR cycle counts.
func TestNightlyParallelDifferential(t *testing.T) {
	if !nightly() {
		t.Skip("set MCSIM_NIGHTLY=1 to run the long-form differential suite")
	}
	kinds := []sched.Kind{sched.FRFCFS, sched.ATLAS, sched.PARBS, sched.FCFSBanks, sched.RL}
	rng := rand.New(rand.NewSource(20260809))
	trials := 30
	if testing.Short() {
		// The nightly race soak reruns this suite under -race -short;
		// the detector is ~10x slower, so trade volume for coverage.
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		p := randomProfile(rng)
		cfg := DefaultConfig(p)
		cfg.Scheduler = kinds[rng.Intn(len(kinds))]
		cfg.Channels = 1 << rng.Intn(4) // up to 8 channels
		cfg.Seed = rng.Uint64() | 1
		cfg.WarmupCycles = 8_000
		cfg.MeasureCycles = 40_000
		cfg.WarmupInstrPerCore = 4_000
		cfg.SchedOpts.ATLAS = sched.ATLASConfig{
			QuantumCycles: 6_000, Alpha: 0.875,
			StarvationThreshold: 1_000, ScanDepth: 2,
		}
		label := p.Acronym + "/" + cfg.Scheduler.String()
		t.Run(label, func(t *testing.T) {
			m := runModes(t, cfg, label)
			serial, parallel, _ := runPair(t, cfg, runtime.NumCPU(), label)
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s: workers=NumCPU diverged from serial", label)
			}
			if m.Retired == 0 {
				t.Fatalf("%s: degenerate trial retired nothing", label)
			}
		})
	}
}

// TestNightlyParkHorizonAudit is the long-form VerifyParkHorizon
// audit: the same brute-force park-by-park replay as
// TestParkHorizonExactness, over more trials and 4x the audited
// window.
func TestNightlyParkHorizonAudit(t *testing.T) {
	if !nightly() {
		t.Skip("set MCSIM_NIGHTLY=1 to run the long-form park-horizon audits")
	}
	kinds := []sched.Kind{sched.FRFCFS, sched.ATLAS, sched.PARBS, sched.QoS, sched.FCFSBanks, sched.RL}
	rng := rand.New(rand.NewSource(20260810))
	for trial := 0; trial < 12; trial++ {
		p := randomProfile(rng)
		cfg := DefaultConfig(p)
		cfg.Scheduler = kinds[trial%len(kinds)]
		cfg.Channels = 1 << rng.Intn(3)
		cfg.Seed = rng.Uint64() | 1
		cfg.SchedOpts.ATLAS = sched.ATLASConfig{
			QuantumCycles: 3_000, Alpha: 0.875,
			StarvationThreshold: 500, ScanDepth: 2,
		}
		cfg.SchedOpts.QoS = sched.QoSConfig{
			MaxSlowdownSLO: 1.5, QuantumCycles: 5_000, Alpha: 0.875,
			StarvationThreshold: 1_000, ScanDepth: 4, BaselineLatency: 70,
		}
		label := p.Acronym + "/" + cfg.Scheduler.String()
		t.Run(label, func(t *testing.T) {
			stepAndAudit(t, cfg, 48_000, label)
		})
	}
}
