package core

import "testing"

// TestMSHRTableMatchesMap drives the open-addressed table with a
// deterministic adversarial op stream (inserts, lookups, deletes over
// a small clustered key space to force probe chains and backward
// shifts) and cross-checks every result against a reference map.
func TestMSHRTableMatchesMap(t *testing.T) {
	const cap = 48
	tab := newMSHRTable(cap)
	ref := make(map[uint64]*mshrEntry)
	rng := newPrimeRNG(42)

	// Clustered keys: many share hash neighborhoods.
	key := func() uint64 { return (rng.next() % 257) << 6 }

	for op := 0; op < 200_000; op++ {
		a := key()
		switch {
		case rng.float() < 0.45 && len(ref) < cap:
			if _, ok := ref[a]; !ok {
				e := &mshrEntry{addr: a}
				ref[a] = e
				tab.put(e)
			}
		case rng.float() < 0.5:
			if tab.get(a) != ref[a] {
				t.Fatalf("op %d: get(%#x) = %v, want %v", op, a, tab.get(a), ref[a])
			}
		default:
			delete(ref, a)
			tab.remove(a)
		}
		if tab.len() != len(ref) {
			t.Fatalf("op %d: len %d, want %d", op, tab.len(), len(ref))
		}
	}
	// Final exhaustive cross-check.
	for a, e := range ref {
		if tab.get(a) != e {
			t.Fatalf("final: get(%#x) = %v, want %v", a, tab.get(a), e)
		}
	}
}

// TestMSHRTableZeroAddress: address zero is a legal block (core 0's
// hot region starts at physical 0) and must be storable.
func TestMSHRTableZeroAddress(t *testing.T) {
	tab := newMSHRTable(4)
	e := &mshrEntry{addr: 0}
	tab.put(e)
	if tab.get(0) != e {
		t.Fatal("zero address not found")
	}
	tab.remove(0)
	if tab.get(0) != nil || tab.len() != 0 {
		t.Fatal("zero address not removed")
	}
}
