package core

import (
	"reflect"
	"testing"

	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// isoMixConfig is mixConfig plus an isolation mode and the scaled QoS
// parameters (quantum compressed like ATLAS's, SLO from the caller).
func isoMixConfig(m tenant.Mix, k sched.Kind, iso Isolation, ff bool) Config {
	cfg := mixConfig(m, k, ff)
	cfg.Isolation = iso
	cfg.SchedOpts.QoS = sched.QoSConfig{
		MaxSlowdownSLO:      2.0,
		QuantumCycles:       7_000,
		Alpha:               0.875,
		StarvationThreshold: 1_000,
		ScanDepth:           4,
		BaselineLatency:     70,
	}
	return cfg
}

// TestNoIsolationGoldenMetrics pins the bit-identity contract: with
// every isolation knob off, the simulator must reproduce the exact
// Metrics the pre-isolation code produced (values recorded from the
// PR 2 tree at this configuration). A change here means the shared
// code path moved, not just the isolated one.
func TestNoIsolationGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations are slow")
	}
	solo, err := NewSystem(equivalenceConfig(workload.WebSearch(), sched.FRFCFS, true))
	if err != nil {
		t.Fatal(err)
	}
	sm := solo.Run()
	if sm.Retired != 231481 || sm.DemandMisses != 275 || sm.ReadsServed != 276 ||
		sm.WritesServed != 87 || sm.RowHits != 112 || sm.RowMisses != 5 ||
		sm.RowConflicts != 245 || sm.Activates != 252 {
		t.Fatalf("solo WS diverged from pre-isolation golden values: %+v", sm)
	}
	if sm.AvgReadLatency != 103.52536231884058 {
		t.Fatalf("solo WS AvgReadLatency = %v, want the pre-isolation 103.52536231884058", sm.AvgReadLatency)
	}

	mix := tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)
	sys, err := NewSystem(mixConfig(mix, sched.ATLAS, true))
	if err != nil {
		t.Fatal(err)
	}
	mm := sys.Run()
	if mm.Retired != 155233 || mm.DemandMisses != 2397 || mm.ReadsServed != 2397 ||
		mm.WritesServed != 768 || mm.RowHits != 141 || mm.RowMisses != 1445 ||
		mm.RowConflicts != 1578 || mm.Activates != 3185 {
		t.Fatalf("mixed DS+HOG diverged from pre-isolation golden values: %+v", mm)
	}
	if ds, hog := mm.Tenants[0], mm.Tenants[1]; ds.Retired != 121252 || hog.Retired != 33981 ||
		ds.AvgReadLatency != 246.20245398773005 || hog.AvgReadLatency != 1140.5770159343313 {
		t.Fatalf("per-tenant breakdown diverged from pre-isolation golden values: %+v / %+v", ds, hog)
	}
}

// TestBankPartitionSystemDisjoint probes the assembled system: with
// bank partitioning on, addresses drawn across each tenant's entire
// layout (and beyond, exercising wrap) must decode to disjoint
// (channel, rank, bank) sets; with isolation off, the partitioned
// mapper must not exist at all.
func TestBankPartitionSystemDisjoint(t *testing.T) {
	mix := tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)
	sys, err := NewSystem(isoMixConfig(mix, sched.FRFCFS, Isolation{BankPartition: true}, true))
	if err != nil {
		t.Fatal(err)
	}
	if sys.pmapper == nil {
		t.Fatal("bank partitioning did not build the partitioned mapper")
	}
	seen := make([]map[[3]int]bool, len(sys.tenants))
	for ti := range sys.tenants {
		seen[ti] = map[[3]int]bool{}
		rt := &sys.tenants[ti]
		span := rt.limit - rt.base
		rng := uint64(0x6c62272e07bb0142) * uint64(ti+1)
		for n := 0; n < 5000; n++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			addr := rt.base + (rng%(span*2))&^63
			loc := sys.pmapper.DecodeFor(ti, addr)
			seen[ti][[3]int{loc.Channel, loc.Rank, loc.Bank}] = true
		}
	}
	for key := range seen[0] {
		if seen[1][key] {
			t.Fatalf("tenants share bank ch%d/ra%d/ba%d under bank partitioning", key[0], key[1], key[2])
		}
	}

	plain, err := NewSystem(mixConfig(mix, sched.FRFCFS, true))
	if err != nil {
		t.Fatal(err)
	}
	if plain.pmapper != nil {
		t.Fatal("isolation off but partitioned mapper present")
	}
	if plain.l2.WayShares() != nil {
		t.Fatal("isolation off but LLC way partition present")
	}
}

// TestIsolationFastForwardEquivalence extends the equivalence suite to
// isolated systems: the event-horizon engine must stay bit-identical
// to the naive loop with banks+ways isolation on, under both FR-FCFS
// and the clock-driven QoS scheduler.
func TestIsolationFastForwardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	mixes := []tenant.Mix{
		tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8),
		// Two IO-carrying tenants: DMA decode goes through the
		// partitioned mapper too.
		tenant.Pair(workload.WebFrontend(), workload.MediaStreaming(), 8),
	}
	iso := Isolation{BankPartition: true, WayPartition: true}
	for _, m := range mixes {
		for _, k := range []sched.Kind{sched.FRFCFS, sched.QoS} {
			m, k := m, k
			t.Run(m.Name+"/"+k.String(), func(t *testing.T) {
				t.Parallel()
				run := func(ff bool) Metrics {
					sys, err := NewSystem(isoMixConfig(m, k, iso, ff))
					if err != nil {
						t.Fatal(err)
					}
					return sys.Run()
				}
				naive := run(false)
				fast := run(true)
				if !reflect.DeepEqual(naive, fast) {
					t.Fatalf("isolated fast-forward diverged:\nnaive: %+v\nfast:  %+v", naive, fast)
				}
			})
		}
	}
}

// mitigationScale is large enough for stable fairness numbers yet
// small enough for test runtimes; the acceptance thresholds below
// were measured at this exact scale and are deterministic (fixed
// seed).
func mitigationConfig(cfg Config) Config {
	cfg.WarmupCycles = 30_000
	cfg.MeasureCycles = 150_000
	quantum := uint64(15_000)
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles: quantum, Alpha: 0.875, StarvationThreshold: quantum / 8, ScanDepth: 2,
	}
	cfg.SchedOpts.QoS = sched.QoSConfig{
		MaxSlowdownSLO:      1.2,
		QuantumCycles:       quantum,
		Alpha:               0.875,
		StarvationThreshold: quantum / 8,
		ScanDepth:           4,
		BaselineLatency:     70,
	}
	return cfg
}

// victimSlowdown runs the DS+HOG mix under (scheduler, isolation) and
// returns the victim's slowdown against its solo baseline plus its
// row-hit rate in the shared run.
func victimSlowdown(t *testing.T, soloIPC float64, k sched.Kind, iso Isolation) (slowdown, rowHit float64) {
	t.Helper()
	mix := tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)
	cfg := mitigationConfig(DefaultMixConfig(mix))
	cfg.Scheduler = k
	cfg.Isolation = iso
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Run()
	return soloIPC / m.Tenants[0].IPC, m.Tenants[0].RowHitRate
}

// dsSoloIPC is the victim's baseline: alone on its 8 cores.
func dsSoloIPC(t *testing.T) float64 {
	t.Helper()
	sp := tenant.Spec{Profile: workload.DataServing(), Cores: 8}
	cfg := mitigationConfig(DefaultConfig(sp.Adjusted()))
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run().UserIPC
}

// TestIsolationMitigatesHog is the mitigation acceptance criterion:
// in the DS+HOG mix, banks+ways isolation must reduce the victim's
// slowdown versus the shared baseline under the same scheduler, and
// bank partitioning must restore the row locality the hog destroys.
func TestIsolationMitigatesHog(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations are slow")
	}
	solo := dsSoloIPC(t)
	shared, sharedHit := victimSlowdown(t, solo, sched.FRFCFS, Isolation{})
	isolated, isoHit := victimSlowdown(t, solo, sched.FRFCFS, Isolation{BankPartition: true, WayPartition: true})
	if shared <= 1.0 {
		t.Fatalf("no interference in the shared baseline (slowdown %.3f); nothing to mitigate", shared)
	}
	if isolated >= shared-0.05 {
		t.Fatalf("banks+ways isolation did not mitigate: victim slowdown %.3f vs shared %.3f", isolated, shared)
	}
	if isoHit <= sharedHit {
		t.Fatalf("bank partitioning did not restore row locality: hit %.3f vs shared %.3f", isoHit, sharedHit)
	}
}

// TestQoSMeetsSLOWhereFRFCFSViolates is the SLO acceptance criterion:
// with a 1.2x max-slowdown budget on the DS victim, FR-FCFS violates
// it and the QoS scheduler meets it, with no hardware isolation at
// all.
func TestQoSMeetsSLOWhereFRFCFSViolates(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations are slow")
	}
	const slo = 1.2
	solo := dsSoloIPC(t)
	frfcfs, _ := victimSlowdown(t, solo, sched.FRFCFS, Isolation{})
	qos, _ := victimSlowdown(t, solo, sched.QoS, Isolation{})
	if frfcfs <= slo {
		t.Fatalf("FR-FCFS meets the %.1fx SLO (victim slowdown %.3f); the scenario no longer discriminates", slo, frfcfs)
	}
	if qos > slo {
		t.Fatalf("QoS misses its %.1fx SLO: victim slowdown %.3f", slo, qos)
	}
}

// TestIsolationValidation covers the construction-time guards.
func TestIsolationValidation(t *testing.T) {
	// A tenant whose footprint fits the machine but not its bank
	// partition must be rejected with partitioning on and accepted
	// with it off.
	big := workload.TPCHQ17()
	big.ColdBytes = 20 << 30 // > half of the 32GB machine
	m := tenant.NewMix("",
		tenant.Spec{Profile: big, Cores: 8},
		tenant.Spec{Profile: workload.WebSearch(), Cores: 8},
	)
	if _, err := NewSystem(mixConfig(m, sched.FRFCFS, true)); err != nil {
		t.Fatalf("unpartitioned 20GB tenant rejected: %v", err)
	}
	if _, err := NewSystem(isoMixConfig(m, sched.FRFCFS, Isolation{BankPartition: true}, true)); err == nil {
		t.Fatal("tenant footprint exceeding its bank partition accepted")
	}

	// More tenants than LLC ways cannot be way-partitioned.
	var specs []tenant.Spec
	for i := 0; i < 17; i++ {
		specs = append(specs, tenant.Spec{Profile: workload.WebSearch(), Cores: 1})
	}
	wide := tenant.NewMix("wide17", specs...)
	cfg := isoMixConfig(wide, sched.FRFCFS, Isolation{WayPartition: true}, true)
	if err := cfg.Validate(); err == nil {
		t.Fatal("17 tenants across 16 LLC ways accepted")
	}
}

// TestIsolationParseRoundTrip: the axis vocabulary round-trips and
// rejects junk.
func TestIsolationParseRoundTrip(t *testing.T) {
	for _, iso := range Isolations {
		got, err := ParseIsolation(iso.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != iso {
			t.Fatalf("round trip %v -> %v", iso, got)
		}
	}
	if got, err := ParseIsolation("BANKS+Ways"); err != nil || !got.BankPartition || !got.WayPartition {
		t.Fatalf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParseIsolation("bogus"); err == nil {
		t.Fatal("bogus isolation mode accepted")
	}
}
