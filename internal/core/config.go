// Package core assembles the full simulated system of the study: the
// 16-core in-order pod of Lotfi-Kamran et al. with two cache levels, a
// crossbar, and one memory controller per DDR3 channel (paper Table
// 2). It is the package experiments drive: build a Config, run it,
// read the Metrics the paper's figures plot.
package core

import (
	"fmt"
	"strings"

	"cloudmc/internal/addrmap"
	"cloudmc/internal/cache"
	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
	"cloudmc/internal/pagepolicy"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// Isolation selects the inter-tenant isolation mechanisms of a
// colocation run. The zero value (no isolation) shares every resource,
// which is bit-identical to the pre-isolation simulator; each
// mechanism closes one interference channel of the memory-DoS
// literature.
type Isolation struct {
	// BankPartition carves each channel's combined rank x bank index
	// space into disjoint per-tenant slices (proportional to core
	// share, rounded to powers of two) and rebases every tenant's
	// address decode into its own slice, so two tenants can never
	// collide on a bank or a row buffer.
	BankPartition bool
	// WayPartition splits the shared LLC's ways among tenants
	// (proportional to core share); lookups hit anywhere, but each
	// tenant's fills may only evict lines in its own ways, so no
	// tenant can flush another's working set.
	WayPartition bool
}

// Enabled reports whether any isolation mechanism is on.
func (i Isolation) Enabled() bool { return i.BankPartition || i.WayPartition }

// String renders the mcmix axis vocabulary: none, banks, ways,
// banks+ways.
func (i Isolation) String() string {
	switch {
	case i.BankPartition && i.WayPartition:
		return "banks+ways"
	case i.BankPartition:
		return "banks"
	case i.WayPartition:
		return "ways"
	default:
		return "none"
	}
}

// ParseIsolation converts an isolation axis name (as printed by
// String) back to an Isolation value, case-insensitively, listing the
// valid names on error.
func ParseIsolation(s string) (Isolation, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return Isolation{}, nil
	case "banks":
		return Isolation{BankPartition: true}, nil
	case "ways":
		return Isolation{WayPartition: true}, nil
	case "banks+ways", "ways+banks":
		return Isolation{BankPartition: true, WayPartition: true}, nil
	}
	return Isolation{}, fmt.Errorf("core: unknown isolation mode %q (valid: none, banks, ways, banks+ways)", s)
}

// Isolations lists the isolation axis values a study sweeps, weakest
// first.
var Isolations = []Isolation{
	{},
	{BankPartition: true},
	{WayPartition: true},
	{BankPartition: true, WayPartition: true},
}

// Config describes one simulated system + workload combination.
type Config struct {
	// Profile is the workload to run (solo, single-tenant mode).
	Profile workload.Profile

	// Tenants, when non-empty, switches the system to multi-tenant
	// colocation mode: the machine's cores are partitioned among the
	// listed tenants in order, each driven by its own profile in its
	// own slice of physical memory, all contending for the shared L2
	// and memory controllers. Profile is ignored in this mode. Metrics
	// gain a per-tenant breakdown; ATLAS switches to per-tenant
	// service accounting.
	Tenants []tenant.Spec

	// Isolation enables inter-tenant isolation mechanisms (bank
	// partitioning in the address map, LLC way-partitioning) for
	// colocation runs. The zero value shares everything and is
	// bit-identical to the pre-isolation simulator.
	Isolation Isolation

	// Scheduler selects the memory scheduling algorithm.
	Scheduler sched.Kind
	// SchedOpts overrides algorithm parameters (zero sub-configs use
	// the paper's Table 3 values). Cores and Seed are filled from the
	// profile and Config automatically.
	SchedOpts sched.Opts
	// PagePolicy names the page-management policy (see
	// pagepolicy.ByName). The RL scheduler owns precharge decisions,
	// so it always runs with the static open policy regardless.
	PagePolicy string
	// Mapping is the address-interleaving scheme.
	Mapping addrmap.Scheme
	// Channels is the memory channel count (1, 2 or 4 in the study).
	Channels int

	// Geometry is the 1-channel DRAM organization; Channels is applied
	// with Geometry.WithChannels, holding capacity constant.
	Geometry dram.Geometry
	// BusTiming is the DRAM timing in bus cycles; it is converted to
	// core cycles with ClockNum/ClockDen (2GHz cores on an 800MHz bus:
	// 5/2).
	BusTiming          dram.Timing
	ClockNum, ClockDen int

	// L1 and L2 size the caches; L2HitLatency is the core stall for an
	// L1-miss/L2-hit round trip (crossbar + bank access + crossbar).
	L1           cache.Config
	L2           cache.Config
	L2HitLatency int
	// MemPathLatency is the fixed on-chip latency added to every LLC
	// miss on top of the controller queueing/service time (miss
	// handling plus crossbar traversal).
	MemPathLatency int

	// MC configures each per-channel controller.
	MC memctrl.Config
	// MSHRCap bounds outstanding LLC misses system-wide.
	MSHRCap int
	// StoreBufferCap is the per-core store buffer depth.
	StoreBufferCap int

	// WarmupInstrPerCore is the functional (untimed) cache-warming
	// phase: each core streams this many instructions through the
	// hierarchy before timed simulation, the equivalent of the paper's
	// one-billion-instruction SimFlex warmup (§3.2). Zero selects an
	// automatic value sized to fill the L2 with the profile's miss
	// stream.
	WarmupInstrPerCore uint64
	// WarmupCycles of timed simulation run before statistics reset
	// (settles queues and row buffers); MeasureCycles are then
	// simulated and reported.
	WarmupCycles  uint64
	MeasureCycles uint64

	// Seed makes runs reproducible; the same Config and Seed give
	// bit-identical Metrics.
	Seed uint64

	// FastForward enables the event-horizon engine: when every core is
	// stalled and every controller is inert, Run advances the clock in
	// one jump to the earliest cycle at which any component can change
	// state instead of ticking cycle-by-cycle, and controllers skip
	// their decision logic until a command can become legal. The
	// resulting Metrics are bit-identical to the naive loop (the
	// equivalence suite in fastforward_test.go enforces this); the flag
	// exists to run that comparison and to debug the engine itself.
	// DefaultConfig enables it.
	FastForward bool

	// LegacyScan selects the PR 1 horizon-scan implementation of the
	// fast-forward engine instead of the event kernel: every attempt to
	// jump the clock re-polls every core, controller and queue for its
	// next event (O(n) per attempt) rather than reading the kernel's
	// wake-up queue (O(1)). Metrics are bit-identical either way; the
	// flag exists as the differential baseline for the kernel (see
	// kernel_test.go) and to measure the scan-vs-kernel speedup in
	// BenchmarkSimulatorThroughput. Ignored unless FastForward is set.
	LegacyScan bool

	// Workers shards the event kernel's controller phase across this
	// many goroutines: each stepped cycle, the per-channel controllers
	// are partitioned round-robin over the workers, ticked
	// concurrently, and their deferred effects (fill completions,
	// parking decisions) merged back in channel order after a barrier
	// (see shard.go). Results are bit-identical for every value — the
	// differential suite runs the parallel mode as a fourth loop mode —
	// because shard bodies only touch shard-owned state and the merge
	// order reproduces the serial loop exactly. 0 and 1 select the
	// serial loop; values above the channel count are clamped; and
	// schedulers with cross-channel shared state (sched.CrossChannel:
	// ATLAS, QoS) force serial regardless. Only meaningful in the
	// default kernel mode (FastForward set, LegacyScan clear).
	Workers int
}

// DefaultConfig returns the paper's Table 2 baseline system for a
// workload: 16 in-order cores at 2GHz, 32KB 2-way L1s, a 4MB 16-way
// shared L2, FR-FCFS scheduling, the open-adaptive page policy, one
// DDR3-1600 channel and RoRaBaCoCh mapping.
func DefaultConfig(p workload.Profile) Config {
	return Config{
		Profile:        p,
		Scheduler:      sched.FRFCFS,
		PagePolicy:     "OpenAdaptive",
		Mapping:        addrmap.RoRaBaCoCh,
		Channels:       1,
		Geometry:       dram.DefaultGeometry(),
		BusTiming:      dram.DDR3_1600(),
		ClockNum:       5,
		ClockDen:       2,
		L1:             cache.Config{SizeBytes: 32 << 10, Ways: 2, BlockBytes: 64},
		L2:             cache.Config{SizeBytes: 4 << 20, Ways: 16, BlockBytes: 64},
		L2HitLatency:   18, // 4 crossbar + 10 bank + 4 crossbar
		MemPathLatency: 12,
		MC:             memctrl.DefaultConfig(),
		MSHRCap:        48,
		StoreBufferCap: 12,
		WarmupCycles:   100_000,
		MeasureCycles:  1_000_000,
		Seed:           1,
		FastForward:    true,
	}
}

// multiTenant reports whether the config describes a colocation run.
func (c Config) multiTenant() bool { return len(c.Tenants) > 0 }

// tenantSpecs returns the tenant list driving the system: the
// configured mix, or a single implicit tenant wrapping Profile.
func (c Config) tenantSpecs() []tenant.Spec {
	if c.multiTenant() {
		return c.Tenants
	}
	return []tenant.Spec{{Profile: c.Profile}}
}

// DefaultMixConfig returns the Table 2 baseline system (DefaultConfig)
// hosting a colocation mix instead of a solo workload.
func DefaultMixConfig(m tenant.Mix) Config {
	if len(m.Tenants) == 0 {
		panic("core: DefaultMixConfig with an empty mix")
	}
	cfg := DefaultConfig(m.Tenants[0].Profile)
	cfg.Profile = workload.Profile{}
	cfg.Tenants = m.Tenants
	return cfg
}

// Validate reports the first configuration error found.
func (c Config) Validate() error {
	if c.multiTenant() {
		for _, sp := range c.Tenants {
			if err := sp.Validate(); err != nil {
				return err
			}
		}
	} else if err := c.Profile.Validate(); err != nil {
		return err
	}
	if _, ok := pagepolicy.ByName(c.PagePolicy); !ok {
		return fmt.Errorf("core: unknown page policy %q", c.PagePolicy)
	}
	if c.Channels <= 0 || c.Channels&(c.Channels-1) != 0 {
		return fmt.Errorf("core: Channels %d must be a positive power of two", c.Channels)
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.BusTiming.Validate(); err != nil {
		return err
	}
	if c.ClockNum <= 0 || c.ClockDen <= 0 {
		return fmt.Errorf("core: invalid clock ratio %d/%d", c.ClockNum, c.ClockDen)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.L2HitLatency < 1 || c.MemPathLatency < 0 {
		return fmt.Errorf("core: invalid hierarchy latencies")
	}
	if err := c.MC.Validate(); err != nil {
		return err
	}
	if c.MSHRCap <= 0 || c.StoreBufferCap <= 0 {
		return fmt.Errorf("core: MSHRCap and StoreBufferCap must be positive")
	}
	if n := len(c.tenantSpecs()); c.Isolation.BankPartition && n > c.channelGeometry().BanksPerChannel() {
		return fmt.Errorf("core: bank partitioning cannot carve %d banks among %d tenants",
			c.channelGeometry().BanksPerChannel(), n)
	}
	if n := len(c.tenantSpecs()); c.Isolation.WayPartition && n > c.L2.Ways {
		return fmt.Errorf("core: way partitioning cannot carve %d LLC ways among %d tenants", c.L2.Ways, n)
	}
	if c.MeasureCycles == 0 {
		return fmt.Errorf("core: MeasureCycles must be positive")
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// coreTiming returns the DRAM timing converted to core clock cycles.
func (c Config) coreTiming() dram.Timing {
	return c.BusTiming.ScaleFrom(c.ClockNum, c.ClockDen)
}

// channelGeometry returns the per-run geometry with Channels applied.
func (c Config) channelGeometry() dram.Geometry {
	return c.Geometry.WithChannels(c.Channels)
}
