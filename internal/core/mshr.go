package core

import "math/bits"

// mshrTable is an open-addressed hash table from block address to
// outstanding-miss entry, replacing the previous map[uint64]*mshrEntry
// on the LLC-miss hot path. The table is sized at 2x MSHRCap rounded
// up to a power of two, so the load factor never exceeds 50% and
// linear probes stay short. Deletion uses the classic linear-probing
// backward-shift algorithm, so there are no tombstones to accumulate.
//
// The simulator never iterates the table — only point lookups, inserts
// and deletes — so the replacement is observationally identical to the
// map (the fast-forward equivalence suite enforces bit-identical
// metrics either way).
type mshrTable struct {
	//mclint:owns -- fill removes the entry from the table (by address) before pushing it onto the free list; an entry is resident here for exactly its outstanding-miss life
	entries []*mshrEntry
	mask    uint64
	shift   uint
	n       int
}

// newMSHRTable sizes the table for at most cap resident entries: the
// smallest power of two >= 2*cap (minimum 4), keeping the load factor
// at or below 50%.
func newMSHRTable(cap int) mshrTable {
	n := uint(bits.Len64(2*uint64(cap) - 1))
	if n < 2 {
		n = 2
	}
	return mshrTable{
		entries: make([]*mshrEntry, uint64(1)<<n),
		mask:    uint64(1)<<n - 1,
		shift:   64 - n,
	}
}

// slot is the Fibonacci home slot of a block address (the low six
// offset bits are already stripped by the caller's block mask, so the
// multiply sees the distinctive bits).
func (t *mshrTable) slot(addr uint64) uint64 {
	return (addr * 0x9e3779b97f4a7c15) >> t.shift
}

// get returns the entry for addr, or nil.
func (t *mshrTable) get(addr uint64) *mshrEntry {
	for i := t.slot(addr); t.entries[i] != nil; i = (i + 1) & t.mask {
		if t.entries[i].addr == addr {
			return t.entries[i]
		}
	}
	return nil
}

// len returns the resident entry count.
func (t *mshrTable) len() int { return t.n }

// put inserts e (its address must not be resident; the caller checks
// with get first, as the old map code did).
func (t *mshrTable) put(e *mshrEntry) {
	i := t.slot(e.addr)
	for t.entries[i] != nil {
		i = (i + 1) & t.mask
	}
	t.entries[i] = e
	t.n++
}

// remove deletes addr, backward-shifting the probe chain so lookups
// never cross a stale hole. No-op if addr is absent.
func (t *mshrTable) remove(addr uint64) {
	i := t.slot(addr)
	for {
		if t.entries[i] == nil {
			return
		}
		if t.entries[i].addr == addr {
			break
		}
		i = (i + 1) & t.mask
	}
	t.n--
	// Backward-shift: walk the cluster after the hole; any entry whose
	// home slot does not lie (cyclically) after the hole is moved into
	// it, opening a new hole further along.
	j := i
	for {
		j = (j + 1) & t.mask
		e := t.entries[j]
		if e == nil {
			break
		}
		k := t.slot(e.addr)
		// Move e down iff its home slot k is cyclically outside (i, j].
		if (j > i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
			t.entries[i] = e
			i = j
		}
	}
	t.entries[i] = nil
}
