package core

import (
	"reflect"
	"testing"

	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// mixConfig builds a small colocation run; the scale mirrors
// equivalenceConfig so paired ff on/off runs stay fast.
func mixConfig(m tenant.Mix, k sched.Kind, ff bool) Config {
	cfg := DefaultMixConfig(m)
	cfg.Scheduler = k
	cfg.WarmupCycles = 10_000
	cfg.MeasureCycles = 50_000
	cfg.WarmupInstrPerCore = 5_000
	cfg.FastForward = ff
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles:       7_000,
		Alpha:               0.875,
		StarvationThreshold: 1_000,
		ScanDepth:           2,
	}
	return cfg
}

func runMix(t *testing.T, m tenant.Mix, k sched.Kind, ff bool) Metrics {
	t.Helper()
	sys, err := NewSystem(mixConfig(m, k, ff))
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

// TestMixedTenantFastForwardEquivalence extends the equivalence suite
// to colocation runs: the event-horizon engine must stay bit-identical
// to the naive loop when several tenants — including two independent
// DMA agents whose idle windows interleave — share the machine.
func TestMixedTenantFastForwardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	mixes := []tenant.Mix{
		tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8),
		// Two IO-carrying tenants: exercises the multi-agent Scan/Skip
		// path where one agent's fire cuts another's jump short.
		tenant.Pair(workload.WebFrontend(), workload.MediaStreaming(), 8),
		tenant.NewMix("",
			tenant.Spec{Profile: workload.WebSearch(), Cores: 4},
			tenant.Spec{Profile: workload.TPCHQ6(), Cores: 4},
			tenant.Spec{Profile: workload.MediaStreaming(), Cores: 8},
		),
	}
	kinds := []sched.Kind{sched.FRFCFS, sched.ATLAS}
	for _, m := range mixes {
		for _, k := range kinds {
			m, k := m, k
			t.Run(m.Name+"/"+k.String(), func(t *testing.T) {
				t.Parallel()
				naive := runMix(t, m, k, false)
				fast := runMix(t, m, k, true)
				if !reflect.DeepEqual(naive, fast) {
					t.Fatalf("mixed-tenant fast-forward diverged:\nnaive: %+v\nfast:  %+v", naive, fast)
				}
			})
		}
	}
}

// TestSoloMetricsHaveNoTenantBreakdown pins the compatibility
// contract: single-tenant runs produce exactly the metrics the
// pre-colocation simulator did, with no Tenants section.
func TestSoloMetricsHaveNoTenantBreakdown(t *testing.T) {
	cfg := equivalenceConfig(workload.WebSearch(), sched.FRFCFS, true)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := sys.Run(); m.Tenants != nil {
		t.Fatalf("solo run grew a tenant breakdown: %+v", m.Tenants)
	}
}

// TestTenantMetricsAggregation is the golden test for the per-tenant
// accounting: every aggregate counter must be the exact sum of the
// per-tenant ones (no request lost, none double-counted), core counts
// and labels must follow the mix, and IPC/MPKI must be consistent with
// their own numerators.
func TestTenantMetricsAggregation(t *testing.T) {
	m := tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)
	met := runMix(t, m, sched.FRFCFS, true)
	if len(met.Tenants) != 2 {
		t.Fatalf("tenant count = %d, want 2", len(met.Tenants))
	}
	if met.Tenants[0].Name != "DS" || met.Tenants[1].Name != "HOG" {
		t.Fatalf("tenant labels = %s, %s", met.Tenants[0].Name, met.Tenants[1].Name)
	}
	var retired, misses, hits, rowMiss, conf, reads, writes uint64
	for _, tm := range met.Tenants {
		if tm.Cores != 8 {
			t.Fatalf("tenant %s cores = %d, want 8", tm.Name, tm.Cores)
		}
		if tm.Retired == 0 || tm.ReadsServed == 0 {
			t.Fatalf("tenant %s made no progress: %+v", tm.Name, tm)
		}
		if got := float64(tm.Retired) / float64(met.Cycles); got != tm.IPC {
			t.Fatalf("tenant %s IPC %v inconsistent with retired %d", tm.Name, tm.IPC, tm.Retired)
		}
		retired += tm.Retired
		misses += tm.DemandMisses
		hits += tm.RowHits
		rowMiss += tm.RowMisses
		conf += tm.RowConflicts
		reads += tm.ReadsServed
		writes += tm.WritesServed
	}
	if retired != met.Retired {
		t.Fatalf("per-tenant retired %d != aggregate %d", retired, met.Retired)
	}
	if misses != met.DemandMisses {
		t.Fatalf("per-tenant misses %d != aggregate %d", misses, met.DemandMisses)
	}
	if hits != met.RowHits || rowMiss != met.RowMisses || conf != met.RowConflicts {
		t.Fatalf("row classification: tenants (%d,%d,%d) != aggregate (%d,%d,%d)",
			hits, rowMiss, conf, met.RowHits, met.RowMisses, met.RowConflicts)
	}
	if reads != met.ReadsServed || writes != met.WritesServed {
		t.Fatalf("served: tenants (%d,%d) != aggregate (%d,%d)",
			reads, writes, met.ReadsServed, met.WritesServed)
	}
	// The adversary must look like one: far lower row locality than
	// the victim and an order of magnitude more misses per
	// instruction.
	ds, hog := met.Tenants[0], met.Tenants[1]
	if hog.RowHitRate >= ds.RowHitRate {
		t.Fatalf("hog row-hit %.3f >= victim %.3f", hog.RowHitRate, ds.RowHitRate)
	}
	if hog.MPKI < 5*ds.MPKI {
		t.Fatalf("hog MPKI %.1f not dominating victim %.1f", hog.MPKI, ds.MPKI)
	}
}

// TestMixDeterminism: identical mixed configs give identical Metrics.
func TestMixDeterminism(t *testing.T) {
	m := tenant.Pair(workload.WebFrontend(), workload.TPCHQ6(), 8)
	a := runMix(t, m, sched.ATLAS, true)
	b := runMix(t, m, sched.ATLAS, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mixed run not deterministic:\na: %+v\nb: %+v", a, b)
	}
}

// TestMixInterferenceExists: colocation must actually hurt — each
// tenant's shared-run latency should exceed what it sees alone
// (sanity that the tenants really share the controllers rather than
// being simulated side by side).
func TestMixInterferenceExists(t *testing.T) {
	m := tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)
	shared := runMix(t, m, sched.FRFCFS, true)
	soloCfg := equivalenceConfig(tenant.Spec{Profile: workload.DataServing(), Cores: 8}.Adjusted(), sched.FRFCFS, true)
	sys, err := NewSystem(soloCfg)
	if err != nil {
		t.Fatal(err)
	}
	solo := sys.Run()
	if shared.Tenants[0].AvgReadLatency <= solo.AvgReadLatency {
		t.Fatalf("victim latency %.1f under a hog <= solo %.1f; no interference modeled",
			shared.Tenants[0].AvgReadLatency, solo.AvgReadLatency)
	}
	if shared.Tenants[0].IPC >= solo.UserIPC {
		t.Fatalf("victim IPC %.3f under a hog >= solo %.3f", shared.Tenants[0].IPC, solo.UserIPC)
	}
}

// TestMixFootprintMustFit: a mix whose combined footprint exceeds the
// memory system is rejected at construction.
func TestMixFootprintMustFit(t *testing.T) {
	big := workload.TPCHQ17()
	big.ColdBytes = 30 << 30
	m := tenant.Pair(big, big, 8)
	_, err := NewSystem(mixConfig(m, sched.FRFCFS, true))
	if err == nil {
		t.Fatal("oversized mix accepted")
	}
}
