package core

import (
	"reflect"
	"testing"

	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

// equivalenceConfig is small enough to run 16 paired simulations in a
// few seconds yet long enough to cross write drains, page-policy
// closes, DMA bursts and (scaled) ATLAS quantum boundaries.
func equivalenceConfig(p workload.Profile, k sched.Kind, ff bool) Config {
	cfg := DefaultConfig(p)
	cfg.Scheduler = k
	cfg.WarmupCycles = 10_000
	cfg.MeasureCycles = 50_000
	cfg.WarmupInstrPerCore = 5_000
	cfg.FastForward = ff
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles:       7_000,
		Alpha:               0.875,
		StarvationThreshold: 1_000,
		ScanDepth:           2,
	}
	return cfg
}

// TestFastForwardEquivalence is the tentpole's hard requirement: the
// event-horizon engine must produce bit-identical Metrics to the
// naive cycle loop — same cycles, IPC, row-hit classification, queue
// averages, latencies — across workloads with different quiescence
// patterns (low/high MLP, DMA traffic, imbalanced cores) and across
// schedulers with different idle behaviour (stateless FR-FCFS,
// clock-driven ATLAS).
func TestFastForwardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	profiles := []workload.Profile{
		workload.SATSolver(),      // low MLP, balanced
		workload.TPCHQ6(),         // MLP 1, high intensity
		workload.WebFrontend(),    // 8 cores, DMA agent, imbalanced
		workload.MediaStreaming(), // DMA agent, MLP 3
	}
	kinds := []sched.Kind{sched.FRFCFS, sched.ATLAS}
	for _, p := range profiles {
		for _, k := range kinds {
			p, k := p, k
			t.Run(p.Acronym+"/"+k.String(), func(t *testing.T) {
				t.Parallel()
				run := func(ff bool) Metrics {
					sys, err := NewSystem(equivalenceConfig(p, k, ff))
					if err != nil {
						t.Fatal(err)
					}
					return sys.Run()
				}
				naive := run(false)
				fast := run(true)
				if !reflect.DeepEqual(naive, fast) {
					t.Fatalf("fast-forward diverged from naive loop:\nnaive: %+v\nfast:  %+v", naive, fast)
				}
			})
		}
	}
}

// TestFastForwardEquivalenceRL covers the RL scheduler separately: its
// exploration PRNG is only consulted when legal commands exist, so the
// draw sequence must survive fast-forwarding untouched.
func TestFastForwardEquivalenceRL(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	run := func(ff bool) Metrics {
		sys, err := NewSystem(equivalenceConfig(workload.DataServing(), sched.RL, ff))
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	naive := run(false)
	fast := run(true)
	if !reflect.DeepEqual(naive, fast) {
		t.Fatalf("fast-forward diverged under RL:\nnaive: %+v\nfast:  %+v", naive, fast)
	}
}

// TestFastForwardDefaultOn documents that the engine is the default
// path for study configurations.
func TestFastForwardDefaultOn(t *testing.T) {
	if !DefaultConfig(workload.DataServing()).FastForward {
		t.Fatal("DefaultConfig must enable FastForward")
	}
}

// TestAdvanceMatchesRunSegments checks that Advance composes: stepping
// the clock in unequal chunks lands on the same state as one call.
func TestAdvanceMatchesRunSegments(t *testing.T) {
	cfg := equivalenceConfig(workload.WebSearch(), sched.FRFCFS, true)
	a, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.FunctionalWarmup(1_000)
	b.FunctionalWarmup(1_000)
	a.Advance(9_000)
	for _, n := range []uint64{1, 2_499, 3_000, 3_500} {
		b.Advance(n)
	}
	am := a.collect(9_000)
	bm := b.collect(9_000)
	if !reflect.DeepEqual(am, bm) {
		t.Fatalf("chunked Advance diverged:\none-shot: %+v\nchunked:  %+v", am, bm)
	}
}
