package core

import (
	"fmt"
	"strings"
)

// Metrics are the measurements the paper's figures plot, collected
// over one run's measurement window.
type Metrics struct {
	// Cycles is the measurement window length in core cycles.
	Cycles uint64
	// Retired is the total user instructions committed.
	Retired uint64
	// UserIPC is Retired / Cycles, the paper's throughput proxy
	// (§3.2); it aggregates across cores.
	UserIPC float64
	// PerCoreIPC is each core's committed instructions per cycle;
	// the ATLAS analysis (§4.1.1) inspects its disparity.
	PerCoreIPC []float64

	// AvgReadLatency is the mean demand-read latency at the memory
	// controller, in core cycles (Figure 3 normalizes this).
	AvgReadLatency float64
	// RowHitRate is hits/(hits+misses+conflicts) over all column
	// accesses (Figure 2).
	RowHitRate float64
	// MPKI is primary LLC demand misses per kilo instruction
	// (Figure 4).
	MPKI float64
	// AvgReadQ and AvgWriteQ are time-weighted queue occupancies,
	// averaged over controllers (Figures 5, 6).
	AvgReadQ  float64
	AvgWriteQ float64
	// BandwidthUtil is the fraction of data-bus cycles carrying data,
	// averaged over channels (Figure 7).
	BandwidthUtil float64
	// SingleAccessFrac is the fraction of row activations that served
	// exactly one access (Figure 8).
	SingleAccessFrac float64

	// Raw controller/DRAM counters for deeper analysis.
	ReadsServed    uint64
	WritesServed   uint64
	Activates      uint64
	PolicyCloses   uint64
	ConflictCloses uint64
	ForwardedReads uint64
	RowHits        uint64
	RowMisses      uint64
	RowConflicts   uint64
	DemandMisses   uint64

	// Tenants is the per-tenant breakdown of a colocation run, in mix
	// order; nil for solo (single-tenant) runs.
	Tenants []TenantMetrics
}

// TenantMetrics is one tenant's share of a colocation run's
// measurements. The aggregate fields above are exact sums of the
// per-tenant ones (plus nothing else — every request is attributed).
type TenantMetrics struct {
	// Tenant is the mix index; Name the tenant label; Cores its core
	// allocation.
	Tenant int
	Name   string
	Cores  int

	// Retired and IPC cover the tenant's cores only.
	Retired uint64
	IPC     float64
	// DemandMisses and MPKI count the tenant's primary LLC misses.
	DemandMisses uint64
	MPKI         float64
	// AvgReadLatency is the tenant's mean demand-read latency in core
	// cycles (queue + service + fixed on-chip path).
	AvgReadLatency float64
	// RowHitRate classifies the tenant's own column accesses.
	RowHitRate   float64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	ReadsServed  uint64
	WritesServed uint64
}

// String renders a one-line summary.
func (t TenantMetrics) String() string {
	return fmt.Sprintf("%s(%dc): ipc=%.4f lat=%.1f hit=%.3f mpki=%.2f",
		t.Name, t.Cores, t.IPC, t.AvgReadLatency, t.RowHitRate, t.MPKI)
}

// IPCDisparity returns min/max per-core IPC, the fairness signal the
// paper uses when explaining ATLAS's losses. Returns 1 when no core
// retired anything.
func (m Metrics) IPCDisparity() float64 {
	var min, max float64
	first := true
	for _, v := range m.PerCoreIPC {
		if first {
			min, max = v, v
			first = false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	return min / max
}

// String renders a one-line summary.
func (m Metrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ipc=%.4f lat=%.1f hit=%.3f mpki=%.2f rq=%.2f wq=%.2f bw=%.3f 1acc=%.3f",
		m.UserIPC, m.AvgReadLatency, m.RowHitRate, m.MPKI,
		m.AvgReadQ, m.AvgWriteQ, m.BandwidthUtil, m.SingleAccessFrac)
	return sb.String()
}
