package core

import (
	"cloudmc/internal/engine"
	"cloudmc/internal/sched"
)

// This file shards the event kernel's controller phase across a
// worker pool (Config.Workers). The phase is the only parallel region
// of the simulator; everything else — fills, IO injection, writeback
// drain, core ticks, the wake-up queue — stays on the coordinator
// goroutine, untouched.
//
// Why the controller phase: per-channel controllers own disjoint
// state (their request queues, their dram.Channel, their per-channel
// policy and page-policy instances), so with the cross-channel
// schedulers excluded (sched.CrossChannel forces serial) two
// controllers' Ticks share nothing mutable. The serial loop breaks
// that independence in exactly two places, and both are deferred into
// a post-barrier merge:
//
//   - Fill completions: a controller finishing a read fires its
//     OnDone callback, which in the serial loop inserted into the
//     shared fill queue (System.scheduleFill) mid-phase. In kernel
//     mode the callback buffers the completion in a per-channel slice
//     (System.completeFill) instead, and drainFillBufs merges the
//     buffers in channel order after the phase. Controllers never
//     read the fill queue, so deferring the inserts cannot change
//     what any controller observed; draining in ascending channel
//     order replays the exact insertion sequence of the serial loop
//     (which ticked channels in ascending order), and scheduleFill's
//     insertion sort keeps equal-time entries in insertion order —
//     the fill queue ends the cycle bit-identical.
//   - Parking: the serial loop called ctl.NextEvent and armed the
//     wake-up queue inline. Shard bodies must not touch the engine
//     queue (it is coordinator state), so each shard only records
//     NextEvent into its channels' ctrlWake slots and mergeCtrlPhase
//     applies the park/stay-hot decisions in channel order after the
//     barrier. NextEvent is a pure read of controller state and the
//     queue sees the same (source, time) arming sequence, so the
//     calendar ring and heap end the cycle bit-identical too.
//
// Everything a shard body writes is owned by exactly one shard:
// channels are assigned round-robin (channel mod workers), ctrlWake
// and fillBuf are indexed per channel, and controller/DRAM state
// belongs to the channel being ticked. The engine.ShardPool barrier
// gives the coordinator a happens-before edge over all of it, so the
// hot path needs no atomics and runs clean under the race detector.
// The mclint shardsafe analyzer guards the discipline statically:
// functions marked //mclint:shard (and everything they reach in this
// package) must not touch package-level mutables or call the
// merge-only primitives (scheduleFill, armFill, notifyCtrl).

// initShards configures the sharded controller phase during
// initKernel: the effective worker count is Config.Workers clamped to
// the channel count, forced to 1 for schedulers whose policy
// instances share cross-channel state.
func (s *System) initShards() {
	w := s.cfg.Workers
	if w > len(s.ctrls) {
		w = len(s.ctrls)
	}
	if sched.CrossChannel(s.cfg.Scheduler) {
		w = 1
	}
	if w <= 1 {
		return
	}
	s.workers = w
	s.pool = engine.NewShardPool(w)
	s.ctrlWake = make([]uint64, len(s.ctrls))
	s.shardFn = func(shard int) { s.tickShard(shard, s.shardNow) }
}

// Workers reports the effective shard count of the controller phase:
// Config.Workers after clamping and the cross-channel-scheduler
// fallback. 1 means the serial loop.
func (s *System) Workers() int {
	if s.workers > 1 {
		return s.workers
	}
	return 1
}

// tickShard runs the controller phase for the channels one shard
// owns. It writes only shard-owned slots: the owned controllers'
// internal state, their ctrlWake entries, and (through the OnDone
// callbacks firing inside Tick) their fillBuf slices. ctrlActive is
// read-only during the phase; parking is deferred to mergeCtrlPhase.
//
//mclint:shard
func (s *System) tickShard(shard int, now uint64) {
	for ch := shard; ch < len(s.ctrls); ch += s.workers {
		if !s.ctrlActive[ch] {
			continue
		}
		ctl := s.ctrls[ch]
		ctl.Tick(now)
		s.ctrlWake[ch] = ctl.NextEvent(now + 1)
	}
}

// runCtrlPhase executes the sharded controller phase for one stepped
// cycle and reports whether any controller stays hot (needs the next
// cycle). With fewer than two active controllers the barrier cannot
// pay for itself, so the shards run inline on the coordinator through
// the very same code path — dispatch choice can never affect results.
func (s *System) runCtrlPhase(now uint64) bool {
	active := 0
	for _, a := range s.ctrlActive {
		if a {
			active++
		}
	}
	if active == 0 {
		return false
	}
	s.shardNow = now
	if active >= 2 {
		s.pool.Run(s.shardFn)
	} else {
		for shard := 0; shard < s.workers; shard++ {
			s.tickShard(shard, now)
		}
	}
	return s.mergeCtrlPhase(now)
}

// mergeCtrlPhase applies the deferred parking decisions in channel
// order after the barrier — the same (source, time) arming sequence
// the serial loop produced inline — and reports whether any
// controller stays hot.
func (s *System) mergeCtrlPhase(now uint64) bool {
	hot := false
	for ch := range s.ctrls {
		if !s.ctrlActive[ch] {
			continue
		}
		if w := s.ctrlWake[ch]; w > now+1 {
			s.ctrlActive[ch] = false
			s.q.Arm(s.ctrlSrc[ch], w)
		} else {
			hot = true
		}
	}
	return hot
}

// drainFillBufs merges the controller phase's buffered fill
// completions into the fill queue in ascending channel order,
// replaying the serial loop's insertion sequence exactly (see the
// file comment). Runs on the coordinator after the phase, in every
// kernel mode — the serial kernel buffers through the same path so
// workers=1 and workers=N share one semantics.
//
//mclint:hotpath
func (s *System) drainFillBufs() {
	merged := false
	for ch := range s.fillBuf {
		buf := s.fillBuf[ch]
		if len(buf) == 0 {
			continue
		}
		for _, f := range buf {
			s.insertFill(f.at, f.e)
		}
		s.fillBuf[ch] = buf[:0]
		merged = true
	}
	if merged {
		// One re-arm for the whole batch: arming depends only on the
		// final queue head, so this is exactly the state per-insert
		// arming would have left.
		s.armFill()
	}
}
