package core

import (
	"testing"

	"cloudmc/internal/workload"
)

// BenchmarkSystemStep measures raw simulation throughput
// (cycles/second) on the Data Serving baseline.
func BenchmarkSystemStep(b *testing.B) {
	cfg := DefaultConfig(workload.DataServing())
	cfg.WarmupInstrPerCore = 100_000
	sys, err := NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys.FunctionalWarmup(cfg.WarmupInstrPerCore)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}
