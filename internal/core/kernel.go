package core

import (
	"fmt"

	"cloudmc/internal/cpu"
	"cloudmc/internal/engine"
)

// This file is the event-kernel execution mode of the System: instead
// of polling every component's horizon with an O(n) scan per
// fast-forward attempt (the PR 1 engine, kept behind Config.LegacyScan
// as the differential baseline), every timing source registers its
// next wake-up and the hot loop only touches components that are due.
// The produced Metrics are bit-identical to both the naive per-cycle
// loop and the legacy scan; kernel_test.go and the fast-forward
// equivalence suite enforce it.
//
// Two wake-up structures split the sources by shape:
//
//   - Cores live in coreWake, a dense per-core wake-time array: a core
//     with coreWake <= now ticks this cycle, a finite future value is
//     a timed stall (the tick would provably be a no-op; the value
//     feeds the jump bound), and Never means blocked on the memory
//     system until a fill or store drain calls wakeCore. Waking
//     settles the blocked window's stall statistics in bulk with
//     cpu.Core.Advance — the same contract the legacy jump used — so
//     counters stay bit-identical. The dense array costs one
//     sequential compare per core per stepped cycle, which beats any
//     queue discipline for sources that wake this often.
//   - The fill path and the channel controllers — few sources with
//     irregular, often-far horizons — are engine.Queue sources
//     (calendar ring + indexed min-heap, deterministic (time, rank)
//     pops). A controller parks at memctrl.Controller.NextEvent after
//     an idle tick; an enqueue into a parked controller re-activates
//     it (or re-arms it earlier, when a forwarded read merely
//     schedules a completion).
//
// stepKernel maintains nextWake — the earliest future cycle any core,
// active controller or retry queue can act — incrementally while it
// runs the phases, so advanceKernel's jump decision is one compare
// plus the queue's O(1) NextTime instead of a component rescan.
// Writeback/DMA retry queues keep the system stepping while non-empty
// (they retry every cycle, exactly like the per-cycle loop), and IO
// agents negotiate jumps through Scan/Skip exactly as the legacy
// engine did, so their per-cycle injection draws replay bit-exactly.

// kernelState holds the event-kernel bookkeeping; embedded in System
// and initialised only when the kernel mode is selected.
type kernelState struct {
	q       *engine.Queue
	fillSrc engine.ID
	ctrlSrc []engine.ID

	// coreWake is the per-core wake time: <= now runnable, finite
	// future = timed stall, Never = blocked until wakeCore. For a
	// blocked core, coreIdleFrom records where its idle window began so
	// the skipped stall statistics can be applied in bulk.
	coreWake     []uint64
	coreIdleFrom []uint64

	ctrlActive []bool

	// fillBuf holds the per-channel fill completions of the current
	// stepped cycle's controller phase; drainFillBufs merges them into
	// the fill queue in channel order after the phase (see shard.go).
	// Non-nil exactly when the kernel is on — the serial kernel
	// buffers through the same path as the sharded one.
	fillBuf [][]delayedFill

	// Sharded controller phase (Config.Workers > 1; see shard.go):
	// workers is the effective shard count, pool the barrier-synced
	// worker pool, ctrlWake the per-channel NextEvent results of the
	// current phase, shardNow/shardFn the per-round closure plumbing
	// (one closure allocated at init, not per cycle).
	workers  int
	pool     *engine.ShardPool
	ctrlWake []uint64
	shardNow uint64
	shardFn  func(shard int)

	// nextWake is the earliest cycle at which any component outside
	// the wake-up queue can act: stalled cores, active controllers,
	// and non-empty retry queues. stepKernel rebuilds it every stepped
	// cycle — it already visits exactly those components — so the jump
	// decision in advanceKernel is a single compare. Queue-parked
	// sources are covered by q.NextTime(), and IO agents by the Scan
	// negotiation at jump time.
	nextWake uint64

	dueBuf []engine.ID
}

// kernelOn reports whether this System executes on the event kernel.
func (s *System) kernelOn() bool { return s.q != nil }

// initKernel registers the queue-backed timing sources in the fixed
// rank order that fixes deterministic tie-breaking: fill path, then
// channel controllers. Everything starts runnable; the first stepped
// cycles park whatever is quiescent.
func (s *System) initKernel() {
	s.q = engine.New()
	s.fillSrc = s.q.Register("fill")
	s.ctrlSrc = make([]engine.ID, len(s.ctrls))
	for i := range s.ctrls {
		s.ctrlSrc[i] = s.q.Register(fmt.Sprintf("mc%d", i))
	}
	s.coreWake = make([]uint64, len(s.cores))
	s.coreIdleFrom = make([]uint64, len(s.cores))
	s.ctrlActive = make([]bool, len(s.ctrls))
	for i := range s.ctrlActive {
		s.ctrlActive[i] = true
	}
	s.fillBuf = make([][]delayedFill, len(s.ctrls))
	s.initShards()
}

// wakeCore makes a blocked core runnable at cycle now, first applying
// the skipped idle window's stall statistics in bulk (bit-identical to
// the per-cycle ticks, per the cpu.Core.Advance contract). Callers
// must wake a core before delivering the fill or drain that ends its
// wait. No-op for cores that are not blocked (a fill arriving during a
// timed stall changes nothing until the stall ends, exactly like the
// per-cycle loop) or when the kernel is off.
func (s *System) wakeCore(i int, now uint64) {
	if s.q == nil || s.coreWake[i] != cpu.Never {
		return
	}
	s.cores[i].Advance(s.coreIdleFrom[i], now)
	s.coreWake[i] = now
}

// settleCores applies the stall statistics of every blocked core's
// idle window up to the current cycle. Advance calls it before
// returning so Metrics reads (and the warmup-boundary stats reset)
// always see fully settled counters; the windows are additive, so
// settling early never changes the totals.
func (s *System) settleCores() {
	for i, w := range s.coreWake {
		if w == cpu.Never {
			s.cores[i].Advance(s.coreIdleFrom[i], s.cycle)
			s.coreIdleFrom[i] = s.cycle
		}
	}
}

// notifyCtrl re-evaluates a parked controller's horizon after the
// System pushed work into it at cycle now. Wake-ups are
// bank-granular: an enqueue whose command cannot issue yet only
// lowers the controller's established horizon to that one bank's
// earliest-issue cycle (memctrl.Controller.noteEnqueue, an O(1)
// re-arm against the per-bank horizon cache), so NextEvent usually
// stays in the future and the controller remains parked — the queue
// source is simply re-armed earlier instead of ticking this cycle. A
// mode change (drain watermark, empty-read-queue transition) or a
// pending page-policy close resets the horizon to "unknown" and
// activates the controller as before; a forwarded read schedules a
// completion (re-arm earlier); a coalesced write changes nothing (the
// armed wake-up already covers it). Merge-only under the sharded
// kernel: it touches ctrlActive and the coordinator-owned wake-up
// queue.
//
//mclint:merge-only
func (s *System) notifyCtrl(ch int, now uint64) {
	if s.q == nil || s.ctrlActive[ch] {
		return
	}
	if w := s.ctrls[ch].NextEvent(now); w <= now {
		s.ctrlActive[ch] = true
		s.q.Disarm(s.ctrlSrc[ch])
	} else {
		s.q.Arm(s.ctrlSrc[ch], w)
	}
}

// armFill keeps the fill source armed at the head of the fill queue.
// A head already due is armed for the next cycle: deliveries happen at
// the top of a stepped cycle, so a fill scheduled mid-cycle (by a
// controller completion) lands exactly where the per-cycle loop would
// have delivered it. Merge-only under the sharded kernel: it arms the
// coordinator-owned wake-up queue.
//
//mclint:merge-only
func (s *System) armFill() {
	if s.q == nil {
		return
	}
	if len(s.fillq) == 0 {
		s.q.Disarm(s.fillSrc)
		return
	}
	t := s.fillq[0].at
	if t <= s.q.Now() {
		t = s.q.Now() + 1
	}
	s.q.Arm(s.fillSrc, t)
}

// stepKernel advances the system one cycle, touching only components
// that are due: it wakes queue sources whose armed cycle arrived, then
// runs the same phases in the same order as the per-cycle loop (fills,
// IO injection, writeback drain, cores, controllers), skipping parked
// components whose ticks would provably be no-ops. Along the way it
// rebuilds nextWake for the caller's jump decision.
func (s *System) stepKernel() {
	now := s.cycle
	if s.q.Now() < now {
		// One behind after a regular step (jumps re-sync eagerly); a
		// single-cycle advance can never pass an armed wake-up.
		s.q.Step()
	}

	if s.q.HasDue() {
		s.dueBuf = s.q.PopDue(s.dueBuf[:0])
		for _, id := range s.dueBuf {
			if id == s.fillSrc {
				continue // delivery handled below; re-armed by armFill
			}
			s.ctrlActive[int(id)-int(s.ctrlSrc[0])] = true
		}
	}

	if len(s.fillq) > 0 && s.fillq[0].at <= now {
		s.deliverFills(now)
		s.armFill()
	}
	if len(s.ios) > 0 || len(s.ioq) > 0 {
		s.tickIO(now)
	}
	if len(s.wbq) > 0 {
		s.drainWritebacks(now)
	}

	next := uint64(cpu.Never)
	for i, w := range s.coreWake {
		if w > now {
			// Timed stall (or blocked at Never, which never wins the
			// min): the tick would be a no-op.
			if w < next {
				next = w
			}
			continue
		}
		c := s.cores[i]
		c.Tick(now, s)
		if w := c.NextEvent(now + 1); w > now+1 {
			s.coreWake[i] = w
			if w == cpu.Never {
				s.coreIdleFrom[i] = now + 1
			} else if w < next {
				next = w
			}
		} else {
			next = now + 1
		}
	}

	if s.pool != nil {
		if s.runCtrlPhase(now) {
			next = now + 1
		}
	} else {
		for i, ctl := range s.ctrls {
			if !s.ctrlActive[i] {
				continue
			}
			ctl.Tick(now)
			if w := ctl.NextEvent(now + 1); w > now+1 {
				s.ctrlActive[i] = false
				s.q.Arm(s.ctrlSrc[i], w)
			} else {
				next = now + 1
			}
		}
	}
	s.drainFillBufs()

	// Retry queues poll every cycle while non-empty; a fill that became
	// due mid-cycle (zero on-chip path latency) is delivered next cycle
	// by the armed fill source, so it needs no entry here.
	if len(s.wbq) > 0 || len(s.ioq) > 0 {
		next = now + 1
	}
	s.nextWake = next
	s.cycle++
}

// advanceKernel runs the event-kernel loop to cycle `end`: step while
// anything is due, jump straight to the next wake-up — the earlier of
// nextWake (cores, active controllers, retries) and the queue's
// earliest armed source — when nothing needs the current cycle. Jumps
// negotiate with the IO agents (Scan/Skip) so their per-cycle
// injection draws replay exactly, and never pass a wake-up, which is
// what makes every skipped cycle provably inert.
func (s *System) advanceKernel(end uint64) {
	if s.pool != nil {
		// Spawn the shard workers for this chunk and join them on the
		// way out; a System never leaks goroutines between Advance
		// calls. Step()-driven single cycles run the shards inline
		// (ShardPool.Run on an unstarted pool), bit-identically.
		s.pool.Start()
		defer s.pool.Stop()
	}
	for s.cycle < end {
		if s.nextWake > s.cycle {
			h := s.nextWake
			if t := s.q.NextTime(); t < h {
				h = t
			}
			if h > end {
				h = end
			}
			if h > s.cycle {
				if n := s.negotiateIOJump(h - s.cycle); n > 0 {
					s.cycle += n
					s.q.AdvanceTo(s.cycle)
					continue
				}
			}
		}
		s.stepKernel()
	}
	s.settleCores()
}
