package core

import (
	"strings"
	"testing"

	"cloudmc/internal/workload"
)

func TestMetricsStringContainsHeadlines(t *testing.T) {
	m := Metrics{UserIPC: 1.5, AvgReadLatency: 120, RowHitRate: 0.3, MPKI: 5}
	s := m.String()
	for _, want := range []string{"ipc=1.5", "lat=120", "hit=0.300", "mpki=5.00"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestFunctionalWarmupFillsCaches(t *testing.T) {
	cfg := DefaultConfig(workload.TPCHQ6())
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.FunctionalWarmup(20_000)
	lines := cfg.L2.SizeBytes / cfg.L2.BlockBytes
	if occ := sys.l2.Occupancy(); occ < lines*9/10 {
		t.Fatalf("L2 occupancy %d of %d after warmup", occ, lines)
	}
	// L1s must have content too.
	if sys.l1[0].Occupancy() == 0 {
		t.Fatal("L1 empty after functional warmup")
	}
}

func TestWarmupIsUntimed(t *testing.T) {
	cfg := DefaultConfig(workload.DataServing())
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.FunctionalWarmup(10_000)
	if sys.cycle != 0 {
		t.Fatalf("functional warmup advanced the clock to %d", sys.cycle)
	}
	for _, ctl := range sys.Controllers() {
		if ctl.Pending() != 0 {
			t.Fatal("functional warmup queued DRAM work")
		}
	}
}

func TestStepAdvancesClock(t *testing.T) {
	cfg := DefaultConfig(workload.WebSearch())
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sys.Step()
	}
	if sys.cycle != 100 {
		t.Fatalf("cycle = %d, want 100", sys.cycle)
	}
}

func TestWorkloadFootprintMustFitMemory(t *testing.T) {
	p := workload.DataServing()
	p.ColdBytes = 1 << 40 // 1TB cold region in a 32GB system
	cfg := DefaultConfig(p)
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("oversized footprint accepted")
	}
}

func TestMSHRMergingAvoidsDuplicateReads(t *testing.T) {
	// Two cores loading the same block must produce one DRAM read.
	cfg := DefaultConfig(workload.DataServing())
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x4000_0000)
	r1 := sys.Load(0, 0, addr)
	r2 := sys.Load(0, 1, addr)
	if !r1.Pending || !r2.Pending {
		t.Fatalf("expected both pending, got %+v %+v", r1, r2)
	}
	if got := sys.mshr.len(); got != 1 {
		t.Fatalf("MSHR entries = %d, want 1 (merged)", got)
	}
	reads, _ := sys.Controllers()[0].QueueLens()
	if reads != 1 {
		t.Fatalf("queued reads = %d, want 1", reads)
	}
}

func TestMSHRCapBackpressure(t *testing.T) {
	cfg := DefaultConfig(workload.DataServing())
	cfg.MSHRCap = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Load(0, 0, 0x4000_0000)
	sys.Load(0, 1, 0x4001_0000)
	r := sys.Load(0, 2, 0x4002_0000)
	if !r.Rejected {
		t.Fatal("third miss accepted beyond MSHR capacity")
	}
}

func TestStoreMissAllocatesMSHRAsStore(t *testing.T) {
	// Calling the port directly (outside a core's Tick) must register
	// the requester as a store waiter on the MSHR entry.
	cfg := DefaultConfig(workload.DataServing())
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x4800_0000)
	r := sys.Store(0, 3, addr)
	if !r.Pending {
		t.Fatalf("store miss not pending: %+v", r)
	}
	e := sys.mshr.get(addr)
	if e == nil {
		t.Fatal("no MSHR entry allocated")
	}
	if len(e.stores) != 1 || e.stores[0] != 3 || len(e.loads) != 0 {
		t.Fatalf("waiters = loads %v stores %v, want store waiter core 3", e.loads, e.stores)
	}
}

func TestStoreFillDirtiesL1ThroughCorePath(t *testing.T) {
	// Through the real core path (store buffered by the core), a store
	// miss fill must install the block dirty in the issuing core's L1.
	cfg := DefaultConfig(workload.TPCHQ6()) // store-carrying workload
	cfg.WarmupCycles = 1
	cfg.MeasureCycles = 30_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	dirty := 0
	for _, l1 := range sys.l1 {
		for addr := uint64(0); addr < 1<<20; addr += 64 {
			if l1.IsDirty(addr) {
				dirty++
			}
		}
	}
	// At least some hot-region lines must be dirty from store hits and
	// store-miss fills.
	if dirty == 0 {
		t.Fatal("no dirty L1 lines after a store-carrying run")
	}
}

func TestL1HitAfterFill(t *testing.T) {
	cfg := DefaultConfig(workload.DataServing())
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x4000_0040)
	sys.Load(0, 0, addr)
	for i := 0; i < 2000 && sys.mshr.len() > 0; i++ {
		sys.Step()
	}
	r := sys.Load(sys.cycle, 0, addr)
	if r.Pending || r.Rejected || r.ExtraStall != 0 {
		t.Fatalf("expected L1 hit after fill, got %+v", r)
	}
}
