package core

import (
	"io"
	"reflect"
	"testing"

	"cloudmc/internal/dram"
	"cloudmc/internal/obs"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// obsTestConfig compresses run budgets and scales the quantum-based
// schedulers the way the other equivalence suites do.
func obsTestConfig(cfg Config, k sched.Kind) Config {
	cfg.Scheduler = k
	cfg.WarmupCycles = 2_000
	cfg.MeasureCycles = 10_000
	cfg.WarmupInstrPerCore = 2_000
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles: 3_000, Alpha: 0.875,
		StarvationThreshold: 500, ScanDepth: 2,
	}
	cfg.SchedOpts.QoS = sched.QoSConfig{
		MaxSlowdownSLO:      2.0,
		QuantumCycles:       3_000,
		Alpha:               0.875,
		StarvationThreshold: 1_000,
		ScanDepth:           4,
		BaselineLatency:     70,
	}
	return cfg
}

// writeHeavyProfile is the bench suite's park-heavy "WH" profile:
// MapReduce skewed to a 60% store mix with store-dominated bursts.
func writeHeavyProfile() workload.Profile {
	p := workload.MapReduce()
	p.StoreFraction = 0.6
	p.BurstStoreFraction = 0.7
	p.Acronym = "WH"
	return p
}

// obsScenarios is the differential matrix: two solo profiles and a
// four-tenant mix, each crossed with FR-FCFS/ATLAS/QoS.
func obsScenarios() map[string]Config {
	mix := tenant.NewMix("",
		tenant.Spec{Profile: workload.DataServing(), Cores: 4},
		tenant.Spec{Profile: workload.WebSearch(), Cores: 4},
		tenant.Spec{Profile: workload.MapReduce(), Cores: 4},
		tenant.Spec{Profile: workload.MemoryHog(), Cores: 4},
	)
	return map[string]Config{
		"DS":  DefaultConfig(workload.DataServing()),
		"WH":  DefaultConfig(writeHeavyProfile()),
		"mix": DefaultMixConfig(mix),
	}
}

// TestObsDifferential is the tentpole invariant: a run with the full
// observability stack attached (interval recorder with live sinks plus
// command tracing) produces bit-identical Metrics to the same run with
// obs off, across schedulers and workloads.
func TestObsDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	for name, base := range obsScenarios() {
		for _, k := range []sched.Kind{sched.FRFCFS, sched.ATLAS, sched.QoS} {
			cfg := obsTestConfig(base, k)
			label := name + "/" + k.String()
			t.Run(label, func(t *testing.T) {
				run := func(withObs bool) Metrics {
					sys, err := NewSystem(cfg)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if withObs {
						sys.AttachRecorder(obs.NewRecorder(label, 1_000,
							obs.NewJSONLSink(io.Discard), obs.NewCSVSink(io.Discard)))
						sys.AttachTrace(obs.NewTraceWriter(io.Discard, label))
					}
					return sys.Run()
				}
				off := run(false)
				on := run(true)
				if off.Retired == 0 {
					t.Fatalf("%s: degenerate run retired nothing", label)
				}
				if !reflect.DeepEqual(off, on) {
					t.Fatalf("%s: obs-on diverged from obs-off:\noff: %+v\non:  %+v", label, off, on)
				}
			})
		}
	}
}

// runWithRecorder executes cfg in one loop mode with a recorder
// attached and returns the recorded series plus the run Metrics.
func runWithRecorder(t *testing.T, cfg Config, ff, legacy bool, interval uint64) ([]obs.Sample, Metrics) {
	t.Helper()
	cfg.FastForward = ff
	cfg.LegacyScan = legacy
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder("align", interval)
	sys.AttachRecorder(rec)
	m := sys.Run()
	return rec.Samples(), m
}

// stripEngineTelemetry zeroes the loop-mode-dependent park/wake
// counters; everything else in a sample is architectural and must
// match bit-for-bit across modes.
func stripEngineTelemetry(samples []obs.Sample) []obs.Sample {
	for i := range samples {
		for j := range samples[i].Controllers {
			samples[i].Controllers[j].Parks = 0
			samples[i].Controllers[j].Wakes = 0
		}
	}
	return samples
}

// TestObsIntervalAlignment pins the satellite invariant: interval
// samples land on identical cycles with identical contents in all
// three loop modes. The interval (3000) deliberately does not divide
// the measure window, so the final partial interval is exercised too.
func TestObsIntervalAlignment(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations are slow")
	}
	cfg := obsTestConfig(DefaultConfig(workload.DataServing()), sched.FRFCFS)
	const interval = 3_000
	naive, mNaive := runWithRecorder(t, cfg, false, false, interval)
	scan, mScan := runWithRecorder(t, cfg, true, true, interval)
	kernel, mKernel := runWithRecorder(t, cfg, true, false, interval)
	if !reflect.DeepEqual(mNaive, mScan) || !reflect.DeepEqual(mNaive, mKernel) {
		t.Fatal("metrics diverged across modes with recorders attached")
	}
	// Measure window is 10_000 cycles from 2_000: boundaries at 5_000,
	// 8_000, 11_000 and a final partial sample at 12_000.
	wantCycles := []uint64{5_000, 8_000, 11_000, 12_000}
	if len(naive) != len(wantCycles) {
		t.Fatalf("naive recorded %d samples, want %d", len(naive), len(wantCycles))
	}
	for i, want := range wantCycles {
		if naive[i].Cycle != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, naive[i].Cycle, want)
		}
		if naive[i].Phase != "measure" {
			t.Fatalf("sample %d phase %q", i, naive[i].Phase)
		}
	}
	if last := naive[len(naive)-1]; last.Cycles != 1_000 {
		t.Fatalf("final partial interval spans %d cycles, want 1000", last.Cycles)
	}
	naive = stripEngineTelemetry(naive)
	scan = stripEngineTelemetry(scan)
	kernel = stripEngineTelemetry(kernel)
	if !reflect.DeepEqual(naive, scan) {
		t.Fatalf("legacy-scan samples diverged from naive:\nnaive: %+v\nscan:  %+v", naive, scan)
	}
	if !reflect.DeepEqual(naive, kernel) {
		t.Fatalf("kernel samples diverged from naive:\nnaive: %+v\nkernel: %+v", naive, kernel)
	}
}

// TestObsWarmupResetMatchesAggregate proves the recorder's warmup
// reset zeroes interval state exactly like the aggregate Stats reset:
// the measure-phase interval deltas must sum to the run's Metrics.
func TestObsWarmupResetMatchesAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations are slow")
	}
	cfg := obsTestConfig(DefaultConfig(workload.DataServing()), sched.FRFCFS)
	samples, m := runWithRecorder(t, cfg, true, false, 2_500)
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	var retired, misses, reads, writes, hits uint64
	for _, s := range samples {
		if s.Phase != "measure" {
			t.Fatalf("warmup sample survived the reset: %+v", s)
		}
		retired += s.Retired
		misses += s.DemandMisses
		for _, c := range s.Controllers {
			reads += c.Reads
			writes += c.Writes
			hits += c.RowHits
		}
	}
	if retired != m.Retired {
		t.Fatalf("interval retired sum %d != aggregate %d", retired, m.Retired)
	}
	if misses != m.DemandMisses {
		t.Fatalf("interval miss sum %d != aggregate %d", misses, m.DemandMisses)
	}
	if reads != m.ReadsServed || writes != m.WritesServed || hits != m.RowHits {
		t.Fatalf("interval controller sums (r=%d w=%d h=%d) != aggregate (r=%d w=%d h=%d)",
			reads, writes, hits, m.ReadsServed, m.WritesServed, m.RowHits)
	}
}

// countingTrace tallies traced commands by kind.
type countingTrace struct {
	counts map[dram.CommandKind]uint64
}

func (c *countingTrace) Command(_ uint64, cmd dram.Command, _ int) {
	if c.counts == nil {
		c.counts = make(map[dram.CommandKind]uint64)
	}
	c.counts[cmd.Kind]++
}

// TestObsTraceCoversServedRequests sanity-checks the trace stream
// against run metrics: only ACT/PRE/RD/WR appear, and the column
// accesses traced over the whole run cover at least the measure
// window's served, non-forwarded requests.
func TestObsTraceCoversServedRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations are slow")
	}
	cfg := obsTestConfig(DefaultConfig(workload.DataServing()), sched.FRFCFS)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := &countingTrace{}
	sys.AttachTrace(tr)
	m := sys.Run()
	for kind := range tr.counts {
		switch kind {
		case dram.CmdActivate, dram.CmdPrecharge, dram.CmdRead, dram.CmdWrite:
		default:
			t.Fatalf("unexpected traced command kind %v", kind)
		}
	}
	cols := tr.counts[dram.CmdRead] + tr.counts[dram.CmdWrite]
	served := m.ReadsServed - m.ForwardedReads + m.WritesServed
	if cols < served {
		t.Fatalf("traced %d column accesses < %d served in the measure window", cols, served)
	}
	if tr.counts[dram.CmdActivate] == 0 {
		t.Fatal("no activates traced")
	}
}
