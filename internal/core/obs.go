package core

import (
	"cloudmc/internal/memctrl"
	"cloudmc/internal/obs"
)

// AttachRecorder attaches an interval recorder: Advance then samples
// the system's counters at every recorder boundary and Run re-anchors
// the series at the warmup-boundary stats reset. Attach before Run
// (the recorder is primed at the current cycle); nil detaches.
//
// Attaching a recorder never changes simulation results — obs-on runs
// produce bit-identical Metrics to obs-off runs (TestObsDifferential
// enforces this).
func (s *System) AttachRecorder(r *obs.Recorder) {
	s.rec = r
	if r != nil {
		r.Prime(s.obsSnapshot())
	}
}

// Recorder returns the attached interval recorder, or nil.
func (s *System) Recorder() *obs.Recorder { return s.rec }

// AttachTrace installs a command-level trace on every memory
// controller (nil detaches). Like the recorder, tracing is pure
// observation: traced runs are bit-identical to untraced ones.
func (s *System) AttachTrace(t memctrl.CommandTrace) {
	for _, ctl := range s.ctrls {
		ctl.SetTrace(t)
	}
}

// obsSnapshot copies the simulator's cumulative counters into an obs
// snapshot at the current cycle. Counters are settled at every call
// site: chunk boundaries in kernel mode end with settleCores, and the
// scan/naive loops apply stall credit eagerly.
func (s *System) obsSnapshot() *obs.Snapshot {
	sn := &obs.Snapshot{
		Cycle:         s.cycle,
		DemandMisses:  s.demandMisses,
		MSHROccupancy: s.mshr.len(),
	}
	for _, c := range s.cores {
		sn.Retired += c.Stats.Retired
		sn.StallLoad += c.Stats.StallLoad
		sn.StallStore += c.Stats.StallStore
	}
	sn.Controllers = make([]obs.CtrlCounters, len(s.ctrls))
	for i, ctl := range s.ctrls {
		st := &ctl.Stats
		dev := &ctl.Channel().Stats
		rq, wq := ctl.QueueLens()
		sn.Controllers[i] = obs.CtrlCounters{
			Channel:         i,
			ReadsServed:     st.ReadsServed,
			WritesServed:    st.WritesServed,
			RowHits:         st.RowHits,
			RowMisses:       st.RowMisses,
			RowConflicts:    st.RowConflicts,
			ForwardedReads:  st.ForwardedReads,
			EnqueueFailures: st.EnqueueFailures,
			Parks:           st.Parks,
			Wakes:           st.Wakes,
			Activates:       dev.Activates,
			Precharges:      dev.Precharges,
			DataBusBusy:     dev.DataBusBusy,
			ReadQLen:        rq,
			WriteQLen:       wq,
			ReadLatency:     st.ReadLatency,
		}
	}
	if s.cfg.multiTenant() {
		sn.Tenants = make([]obs.TenantCounters, len(s.tenants))
		for ti := range s.tenants {
			rt := &s.tenants[ti]
			tc := obs.TenantCounters{
				Name:         rt.spec.Label(),
				Cores:        rt.profile.Cores,
				DemandMisses: s.tenantMisses[ti],
			}
			for c := rt.firstCore; c < rt.firstCore+rt.profile.Cores; c++ {
				tc.Retired += s.cores[c].Stats.Retired
			}
			for _, ctl := range s.ctrls {
				ts := ctl.TenantStatsSlice()
				if ti >= len(ts) {
					continue
				}
				st := &ts[ti]
				tc.ReadsServed += st.ReadsServed
				tc.WritesServed += st.WritesServed
				tc.RowHits += st.RowHits
				tc.RowMisses += st.RowMisses
				tc.RowConflicts += st.RowConflicts
				tc.ReadLatencySum += st.ReadLatencySum
			}
			sn.Tenants[ti] = tc
		}
	}
	return sn
}
