package core

import (
	"testing"

	"cloudmc/internal/addrmap"
	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

// runWith runs a short simulation with the given mutations applied to
// the default config.
func runWith(t *testing.T, p workload.Profile, mutate func(*Config)) Metrics {
	t.Helper()
	cfg := DefaultConfig(p)
	cfg.WarmupCycles = 30_000
	cfg.MeasureCycles = 150_000
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

func TestMPKILandsNearTarget(t *testing.T) {
	for _, p := range []workload.Profile{workload.DataServing(), workload.TPCHQ6()} {
		m := runWith(t, p, nil)
		lo, hi := 0.7*p.TargetMPKI, 1.3*p.TargetMPKI
		if m.MPKI < lo || m.MPKI > hi {
			t.Errorf("%s: MPKI %.2f outside [%.2f, %.2f]", p.Acronym, m.MPKI, lo, hi)
		}
	}
}

func TestSingleAccessFractionNearTarget(t *testing.T) {
	m := runWith(t, workload.DataServing(), nil)
	if m.SingleAccessFrac < 0.70 || m.SingleAccessFrac > 0.95 {
		t.Errorf("DS single-access %.3f outside calibration band", m.SingleAccessFrac)
	}
}

func TestDSPWMoreIntenseThanSCOW(t *testing.T) {
	scow := runWith(t, workload.WebSearch(), nil)
	dspw := runWith(t, workload.TPCHQ6(), nil)
	if dspw.MPKI <= scow.MPKI {
		t.Errorf("DSP MPKI %.2f not above SCO %.2f", dspw.MPKI, scow.MPKI)
	}
	if dspw.BandwidthUtil <= scow.BandwidthUtil {
		t.Errorf("DSP bandwidth %.3f not above SCO %.3f", dspw.BandwidthUtil, scow.BandwidthUtil)
	}
}

func TestMoreChannelsReduceLatencyForDSP(t *testing.T) {
	// Paper Figure 14: DSP latency falls markedly with channels.
	p := workload.TPCHQ6()
	one := runWith(t, p, nil)
	four := runWith(t, p, func(c *Config) {
		c.Channels = 4
		c.Mapping = addrmap.RoChRaBaCo
	})
	if four.AvgReadLatency >= one.AvgReadLatency {
		t.Errorf("4-channel latency %.1f not below 1-channel %.1f",
			four.AvgReadLatency, one.AvgReadLatency)
	}
	if four.UserIPC <= one.UserIPC {
		t.Errorf("4-channel IPC %.3f not above 1-channel %.3f", four.UserIPC, one.UserIPC)
	}
}

func TestChannelCapacityConstantAcrossSweep(t *testing.T) {
	p := workload.DataServing()
	for _, ch := range []int{1, 2, 4} {
		cfg := DefaultConfig(p)
		cfg.Channels = ch
		if got := cfg.channelGeometry().TotalBytes(); got != cfg.Geometry.TotalBytes() {
			t.Errorf("channels=%d changed capacity to %d", ch, got)
		}
	}
}

func TestClosePolicyCollapsesRowHits(t *testing.T) {
	// Paper Figure 9: close-adaptive preserves almost no hits.
	p := workload.MediaStreaming()
	oapm := runWith(t, p, nil)
	capm := runWith(t, p, func(c *Config) { c.PagePolicy = "CloseAdaptive" })
	// The paper's CAPM collapse is near-total (<6% absolute); our
	// synthetic streams keep the queue-visible share of hits, so we
	// assert a substantial but not total collapse.
	if capm.RowHitRate > 0.8*oapm.RowHitRate {
		t.Errorf("CAPM hit rate %.3f not well below OAPM %.3f", capm.RowHitRate, oapm.RowHitRate)
	}
}

func TestRBPPPreservesMoreHitsThanClose(t *testing.T) {
	// Paper Figure 9: RBPP sits between close-adaptive and OAPM.
	p := workload.MediaStreaming()
	capm := runWith(t, p, func(c *Config) { c.PagePolicy = "CloseAdaptive" })
	rbpp := runWith(t, p, func(c *Config) { c.PagePolicy = "RBPP" })
	if rbpp.RowHitRate <= capm.RowHitRate {
		t.Errorf("RBPP hits %.3f not above CAPM %.3f", rbpp.RowHitRate, capm.RowHitRate)
	}
}

func TestATLASHurtsImbalancedWorkload(t *testing.T) {
	// Paper §4.1.1: ATLAS's long quanta penalize imbalanced scale-out
	// workloads and blow up their memory latency.
	p := workload.MapReduce()
	fr := runWith(t, p, nil)
	atlas := runWith(t, p, func(c *Config) {
		c.Scheduler = sched.ATLAS
		c.SchedOpts.ATLAS = sched.ATLASConfig{
			QuantumCycles: 15_000, Alpha: 0.875,
			StarvationThreshold: 4_000, ScanDepth: 1,
		}
	})
	if atlas.AvgReadLatency <= 1.2*fr.AvgReadLatency {
		t.Errorf("ATLAS latency %.1f not well above FR-FCFS %.1f",
			atlas.AvgReadLatency, fr.AvgReadLatency)
	}
	if atlas.UserIPC >= fr.UserIPC {
		t.Errorf("ATLAS IPC %.3f not below FR-FCFS %.3f", atlas.UserIPC, fr.UserIPC)
	}
	if atlas.IPCDisparity() >= fr.IPCDisparity() {
		t.Errorf("ATLAS disparity %.3f not worse than FR-FCFS %.3f",
			atlas.IPCDisparity(), fr.IPCDisparity())
	}
}

func TestRLWithinReasonOfFRFCFS(t *testing.T) {
	// Paper Figure 1: RL trails FR-FCFS but is not catastrophic.
	p := workload.TPCHQ2()
	fr := runWith(t, p, nil)
	rl := runWith(t, p, func(c *Config) { c.Scheduler = sched.RL })
	ratio := rl.UserIPC / fr.UserIPC
	if ratio > 1.02 || ratio < 0.7 {
		t.Errorf("RL/FR-FCFS IPC ratio %.3f outside (0.7, 1.02)", ratio)
	}
}

func TestWebFrontendIOGrowsWithChannels(t *testing.T) {
	// Paper §4.3: WF's total accesses grow with channel count.
	p := workload.WebFrontend()
	one := runWith(t, p, nil)
	four := runWith(t, p, func(c *Config) { c.Channels = 4 })
	oneTotal := one.ReadsServed + one.WritesServed
	fourTotal := four.ReadsServed + four.WritesServed
	if fourTotal <= oneTotal {
		t.Errorf("4-channel accesses %d not above 1-channel %d", fourTotal, oneTotal)
	}
}

func TestSeedChangesResults(t *testing.T) {
	a := runWith(t, workload.SATSolver(), func(c *Config) { c.Seed = 1 })
	b := runWith(t, workload.SATSolver(), func(c *Config) { c.Seed = 2 })
	if a.Retired == b.Retired && a.RowHits == b.RowHits {
		t.Error("different seeds produced identical results")
	}
}

func TestMappingChangesBehaviour(t *testing.T) {
	p := workload.TPCHQ6()
	base := runWith(t, p, func(c *Config) { c.Channels = 2 })
	alt := runWith(t, p, func(c *Config) {
		c.Channels = 2
		c.Mapping = addrmap.RoRaChBaCo
	})
	if base.RowHits == alt.RowHits && base.Activates == alt.Activates {
		t.Error("mapping scheme had no effect at 2 channels")
	}
}

func TestRLForcedToOpenPagePolicy(t *testing.T) {
	cfg := DefaultConfig(workload.DataServing())
	cfg.Scheduler = sched.RL
	cfg.PagePolicy = "CloseAdaptive"
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctl := range sys.Controllers() {
		if ctl.PagePolicy().Name() != "Open" {
			t.Fatalf("RL runs with %q, want Open", ctl.PagePolicy().Name())
		}
	}
}

func TestConfigValidateCatchesErrors(t *testing.T) {
	good := DefaultConfig(workload.DataServing())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.PagePolicy = "Nope" },
		func(c *Config) { c.Channels = 3 },
		func(c *Config) { c.ClockNum = 0 },
		func(c *Config) { c.MeasureCycles = 0 },
		func(c *Config) { c.MSHRCap = 0 },
		func(c *Config) { c.L2HitLatency = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig(workload.DataServing())
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	// Table 2 checks.
	cfg := DefaultConfig(workload.DataServing())
	if cfg.L1.SizeBytes != 32<<10 || cfg.L1.Ways != 2 || cfg.L1.BlockBytes != 64 {
		t.Error("L1 does not match Table 2 (32KB, 2-way, 64B)")
	}
	if cfg.L2.SizeBytes != 4<<20 || cfg.L2.Ways != 16 {
		t.Error("L2 does not match Table 2 (4MB, 16-way)")
	}
	if cfg.Channels != 1 || cfg.Mapping != addrmap.RoRaBaCoCh {
		t.Error("baseline channel/mapping does not match Table 2")
	}
	if cfg.Scheduler != sched.FRFCFS || cfg.PagePolicy != "OpenAdaptive" {
		t.Error("baseline policies do not match Table 2")
	}
	if cfg.Geometry.Ranks != 2 || cfg.Geometry.Banks != 8 || cfg.Geometry.RowBufferBytes() != 8<<10 {
		t.Error("DRAM organization does not match Table 2")
	}
	if cfg.ClockNum != 5 || cfg.ClockDen != 2 {
		t.Error("clock ratio is not 2GHz:800MHz")
	}
}

func TestSchedulerConfigsMatchPaper(t *testing.T) {
	// Table 3 checks.
	atlas := sched.DefaultATLASConfig()
	if atlas.QuantumCycles != 10_000_000 || atlas.Alpha != 0.875 || atlas.StarvationThreshold != 50_000 {
		t.Error("ATLAS defaults do not match Table 3")
	}
	parbs := sched.DefaultPARBSConfig()
	if parbs.BatchingCap != 5 {
		t.Error("PAR-BS batching cap does not match Table 3")
	}
	rl := sched.DefaultRLConfig()
	if rl.Tables != 32 || rl.TableSize != 256 || rl.Alpha != 0.1 ||
		rl.Gamma != 0.95 || rl.Epsilon != 0.05 || rl.StarvationThreshold != 10_000 {
		t.Error("RL defaults do not match Table 3")
	}
}

func TestMetricsIPCDisparity(t *testing.T) {
	m := Metrics{PerCoreIPC: []float64{0.2, 0.4, 0.1}}
	if got := m.IPCDisparity(); got != 0.25 {
		t.Fatalf("disparity = %f, want 0.25", got)
	}
	empty := Metrics{}
	if empty.IPCDisparity() != 1 {
		t.Fatal("empty disparity should be 1")
	}
}
