// Package sched implements the memory scheduling algorithms the paper
// evaluates (§2.1, §4.1): FCFS_Banks, FR-FCFS, PAR-BS, ATLAS, and the
// reinforcement-learning (RL) scheduler. All satisfy memctrl.Policy.
//
// Multi-channel systems need one policy instance per controller, but
// ATLAS ranks cores by service attained across *all* controllers; use
// NewFactory to build per-channel instances that share the required
// state.
package sched

import (
	"fmt"
	"strings"

	"cloudmc/internal/memctrl"
)

// Kind enumerates the studied algorithms.
type Kind uint8

const (
	// FCFSBanks services each bank's requests strictly in arrival
	// order, exploiting bank-level parallelism only.
	FCFSBanks Kind = iota
	// FRFCFS is the baseline first-ready first-come-first-served
	// algorithm: row hits first, then oldest.
	FRFCFS
	// PARBS is parallelism-aware batch scheduling.
	PARBS
	// ATLAS is adaptive per-thread least-attained-service scheduling.
	ATLAS
	// RL is the reinforcement-learning self-optimizing scheduler.
	RL
	// QoS is the SLO-targeting scheduler for multi-tenant systems: it
	// monitors per-tenant attained service and memory latency against
	// a max-slowdown SLO and boosts tenants projected to violate it
	// (package-level doc in qos.go). It is not part of the paper's
	// figure grids (Kinds).
	QoS
)

// Kinds lists the algorithms in the order the paper's figures plot
// them.
var Kinds = []Kind{FRFCFS, FCFSBanks, PARBS, ATLAS, RL}

var kindNames = map[Kind]string{
	FCFSBanks: "FCFS_Banks",
	FRFCFS:    "FR-FCFS",
	PARBS:     "PAR-BS",
	ATLAS:     "ATLAS",
	RL:        "RL",
	QoS:       "QoS",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// allKinds lists every parseable algorithm in declaration order: the
// paper's figure order (Kinds) plus QoS. Matching and the valid-name
// error text both walk this list, never the kindNames map, so
// ParseKind's behavior — in particular its error message — is
// identical from run to run.
var allKinds = append(append([]Kind{}, Kinds...), QoS)

// ParseKind converts an algorithm name (as printed by String) back to
// its Kind, case-insensitively. Unknown names produce an error that
// lists every valid name, so a typo in a CLI flag is self-explaining.
func ParseKind(name string) (Kind, error) {
	for _, k := range allKinds {
		if strings.EqualFold(kindNames[k], name) {
			return k, nil
		}
	}
	valid := make([]string, 0, len(allKinds))
	for _, k := range allKinds {
		valid = append(valid, kindNames[k])
	}
	return 0, fmt.Errorf("sched: unknown scheduling algorithm %q (valid: %s)", name, strings.Join(valid, ", "))
}

// Factory builds one policy instance per memory channel. Instances
// returned by the same Factory share cross-channel state where the
// algorithm requires it (ATLAS).
type Factory func(channel int) memctrl.Policy

// CrossChannel reports whether kind's per-channel policy instances
// share mutable cross-channel state: ATLAS ranks requesters by
// service attained across all controllers and QoS tracks slowdowns
// the same way, so NewFactoryOpts closes their instances over one
// shared tracker. Ticking two such controllers concurrently would
// race on that tracker, so the event kernel's sharded run
// (core.Config.Workers) falls back to serial for these algorithms.
// FCFS_Banks, FR-FCFS, PAR-BS and RL keep all state per channel (RL
// seeds its exploration stream per channel) and shard freely.
func CrossChannel(kind Kind) bool {
	return kind == ATLAS || kind == QoS
}

// Opts parameterizes policy construction. Zero-valued sub-configs
// select the paper's Table 3 defaults.
type Opts struct {
	// Cores is the number of cores in the system (requests from DMA
	// agents with core ID -1 are folded into an extra slot).
	Cores int
	// Tenants, when positive, switches ATLAS to tenant-granularity
	// accounting: attained service is tracked and ranked per tenant
	// (VM) rather than per core, the arbitration unit a multi-tenant
	// cloud actually sells. Zero keeps the paper's per-core (per
	// hardware thread) accounting.
	Tenants int
	// Seed feeds the RL scheduler's exploration stream.
	Seed uint64
	// ATLAS, PARBS, RL and QoS override algorithm parameters. The
	// paper's ATLAS quantum is 10M cycles against multi-billion-cycle
	// samples; studies with compressed measurement windows must scale
	// QuantumCycles and StarvationThreshold accordingly (the QoS
	// quantum too).
	ATLAS ATLASConfig
	PARBS PARBSConfig
	RL    RLConfig
	QoS   QoSConfig
}

func (o Opts) atlas() ATLASConfig {
	if o.ATLAS.QuantumCycles == 0 {
		return DefaultATLASConfig()
	}
	return o.ATLAS
}

func (o Opts) parbs() PARBSConfig {
	if o.PARBS.BatchingCap == 0 {
		return DefaultPARBSConfig()
	}
	return o.PARBS
}

func (o Opts) rl() RLConfig {
	if o.RL.Tables == 0 {
		return DefaultRLConfig()
	}
	return o.RL
}

func (o Opts) qos() QoSConfig {
	if o.QoS.QuantumCycles == 0 {
		return DefaultQoSConfig()
	}
	return o.QoS
}

// NewFactory returns a Factory for the given algorithm with default
// parameters.
func NewFactory(kind Kind, cores int, seed uint64) Factory {
	return NewFactoryOpts(kind, Opts{Cores: cores, Seed: seed})
}

// NewFactoryOpts returns a Factory with explicit parameters.
func NewFactoryOpts(kind Kind, opts Opts) Factory {
	switch kind {
	case FCFSBanks:
		return func(int) memctrl.Policy { return NewFCFSBanks() }
	case FRFCFS:
		return func(int) memctrl.Policy { return NewFRFCFS() }
	case PARBS:
		return func(int) memctrl.Policy { return NewPARBS(opts.parbs(), opts.Cores) }
	case ATLAS:
		if opts.Tenants > 0 {
			tracker := NewServiceTracker(opts.Tenants, opts.atlas())
			return func(int) memctrl.Policy { return NewATLASTenants(opts.atlas(), tracker) }
		}
		tracker := NewServiceTracker(opts.Cores, opts.atlas())
		return func(int) memctrl.Policy { return NewATLAS(opts.atlas(), tracker) }
	case RL:
		return func(channel int) memctrl.Policy {
			return NewRL(opts.rl(), opts.Seed+uint64(channel)*0x9e3779b97f4a7c15)
		}
	case QoS:
		slots, byTenant := opts.Cores, false
		if opts.Tenants > 0 {
			slots, byTenant = opts.Tenants, true
		}
		tracker := NewQoSTracker(slots, opts.qos())
		return func(int) memctrl.Policy { return NewQoS(opts.qos(), tracker, byTenant) }
	default:
		panic(fmt.Sprintf("sched: unknown kind %d", uint8(kind)))
	}
}

// coreSlot maps a request's core ID into a dense slot index, folding
// DMA traffic (core -1) into the last slot.
func coreSlot(core, cores int) int {
	if core < 0 || core >= cores {
		return cores
	}
	return core
}

// noHooks provides no-op hook implementations for policies without
// enqueue/complete/issue state.
type noHooks struct{}

// OnEnqueue implements memctrl.Policy.
func (noHooks) OnEnqueue(*memctrl.Request, uint64) {}

// OnComplete implements memctrl.Policy.
func (noHooks) OnComplete(*memctrl.Request, uint64) {}

// Tick implements memctrl.Policy.
func (noHooks) Tick(uint64) {}
