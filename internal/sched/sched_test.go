package sched

import (
	"testing"

	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
)

func opt(id uint64, core int, hit bool, bankOldest uint64, kind dram.CommandKind) memctrl.Option {
	return memctrl.Option{
		Cmd:          dram.Command{Kind: kind},
		Req:          &memctrl.Request{ID: id, Core: core},
		RowHit:       hit,
		BankOldestID: bankOldest,
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("round trip %v: %v %v", k, parsed, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	p := NewFRFCFS()
	v := &memctrl.View{Options: []memctrl.Option{
		opt(1, 0, false, 1, dram.CmdActivate),
		opt(5, 1, true, 5, dram.CmdRead), // younger but a row hit
	}}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want the row hit", got)
	}
}

func TestFRFCFSBreaksTiesByAge(t *testing.T) {
	p := NewFRFCFS()
	v := &memctrl.View{Options: []memctrl.Option{
		opt(7, 0, true, 7, dram.CmdRead),
		opt(3, 1, true, 3, dram.CmdRead),
	}}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want the older hit", got)
	}
	v = &memctrl.View{Options: []memctrl.Option{
		opt(7, 0, false, 7, dram.CmdActivate),
		opt(3, 1, false, 3, dram.CmdActivate),
	}}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want the older miss", got)
	}
}

func TestFCFSBanksServesOnlyBankHeads(t *testing.T) {
	p := NewFCFSBanks()
	// Option 0 is a row hit but NOT its bank's oldest request; option 1
	// is its bank's head. FCFS_Banks must refuse the reordering.
	v := &memctrl.View{Options: []memctrl.Option{
		opt(9, 0, true, 2, dram.CmdRead),
		opt(4, 1, false, 4, dram.CmdActivate),
	}}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want the bank head", got)
	}
}

func TestFCFSBanksPicksOldestHeadAcrossBanks(t *testing.T) {
	p := NewFCFSBanks()
	v := &memctrl.View{Options: []memctrl.Option{
		opt(8, 0, false, 8, dram.CmdActivate),
		opt(3, 1, false, 3, dram.CmdActivate),
	}}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want oldest head", got)
	}
}

func TestFCFSBanksReturnsMinusOneWhenNoHeads(t *testing.T) {
	p := NewFCFSBanks()
	v := &memctrl.View{Options: []memctrl.Option{
		opt(9, 0, true, 2, dram.CmdRead), // head (ID 2) has no option
	}}
	if got := p.Pick(v); got != -1 {
		t.Fatalf("pick = %d, want -1 (head not issuable)", got)
	}
}

func TestPARBSBatchPriority(t *testing.T) {
	p := NewPARBS(DefaultPARBSConfig(), 4)
	batched := opt(9, 0, false, 9, dram.CmdActivate)
	batched.Req.Batched = true
	unbatchedHit := opt(2, 1, true, 2, dram.CmdRead)
	v := &memctrl.View{
		Options:   []memctrl.Option{unbatchedHit, batched},
		ReadQueue: []*memctrl.Request{unbatchedHit.Req, batched.Req},
	}
	// Prevent new batch formation from re-marking everything: the
	// current batch still has an outstanding request.
	p.remaining = 1
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want batched request", got)
	}
}

func TestPARBSBatchCapRespected(t *testing.T) {
	cap := 5
	p := NewPARBS(PARBSConfig{BatchingCap: cap}, 2)
	var queue []*memctrl.Request
	for i := 0; i < 8; i++ {
		queue = append(queue, &memctrl.Request{
			ID: uint64(i), Core: 0,
			Loc: dram.Location{Rank: 0, Bank: 0},
		})
	}
	v := &memctrl.View{ReadQueue: queue, Options: []memctrl.Option{
		{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: queue[0], BankOldestID: 0},
	}}
	p.Pick(v) // triggers batch formation
	marked := 0
	for _, r := range queue {
		if r.Batched {
			marked++
		}
	}
	if marked != cap {
		t.Fatalf("marked = %d, want batching cap %d", marked, cap)
	}
	// The oldest requests must be the marked ones.
	for i := 0; i < cap; i++ {
		if !queue[i].Batched {
			t.Fatalf("request %d (old) not marked", i)
		}
	}
}

func TestPARBSShortestJobFirstRanking(t *testing.T) {
	p := NewPARBS(DefaultPARBSConfig(), 2)
	// Core 0: 3 requests to one bank (long job). Core 1: 1 request
	// (short job). After batch formation core 1 must outrank core 0.
	var queue []*memctrl.Request
	for i := 0; i < 3; i++ {
		queue = append(queue, &memctrl.Request{ID: uint64(i), Core: 0,
			Loc: dram.Location{Rank: 0, Bank: 0, Row: i}})
	}
	queue = append(queue, &memctrl.Request{ID: 3, Core: 1,
		Loc: dram.Location{Rank: 0, Bank: 1, Row: 7}})
	v := &memctrl.View{ReadQueue: queue, Options: []memctrl.Option{
		{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: queue[0], BankOldestID: 0},
		{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: queue[3], BankOldestID: 3},
	}}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want the short-job core's request", got)
	}
}

func TestATLASRanksLeastServiceFirst(t *testing.T) {
	cfg := ATLASConfig{QuantumCycles: 100, Alpha: 0.875, StarvationThreshold: 1 << 40, ScanDepth: 1}
	tr := NewServiceTracker(2, cfg)
	p := NewATLAS(cfg, tr)
	// Core 0 has attained lots of service, core 1 little.
	tr.AddService(0, 100)
	tr.AddService(1, 5)
	tr.Tick(100) // quantum boundary: rank core1 above core0
	r0 := &memctrl.Request{ID: 1, Core: 0}
	r1 := &memctrl.Request{ID: 2, Core: 1}
	v := &memctrl.View{
		Now:       150,
		ReadQueue: []*memctrl.Request{r0, r1},
		Options: []memctrl.Option{
			{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: r0},
			{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: r1},
		},
	}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want the least-attained-service core", got)
	}
}

func TestATLASScanDepthBlocksLowRank(t *testing.T) {
	cfg := ATLASConfig{QuantumCycles: 100, Alpha: 0.875, StarvationThreshold: 1 << 40, ScanDepth: 1}
	tr := NewServiceTracker(2, cfg)
	p := NewATLAS(cfg, tr)
	tr.AddService(0, 100)
	tr.Tick(100)
	r0 := &memctrl.Request{ID: 1, Core: 0} // low priority
	r1 := &memctrl.Request{ID: 2, Core: 1} // high priority, not issuable
	v := &memctrl.View{
		Now:       150,
		ReadQueue: []*memctrl.Request{r0, r1},
		Options: []memctrl.Option{
			{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: r0},
		},
	}
	if got := p.Pick(v); got != -1 {
		t.Fatalf("pick = %d, want -1: scan window holds a non-issuable higher-rank request", got)
	}
}

func TestATLASStarvationOverride(t *testing.T) {
	cfg := ATLASConfig{QuantumCycles: 100, Alpha: 0.875, StarvationThreshold: 50, ScanDepth: 1}
	tr := NewServiceTracker(2, cfg)
	p := NewATLAS(cfg, tr)
	tr.AddService(0, 100)
	tr.Tick(100)
	starving := &memctrl.Request{ID: 1, Core: 0, Arrival: 0}
	fresh := &memctrl.Request{ID: 2, Core: 1, Arrival: 149}
	v := &memctrl.View{
		Now:       150, // starving request is 150 cycles old > 50
		ReadQueue: []*memctrl.Request{starving, fresh},
		Options: []memctrl.Option{
			{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: fresh},
			{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: starving},
		},
	}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want the starving request", got)
	}
}

func TestATLASQuantumSmoothing(t *testing.T) {
	cfg := DefaultATLASConfig()
	cfg.QuantumCycles = 100
	tr := NewServiceTracker(1, cfg)
	tr.AddService(0, 80)
	tr.Tick(100)
	// total = 0.875*80 = 70
	if got := tr.total[0]; got != 70 {
		t.Fatalf("smoothed total = %f, want 70", got)
	}
	tr.AddService(0, 0)
	tr.Tick(200)
	// total = 0.875*0 + 0.125*70 = 8.75
	if got := tr.total[0]; got != 8.75 {
		t.Fatalf("smoothed total = %f, want 8.75", got)
	}
}

func TestRLPicksLegalIndicesOnly(t *testing.T) {
	p := NewRL(DefaultRLConfig(), 42)
	for now := uint64(0); now < 3000; now++ {
		opts := []memctrl.Option{
			opt(now, 0, now%2 == 0, now, dram.CmdRead),
			opt(now+1, 1, false, now+1, dram.CmdActivate),
		}
		v := &memctrl.View{Now: now, Options: opts, ReadQLen: 2}
		got := p.Pick(v)
		if got < -1 || got >= len(opts) {
			t.Fatalf("pick out of range: %d", got)
		}
		p.OnIssue(v, got, dram.Command{Kind: dram.CmdRead}, now)
	}
}

func TestRLStarvationOverride(t *testing.T) {
	cfg := DefaultRLConfig()
	cfg.StarvationThreshold = 100
	p := NewRL(cfg, 7)
	old := &memctrl.Request{ID: 1, Core: 0, Arrival: 0}
	young := &memctrl.Request{ID: 2, Core: 1, Arrival: 190}
	v := &memctrl.View{
		Now: 200,
		Options: []memctrl.Option{
			{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: young},
			{Cmd: dram.Command{Kind: dram.CmdActivate}, Req: old},
		},
	}
	if got := p.Pick(v); got != 1 {
		t.Fatalf("pick = %d, want starving request", got)
	}
}

func TestRLLearnsRewardSignal(t *testing.T) {
	// Reward column accesses repeatedly; the Q-value of the rewarded
	// action must rise above the initial zero.
	cfg := DefaultRLConfig()
	p := NewRL(cfg, 9) // train with the default exploration rate
	req := &memctrl.Request{ID: 1, Core: 0, Arrival: 0}
	for now := uint64(1); now < 5000; now++ {
		v := &memctrl.View{Now: now, Options: []memctrl.Option{
			{Cmd: dram.Command{Kind: dram.CmdRead}, Req: req, RowHit: true},
		}, ReadQLen: 1, PendingRowHits: 1}
		got := p.Pick(v)
		issued := dram.Command{Kind: dram.CmdNop}
		if got == 0 {
			issued = dram.Command{Kind: dram.CmdRead}
		}
		p.OnIssue(v, got, issued, now)
	}
	// After training, evaluate greedily: the read action must be
	// preferred over no-op.
	p.cfg.Epsilon = 0
	v := &memctrl.View{Now: 5000, Options: []memctrl.Option{
		{Cmd: dram.Command{Kind: dram.CmdRead}, Req: req, RowHit: true},
	}, ReadQLen: 1, PendingRowHits: 1}
	if got := p.Pick(v); got != 0 {
		t.Fatalf("trained RL still picks %d, want the rewarded read", got)
	}
}

func TestRLConsidersWrites(t *testing.T) {
	var p memctrl.Policy = NewRL(DefaultRLConfig(), 1)
	wa, ok := p.(memctrl.WriteAware)
	if !ok || !wa.ConsidersWrites() {
		t.Fatal("RL must be write-aware")
	}
	for _, k := range []Kind{FRFCFS, FCFSBanks, PARBS, ATLAS} {
		pol := NewFactory(k, 4, 1)(0)
		if _, ok := pol.(memctrl.WriteAware); ok {
			t.Fatalf("%v unexpectedly write-aware", k)
		}
	}
}

func TestFactoryNamesMatchKinds(t *testing.T) {
	for _, k := range Kinds {
		p := NewFactory(k, 8, 3)(0)
		if p.Name() != k.String() {
			t.Fatalf("factory for %v built %q", k, p.Name())
		}
	}
}

func TestATLASSharedTrackerAcrossChannels(t *testing.T) {
	f := NewFactory(ATLAS, 4, 1)
	p0 := f(0).(*ATLASPolicy)
	p1 := f(1).(*ATLASPolicy)
	if p0.tracker != p1.tracker {
		t.Fatal("ATLAS channels must share one service tracker")
	}
}

func TestCoreSlotFoldsDMA(t *testing.T) {
	if coreSlot(-1, 16) != 16 || coreSlot(3, 16) != 3 || coreSlot(99, 16) != 16 {
		t.Fatal("core slot mapping wrong")
	}
}
