package sched

import (
	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
)

// QoSConfig parameterizes the SLO-targeting scheduler. The Pond-style
// framing: a cloud operator provisions memory against a tail-slowdown
// budget, so the scheduler's contract is "no tenant's memory slowdown
// exceeds MaxSlowdownSLO", not "maximize throughput".
type QoSConfig struct {
	// MaxSlowdownSLO is the per-tenant slowdown budget: a tenant whose
	// estimated memory slowdown is projected above it is boosted to the
	// head of the schedule until the estimate recovers.
	MaxSlowdownSLO float64
	// QuantumCycles is the monitoring/re-ranking quantum (the ATLAS
	// quantum; slowdown estimates and ranks update at its boundaries).
	QuantumCycles uint64
	// Alpha is the exponential-smoothing bias toward the current
	// quantum's observations (shared with the service tracker).
	Alpha float64
	// StarvationThreshold is the request age beyond which requests are
	// served oldest-first regardless of rank.
	StarvationThreshold uint64
	// ScanDepth bounds the per-cycle pick logic exactly as in ATLAS.
	ScanDepth int
	// BaselineLatency is the estimated uncontended read latency in
	// controller cycles (arrival to last data beat); the slowdown
	// estimate is the tenant's observed mean read latency divided by
	// it. Memory-bound tenants' execution slowdown tracks their memory
	// latency inflation, which is what the estimator measures.
	BaselineLatency float64
}

// DefaultQoSConfig returns the QoS scheduler's default parameters; the
// quantum mirrors ATLAS's and the baseline latency approximates an
// uncontended DDR3-1600 read at the 2GHz core clock.
func DefaultQoSConfig() QoSConfig {
	return QoSConfig{
		MaxSlowdownSLO:      2.0,
		QuantumCycles:       10_000_000,
		Alpha:               0.875,
		StarvationThreshold: 50_000,
		ScanDepth:           4,
		BaselineLatency:     70,
	}
}

// QoSTracker is the cross-channel monitoring state shared by every
// channel's QoS instance: the ATLAS attained-service machinery
// (ServiceTracker) plus per-slot latency observation, slowdown
// estimation and SLO-aware ranking. One tracker serves all channels,
// like the ATLAS tracker it builds on.
type QoSTracker struct {
	cfg QoSConfig
	// svc is the reused ATLAS accounting: attained service per slot,
	// exponentially smoothed, re-ranked least-first every quantum.
	svc *ServiceTracker
	// latSum/latCount accumulate read latencies in the current
	// quantum; est is the smoothed per-slot slowdown estimate.
	latSum   []float64
	latCount []uint64
	est      []float64
	violator []bool
	rank     []int
	next     uint64
}

// NewQoSTracker returns a tracker for n slots (tenants, typically)
// plus one for unattributed traffic.
func NewQoSTracker(n int, cfg QoSConfig) *QoSTracker {
	slots := n + 1
	t := &QoSTracker{
		cfg:      cfg,
		svc:      NewServiceTracker(n, serviceConfig(cfg)),
		latSum:   make([]float64, slots),
		latCount: make([]uint64, slots),
		est:      make([]float64, slots),
		violator: make([]bool, slots),
		rank:     make([]int, slots),
		next:     cfg.QuantumCycles,
	}
	return t
}

// serviceConfig derives the embedded service tracker's ATLAS
// parameters from the QoS ones so both quanta roll over together.
func serviceConfig(cfg QoSConfig) ATLASConfig {
	return ATLASConfig{
		QuantumCycles:       cfg.QuantumCycles,
		Alpha:               cfg.Alpha,
		StarvationThreshold: cfg.StarvationThreshold,
		ScanDepth:           cfg.ScanDepth,
	}
}

// Slots returns the number of tracked slots minus the overflow slot.
func (t *QoSTracker) Slots() int { return len(t.rank) - 1 }

// AddService credits attained service (delegates to the ATLAS
// tracker).
func (t *QoSTracker) AddService(slot int, cycles float64) { t.svc.AddService(slot, cycles) }

// ObserveRead records one served read's queue+service latency.
func (t *QoSTracker) ObserveRead(slot int, latency uint64) {
	t.latSum[slot] += float64(latency)
	t.latCount[slot]++
}

// Estimate returns the current smoothed slowdown estimate of a slot
// (diagnostics and tests).
func (t *QoSTracker) Estimate(slot int) float64 { return t.est[slot] }

// NextBoundary returns the next quantum rollover cycle.
func (t *QoSTracker) NextBoundary() uint64 { return t.next }

// Tick advances the tracker; at quantum boundaries it refreshes the
// slowdown estimates and recomputes the schedule order: tenants
// projected over the SLO first (so the boost is absolute), both
// classes internally ordered by least attained service. Ordering
// violators by LAS rather than by estimated slowdown keeps an
// adversary whose latency is self-inflicted from outranking the
// light victim it is hurting.
func (t *QoSTracker) Tick(now uint64) {
	if now < t.next {
		return
	}
	t.next = now + t.cfg.QuantumCycles
	t.svc.Tick(now)
	a := t.cfg.Alpha
	for i := range t.est {
		if t.latCount[i] > 0 {
			sample := t.latSum[i] / float64(t.latCount[i]) / t.cfg.BaselineLatency
			if sample < 1 {
				sample = 1
			}
			t.est[i] = a*sample + (1-a)*t.est[i]
		} else {
			// No reads observed: decay toward "no slowdown" so an
			// idle tenant does not stay boosted forever.
			t.est[i] = (1 - a) * t.est[i]
		}
		t.latSum[i] = 0
		t.latCount[i] = 0
		t.violator[i] = t.est[i] > t.cfg.MaxSlowdownSLO
	}
	// Rank: (violator first, then LAS rank) — insertion sort over the
	// handful of slots.
	order := make([]int, len(t.rank))
	for i := range order {
		order[i] = i
	}
	before := func(x, y int) bool {
		if t.violator[x] != t.violator[y] {
			return t.violator[x]
		}
		return t.svc.Rank(x) < t.svc.Rank(y)
	}
	for i := 1; i < len(order); i++ {
		j := order[i]
		k := i - 1
		for k >= 0 && before(j, order[k]) {
			order[k+1] = order[k]
			k--
		}
		order[k+1] = j
	}
	for r, slot := range order {
		t.rank[slot] = r
	}
}

// Rank returns the slot's current schedule rank (0 = highest
// priority).
func (t *QoSTracker) Rank(slot int) int { return t.rank[slot] }

// QoSPolicy is the SLO-targeting scheduler: ATLAS's bounded
// rank-ordered scan and starvation override, driven by the QoSTracker's
// SLO-aware ranking instead of pure least-attained-service order.
type QoSPolicy struct {
	cfg     QoSConfig
	tracker *QoSTracker
	// byTenant ranks by Request.Tenant (colocation runs); false falls
	// back to per-core slots, which makes QoS degenerate to
	// ATLAS-with-SLO on solo systems.
	byTenant bool
}

// NewQoS returns a QoS policy sharing the given tracker.
func NewQoS(cfg QoSConfig, tracker *QoSTracker, byTenant bool) *QoSPolicy {
	return &QoSPolicy{cfg: cfg, tracker: tracker, byTenant: byTenant}
}

// slot maps a request to its tracker slot.
func (p *QoSPolicy) slot(r *memctrl.Request) int {
	if p.byTenant {
		return coreSlot(r.Tenant, p.tracker.Slots())
	}
	return coreSlot(r.Core, p.tracker.Slots())
}

// Name implements memctrl.Policy.
func (*QoSPolicy) Name() string { return "QoS" }

// OnEnqueue implements memctrl.Policy.
func (*QoSPolicy) OnEnqueue(*memctrl.Request, uint64) {}

// OnComplete implements memctrl.Policy: served reads feed the latency
// observation behind the slowdown estimate.
func (p *QoSPolicy) OnComplete(r *memctrl.Request, now uint64) {
	if r.Kind.IsWrite() {
		return
	}
	p.tracker.ObserveRead(p.slot(r), r.Age(now))
}

// Tick implements memctrl.Policy; idempotent within a cycle so shared
// trackers tolerate one call per channel.
func (p *QoSPolicy) Tick(now uint64) { p.tracker.Tick(now) }

// NextPolicyEvent implements memctrl.EventHorizon: quantum rollovers
// are clock-driven, so fast-forwarding controllers must wake for them.
func (p *QoSPolicy) NextPolicyEvent(now uint64) uint64 {
	return p.tracker.NextBoundary()
}

// OnIssue implements memctrl.Policy: column accesses credit attained
// service exactly as ATLAS does.
func (p *QoSPolicy) OnIssue(v *memctrl.View, picked int, issued dram.Command, _ uint64) {
	if picked < 0 || !issued.Kind.IsColumn() {
		return
	}
	p.tracker.AddService(p.slot(v.Options[picked].Req), 1)
}

// Pick implements memctrl.Policy: starvation override first, then the
// bounded scan in (SLO rank, age) order.
func (p *QoSPolicy) Pick(v *memctrl.View) int {
	if v.WriteMode {
		return pickFRFCFS(v)
	}
	best := -1
	for i := range v.Options {
		opt := &v.Options[i]
		if opt.Req.Age(v.Now) < p.cfg.StarvationThreshold {
			continue
		}
		if best == -1 || opt.Req.ID < v.Options[best].Req.ID {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	scan := p.cfg.ScanDepth
	if scan <= 0 {
		scan = 4
	}
	for n := 0; n < scan; n++ {
		req := p.nthByRank(v, n)
		if req == nil {
			return -1
		}
		for i := range v.Options {
			if v.Options[i].Req == req {
				return i
			}
		}
	}
	return -1
}

// nthByRank returns the n-th queued read under (rank, age) ordering,
// or nil when fewer are queued (the ATLAS selection scan with the
// QoS comparator).
func (p *QoSPolicy) nthByRank(v *memctrl.View, n int) *memctrl.Request {
	var prev *memctrl.Request
	for k := 0; k <= n; k++ {
		var best *memctrl.Request
		for _, r := range v.ReadQueue {
			if prev != nil && !p.before(prev, r) {
				continue
			}
			if best == nil || p.before(r, best) {
				best = r
			}
		}
		if best == nil {
			return nil
		}
		prev = best
	}
	return prev
}

// before reports whether a precedes b in (rank, age) order.
func (p *QoSPolicy) before(a, b *memctrl.Request) bool {
	ra := p.tracker.Rank(p.slot(a))
	rb := p.tracker.Rank(p.slot(b))
	if ra != rb {
		return ra < rb
	}
	return a.ID < b.ID
}
