package sched

import (
	"testing"

	"cloudmc/internal/memctrl"
)

// TestATLASNextPolicyEvent pins the quantum rollover as the ATLAS
// event horizon: fast-forwarding controllers must wake exactly at each
// boundary so the ranking schedule matches the per-cycle loop.
func TestATLASNextPolicyEvent(t *testing.T) {
	cfg := ATLASConfig{QuantumCycles: 1000, Alpha: 0.875, StarvationThreshold: 100, ScanDepth: 2}
	tr := NewServiceTracker(4, cfg)
	p := NewATLAS(cfg, tr)

	if got := p.NextPolicyEvent(0); got != 1000 {
		t.Fatalf("NextPolicyEvent = %d, want 1000", got)
	}
	// Ticks before the boundary must not move it.
	p.Tick(400)
	p.Tick(999)
	if got := p.NextPolicyEvent(999); got != 1000 {
		t.Fatalf("NextPolicyEvent after early ticks = %d, want 1000", got)
	}
	// The boundary tick re-arms the next quantum relative to now —
	// which is why skipping past a boundary would shift all later ones.
	p.Tick(1000)
	if got := p.NextPolicyEvent(1000); got != 2000 {
		t.Fatalf("NextPolicyEvent after rollover = %d, want 2000", got)
	}
	p.Tick(2300) // late observation (e.g. a busy stretch): quantum re-anchors
	if got := p.NextPolicyEvent(2300); got != 3300 {
		t.Fatalf("NextPolicyEvent after late rollover = %d, want 3300", got)
	}
}

// TestOnEnqueueLeavesPolicyEventUnchanged pins the invariant the
// controller's bank-granular park re-arm depends on: an enqueue into
// a parked controller folds only the new request's own command into
// the established horizon, re-reading NextPolicyEvent no earlier than
// the next full tick. OnEnqueue must therefore never move the policy
// event earlier (memctrl.EventHorizon documents the contract).
func TestOnEnqueueLeavesPolicyEventUnchanged(t *testing.T) {
	req := &memctrl.Request{ID: 1, Core: 2, Tenant: 0, Kind: memctrl.ReadDemand, Arrival: 50}

	atlas := NewATLAS(ATLASConfig{QuantumCycles: 1000, Alpha: 0.875, StarvationThreshold: 100, ScanDepth: 2},
		NewServiceTracker(4, ATLASConfig{QuantumCycles: 1000, Alpha: 0.875, StarvationThreshold: 100, ScanDepth: 2}))
	qos := NewQoS(DefaultQoSConfig(), NewQoSTracker(4, DefaultQoSConfig()), false)

	for _, tc := range []struct {
		name string
		p    memctrl.Policy
	}{
		{"ATLAS", atlas},
		{"QoS", qos},
	} {
		eh, ok := tc.p.(memctrl.EventHorizon)
		if !ok {
			t.Fatalf("%s: expected an EventHorizon policy", tc.name)
		}
		before := eh.NextPolicyEvent(60)
		tc.p.OnEnqueue(req, 60)
		if after := eh.NextPolicyEvent(60); after != before {
			t.Fatalf("%s: OnEnqueue moved the policy event %d -> %d", tc.name, before, after)
		}
	}
}
