package sched

import "testing"

// TestATLASNextPolicyEvent pins the quantum rollover as the ATLAS
// event horizon: fast-forwarding controllers must wake exactly at each
// boundary so the ranking schedule matches the per-cycle loop.
func TestATLASNextPolicyEvent(t *testing.T) {
	cfg := ATLASConfig{QuantumCycles: 1000, Alpha: 0.875, StarvationThreshold: 100, ScanDepth: 2}
	tr := NewServiceTracker(4, cfg)
	p := NewATLAS(cfg, tr)

	if got := p.NextPolicyEvent(0); got != 1000 {
		t.Fatalf("NextPolicyEvent = %d, want 1000", got)
	}
	// Ticks before the boundary must not move it.
	p.Tick(400)
	p.Tick(999)
	if got := p.NextPolicyEvent(999); got != 1000 {
		t.Fatalf("NextPolicyEvent after early ticks = %d, want 1000", got)
	}
	// The boundary tick re-arms the next quantum relative to now —
	// which is why skipping past a boundary would shift all later ones.
	p.Tick(1000)
	if got := p.NextPolicyEvent(1000); got != 2000 {
		t.Fatalf("NextPolicyEvent after rollover = %d, want 2000", got)
	}
	p.Tick(2300) // late observation (e.g. a busy stretch): quantum re-anchors
	if got := p.NextPolicyEvent(2300); got != 3300 {
		t.Fatalf("NextPolicyEvent after late rollover = %d, want 3300", got)
	}
}
