package sched

import (
	"strings"
	"testing"
)

func testQoSConfig() QoSConfig {
	return QoSConfig{
		MaxSlowdownSLO:      2.0,
		QuantumCycles:       1_000,
		Alpha:               0.875,
		StarvationThreshold: 500,
		ScanDepth:           4,
		BaselineLatency:     100,
	}
}

// TestQoSTrackerBoostsViolators: a tenant whose observed latency
// projects its slowdown above the SLO must outrank every non-violator,
// even one with less attained service.
func TestQoSTrackerBoostsViolators(t *testing.T) {
	tr := NewQoSTracker(2, testQoSConfig())
	// Tenant 0: light service but latency 5x baseline (slowdown 5 > SLO 2).
	// Tenant 1: no service at all (would win pure LAS) and fast reads.
	tr.AddService(0, 10)
	for i := 0; i < 20; i++ {
		tr.ObserveRead(0, 500)
		tr.ObserveRead(1, 100)
	}
	tr.Tick(1_000)
	if tr.Estimate(0) <= tr.cfg.MaxSlowdownSLO {
		t.Fatalf("tenant 0 estimate %.2f not above SLO", tr.Estimate(0))
	}
	if got0, got1 := tr.Rank(0), tr.Rank(1); got0 >= got1 {
		t.Fatalf("violating tenant ranked %d, non-violator %d; boost missing", got0, got1)
	}
}

// TestQoSTrackerViolatorsOrderedByService: among violators, least
// attained service wins — the adversary whose latency is
// self-inflicted must not outrank the light victim it is hurting.
func TestQoSTrackerViolatorsOrderedByService(t *testing.T) {
	tr := NewQoSTracker(2, testQoSConfig())
	tr.AddService(0, 5)   // victim: little service
	tr.AddService(1, 500) // hog: heavy service
	for i := 0; i < 20; i++ {
		tr.ObserveRead(0, 400) // both violate the SLO
		tr.ObserveRead(1, 900)
	}
	tr.Tick(1_000)
	if tr.Rank(0) >= tr.Rank(1) {
		t.Fatalf("victim rank %d >= hog rank %d despite LAS tie-break", tr.Rank(0), tr.Rank(1))
	}
}

// TestQoSTrackerIdleDecay: a tenant that stops issuing reads must
// decay below the SLO instead of staying boosted forever.
func TestQoSTrackerIdleDecay(t *testing.T) {
	cfg := testQoSConfig()
	tr := NewQoSTracker(1, cfg)
	for i := 0; i < 20; i++ {
		tr.ObserveRead(0, 1_000)
	}
	tr.Tick(1_000)
	if tr.Estimate(0) <= cfg.MaxSlowdownSLO {
		t.Fatalf("estimate %.2f should start above SLO", tr.Estimate(0))
	}
	now := uint64(1_000)
	for i := 0; i < 40 && tr.Estimate(0) > cfg.MaxSlowdownSLO; i++ {
		now += cfg.QuantumCycles
		tr.Tick(now)
	}
	if tr.Estimate(0) > cfg.MaxSlowdownSLO {
		t.Fatalf("idle tenant still above SLO after decay: %.2f", tr.Estimate(0))
	}
}

// TestQoSTrackerQuantumIdempotent: multiple Ticks inside one quantum
// (one per channel) must not re-smooth the estimates.
func TestQoSTrackerQuantumIdempotent(t *testing.T) {
	tr := NewQoSTracker(1, testQoSConfig())
	for i := 0; i < 4; i++ {
		tr.ObserveRead(0, 300)
	}
	tr.Tick(1_000)
	est := tr.Estimate(0)
	tr.Tick(1_000)
	tr.Tick(1_001)
	if tr.Estimate(0) != est {
		t.Fatalf("estimate re-smoothed within a quantum: %.4f -> %.4f", est, tr.Estimate(0))
	}
	if tr.NextBoundary() != 1_000+testQoSConfig().QuantumCycles {
		t.Fatalf("next boundary %d", tr.NextBoundary())
	}
}

// TestParseKindQoSAndCaseInsensitive: the CLI vocabulary gains QoS and
// forgives case; unknown names list the valid ones.
func TestParseKindQoSAndCaseInsensitive(t *testing.T) {
	for _, name := range []string{"QoS", "qos", "QOS", "atlas", "fr-fcfs"} {
		if _, err := ParseKind(name); err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
	}
	_, err := ParseKind("bogus")
	if err == nil {
		t.Fatal("bogus scheduler accepted")
	}
	for _, want := range []string{"FR-FCFS", "ATLAS", "QoS", "RL", "PAR-BS", "FCFS_Banks"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %s", err, want)
		}
	}
}

// TestQoSNotInPaperGrids: the figure grids must keep plotting exactly
// the paper's five algorithms.
func TestQoSNotInPaperGrids(t *testing.T) {
	for _, k := range Kinds {
		if k == QoS {
			t.Fatal("QoS leaked into the paper's Kinds grid")
		}
	}
	if QoS.String() != "QoS" {
		t.Fatalf("QoS name = %q", QoS.String())
	}
}
