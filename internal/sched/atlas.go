package sched

import (
	"fmt"

	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
)

// ATLASConfig holds the ATLAS parameters (paper Table 3).
type ATLASConfig struct {
	// QuantumCycles is the ranking quantum length (10M cycles).
	QuantumCycles uint64
	// Alpha is the exponential-smoothing bias toward the current
	// quantum's attained service (0.875).
	Alpha float64
	// StarvationThreshold is the request age (cycles) beyond which
	// requests are served oldest-first regardless of rank (50K).
	StarvationThreshold uint64
	// ScanDepth models the bounded pick logic of the hardware
	// scheduler: each cycle ATLAS walks the queued requests in rank
	// order and issues the first legal command within the top
	// ScanDepth requests, idling otherwise. A low-ranked (heavy) core
	// therefore makes no progress while higher-ranked requests occupy
	// the scan window — the long-deprioritization behaviour the paper
	// reports for imbalanced scale-out workloads (§4.1.1).
	ScanDepth int
}

// DefaultATLASConfig returns the paper's configuration.
func DefaultATLASConfig() ATLASConfig {
	return ATLASConfig{
		QuantumCycles:       10_000_000,
		Alpha:               0.875,
		StarvationThreshold: 50_000,
		ScanDepth:           2,
	}
}

// ServiceTracker accumulates per-core attained memory service time
// across all memory controllers and recomputes the ATLAS ranking at
// quantum boundaries. One tracker is shared by every channel's ATLAS
// instance (the paper's "long time quanta ... coordinate multiple
// controllers" idea).
type ServiceTracker struct {
	cfg ATLASConfig
	// service[slot] is the attained service in the current quantum;
	// total[slot] is the exponentially smoothed total.
	service []float64
	total   []float64
	// rank[slot]: 0 is the highest priority (least attained service).
	rank        []int
	nextQuantum uint64
}

// NewServiceTracker returns a tracker for the given core count (plus
// one slot for DMA traffic).
func NewServiceTracker(cores int, cfg ATLASConfig) *ServiceTracker {
	n := cores + 1
	t := &ServiceTracker{
		cfg:         cfg,
		service:     make([]float64, n),
		total:       make([]float64, n),
		rank:        make([]int, n),
		nextQuantum: cfg.QuantumCycles,
	}
	return t
}

// AddService credits service cycles to a core slot.
func (t *ServiceTracker) AddService(slot int, cycles float64) {
	t.service[slot] += cycles
}

// Tick advances the tracker; at quantum boundaries it re-ranks cores
// by smoothed total attained service, least first.
func (t *ServiceTracker) Tick(now uint64) {
	if now < t.nextQuantum {
		return
	}
	t.nextQuantum = now + t.cfg.QuantumCycles
	a := t.cfg.Alpha
	for i := range t.total {
		t.total[i] = a*t.service[i] + (1-a)*t.total[i]
		t.service[i] = 0
	}
	// Rank by total ascending (insertion sort over <=17 slots).
	order := make([]int, len(t.total))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		j := order[i]
		k := i - 1
		for k >= 0 && t.total[order[k]] > t.total[j] {
			order[k+1] = order[k]
			k--
		}
		order[k+1] = j
	}
	for r, slot := range order {
		t.rank[slot] = r
	}
	if debugATLAS {
		fmt.Printf("atlas ranks @%d: %v totals: %.0f\n", now, t.rank, t.total)
	}
}

// debugATLAS enables rank tracing for development. It is a
// compile-time switch rather than an environment lookup: an env var
// would make simulation behavior depend on host state, which the
// nodeterm invariant forbids in simulation packages.
const debugATLAS = false

// NextBoundary returns the cycle at which the next quantum rollover
// fires (the earliest now for which Tick re-ranks).
func (t *ServiceTracker) NextBoundary() uint64 { return t.nextQuantum }

// Rank returns the current rank of a core slot (0 = highest priority).
func (t *ServiceTracker) Rank(slot int) int { return t.rank[slot] }

// Cores returns the number of tracked slots minus the DMA slot.
func (t *ServiceTracker) Cores() int { return len(t.rank) - 1 }

// ATLASPolicy implements Adaptive per-Thread Least-Attained-Service
// scheduling (Kim et al., §2.1). Priority order: over-threshold
// (starving) requests oldest-first, then least-attained-service core
// rank, then row hits, then age.
type ATLASPolicy struct {
	cfg     ATLASConfig
	tracker *ServiceTracker
	// byTenant ranks by Request.Tenant instead of Request.Core
	// (multi-tenant systems; the tracker is then sized per tenant).
	byTenant bool
}

// NewATLAS returns an ATLAS policy sharing the given tracker, ranking
// per core (the paper's configuration).
func NewATLAS(cfg ATLASConfig, tracker *ServiceTracker) *ATLASPolicy {
	return &ATLASPolicy{cfg: cfg, tracker: tracker}
}

// NewATLASTenants returns an ATLAS policy that accounts and ranks
// attained service per tenant; the tracker must be sized with the
// tenant count.
func NewATLASTenants(cfg ATLASConfig, tracker *ServiceTracker) *ATLASPolicy {
	return &ATLASPolicy{cfg: cfg, tracker: tracker, byTenant: true}
}

// slot maps a request to its service-tracker slot: its tenant in
// tenant mode, its core otherwise; unattributed traffic folds into the
// tracker's extra slot either way.
func (p *ATLASPolicy) slot(r *memctrl.Request) int {
	if p.byTenant {
		return coreSlot(r.Tenant, p.tracker.Cores())
	}
	return coreSlot(r.Core, p.tracker.Cores())
}

// Name implements memctrl.Policy.
func (*ATLASPolicy) Name() string { return "ATLAS" }

// OnEnqueue implements memctrl.Policy.
func (*ATLASPolicy) OnEnqueue(*memctrl.Request, uint64) {}

// OnComplete implements memctrl.Policy.
func (*ATLASPolicy) OnComplete(*memctrl.Request, uint64) {}

// Tick implements memctrl.Policy. Multiple per-channel instances may
// share a tracker; Tick is idempotent within a cycle.
func (p *ATLASPolicy) Tick(now uint64) { p.tracker.Tick(now) }

// NextPolicyEvent implements memctrl.EventHorizon: the quantum
// rollover is clock-driven, so fast-forwarding controllers must wake
// for it even when no memory traffic is pending — otherwise a skipped
// boundary would shift every subsequent quantum and change the
// rankings.
func (p *ATLASPolicy) NextPolicyEvent(now uint64) uint64 {
	return p.tracker.NextBoundary()
}

// OnIssue implements memctrl.Policy: column accesses credit the
// issuing core's attained service with the data-burst occupancy,
// approximating "ATS increases by the number of banks servicing the
// core's requests each cycle".
func (p *ATLASPolicy) OnIssue(v *memctrl.View, picked int, issued dram.Command, _ uint64) {
	if picked < 0 || !issued.Kind.IsColumn() {
		return
	}
	req := v.Options[picked].Req
	p.tracker.AddService(p.slot(req), 1)
}

// Pick implements memctrl.Policy.
func (p *ATLASPolicy) Pick(v *memctrl.View) int {
	if v.WriteMode {
		return pickFRFCFS(v)
	}
	// Starvation override: any request older than the threshold is
	// served oldest-first.
	best := -1
	for i := range v.Options {
		opt := &v.Options[i]
		if opt.Req.Age(v.Now) < p.cfg.StarvationThreshold {
			continue
		}
		if best == -1 || opt.Req.ID < v.Options[best].Req.ID {
			best = i
		}
	}
	if best >= 0 {
		return best
	}

	// Walk queued requests in (LAS rank, age) order; issue the first
	// legal command found within the scan window.
	scan := p.cfg.ScanDepth
	if scan <= 0 {
		scan = 2
	}
	for n := 0; n < scan; n++ {
		req := p.nthByRank(v, n)
		if req == nil {
			return -1
		}
		for i := range v.Options {
			if v.Options[i].Req == req {
				return i
			}
		}
	}
	return -1
}

// nthByRank returns the n-th queued read request under (rank, age)
// ordering, or nil when fewer requests are queued. n is small (the
// scan depth), so repeated selection scans beat sorting.
func (p *ATLASPolicy) nthByRank(v *memctrl.View, n int) *memctrl.Request {
	var prev *memctrl.Request
	for k := 0; k <= n; k++ {
		var best *memctrl.Request
		for _, r := range v.ReadQueue {
			if !p.after(r, prev) {
				continue
			}
			if best == nil || p.before(r, best) {
				best = r
			}
		}
		if best == nil {
			return nil
		}
		prev = best
	}
	return prev
}

// before reports whether a precedes b in (rank, age) order.
func (p *ATLASPolicy) before(a, b *memctrl.Request) bool {
	ra := p.tracker.Rank(p.slot(a))
	rb := p.tracker.Rank(p.slot(b))
	if ra != rb {
		return ra < rb
	}
	return a.ID < b.ID
}

// after reports whether r comes strictly after prev (nil prev = start).
func (p *ATLASPolicy) after(r, prev *memctrl.Request) bool {
	if prev == nil {
		return true
	}
	return p.before(prev, r)
}

func less3(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
