package sched

import (
	"strings"
	"testing"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range append(append([]Kind{}, Kinds...), QoS) {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
		lower, err := ParseKind(strings.ToLower(k.String()))
		if err != nil || lower != k {
			t.Fatalf("ParseKind(%q) = %v, %v", strings.ToLower(k.String()), lower, err)
		}
	}
}

// TestParseKindErrorDeterministic pins the valid-name list in the
// error to declaration order: two calls must produce byte-identical
// messages, and the names must appear in the Kinds-then-QoS order the
// docs promise. A map-ordered implementation fails this almost surely
// within a few runs.
func TestParseKindErrorDeterministic(t *testing.T) {
	_, err1 := ParseKind("nope")
	_, err2 := ParseKind("nope")
	if err1 == nil || err2 == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("error message varies between calls:\n%s\n%s", err1, err2)
	}
	want := `sched: unknown scheduling algorithm "nope" (valid: FR-FCFS, FCFS_Banks, PAR-BS, ATLAS, RL, QoS)`
	if err1.Error() != want {
		t.Fatalf("error = %q, want %q", err1, want)
	}
}
