package sched

import (
	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
)

// PARBSConfig holds the PAR-BS parameters (paper Table 3).
type PARBSConfig struct {
	// BatchingCap is the maximum number of requests per (core, bank)
	// pair marked into a batch.
	BatchingCap int
}

// DefaultPARBSConfig returns the paper's configuration: batching cap 5.
func DefaultPARBSConfig() PARBSConfig { return PARBSConfig{BatchingCap: 5} }

// PARBSPolicy implements Parallelism-Aware Batch Scheduling (Mutlu &
// Moscibroda, §2.1). Requests are grouped into batches — up to
// BatchingCap oldest requests per core per bank — that are prioritized
// over everything else until the batch drains. Within a batch, cores
// are ranked shortest-job-first (a core's job length is its maximum
// number of marked requests to any single bank), which preserves
// bank-level parallelism of light cores. Full priority order:
// batched > row-hit > core rank > age.
type PARBSPolicy struct {
	cfg   PARBSConfig
	cores int

	// remaining counts unserved marked requests in the current batch.
	remaining int
	// rank[slot] is the core's batch rank; lower ranks first.
	rank []int
}

// NewPARBS returns a PAR-BS policy for a system with the given core
// count.
func NewPARBS(cfg PARBSConfig, cores int) *PARBSPolicy {
	if cfg.BatchingCap <= 0 {
		cfg.BatchingCap = 5
	}
	return &PARBSPolicy{cfg: cfg, cores: cores, rank: make([]int, cores+1)}
}

// Name implements memctrl.Policy.
func (*PARBSPolicy) Name() string { return "PAR-BS" }

// OnEnqueue implements memctrl.Policy.
func (*PARBSPolicy) OnEnqueue(*memctrl.Request, uint64) {}

// OnComplete implements memctrl.Policy: a served batched request
// shrinks the batch.
func (p *PARBSPolicy) OnComplete(r *memctrl.Request, _ uint64) {
	if r.Batched {
		r.Batched = false
		if p.remaining > 0 {
			p.remaining--
		}
	}
}

// Tick implements memctrl.Policy.
func (*PARBSPolicy) Tick(uint64) {}

// OnIssue implements memctrl.Policy.
func (*PARBSPolicy) OnIssue(*memctrl.View, int, dram.Command, uint64) {}

// formBatch marks up to BatchingCap oldest requests per (core, bank)
// from the read queue and ranks cores shortest-job-first.
func (p *PARBSPolicy) formBatch(v *memctrl.View) {
	// load[slot][bank] counts marked requests; banks keyed by
	// rank*banks+bank packed into an int map per slot.
	type slotLoad map[int]int
	loads := make([]slotLoad, p.cores+1)
	for i := range loads {
		loads[i] = make(slotLoad)
	}
	marked := 0
	// The read queue is in arrival order, so scanning forward marks
	// the oldest first.
	for _, r := range v.ReadQueue {
		slot := coreSlot(r.Core, p.cores)
		bank := r.Loc.Rank<<8 | r.Loc.Bank
		if loads[slot][bank] >= p.cfg.BatchingCap {
			continue
		}
		loads[slot][bank]++
		r.Batched = true
		marked++
	}
	p.remaining = marked

	// Shortest job first: a core's job length is its max per-bank
	// marked count; rank 0 is the shortest.
	type coreJob struct {
		slot, maxLoad, total int
	}
	jobs := make([]coreJob, 0, p.cores+1)
	for slot, l := range loads {
		j := coreJob{slot: slot}
		//mclint:order-insensitive -- max and sum over the values; both reductions are commutative
		for _, n := range l {
			j.total += n
			if n > j.maxLoad {
				j.maxLoad = n
			}
		}
		jobs = append(jobs, j)
	}
	// Insertion sort by (maxLoad, total); the slice is at most
	// cores+1 long.
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		k := i - 1
		for k >= 0 && (jobs[k].maxLoad > j.maxLoad ||
			(jobs[k].maxLoad == j.maxLoad && jobs[k].total > j.total)) {
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
	for rank, j := range jobs {
		p.rank[j.slot] = rank
	}
}

// Pick implements memctrl.Policy.
func (p *PARBSPolicy) Pick(v *memctrl.View) int {
	if v.WriteMode {
		// Writes drain with FR-FCFS rules; PAR-BS batches demand
		// reads only.
		return pickFRFCFS(v)
	}
	if p.remaining == 0 && len(v.ReadQueue) > 0 {
		p.formBatch(v)
	}
	best := -1
	var bestKey [4]int // batched, rowhit, -rank, age — encoded for comparison
	for i := range v.Options {
		opt := &v.Options[i]
		key := p.priorityKey(opt)
		if best == -1 || less(key, bestKey) {
			best = i
			bestKey = key
		}
	}
	return best
}

// priorityKey encodes PAR-BS priority; lexicographically smaller wins.
func (p *PARBSPolicy) priorityKey(opt *memctrl.Option) [4]int {
	batched := 1
	if opt.Req.Batched {
		batched = 0
	}
	hit := 1
	if opt.RowHit {
		hit = 0
	}
	rank := p.rank[coreSlot(opt.Req.Core, p.cores)]
	return [4]int{batched, hit, rank, int(opt.Req.ID)}
}

func less(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// pickFRFCFS applies FR-FCFS selection; shared by policies that fall
// back to it for write drains.
func pickFRFCFS(v *memctrl.View) int {
	best := -1
	bestHit := false
	for i := range v.Options {
		opt := &v.Options[i]
		switch {
		case best == -1,
			opt.RowHit && !bestHit,
			opt.RowHit == bestHit && opt.Req.ID < v.Options[best].Req.ID:
			best = i
			bestHit = opt.RowHit
		}
	}
	return best
}
