package sched

import (
	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
)

// RLConfig holds the reinforcement-learning scheduler parameters
// (paper Table 3).
type RLConfig struct {
	// Tables is the number of CMAC-style Q-value tables (32).
	Tables int
	// TableSize is the number of Q-values per table (256).
	TableSize int
	// Alpha is the learning rate (0.1).
	Alpha float64
	// Gamma is the discount rate (0.95).
	Gamma float64
	// Epsilon is the random-action probability (0.05).
	Epsilon float64
	// StarvationThreshold is the request age (cycles) beyond which the
	// oldest request is served unconditionally (10K).
	StarvationThreshold uint64
}

// DefaultRLConfig returns the paper's configuration.
func DefaultRLConfig() RLConfig {
	return RLConfig{
		Tables:              32,
		TableSize:           256,
		Alpha:               0.1,
		Gamma:               0.95,
		Epsilon:             0.05,
		StarvationThreshold: 10_000,
	}
}

// RLPolicy is the self-optimizing scheduler of Ipek et al. (§2.1)
// re-implemented with the paper's Table 3 parameters. The scheduler
// treats command selection as a continuing SARSA problem: the state is
// summarized by queue-occupancy and locality attributes, the actions
// are the legal DRAM commands this cycle (plus no-op), Q-values live
// in hashed coarse-coded tables, and the reward is 1 whenever a
// command moves data on the bus. Writes are first-class actions, which
// is why RL runs with lower write-queue occupancy than the drain-mode
// policies (paper §4.1.3).
type RLPolicy struct {
	cfg    RLConfig
	tables [][]float64
	rng    uint64

	// SARSA bookkeeping for the previous decision.
	havePrev   bool
	prevIdx    []int
	prevQ      float64
	reward     float64
	pickedThis bool

	// scratch
	idxBuf []int
}

// NewRL returns an RL scheduling policy with its own Q-tables and a
// deterministic exploration stream derived from seed.
func NewRL(cfg RLConfig, seed uint64) *RLPolicy {
	if cfg.Tables <= 0 || cfg.TableSize <= 0 {
		panic("sched: RL config must have positive table dimensions")
	}
	t := make([][]float64, cfg.Tables)
	for i := range t {
		t[i] = make([]float64, cfg.TableSize)
	}
	if seed == 0 {
		seed = 0x2545f4914f6cdd1d
	}
	return &RLPolicy{
		cfg:     cfg,
		tables:  t,
		rng:     seed,
		prevIdx: make([]int, cfg.Tables),
		idxBuf:  make([]int, cfg.Tables),
	}
}

// Name implements memctrl.Policy.
func (*RLPolicy) Name() string { return "RL" }

// ConsidersWrites implements memctrl.WriteAware: RL sees read and
// write options together every cycle.
func (*RLPolicy) ConsidersWrites() bool { return true }

// OnEnqueue implements memctrl.Policy.
func (*RLPolicy) OnEnqueue(*memctrl.Request, uint64) {}

// OnComplete implements memctrl.Policy.
func (*RLPolicy) OnComplete(*memctrl.Request, uint64) {}

// Tick implements memctrl.Policy.
func (*RLPolicy) Tick(uint64) {}

// OnIssue implements memctrl.Policy: data-moving commands earn reward.
func (p *RLPolicy) OnIssue(_ *memctrl.View, picked int, issued dram.Command, _ uint64) {
	if !p.pickedThis {
		return
	}
	p.pickedThis = false
	if issued.Kind.IsColumn() {
		p.reward = 1
	} else {
		p.reward = 0
	}
}

// nextRand advances the xorshift64* PRNG.
func (p *RLPolicy) nextRand() uint64 {
	x := p.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.rng = x
	return x * 0x2545f4914f6cdd1d
}

// randFloat returns a uniform float64 in [0, 1).
func (p *RLPolicy) randFloat() float64 {
	return float64(p.nextRand()>>11) / (1 << 53)
}

// stateFeatures summarizes the controller state into small integers.
type stateFeatures struct {
	reads, writes, hits int
}

func bucket(v, max int) int {
	if v > max {
		return max
	}
	return v
}

func extractState(v *memctrl.View) stateFeatures {
	return stateFeatures{
		reads:  bucket(v.ReadQLen/2, 15),
		writes: bucket(v.WriteQLen/4, 15),
		hits:   bucket(v.PendingRowHits, 15),
	}
}

// actionFeatures summarizes one candidate command.
type actionFeatures struct {
	kind     int // dram.CommandKind
	rowHit   int
	isWrite  int
	ageLog2  int
	loadRead int // demand read vs other traffic
}

func extractAction(v *memctrl.View, i int) actionFeatures {
	if i < 0 {
		return actionFeatures{} // no-op
	}
	opt := &v.Options[i]
	var a actionFeatures
	a.kind = int(opt.Cmd.Kind)
	if opt.RowHit {
		a.rowHit = 1
	}
	if opt.Req.Kind.IsWrite() {
		a.isWrite = 1
	}
	if opt.Req.Kind == memctrl.ReadDemand {
		a.loadRead = 1
	}
	age := opt.Req.Age(v.Now)
	for age > 0 && a.ageLog2 < 15 {
		age >>= 2
		a.ageLog2++
	}
	return a
}

// mix64 is the splitmix64 finalizer, used as the table hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// qIndices computes, into dst, the per-table entry index for the
// state-action pair. Each table hashes the pair with a different seed,
// giving the coarse-coded overlap CMAC relies on.
func (p *RLPolicy) qIndices(dst []int, s stateFeatures, a actionFeatures) {
	key := uint64(s.reads)<<40 | uint64(s.writes)<<32 | uint64(s.hits)<<24 |
		uint64(a.kind)<<20 | uint64(a.rowHit)<<19 | uint64(a.isWrite)<<18 |
		uint64(a.loadRead)<<17 | uint64(a.ageLog2)<<8
	for t := range dst {
		dst[t] = int(mix64(key+uint64(t)*0x9e3779b97f4a7c15) % uint64(p.cfg.TableSize))
	}
}

// qValue sums the per-table entries for the indices.
func (p *RLPolicy) qValue(idx []int) float64 {
	var q float64
	for t, i := range idx {
		q += p.tables[t][i]
	}
	return q
}

// Pick implements memctrl.Policy: SARSA over the legal command set.
func (p *RLPolicy) Pick(v *memctrl.View) int {
	s := extractState(v)

	// Candidate selection: starvation override, else epsilon-greedy
	// over options plus the no-op action.
	chosen := -2 // -2 = not decided; -1 = no-op
	oldest := -1
	for i := range v.Options {
		opt := &v.Options[i]
		if opt.Req.Age(v.Now) >= p.cfg.StarvationThreshold {
			if oldest == -1 || opt.Req.ID < v.Options[oldest].Req.ID {
				oldest = i
			}
		}
	}
	if oldest >= 0 {
		chosen = oldest
	} else if p.randFloat() < p.cfg.Epsilon {
		// Explore: uniform over options and no-op.
		n := len(v.Options) + 1
		chosen = int(p.nextRand()%uint64(n)) - 1
	} else {
		// Exploit: argmax Q over options and no-op.
		bestQ := 0.0
		first := true
		for i := -1; i < len(v.Options); i++ {
			p.qIndices(p.idxBuf, s, extractAction(v, i))
			q := p.qValue(p.idxBuf)
			if first || q > bestQ {
				bestQ = q
				chosen = i
				first = false
			}
		}
	}

	// Q-indices and value of the chosen action.
	p.qIndices(p.idxBuf, s, extractAction(v, chosen))
	q := p.qValue(p.idxBuf)

	// SARSA update of the previous decision toward reward + gamma*q.
	if p.havePrev {
		target := p.reward + p.cfg.Gamma*q
		delta := p.cfg.Alpha * (target - p.prevQ) / float64(p.cfg.Tables)
		for t, i := range p.prevIdx {
			p.tables[t][i] += delta
		}
	}
	copy(p.prevIdx, p.idxBuf)
	p.prevQ = q
	p.havePrev = true
	p.reward = 0
	p.pickedThis = true
	return chosen
}
