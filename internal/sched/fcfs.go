package sched

import (
	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
)

// FCFSBanksPolicy services each bank's requests strictly in arrival
// order while letting independent banks proceed in parallel — the
// "FCFS_banks" variant the paper evaluates (§2.1). It never reorders
// within a bank, so it cannot promote row hits past older conflicting
// requests; across banks it serves the bank whose head request is
// oldest.
type FCFSBanksPolicy struct {
	noHooks
}

// NewFCFSBanks returns the FCFS_Banks policy.
func NewFCFSBanks() *FCFSBanksPolicy { return &FCFSBanksPolicy{} }

// Name implements memctrl.Policy.
func (*FCFSBanksPolicy) Name() string { return "FCFS_Banks" }

// Pick implements memctrl.Policy: among options that advance their
// bank's oldest request, choose the globally oldest.
func (*FCFSBanksPolicy) Pick(v *memctrl.View) int {
	best := -1
	for i := range v.Options {
		opt := &v.Options[i]
		if opt.Req.ID != opt.BankOldestID {
			continue // per-bank FIFO: only the head may be served
		}
		if best == -1 || opt.Req.ID < v.Options[best].Req.ID {
			best = i
		}
	}
	return best
}

// OnIssue implements memctrl.Policy.
func (*FCFSBanksPolicy) OnIssue(*memctrl.View, int, dram.Command, uint64) {}

// FRFCFSPolicy is the baseline first-ready first-come-first-served
// scheduler (Rixner et al., §2.1): column accesses that hit the open
// row are served before any other command; ties and non-hits are
// broken by age.
type FRFCFSPolicy struct {
	noHooks
}

// NewFRFCFS returns the FR-FCFS policy.
func NewFRFCFS() *FRFCFSPolicy { return &FRFCFSPolicy{} }

// Name implements memctrl.Policy.
func (*FRFCFSPolicy) Name() string { return "FR-FCFS" }

// Pick implements memctrl.Policy.
func (*FRFCFSPolicy) Pick(v *memctrl.View) int {
	best := -1
	bestHit := false
	for i := range v.Options {
		opt := &v.Options[i]
		switch {
		case best == -1,
			opt.RowHit && !bestHit,
			opt.RowHit == bestHit && opt.Req.ID < v.Options[best].Req.ID:
			best = i
			bestHit = opt.RowHit
		}
	}
	return best
}

// OnIssue implements memctrl.Policy.
func (*FRFCFSPolicy) OnIssue(*memctrl.View, int, dram.Command, uint64) {}
