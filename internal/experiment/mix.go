package experiment

import (
	"fmt"

	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
)

// RunMix executes (or returns the cached metrics of) one colocation
// run. Mix cells live in the same memoized, single-flighted cache as
// the solo figure grid; the key is the mix name plus the isolation
// axis.
func (s *Study) RunMix(m tenant.Mix, k runKey) core.Metrics {
	k.workload = "mix:" + m.Name
	return s.do(k, func() core.Metrics {
		cfg := core.DefaultMixConfig(m)
		s.applyStudyConfig(&cfg, k)
		iso, err := core.ParseIsolation(k.isolation)
		if err != nil {
			panic(fmt.Sprintf("experiment: mix %s: %v", m.Name, err))
		}
		cfg.Isolation = iso
		sys, err := core.NewSystem(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiment: mix %s: %v", m.Name, err))
		}
		s.instrument(k, sys)
		return sys.Run()
	})
}

// RunSolo executes (or returns the cached metrics of) a tenant's
// fairness baseline: the tenant's profile alone on the machine with
// the same core allocation it holds inside a mix. The cache key
// includes the core count, so every mix containing the same tenant
// spec shares one baseline simulation; the isolation axis is dropped
// from the key (a tenant alone owns the whole machine, partitioned or
// not), so every isolation cell shares the baseline too.
func (s *Study) RunSolo(sp tenant.Spec, k runKey) core.Metrics {
	p := sp.Adjusted()
	k.workload = p.Acronym
	k.cores = p.Cores
	k.isolation = ""
	return s.do(k, func() core.Metrics {
		sys, err := core.NewSystem(s.systemConfig(p, k))
		if err != nil {
			panic(fmt.Sprintf("experiment: solo %s/%dc: %v", p.Acronym, p.Cores, err))
		}
		s.instrument(k, sys)
		return sys.Run()
	})
}

// MixResult is one evaluated colocation cell: the shared-machine run,
// the per-tenant solo baselines, and the derived fairness summary.
type MixResult struct {
	Mix       tenant.Mix
	Scheduler sched.Kind
	Channels  int
	Isolation core.Isolation
	// Shared is the mix run; Shared.Tenants carries the per-tenant
	// breakdown.
	Shared core.Metrics
	// SoloIPC is each tenant's baseline throughput running alone on
	// its core allocation, in mix order.
	SoloIPC []float64
	// Fairness derives slowdowns and speedups from SoloIPC and the
	// shared per-tenant IPCs.
	Fairness tenant.Fairness
}

// MixStudy sweeps colocation mixes across schedulers, channel counts
// and isolation modes, sharing one Study cache so solo baselines are
// simulated once per (tenant, scheduler, channels) no matter how many
// mixes or isolation cells they appear in.
type MixStudy struct {
	study      *Study
	mixes      []tenant.Mix
	scheds     []sched.Kind
	channels   []int
	isolations []core.Isolation
}

// NewMixStudy builds a mix study. Nil mixes defaults to
// tenant.StudyMixes(), nil schedulers to FR-FCFS and ATLAS, nil
// channels to {1}, and nil isolations to {none}.
func NewMixStudy(cfg Config, mixes []tenant.Mix, scheds []sched.Kind, channels []int, isolations []core.Isolation) *MixStudy {
	if mixes == nil {
		mixes = tenant.StudyMixes()
	}
	if scheds == nil {
		scheds = []sched.Kind{sched.FRFCFS, sched.ATLAS}
	}
	if channels == nil {
		channels = []int{1}
	}
	if isolations == nil {
		isolations = []core.Isolation{{}}
	}
	seen := make(map[string]bool, len(mixes))
	for _, m := range mixes {
		if seen[m.Name] {
			panic(fmt.Sprintf("experiment: duplicate mix name %q in study (names key the run cache)", m.Name))
		}
		seen[m.Name] = true
	}
	return &MixStudy{
		study:      NewStudy(cfg),
		mixes:      mixes,
		scheds:     scheds,
		channels:   channels,
		isolations: isolations,
	}
}

// Study exposes the underlying memoized study (tests inspect its
// simulation count).
func (ms *MixStudy) Study() *Study { return ms.study }

// cellKey is the run key for one (scheduler, channels, isolation)
// axis point.
func cellKey(k sched.Kind, channels int, iso core.Isolation) runKey {
	key := baselineKey("")
	key.scheduler = k
	key.channels = channels
	key.isolation = iso.String()
	return key
}

// Results evaluates the whole sweep in parallel and returns one
// MixResult per (mix, scheduler, channels, isolation) cell, in
// mix-major order.
func (ms *MixStudy) Results() []MixResult {
	// Materialize every cell (mix runs and solo baselines) in one
	// parallel wave; the cache deduplicates shared baselines. Cell
	// labels mirror the cache keys RunMix/RunSolo build, so Progress
	// events and Instrument labels agree.
	var cells []studyCell
	for _, m := range ms.mixes {
		for _, k := range ms.scheds {
			for _, ch := range ms.channels {
				for _, iso := range ms.isolations {
					m, k, ch, iso := m, k, ch, iso
					mixKey := cellKey(k, ch, iso)
					mixKey.workload = "mix:" + m.Name
					cells = append(cells, studyCell{
						label: mixKey.label(),
						run:   func() { ms.study.RunMix(m, cellKey(k, ch, iso)) },
					})
					for _, sp := range m.Tenants {
						sp := sp
						p := sp.Adjusted()
						soloKey := cellKey(k, ch, iso)
						soloKey.workload = p.Acronym
						soloKey.cores = p.Cores
						soloKey.isolation = ""
						cells = append(cells, studyCell{
							label: soloKey.label(),
							run:   func() { ms.study.RunSolo(sp, cellKey(k, ch, iso)) },
						})
					}
				}
			}
		}
	}
	ms.study.runAll(cells)

	var out []MixResult
	for _, m := range ms.mixes {
		for _, k := range ms.scheds {
			for _, ch := range ms.channels {
				for _, iso := range ms.isolations {
					key := cellKey(k, ch, iso)
					shared := ms.study.RunMix(m, key)
					res := MixResult{Mix: m, Scheduler: k, Channels: ch, Isolation: iso, Shared: shared}
					sharedIPC := make([]float64, len(m.Tenants))
					for i := range m.Tenants {
						sharedIPC[i] = shared.Tenants[i].IPC
						res.SoloIPC = append(res.SoloIPC, ms.study.RunSolo(m.Tenants[i], key).UserIPC)
					}
					res.Fairness = tenant.ComputeFairness(res.SoloIPC, sharedIPC)
					out = append(out, res)
				}
			}
		}
	}
	return out
}

// FairnessTable renders the sweep as one Table per the paper's format:
// rows are (mix, isolation) pairs, columns are (scheduler, metric)
// pairs with weighted speedup, harmonic speedup and max slowdown, at
// the first configured channel count.
func (ms *MixStudy) FairnessTable(results []MixResult) *Table {
	ch := ms.channels[0]
	t := &Table{
		ID:    "Fairness",
		Title: fmt.Sprintf("colocation fairness, %d channel(s)", ch),
		Note:  "WS = weighted speedup (ntenants is ideal), HS = harmonic speedup (1 is ideal), MaxSlow = max per-tenant slowdown vs solo",
	}
	for _, k := range ms.scheds {
		t.Cols = append(t.Cols, k.String()+" WS", k.String()+" HS", k.String()+" MaxSlow")
	}
	for _, m := range ms.mixes {
		for _, iso := range ms.isolations {
			label := m.Name
			if len(ms.isolations) > 1 {
				label = fmt.Sprintf("%s [%s]", m.Name, iso)
			}
			t.Rows = append(t.Rows, label)
			row := make([]float64, 0, len(t.Cols))
			for _, k := range ms.scheds {
				for _, r := range results {
					if r.Mix.Name == m.Name && r.Scheduler == k && r.Channels == ch && r.Isolation == iso {
						row = append(row, r.Fairness.WeightedSpeedup, r.Fairness.HarmonicSpeedup, r.Fairness.MaxSlowdown)
						break
					}
				}
			}
			t.Values = append(t.Values, row)
		}
	}
	return t
}
