package experiment

import (
	"strings"
	"testing"

	"cloudmc/internal/workload"
)

// tinyConfig runs a two-workload study fast enough for unit tests.
func tinyConfig() Config {
	return Config{
		MeasureCycles: 40_000,
		WarmupCycles:  10_000,
		Seed:          1,
		Workloads: []workload.Profile{
			workload.WebSearch(), // SCOW
			workload.TPCHQ6(),    // DSPW
		},
	}
}

func TestFigure01Structure(t *testing.T) {
	s := NewStudy(tinyConfig())
	tbl := s.Figure01()
	if tbl.ID != "Figure 1" {
		t.Fatalf("ID = %q", tbl.ID)
	}
	if len(tbl.Cols) != 5 {
		t.Fatalf("cols = %v", tbl.Cols)
	}
	if tbl.Cols[0] != "FR-FCFS" {
		t.Fatalf("first column = %q, want FR-FCFS", tbl.Cols[0])
	}
	// Rows: 2 workloads + 3 category averages.
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// Normalization: the FR-FCFS column must be exactly 1 for
	// workload rows.
	for i := 0; i < 2; i++ {
		if tbl.Values[i][0] != 1 {
			t.Fatalf("row %d FR-FCFS = %f, want 1", i, tbl.Values[i][0])
		}
	}
}

func TestCategoryAveragesUseOnlyOwnWorkloads(t *testing.T) {
	s := NewStudy(tinyConfig())
	tbl := s.Figure02()
	ws, _ := tbl.Cell("WS", "FR-FCFS")
	avgSCO, _ := tbl.Cell("Avg_SCO", "FR-FCFS")
	if ws != avgSCO {
		t.Fatalf("Avg_SCO %f should equal the lone SCOW workload %f", avgSCO, ws)
	}
	q6, _ := tbl.Cell("TPCH-Q6", "FR-FCFS")
	avgDSP, _ := tbl.Cell("Avg_DSP", "FR-FCFS")
	if q6 != avgDSP {
		t.Fatalf("Avg_DSP %f should equal the lone DSPW workload %f", avgDSP, q6)
	}
	// TRS has no workloads in the tiny config: must be NaN (rendered
	// as "-"), not zero.
	avgTRS, ok := tbl.Cell("Avg_TRS", "FR-FCFS")
	if !ok {
		t.Fatal("Avg_TRS row missing")
	}
	if avgTRS == avgTRS { // NaN check
		t.Fatalf("Avg_TRS = %f, want NaN for an empty category", avgTRS)
	}
}

func TestStudyCachesRuns(t *testing.T) {
	s := NewStudy(tinyConfig())
	p := workload.WebSearch()
	a := s.Run(p, baselineKey(p.Acronym))
	b := s.Run(p, baselineKey(p.Acronym))
	if a.Retired != b.Retired || a.RowHits != b.RowHits {
		t.Fatal("cache returned different metrics")
	}
	if len(s.cache) != 1 {
		t.Fatalf("cache size = %d, want 1", len(s.cache))
	}
}

func TestFigure08SingleColumn(t *testing.T) {
	s := NewStudy(tinyConfig())
	tbl := s.Figure08()
	if len(tbl.Cols) != 1 {
		t.Fatalf("cols = %v", tbl.Cols)
	}
	v, ok := tbl.Cell("WS", "1-access %")
	if !ok || v <= 0 || v > 100 {
		t.Fatalf("WS single-access = %f", v)
	}
}

func TestTable4UsesMappingNames(t *testing.T) {
	s := NewStudy(tinyConfig())
	tbl := s.Table4()
	if tbl.Text == nil {
		t.Fatal("Table 4 must be textual")
	}
	for _, row := range tbl.Text {
		for _, cell := range row {
			if !strings.HasPrefix(cell, "Ro") {
				t.Fatalf("cell %q is not a mapping scheme", cell)
			}
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	s := NewStudy(tinyConfig())
	tbl := s.Figure01()
	text := tbl.Render()
	if !strings.Contains(text, "Figure 1") || !strings.Contains(text, "FR-FCFS") {
		t.Fatalf("render missing headers:\n%s", text)
	}
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(tbl.Rows) {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+len(tbl.Rows))
	}
	if !strings.HasPrefix(lines[0], "workload,FR-FCFS") {
		t.Fatalf("csv header = %q", lines[0])
	}
	// NaN cells must render as empty in CSV and "-" in text.
	if !strings.Contains(text, "-") {
		t.Error("NaN cell not rendered as '-'")
	}
}

func TestCellLookup(t *testing.T) {
	tbl := &Table{
		Rows:   []string{"a", "b"},
		Cols:   []string{"x"},
		Values: [][]float64{{1}, {2}},
	}
	if v, ok := tbl.Cell("b", "x"); !ok || v != 2 {
		t.Fatalf("cell = (%f, %v)", v, ok)
	}
	if _, ok := tbl.Cell("c", "x"); ok {
		t.Fatal("missing row reported present")
	}
}

func TestQuickAndStandardConfigs(t *testing.T) {
	q, s := Quick(), Standard()
	if q.MeasureCycles >= s.MeasureCycles {
		t.Fatal("Quick must be smaller than Standard")
	}
	if len(q.workloads()) != 12 {
		t.Fatalf("default workload set = %d, want 12", len(q.workloads()))
	}
}
