package experiment

import (
	"sync"
	"testing"

	"cloudmc/internal/workload"
)

// TestStudySingleFlight proves the cache's in-flight guard: many
// goroutines racing on the same cell must produce exactly one
// simulation, with every caller receiving the identical metrics.
func TestStudySingleFlight(t *testing.T) {
	s := NewStudy(Config{MeasureCycles: 20_000, WarmupCycles: 5_000, Seed: 1})
	p := workload.WebSearch()
	key := baselineKey(p.Acronym)

	const callers = 8
	results := make([]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Run(p, key).UserIPC
		}(i)
	}
	wg.Wait()

	s.mu.Lock()
	sims := s.simulations
	s.mu.Unlock()
	if sims != 1 {
		t.Fatalf("expected exactly 1 simulation for %d racing callers, got %d", callers, sims)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw UserIPC %v, caller 0 saw %v", i, results[i], results[0])
		}
	}

	// A second call after completion is a pure cache hit.
	if got := s.Run(p, key).UserIPC; got != results[0] {
		t.Fatalf("cache hit returned %v, want %v", got, results[0])
	}
	s.mu.Lock()
	sims = s.simulations
	s.mu.Unlock()
	if sims != 1 {
		t.Fatalf("cache hit re-simulated: %d simulations", sims)
	}
}
