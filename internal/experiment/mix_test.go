package experiment

import (
	"testing"

	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// tinyMixConfig keeps paired mix+solo simulations fast.
func tinyMixConfig() Config {
	return Config{
		MeasureCycles: 40_000,
		WarmupCycles:  8_000,
		Seed:          1,
	}
}

// TestMixStudySharesSoloBaselines: two mixes containing the same
// tenant spec must share one solo-baseline simulation via the study
// cache. Cells: 2 mixes + 3 unique (tenant, cores) baselines = 5
// simulations, not 2 + 4.
func TestMixStudySharesSoloBaselines(t *testing.T) {
	ds := workload.DataServing()
	mixes := []tenant.Mix{
		tenant.Pair(ds, workload.MemoryHog(), 8),
		tenant.Pair(ds, workload.WebSearch(), 8),
	}
	ms := NewMixStudy(tinyMixConfig(), mixes, []sched.Kind{sched.FRFCFS}, []int{1}, nil)
	results := ms.Results()
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if got := ms.Study().Simulations(); got != 5 {
		t.Fatalf("simulations = %d, want 5 (2 mixes + 3 shared baselines)", got)
	}
	// Re-running must be pure cache.
	ms.Results()
	if got := ms.Study().Simulations(); got != 5 {
		t.Fatalf("re-run simulated again: %d", got)
	}
	for _, r := range results {
		if len(r.Fairness.Slowdowns) != 2 || len(r.SoloIPC) != 2 {
			t.Fatalf("fairness shape wrong: %+v", r.Fairness)
		}
		for i, s := range r.Fairness.Slowdowns {
			if s <= 0 {
				t.Fatalf("mix %s tenant %d slowdown %v", r.Mix.Name, i, s)
			}
		}
		if r.Fairness.MaxSlowdown < 1.0 {
			t.Fatalf("mix %s max slowdown %v < 1; colocation cannot speed tenants up", r.Mix.Name, r.Fairness.MaxSlowdown)
		}
	}
}

// TestMixStudyIsolationAxis: sweeping isolation modes re-simulates
// the mix per mode but shares the solo baselines across every
// isolation cell (a tenant alone owns the whole machine either way).
// Cells: 1 mix x 3 isolations + 2 baselines = 5 simulations.
func TestMixStudyIsolationAxis(t *testing.T) {
	mixes := []tenant.Mix{tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)}
	isolations := []core.Isolation{
		{},
		{BankPartition: true},
		{BankPartition: true, WayPartition: true},
	}
	ms := NewMixStudy(tinyMixConfig(), mixes, []sched.Kind{sched.FRFCFS}, []int{1}, isolations)
	results := ms.Results()
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 isolation cells", len(results))
	}
	if got := ms.Study().Simulations(); got != 5 {
		t.Fatalf("simulations = %d, want 5 (3 isolation cells + 2 shared baselines)", got)
	}
	byIso := map[string]MixResult{}
	for _, r := range results {
		byIso[r.Isolation.String()] = r
	}
	for _, name := range []string{"none", "banks", "banks+ways"} {
		r, ok := byIso[name]
		if !ok {
			t.Fatalf("missing isolation cell %q", name)
		}
		if r.Fairness.MaxSlowdown < 1.0 {
			t.Fatalf("cell %q max slowdown %v < 1", name, r.Fairness.MaxSlowdown)
		}
	}
	// The isolated cells must actually differ from the shared one —
	// the axis has to reach the simulator, not just the cache key.
	if byIso["none"].Shared.Tenants[0].RowHitRate == byIso["banks"].Shared.Tenants[0].RowHitRate {
		t.Fatal("banks cell identical to shared cell; isolation not applied")
	}
	tab := ms.FairnessTable(results)
	if len(tab.Rows) != 3 {
		t.Fatalf("fairness table rows = %v, want one per isolation cell", tab.Rows)
	}
}

// TestFairnessTableShape: rows per mix, three columns per scheduler.
func TestFairnessTableShape(t *testing.T) {
	mixes := []tenant.Mix{tenant.Pair(workload.WebSearch(), workload.TPCHQ6(), 8)}
	scheds := []sched.Kind{sched.FRFCFS, sched.ATLAS}
	ms := NewMixStudy(tinyMixConfig(), mixes, scheds, []int{1}, nil)
	results := ms.Results()
	tab := ms.FairnessTable(results)
	if len(tab.Rows) != 1 || tab.Rows[0] != "WS:8+TPCH-Q6:8" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if len(tab.Cols) != 6 {
		t.Fatalf("cols = %v, want 3 per scheduler", tab.Cols)
	}
	if len(tab.Values[0]) != 6 {
		t.Fatalf("value row width %d", len(tab.Values[0]))
	}
	if out := tab.Render(); out == "" {
		t.Fatal("empty render")
	}
}

// TestMixStudyGeneratedMixes: the seeded mix generator plugs straight
// into MixStudy — a 64-core generated mix sweeps like a hand-written
// one, producing per-tenant breakdowns and fairness numbers.
func TestMixStudyGeneratedMixes(t *testing.T) {
	mixes, err := tenant.GenerateMixes(3, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MeasureCycles: 8_000, WarmupCycles: 2_000, Seed: 1}
	ms := NewMixStudy(cfg, mixes, []sched.Kind{sched.FRFCFS}, []int{1}, nil)
	results := ms.Results()
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Mix.TotalCores() != 64 {
			t.Fatalf("mix %q has %d cores, want 64", r.Mix.Name, r.Mix.TotalCores())
		}
		if len(r.Shared.Tenants) != len(r.Mix.Tenants) {
			t.Fatalf("mix %q: %d tenant breakdowns for %d tenants", r.Mix.Name, len(r.Shared.Tenants), len(r.Mix.Tenants))
		}
		if r.Fairness.WeightedSpeedup <= 0 {
			t.Fatalf("mix %q: degenerate weighted speedup %f", r.Mix.Name, r.Fairness.WeightedSpeedup)
		}
	}
}
