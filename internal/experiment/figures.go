package experiment

import (
	"math"

	"cloudmc/internal/addrmap"
	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

// schedColumns orders the scheduler series exactly as the paper's
// figures do.
var schedColumns = []sched.Kind{sched.FRFCFS, sched.FCFSBanks, sched.PARBS, sched.ATLAS, sched.RL}

// schedulerFigure builds one of Figures 1-7: metric extracted per
// (workload, scheduler), optionally normalized to the FR-FCFS value.
func (s *Study) schedulerFigure(id, title, note string, normalize bool, metric func(core.Metrics) float64) *Table {
	s.schedulerGrid()
	wls := s.cfg.workloads()
	vals := make([][]float64, len(wls))
	for i, p := range wls {
		base := metric(s.Run(p, baselineKey(p.Acronym)))
		row := make([]float64, len(schedColumns))
		for j, k := range schedColumns {
			key := baselineKey(p.Acronym)
			key.scheduler = k
			v := metric(s.Run(p, key))
			if normalize {
				if base == 0 {
					v = math.NaN()
				} else {
					v /= base
				}
			}
			row[j] = v
		}
		vals[i] = row
	}
	cols := make([]string, len(schedColumns))
	for j, k := range schedColumns {
		cols[j] = k.String()
	}
	return &Table{
		ID: id, Title: title, Note: note,
		Rows:   s.rowsWithAverages(),
		Cols:   cols,
		Values: s.fillAverages(vals, len(cols)),
	}
}

// Figure01 reproduces Figure 1: user IPC normalized to FR-FCFS.
// Paper: FR-FCFS wins overall; FCFS_Banks within 6%/3%/4% of it for
// SCO/TRS/DSP (within 1% for 5 of 6 SCOW, except Web Frontend -37%);
// ATLAS loses 20%/12%/10%; RL loses most on DSP (-10%).
func (s *Study) Figure01() *Table {
	return s.schedulerFigure("Figure 1", "User IPC by scheduling algorithm",
		"normalized to FR-FCFS; paper: FR-FCFS best, FCFS_Banks close except WF, ATLAS -20% SCO, RL -10% DSP",
		true, func(m core.Metrics) float64 { return m.UserIPC })
}

// Figure02 reproduces Figure 2: absolute row-buffer hit rate (%).
// Paper: ~37/33/27.5% averages under FR-FCFS; FCFS_Banks changes it by
// only -4/+1/-2 points; WF drops 55%->45% under FCFS_Banks.
func (s *Study) Figure02() *Table {
	return s.schedulerFigure("Figure 2", "Row-buffer hit rate (%)",
		"absolute percent; paper: FR-FCFS averages 37/33/27.5 for SCO/TRS/DSP",
		false, func(m core.Metrics) float64 { return 100 * m.RowHitRate })
}

// Figure03 reproduces Figure 3: average memory access latency
// normalized to FR-FCFS. Paper: ATLAS 2.94x average on SCO (7.78x on
// MapReduce); RL +37% on DSP; FCFS_Banks +15% on DSP.
func (s *Study) Figure03() *Table {
	return s.schedulerFigure("Figure 3", "Average memory access latency",
		"normalized to FR-FCFS; paper: ATLAS blows up SCO latency (2.94x avg, 7.78x MR)",
		true, func(m core.Metrics) float64 { return m.AvgReadLatency })
}

// Figure04 reproduces Figure 4: L2 misses per kilo instruction.
// Paper: SCO ~5, TRS ~8, DSP ~18 on average, roughly scheduler-
// independent.
func (s *Study) Figure04() *Table {
	return s.schedulerFigure("Figure 4", "L2 MPKI",
		"absolute; paper: ~5/8/18 for SCO/TRS/DSP, scheduler-insensitive",
		false, func(m core.Metrics) float64 { return m.MPKI })
}

// Figure05 reproduces Figure 5: average read queue length.
// Paper: always under 10 entries; DSP highest; MapReduce under ATLAS
// is the outlier.
func (s *Study) Figure05() *Table {
	return s.schedulerFigure("Figure 5", "Average read queue length",
		"absolute entries; paper: <10 for all workloads and schedulers",
		false, func(m core.Metrics) float64 { return m.AvgReadQ })
}

// Figure06 reproduces Figure 6: average write queue length.
// Paper: under 50 entries everywhere; RL runs the shortest write
// queues because it schedules writes opportunistically.
func (s *Study) Figure06() *Table {
	return s.schedulerFigure("Figure 6", "Average write queue length",
		"absolute entries; paper: <50 everywhere, RL noticeably lowest",
		false, func(m core.Metrics) float64 { return m.AvgWriteQ })
}

// Figure07 reproduces Figure 7: memory bandwidth utilization (%).
// Paper: SCO 14-50% (avg 34%), TRS similar, DSP avg 54%.
func (s *Study) Figure07() *Table {
	return s.schedulerFigure("Figure 7", "Memory bandwidth utilization (%)",
		"absolute percent of peak; paper: SCO avg 34, DSP avg 54",
		false, func(m core.Metrics) float64 { return 100 * m.BandwidthUtil })
}

// Figure08 reproduces Figure 8: the percentage of row activations that
// receive exactly one access before closure, under the baseline
// FR-FCFS + open-adaptive configuration. Paper: 77-90% across all
// workloads (76% for Media Streaming).
func (s *Study) Figure08() *Table {
	wls := s.cfg.workloads()
	var cells []studyCell
	for _, p := range wls {
		cells = append(cells, s.cell(p, baselineKey(p.Acronym)))
	}
	s.runAll(cells)
	vals := make([][]float64, len(wls))
	for i, p := range wls {
		m := s.Run(p, baselineKey(p.Acronym))
		vals[i] = []float64{100 * m.SingleAccessFrac}
	}
	return &Table{
		ID:     "Figure 8",
		Title:  "Single-access row-buffer activations under OAPM (%)",
		Note:   "paper: 77-90% for all workloads",
		Rows:   s.rowsWithAverages(),
		Cols:   []string{"1-access %"},
		Values: s.fillAverages(vals, 1),
	}
}

// pageFigure builds one of Figures 9-11.
func (s *Study) pageFigure(id, title, note string, metric func(core.Metrics) float64) *Table {
	s.pageGrid()
	wls := s.cfg.workloads()
	vals := make([][]float64, len(wls))
	for i, p := range wls {
		base := metric(s.Run(p, baselineKey(p.Acronym)))
		row := make([]float64, len(pagePolicies))
		for j, page := range pagePolicies {
			key := baselineKey(p.Acronym)
			key.page = page
			v := metric(s.Run(p, key))
			if base == 0 {
				row[j] = math.NaN()
			} else {
				row[j] = v / base
			}
		}
		vals[i] = row
	}
	return &Table{
		ID: id, Title: title, Note: note,
		Rows:   s.rowsWithAverages(),
		Cols:   append([]string(nil), pagePolicies...),
		Values: s.fillAverages(vals, len(pagePolicies)),
	}
}

// Figure09 reproduces Figure 9: row-buffer hit rate by page policy,
// normalized to open-adaptive. Paper: close-adaptive collapses hits
// (<6% absolute); RBPP preserves 70/75/86% for SCO/TRS/DSP; ABPP less.
func (s *Study) Figure09() *Table {
	return s.pageFigure("Figure 9", "Row-buffer hit rate by page policy",
		"normalized to OpenAdaptive; paper: CloseAdaptive collapses hits, RBPP preserves 70-86%",
		func(m core.Metrics) float64 { return m.RowHitRate })
}

// Figure10 reproduces Figure 10: average memory access latency by page
// policy, normalized to open-adaptive. Paper: CAPM -0/-4/-13% for
// SCO/TRS/DSP (WF/MS +15%); RBPP -6% on DSP.
func (s *Study) Figure10() *Table {
	return s.pageFigure("Figure 10", "Average memory access latency by page policy",
		"normalized to OpenAdaptive; paper: CloseAdaptive helps DSP (-13%) but hurts WF/MS (+15%)",
		func(m core.Metrics) float64 { return m.AvgReadLatency })
}

// Figure11 reproduces Figure 11: user IPC by page policy, normalized
// to open-adaptive. Paper: CAPM -2.5% SCO, +4% DSP (WF -20%); RBPP
// +3% DSP, -4% SCO.
func (s *Study) Figure11() *Table {
	return s.pageFigure("Figure 11", "User IPC by page policy",
		"normalized to OpenAdaptive; paper: CloseAdaptive +4% DSP but -20% on WF",
		func(m core.Metrics) float64 { return m.UserIPC })
}

// channelColumns labels Figures 12-14.
var channelColumns = []string{"1_channel", "2_channel", "4_channel"}

// bestMapping returns the best-IPC mapping for a workload at a channel
// count (the paper reports the best scheme per workload, Table 4).
func (s *Study) bestMapping(p workload.Profile, channels int) (addrmap.Scheme, core.Metrics) {
	best := addrmap.RoRaBaCoCh
	var bestM core.Metrics
	first := true
	for _, sc := range addrmap.Schemes {
		key := baselineKey(p.Acronym)
		key.channels = channels
		key.mapping = sc
		m := s.Run(p, key)
		if first || m.UserIPC > bestM.UserIPC {
			best, bestM, first = sc, m, false
		}
	}
	return best, bestM
}

// channelFigure builds one of Figures 12-14: the 1-channel baseline
// against the best mapping at 2 and 4 channels, normalized to
// 1-channel.
func (s *Study) channelFigure(id, title, note string, metric func(core.Metrics) float64) *Table {
	s.channelGrid()
	wls := s.cfg.workloads()
	vals := make([][]float64, len(wls))
	for i, p := range wls {
		base := metric(s.Run(p, baselineKey(p.Acronym)))
		row := make([]float64, 3)
		row[0] = 1
		for c, ch := range []int{2, 4} {
			_, m := s.bestMapping(p, ch)
			if base == 0 {
				row[c+1] = math.NaN()
			} else {
				row[c+1] = metric(m) / base
			}
		}
		vals[i] = row
	}
	return &Table{
		ID: id, Title: title, Note: note,
		Rows:   s.rowsWithAverages(),
		Cols:   channelColumns,
		Values: s.fillAverages(vals, len(channelColumns)),
	}
}

// Figure12 reproduces Figure 12: user IPC vs channel count. Paper:
// SCO gains <1%/1.7% (WF loses ~10%), TRS +2.3%/6%, DSP +11.5%/19%.
func (s *Study) Figure12() *Table {
	return s.channelFigure("Figure 12", "User IPC vs memory channels",
		"normalized to 1 channel, best mapping per workload; paper: SCO flat, DSP +19% at 4ch",
		func(m core.Metrics) float64 { return m.UserIPC })
}

// Figure13 reproduces Figure 13: row-buffer hit rate vs channel count.
// Paper: SCO/TRS x1.3/x1.6, DSP x1.7/x2.3.
func (s *Study) Figure13() *Table {
	return s.channelFigure("Figure 13", "Row-buffer hit rate vs memory channels",
		"normalized to 1 channel; paper: DSP hit rate x1.7/x2.3 at 2/4 channels",
		func(m core.Metrics) float64 { return m.RowHitRate })
}

// Figure14 reproduces Figure 14: memory access latency vs channel
// count. Paper: SCO falls to 81%/70% of baseline, DSP to 64%/47%.
func (s *Study) Figure14() *Table {
	return s.channelFigure("Figure 14", "Memory access latency vs memory channels",
		"normalized to 1 channel; paper: DSP latency falls to 64%/47% at 2/4 channels",
		func(m core.Metrics) float64 { return m.AvgReadLatency })
}

// Table4 reproduces Table 4: the best-performing mapping scheme per
// workload at 2 and 4 channels. The paper notes RoRaBaCoCh (the
// baseline) is generally worst; specific winners are near-ties.
func (s *Study) Table4() *Table {
	s.channelGrid()
	wls := s.cfg.workloads()
	rows := make([]string, len(wls))
	text := make([][]string, len(wls))
	for i, p := range wls {
		rows[i] = p.Acronym
		sc2, _ := s.bestMapping(p, 2)
		sc4, _ := s.bestMapping(p, 4)
		text[i] = []string{sc2.String(), sc4.String()}
	}
	return &Table{
		ID:    "Table 4",
		Title: "Best multi-channel mapping scheme per workload",
		Note:  "paper: winners are workload-specific near-ties; block-interleaved RoRaBaCoCh generally worst",
		Rows:  rows,
		Cols:  []string{"2-channel", "4-channel"},
		Text:  text,
	}
}

// All renders every figure and table in paper order.
func (s *Study) All() []*Table {
	return []*Table{
		s.Figure01(), s.Figure02(), s.Figure03(), s.Figure04(),
		s.Figure05(), s.Figure06(), s.Figure07(), s.Figure08(),
		s.Figure09(), s.Figure10(), s.Figure11(),
		s.Figure12(), s.Figure13(), s.Figure14(),
		s.Table4(),
	}
}
