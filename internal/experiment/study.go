package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"cloudmc/internal/addrmap"
	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/workload"
)

// Config scales a study run.
type Config struct {
	// MeasureCycles and WarmupCycles set the timed window per
	// simulation.
	MeasureCycles uint64
	WarmupCycles  uint64
	// WarmupInstrPerCore sets functional warming (0 = automatic).
	WarmupInstrPerCore uint64
	// Seed feeds every simulation.
	Seed uint64
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
	// Workers shards each simulation's controller phase across this
	// many goroutines (core.Config.Workers: 0/1 = serial; clamped to
	// the channel count; cross-channel schedulers fall back to
	// serial). Results are bit-identical either way. Note the two
	// parallelism axes multiply: a study already running Parallelism
	// concurrent cells usually wants Workers at 1.
	Workers int
	// Workloads defaults to workload.All().
	Workloads []workload.Profile
	// MaxSlowdownSLO configures the QoS scheduler's per-tenant
	// slowdown budget in mix studies (0 = the scheduler's default).
	MaxSlowdownSLO float64
	// Instrument, when non-nil, is called once per actual simulation
	// (cache hits excluded) after the System is built and before it
	// runs — the hook the CLIs use to attach obs recorders and command
	// traces per cell. label identifies the cell (workload, scheduler,
	// page policy, mapping, channels, isolation). Calls can come from
	// concurrent study goroutines, but each sys is exclusively owned
	// by its cell until Run returns.
	Instrument func(label string, sys *core.System)
	// Progress, when non-nil, receives a start and a finish event for
	// every cell of a parallel study wave. Invocations are serialized
	// by the study; wall-clock concerns (cell timing, rendering) are
	// the cmd/ layer's, keeping this package deterministic.
	Progress func(ev CellEvent)
}

// CellEvent is one study-cell lifecycle notification delivered to
// Config.Progress.
type CellEvent struct {
	// Label identifies the cell, in runKey order (workload/scheduler/
	// page/mapping/channels[...]); mix cells use "mix:<name>".
	Label string
	// Index is the cell's position in its wave (stable between the
	// start and finish events of one cell); Total the wave size.
	Index, Total int
	// Start distinguishes the begin event from the finish event.
	Start bool
	// Done counts cells finished so far, including this one on finish
	// events.
	Done int
}

// Quick returns a configuration sized for tests and benchmarks
// (hundreds of milliseconds per simulation).
func Quick() Config {
	return Config{
		MeasureCycles: 150_000,
		WarmupCycles:  30_000,
		Seed:          1,
	}
}

// Standard returns the configuration used for EXPERIMENTS.md numbers.
func Standard() Config {
	return Config{
		MeasureCycles: 600_000,
		WarmupCycles:  80_000,
		Seed:          1,
	}
}

func (c Config) workloads() []workload.Profile {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return workload.All()
}

// runKey identifies one simulation in the study cache. Figures share
// runs (the FR-FCFS/OAPM/1-channel baseline appears in most grids), so
// the Study memoizes by key. Colocation cells reuse the same cache:
// mix runs key on the mix name (workload = "mix:<name>"), and solo
// fairness baselines key on (acronym, cores), letting every mix that
// contains the same tenant share one baseline simulation.
type runKey struct {
	workload  string
	cores     int // tenant core allocation; 0 = the profile's default
	scheduler sched.Kind
	page      string
	mapping   addrmap.Scheme
	channels  int
	// isolation is the Isolation axis value (String form) for mix
	// runs; solo baselines leave it empty — a tenant's "alone on its
	// cores" baseline owns the whole machine, so every isolation cell
	// of a mix shares one baseline simulation.
	isolation string
}

// label renders the key as the cell identifier passed to
// Config.Instrument and Config.Progress (and used as the obs run tag
// by the CLIs). It contains no commas or quotes, so it embeds safely
// in the obs CSV/JSONL formats.
func (k runKey) label() string {
	l := fmt.Sprintf("%s/%s/%s/%s/ch%d", k.workload, k.scheduler, k.page, k.mapping, k.channels)
	if k.cores > 0 {
		l += fmt.Sprintf("/%dc", k.cores)
	}
	if k.isolation != "" && k.isolation != "none" {
		l += "/" + k.isolation
	}
	return l
}

// Study runs and caches the simulation grid behind the figures.
type Study struct {
	cfg Config

	mu       sync.Mutex
	cache    map[runKey]core.Metrics
	inflight map[runKey]chan struct{}
	// simulations counts actual simulator runs (not cache hits); the
	// single-flight test uses it to prove each cell runs exactly once.
	simulations uint64
}

// NewStudy returns an empty study.
func NewStudy(cfg Config) *Study {
	return &Study{
		cfg:      cfg,
		cache:    make(map[runKey]core.Metrics),
		inflight: make(map[runKey]chan struct{}),
	}
}

// Simulations returns the number of actual simulator runs so far
// (cache hits excluded).
func (s *Study) Simulations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simulations
}

// baseline describes the Table 2 configuration for one workload.
func (s *Study) systemConfig(p workload.Profile, k runKey) core.Config {
	cfg := core.DefaultConfig(p)
	s.applyStudyConfig(&cfg, k)
	return cfg
}

// applyStudyConfig overlays the study's scale and the cell's
// configuration axes onto a default system config.
func (s *Study) applyStudyConfig(cfg *core.Config, k runKey) {
	cfg.Scheduler = k.scheduler
	cfg.PagePolicy = k.page
	cfg.Mapping = k.mapping
	cfg.Channels = k.channels
	cfg.MeasureCycles = s.cfg.MeasureCycles
	cfg.WarmupCycles = s.cfg.WarmupCycles
	cfg.WarmupInstrPerCore = s.cfg.WarmupInstrPerCore
	cfg.Seed = s.cfg.Seed
	cfg.Workers = s.cfg.Workers
	// The paper's ATLAS quantum (10M cycles) assumes multi-billion-
	// cycle samples; our compressed windows would never complete a
	// quantum. Scale the quantum so ~10 fit in the measurement window
	// and keep the starvation cap far above the uncontended memory
	// latency, preserving the long-deprioritization behaviour the
	// paper observes (§4.1.1).
	quantum := s.cfg.MeasureCycles / 10
	if quantum < 10_000 {
		quantum = 10_000
	}
	cfg.SchedOpts.ATLAS = sched.ATLASConfig{
		QuantumCycles:       quantum,
		Alpha:               0.875,
		StarvationThreshold: quantum / 8,
		ScanDepth:           2,
	}
	// The QoS scheduler monitors at the same compressed quantum; its
	// SLO comes from the study configuration.
	qos := sched.DefaultQoSConfig()
	qos.QuantumCycles = quantum
	qos.StarvationThreshold = quantum / 8
	if s.cfg.MaxSlowdownSLO > 0 {
		qos.MaxSlowdownSLO = s.cfg.MaxSlowdownSLO
	}
	cfg.SchedOpts.QoS = qos
}

func baselineKey(acr string) runKey {
	return runKey{
		workload:  acr,
		scheduler: sched.FRFCFS,
		page:      "OpenAdaptive",
		mapping:   addrmap.RoRaBaCoCh,
		channels:  1,
	}
}

// Run executes (or returns the cached metrics of) one cell. Figures
// share cells, and runAll executes cells concurrently, so Run
// single-flights per key: the first caller simulates while later
// callers for the same key wait on its completion instead of
// redundantly simulating the same configuration.
func (s *Study) Run(p workload.Profile, k runKey) core.Metrics {
	k.workload = p.Acronym
	return s.do(k, func() core.Metrics {
		sys, err := core.NewSystem(s.systemConfig(p, k))
		if err != nil {
			panic(fmt.Sprintf("experiment: %s: %v", p.Acronym, err))
		}
		s.instrument(k, sys)
		return sys.Run()
	})
}

// instrument invokes the configured per-simulation hook, if any.
func (s *Study) instrument(k runKey, sys *core.System) {
	if s.cfg.Instrument != nil {
		s.cfg.Instrument(k.label(), sys)
	}
}

// do memoizes and single-flights one cache cell around an arbitrary
// simulation closure; Run, RunSolo and RunMix all funnel through it.
func (s *Study) do(k runKey, sim func() core.Metrics) core.Metrics {
	s.mu.Lock()
	for {
		if m, ok := s.cache[k]; ok {
			s.mu.Unlock()
			return m
		}
		done, ok := s.inflight[k]
		if !ok {
			break
		}
		s.mu.Unlock()
		<-done
		s.mu.Lock()
	}
	done := make(chan struct{})
	s.inflight[k] = done
	s.simulations++
	s.mu.Unlock()
	// Release waiters even if the simulation panics; they will find no
	// cached entry and re-attempt (and typically re-panic) themselves.
	defer func() {
		s.mu.Lock()
		delete(s.inflight, k)
		s.mu.Unlock()
		close(done)
	}()

	m := sim()

	s.mu.Lock()
	s.cache[k] = m
	s.mu.Unlock()
	return m
}

// studyCell is one labeled unit of work in a parallel wave; the label
// feeds Config.Progress events.
type studyCell struct {
	label string
	run   func()
}

// cell builds a labeled solo-run cell.
func (s *Study) cell(p workload.Profile, key runKey) studyCell {
	key.workload = p.Acronym
	return studyCell{label: key.label(), run: func() { s.Run(p, key) }}
}

// runAll executes a set of cells in parallel and blocks until done,
// emitting serialized start/finish Progress events per cell.
func (s *Study) runAll(cells []studyCell) {
	par := s.cfg.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	total := len(cells)
	var progMu sync.Mutex
	done := 0
	emit := func(ev CellEvent) {
		if s.cfg.Progress == nil {
			return
		}
		progMu.Lock()
		defer progMu.Unlock()
		if !ev.Start {
			done++
		}
		ev.Done = done
		ev.Total = total
		s.cfg.Progress(ev)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, cell := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c studyCell) {
			defer wg.Done()
			defer func() { <-sem }()
			emit(CellEvent{Label: c.label, Index: i, Start: true})
			c.run()
			emit(CellEvent{Label: c.label, Index: i})
		}(i, cell)
	}
	wg.Wait()
}

// schedulerGrid materializes the 12x5 scheduler study (Figures 1-7).
func (s *Study) schedulerGrid() {
	var cells []studyCell
	for _, p := range s.cfg.workloads() {
		for _, k := range sched.Kinds {
			key := baselineKey(p.Acronym)
			key.scheduler = k
			cells = append(cells, s.cell(p, key))
		}
	}
	s.runAll(cells)
}

// pageGrid materializes the 12x4 page-policy study (Figures 9-11).
func (s *Study) pageGrid() {
	var cells []studyCell
	for _, p := range s.cfg.workloads() {
		for _, page := range pagePolicies {
			key := baselineKey(p.Acronym)
			key.page = page
			cells = append(cells, s.cell(p, key))
		}
	}
	s.runAll(cells)
}

// channelGrid materializes the multi-channel/mapping study
// (Figures 12-14, Table 4): 1-channel baseline plus every mapping at
// 2 and 4 channels.
func (s *Study) channelGrid() {
	var cells []studyCell
	for _, p := range s.cfg.workloads() {
		cells = append(cells, s.cell(p, baselineKey(p.Acronym)))
		for _, ch := range []int{2, 4} {
			for _, sc := range addrmap.Schemes {
				key := baselineKey(p.Acronym)
				key.channels = ch
				key.mapping = sc
				cells = append(cells, s.cell(p, key))
			}
		}
	}
	s.runAll(cells)
}

var pagePolicies = []string{"OpenAdaptive", "CloseAdaptive", "RBPP", "ABPP"}

// categories orders the paper's average rows.
var categoryRows = []string{"Avg_SCO", "Avg_TRS", "Avg_DSP"}

// rowsWithAverages returns workload rows plus the category averages.
func (s *Study) rowsWithAverages() []string {
	rows := make([]string, 0, len(s.cfg.workloads())+3)
	for _, p := range s.cfg.workloads() {
		rows = append(rows, p.Acronym)
	}
	return append(rows, categoryRows...)
}

// fillAverages appends the per-category arithmetic means to a value
// matrix whose first len(workloads) rows are filled.
func (s *Study) fillAverages(vals [][]float64, cols int) [][]float64 {
	wls := s.cfg.workloads()
	for _, cat := range []workload.Category{workload.SCOW, workload.TRSW, workload.DSPW} {
		row := make([]float64, cols)
		for j := 0; j < cols; j++ {
			var sum float64
			var n int
			for i, p := range wls {
				if p.Category != cat {
					continue
				}
				if v := vals[i][j]; v == v {
					sum += v
					n++
				}
			}
			if n == 0 {
				row[j] = math.NaN()
			} else {
				row[j] = sum / float64(n)
			}
		}
		vals = append(vals, row)
	}
	return vals
}
