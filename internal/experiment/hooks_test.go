package experiment

import (
	"strings"
	"sync"
	"testing"

	"cloudmc/internal/core"
	"cloudmc/internal/sched"
	"cloudmc/internal/tenant"
	"cloudmc/internal/workload"
)

// TestStudyHooks wires Config.Instrument and Config.Progress into a
// small mix sweep and checks the contract the CLIs rely on: one
// start and one finish event per cell with a monotone Done counter,
// and exactly one Instrument call per actual simulation whose label
// matches a progress cell.
func TestStudyHooks(t *testing.T) {
	var mu sync.Mutex
	instrumented := map[string]int{}
	var events []CellEvent

	cfg := tinyMixConfig()
	cfg.Instrument = func(label string, sys *core.System) {
		if sys == nil {
			t.Error("Instrument called with nil system")
		}
		mu.Lock()
		instrumented[label]++
		mu.Unlock()
	}
	// Progress invocations are serialized by the study, so the
	// callback needs no locking of its own; the append below is the
	// same pattern the CLIs use.
	cfg.Progress = func(ev CellEvent) {
		events = append(events, ev)
	}

	mixes := []tenant.Mix{tenant.Pair(workload.DataServing(), workload.MemoryHog(), 8)}
	ms := NewMixStudy(cfg, mixes, []sched.Kind{sched.FRFCFS}, []int{1}, nil)
	ms.Results()

	// 1 mix cell + 2 solo baselines.
	const wantCells = 3
	if got := ms.Study().Simulations(); got != wantCells {
		t.Fatalf("simulations = %d, want %d", got, wantCells)
	}
	if len(events) != 2*wantCells {
		t.Fatalf("progress events = %d, want %d", len(events), 2*wantCells)
	}

	starts := map[int]string{}
	finishes := map[int]string{}
	lastDone := 0
	for _, ev := range events {
		if ev.Total != wantCells {
			t.Fatalf("event total = %d, want %d: %+v", ev.Total, wantCells, ev)
		}
		if ev.Label == "" {
			t.Fatalf("event with empty label: %+v", ev)
		}
		if strings.ContainsAny(ev.Label, `,"`) {
			t.Fatalf("label %q is not CSV-safe", ev.Label)
		}
		if ev.Start {
			if prev, dup := starts[ev.Index]; dup {
				t.Fatalf("cell %d started twice (%q, %q)", ev.Index, prev, ev.Label)
			}
			starts[ev.Index] = ev.Label
		} else {
			if prev, dup := finishes[ev.Index]; dup {
				t.Fatalf("cell %d finished twice (%q, %q)", ev.Index, prev, ev.Label)
			}
			finishes[ev.Index] = ev.Label
			if ev.Done != lastDone+1 {
				t.Fatalf("done jumped %d -> %d: %+v", lastDone, ev.Done, ev)
			}
			lastDone = ev.Done
		}
	}
	if lastDone != wantCells {
		t.Fatalf("final done = %d, want %d", lastDone, wantCells)
	}
	for idx, label := range starts {
		if finishes[idx] != label {
			t.Fatalf("cell %d start label %q != finish label %q", idx, label, finishes[idx])
		}
	}

	// Every simulation was instrumented exactly once, under a label
	// that matches a progress cell.
	if len(instrumented) != wantCells {
		t.Fatalf("instrumented %d distinct labels, want %d: %v", len(instrumented), wantCells, instrumented)
	}
	cellLabels := map[string]bool{}
	for _, label := range starts {
		cellLabels[label] = true
	}
	for label, n := range instrumented {
		if n != 1 {
			t.Fatalf("label %q instrumented %d times", label, n)
		}
		if !cellLabels[label] {
			t.Fatalf("instrument label %q matches no progress cell %v", label, cellLabels)
		}
	}

	// A second sweep is pure cache: progress events still flow (the
	// cells re-run against the cache) but nothing new is simulated or
	// instrumented.
	events = events[:0]
	ms.Results()
	if got := ms.Study().Simulations(); got != wantCells {
		t.Fatalf("re-run simulated again: %d", got)
	}
	for label, n := range instrumented {
		if n != 1 {
			t.Fatalf("re-run instrumented %q again (%d times)", label, n)
		}
	}
	if len(events) != 2*wantCells {
		t.Fatalf("re-run progress events = %d, want %d", len(events), 2*wantCells)
	}
}
