// Package experiment drives the study: it runs workload x
// configuration grids on the simulator and renders every figure and
// table of the paper's evaluation (§4) as text and CSV. Each FigureNN
// function corresponds to one figure; Table4 to Table 4.
package experiment

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result: rows are workloads (plus
// the paper's category averages), columns are the compared
// configurations.
type Table struct {
	// ID names the paper artifact, e.g. "Figure 1".
	ID string
	// Title is the figure caption (abbreviated).
	Title string
	// Rows are row labels: workload acronyms then Avg_SCO, Avg_TRS,
	// Avg_DSP.
	Rows []string
	// Cols are the series labels (schedulers, policies, channels).
	Cols []string
	// Values is indexed [row][col]. NaN cells render as "-".
	Values [][]float64
	// Text is an optional per-cell string table used instead of
	// Values (Table 4's mapping names).
	Text [][]string
	// Note describes normalization and the paper's headline
	// observation for comparison.
	Note string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "  (%s)\n", t.Note)
	}
	width := 10
	for _, c := range t.Cols {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	rowWidth := 10
	for _, r := range t.Rows {
		if len(r)+1 > rowWidth {
			rowWidth = len(r) + 1
		}
	}
	fmt.Fprintf(&sb, "%-*s", rowWidth, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&sb, "%*s", width, c)
	}
	sb.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", rowWidth, r)
		for j := range t.Cols {
			sb.WriteString(t.cell(i, j, width))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (t *Table) cell(i, j, width int) string {
	if t.Text != nil {
		return fmt.Sprintf("%*s", width, t.Text[i][j])
	}
	v := t.Values[i][j]
	if v != v { // NaN
		return fmt.Sprintf("%*s", width, "-")
	}
	return fmt.Sprintf("%*.3f", width, v)
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("workload")
	for _, c := range t.Cols {
		sb.WriteByte(',')
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
	for i, r := range t.Rows {
		sb.WriteString(r)
		for j := range t.Cols {
			sb.WriteByte(',')
			if t.Text != nil {
				sb.WriteString(t.Text[i][j])
			} else if v := t.Values[i][j]; v == v {
				fmt.Fprintf(&sb, "%.6g", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Cell returns the value at (rowLabel, colLabel); ok reports presence.
func (t *Table) Cell(rowLabel, colLabel string) (v float64, ok bool) {
	ri, ci := -1, -1
	for i, r := range t.Rows {
		if r == rowLabel {
			ri = i
		}
	}
	for j, c := range t.Cols {
		if c == colLabel {
			ci = j
		}
	}
	if ri < 0 || ci < 0 || t.Values == nil {
		return 0, false
	}
	return t.Values[ri][ci], true
}
