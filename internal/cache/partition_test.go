package cache

import "testing"

func partitionedCache(t *testing.T) *Cache {
	t.Helper()
	c := New(Config{SizeBytes: 64 << 10, Ways: 16, BlockBytes: 64})
	if err := c.PartitionWays([]WayShare{{First: 0, Count: 10}, {First: 10, Count: 6}}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWayPartitionNeverEvictsForeignLine is the isolation invariant
// test: with two owners hammering the same sets from disjoint address
// ranges, no install by one owner may ever evict a line belonging to
// the other. Ownership is tracked externally by address range.
func TestWayPartitionNeverEvictsForeignLine(t *testing.T) {
	c := partitionedCache(t)
	const split = uint64(1) << 40 // owner 0 below, owner 1 above
	ownerOf := func(addr uint64) int {
		if addr < split {
			return 0
		}
		return 1
	}
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	installed := [2]int{}
	for n := 0; n < 50_000; n++ {
		owner := int(next() & 1)
		addr := (next() % (1 << 22)) &^ 63 // far beyond capacity: constant eviction
		if owner == 1 {
			addr += split
		}
		v := c.InstallFor(owner, addr, next()&1 == 0)
		installed[owner]++
		if v.Valid && ownerOf(v.Addr) != owner {
			t.Fatalf("owner %d evicted owner %d's line %#x (install %d)", owner, ownerOf(v.Addr), v.Addr, n)
		}
	}
	if installed[0] == 0 || installed[1] == 0 {
		t.Fatal("degenerate install mix")
	}
}

// TestWayPartitionOccupancyBound: an owner flooding the cache can fill
// at most its own ways of every set.
func TestWayPartitionOccupancyBound(t *testing.T) {
	c := partitionedCache(t)
	for n := uint64(0); n < 4096; n++ {
		c.InstallFor(1, n*64, false)
	}
	sets := c.Config().Sets()
	if occ, max := c.Occupancy(), sets*6; occ > max {
		t.Fatalf("owner 1 occupies %d lines, its 6-way share allows %d", occ, max)
	}
}

// TestWayPartitionHitsAnywhere: lookups are unrestricted — a line
// stays visible to every accessor regardless of the partition.
func TestWayPartitionHitsAnywhere(t *testing.T) {
	c := partitionedCache(t)
	c.InstallFor(0, 0x1000, false)
	if !c.Access(0x1000, false) {
		t.Fatal("line invisible after partitioned install")
	}
}

// TestInstallForWithoutPartitionMatchesInstall: with no partition (and
// for unattributed owners under one) victim selection must be the
// plain whole-set LRU, bit-for-bit.
func TestInstallForWithoutPartitionMatchesInstall(t *testing.T) {
	a := New(Config{SizeBytes: 8 << 10, Ways: 4, BlockBytes: 64})
	b := New(Config{SizeBytes: 8 << 10, Ways: 4, BlockBytes: 64})
	rng := uint64(99)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for n := 0; n < 20_000; n++ {
		addr := (next() % (1 << 20)) &^ 63
		dirty := next()&1 == 0
		va := a.Install(addr, dirty)
		vb := b.InstallFor(3, addr, dirty)
		if va != vb {
			t.Fatalf("install %d: Install victim %+v != InstallFor %+v", n, va, vb)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestPartitionWaysValidation rejects malformed shares and accepts a
// clearing nil.
func TestPartitionWaysValidation(t *testing.T) {
	c := New(Config{SizeBytes: 64 << 10, Ways: 16, BlockBytes: 64})
	bad := [][]WayShare{
		{{First: 0, Count: 10}, {First: 8, Count: 8}}, // overlap
		{{First: 0, Count: 17}},                       // beyond associativity
		{{First: -1, Count: 4}},                       // negative start
		{{First: 0, Count: 0}},                        // empty share
	}
	for i, shares := range bad {
		if err := c.PartitionWays(shares); err == nil {
			t.Fatalf("bad share set %d accepted", i)
		}
	}
	if err := c.PartitionWays([]WayShare{{First: 0, Count: 8}, {First: 8, Count: 8}}); err != nil {
		t.Fatal(err)
	}
	if c.WayShares() == nil {
		t.Fatal("partition not recorded")
	}
	if err := c.PartitionWays(nil); err != nil {
		t.Fatal(err)
	}
	if c.WayShares() != nil {
		t.Fatal("nil did not clear the partition")
	}
}
