package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{SizeBytes: 1024, Ways: 2, BlockBytes: 64}) // 8 sets
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 32 << 10, Ways: 2, BlockBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 1024, Ways: 2, BlockBytes: 60},       // block not pow2
		{SizeBytes: 1000, Ways: 2, BlockBytes: 64},       // size not multiple
		{SizeBytes: 1024, Ways: 0, BlockBytes: 64},       // zero ways
		{SizeBytes: 64 * 2 * 3, Ways: 2, BlockBytes: 64}, // 3 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	c.Install(0x1000, false)
	if !c.Access(0x1000, false) {
		t.Fatal("installed block missed")
	}
	if !c.Access(0x1020, false) {
		t.Fatal("same-block offset missed")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2-way: set index bits 6..8
	setStride := uint64(64 * 8)
	a, b, d := uint64(0), setStride*8, setStride*16 // all set 0
	c.Install(a, false)
	c.Install(b, false)
	c.Access(a, false) // a is now MRU
	v := c.Install(d, false)
	if !v.Valid || v.Addr != b {
		t.Fatalf("victim = %+v, want %#x (LRU)", v, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := small()
	setStride := uint64(64 * 8)
	c.Install(0, false)
	c.Access(0, true) // dirty it
	c.Install(setStride*8, false)
	v := c.Install(setStride*16, false)
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Fatalf("dirty victim = %+v", v)
	}
	if c.Stats.DirtyEvicts != 1 {
		t.Fatalf("dirty evicts = %d", c.Stats.DirtyEvicts)
	}
}

func TestInstallExistingMergesDirty(t *testing.T) {
	c := small()
	c.Install(0x40, false)
	v := c.Install(0x40, true)
	if v.Valid {
		t.Fatal("reinstall evicted something")
	}
	if !c.IsDirty(0x40) {
		t.Fatal("dirty bit lost on merge")
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := small()
	c.Install(0x80, false)
	if c.IsDirty(0x80) {
		t.Fatal("clean line reported dirty")
	}
	c.Access(0x80, true)
	if !c.IsDirty(0x80) {
		t.Fatal("write hit left line clean")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Install(0xc0, true)
	dirty, present := c.Invalidate(0xc0)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v, %v)", dirty, present)
	}
	if c.Contains(0xc0) {
		t.Fatal("line still present")
	}
	if _, present := c.Invalidate(0xc0); present {
		t.Fatal("double invalidate reported present")
	}
}

func TestContainsHasNoSideEffects(t *testing.T) {
	c := small()
	c.Install(0, false)
	h0 := c.Stats.Hits
	if !c.Contains(0) {
		t.Fatal("contains missed")
	}
	if c.Stats.Hits != h0 {
		t.Fatal("Contains changed statistics")
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := small()
		for _, a := range addrs {
			c.Install(uint64(a), a%3 == 0)
		}
		return c.Occupancy() <= 16 // 8 sets x 2 ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInstallThenPresent checks that after installing any
// block it is present, and evicted victims are distinct from the
// installed block.
func TestPropertyInstallThenPresent(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 4, BlockBytes: 64})
	f := func(raw uint32) bool {
		addr := uint64(raw) &^ 63
		v := c.Install(addr, false)
		if v.Valid && v.Addr == addr {
			return false // evicted the block we installed
		}
		return c.Contains(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDirtyAccounting: a block is reported dirty iff it was
// installed dirty or written since install.
func TestPropertyDirtyAccounting(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 16, Ways: 8, BlockBytes: 64})
	dirty := make(map[uint64]bool)
	f := func(raw uint16, write bool) bool {
		addr := uint64(raw) &^ 63
		if c.Contains(addr) {
			c.Access(addr, write)
			if write {
				dirty[addr] = true
			}
		} else {
			v := c.Install(addr, write)
			if v.Valid {
				delete(dirty, v.Addr)
			}
			dirty[addr] = write
		}
		return c.IsDirty(addr) == dirty[addr]
	}
	// 64KB cache with 16-bit block addresses: no capacity evictions of
	// tracked state beyond what the victim callback reports.
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	c := small()
	c.Access(0, false)     // miss
	c.Install(0, false)    // install
	c.Access(0, false)     // hit
	c.Access(64*8*8, true) // write miss
	if c.Stats.Misses != 2 || c.Stats.Hits != 1 || c.Stats.WriteMisses != 1 || c.Stats.Installs != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	c.Stats.Reset()
	if c.Stats.Misses != 0 {
		t.Fatal("reset failed")
	}
}

func TestBlockAlign(t *testing.T) {
	c := small()
	if c.BlockAlign(0x12345) != 0x12340 {
		t.Fatalf("align = %#x", c.BlockAlign(0x12345))
	}
}
