// Package cache implements set-associative, write-back/write-allocate
// caches with true-LRU replacement, used for the per-core L1s and the
// shared L2 of the simulated pod (paper Table 2).
//
// The cache is a tag array plus replacement state; miss handling
// (MSHRs, fills, writeback routing) lives in the system model
// (package core), which decides *when* blocks are installed.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// BlockBytes is the line size.
	BlockBytes int
}

// Validate reports an error for a non-constructible configuration.
func (c Config) Validate() error {
	pow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	if !pow2(c.BlockBytes) {
		return fmt.Errorf("cache: BlockBytes %d must be a positive power of two", c.BlockBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: Ways %d must be positive", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.BlockBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: SizeBytes %d must be a positive multiple of BlockBytes*Ways", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.BlockBytes * c.Ways)
	if !pow2(sets) {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.BlockBytes * c.Ways) }

// Stats counts cache events.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	DirtyEvicts   uint64
	Installs      uint64
	WriteHits     uint64
	WriteMisses   uint64
	Invalidations uint64
}

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

type line struct {
	tag   uint64
	used  uint64 // LRU stamp; larger = more recent
	valid bool
	dirty bool
}

// Victim describes a block displaced by Install.
type Victim struct {
	// Addr is the block-aligned address of the displaced line.
	Addr uint64
	// Dirty reports the line needed writing back.
	Dirty bool
	// Valid reports whether anything was displaced at all.
	Valid bool
}

// WayShare restricts one owner to the contiguous ways
// [First, First+Count) of every set.
type WayShare struct {
	First int
	Count int
}

// Cache is one set-associative cache.
type Cache struct {
	cfg       Config
	lines     []line // sets * ways, flat
	setBits   uint
	blockBits uint
	ways      int
	stamp     uint64
	// parts, when non-nil, way-partitions the cache: InstallFor
	// restricts victim selection to the owner's ways. Lookups still
	// search the whole set (hits are allowed anywhere; ownership is
	// enforced at fill time, as hardware way-partitioning does).
	parts []WayShare
	Stats Stats
}

// New builds a cache; it panics on an invalid configuration (cache
// geometry is fixed by the study configuration, so this is a
// programming error, not an input error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:       cfg,
		lines:     make([]line, sets*cfg.Ways),
		setBits:   uint(bits.TrailingZeros(uint(sets))),
		blockBits: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		ways:      cfg.Ways,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// BlockAlign masks addr down to its block base.
func (c *Cache) BlockAlign(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.BlockBytes) - 1)
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	a := addr >> c.blockBits
	return int(a & ((1 << c.setBits) - 1)), a >> c.setBits
}

func (c *Cache) set(i int) []line {
	return c.lines[i*c.ways : (i+1)*c.ways]
}

// Access looks up addr, updating LRU state on a hit. For write
// accesses a hit marks the line dirty. It returns whether the access
// hit.
func (c *Cache) Access(addr uint64, write bool) bool {
	set, tag := c.index(addr)
	for i := range c.set(set) {
		l := &c.set(set)[i]
		if l.valid && l.tag == tag {
			c.stamp++
			l.used = c.stamp
			if write {
				l.dirty = true
				c.Stats.WriteHits++
			}
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	if write {
		c.Stats.WriteMisses++
	}
	return false
}

// Contains probes for addr without touching LRU or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.set(set) {
		l := &c.set(set)[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// IsDirty probes whether addr is present and dirty, without side
// effects.
func (c *Cache) IsDirty(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.set(set) {
		l := &c.set(set)[i]
		if l.valid && l.tag == tag {
			return l.dirty
		}
	}
	return false
}

// PartitionWays way-partitions the cache among owners: owner i may
// only fill into ways [shares[i].First, First+Count). Shares must be
// disjoint, non-empty, and within the associativity. Nil clears the
// partition. Install (ownerless) and InstallFor with an out-of-range
// owner keep choosing victims across the whole set.
func (c *Cache) PartitionWays(shares []WayShare) error {
	if shares == nil {
		c.parts = nil
		return nil
	}
	used := make([]bool, c.ways)
	for i, sh := range shares {
		if sh.Count <= 0 || sh.First < 0 || sh.First+sh.Count > c.ways {
			return fmt.Errorf("cache: owner %d way share [%d,%d) outside [0,%d)", i, sh.First, sh.First+sh.Count, c.ways)
		}
		for w := sh.First; w < sh.First+sh.Count; w++ {
			if used[w] {
				return fmt.Errorf("cache: owner %d way share overlaps an earlier owner at way %d", i, w)
			}
			used[w] = true
		}
	}
	c.parts = append([]WayShare(nil), shares...)
	return nil
}

// WayShares returns the active way partition (nil when unpartitioned).
func (c *Cache) WayShares() []WayShare { return c.parts }

// Install inserts addr (block-aligned internally), evicting the LRU
// line of its set if needed, and returns the displaced victim. If the
// block is already present, Install refreshes LRU and ORs in dirty
// without evicting.
func (c *Cache) Install(addr uint64, dirty bool) Victim {
	return c.InstallFor(-1, addr, dirty)
}

// InstallFor is Install with an owner: when the cache is
// way-partitioned and owner names a share, the victim is chosen from
// the owner's ways only, so one owner can never evict another's line.
// Refreshes of already-present blocks are unrestricted (the line
// already lives in its owner's ways).
func (c *Cache) InstallFor(owner int, addr uint64, dirty bool) Victim {
	set, tag := c.index(addr)
	lines := c.set(set)
	c.stamp++
	// Already present: refresh.
	for i := range lines {
		l := &lines[i]
		if l.valid && l.tag == tag {
			l.used = c.stamp
			l.dirty = l.dirty || dirty
			return Victim{}
		}
	}
	c.Stats.Installs++
	first, limit := 0, len(lines)
	if c.parts != nil && owner >= 0 && owner < len(c.parts) {
		first = c.parts[owner].First
		limit = first + c.parts[owner].Count
	}
	victim := first
	for i := first; i < limit; i++ {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].used < lines[victim].used {
			victim = i
		}
	}
	var out Victim
	v := &lines[victim]
	if v.valid {
		out = Victim{
			Addr:  (v.tag<<c.setBits | uint64(set)) << c.blockBits,
			Dirty: v.dirty,
			Valid: true,
		}
		c.Stats.Evictions++
		if v.dirty {
			c.Stats.DirtyEvicts++
		}
	}
	*v = line{tag: tag, used: c.stamp, valid: true, dirty: dirty}
	return out
}

// Invalidate removes addr if present, returning whether the line was
// dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	set, tag := c.index(addr)
	for i := range c.set(set) {
		l := &c.set(set)[i]
		if l.valid && l.tag == tag {
			c.Stats.Invalidations++
			l.valid = false
			return l.dirty, true
		}
	}
	return false, false
}

// Occupancy returns the number of valid lines (for tests and warmup
// diagnostics).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
