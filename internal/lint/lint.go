// Package lint assembles the mclint determinism-invariant analyzer
// suite: maprange (no map-iteration order leaks), nodeterm (no
// ambient nondeterminism sources), epochbump (dram timing mutations
// bump their constraint epoch), horizonarm (horizon-moving entry
// points re-arm the kernel wake-up queue), shardsafe (shard-confined
// kernel code neither calls merge-only primitives nor writes package
// globals), groupsync (memctrl queue-membership mutations update the
// incremental candidate-group index), freelive (no pointer to a
// free-listed object survives its recycle point), hotalloc
// (//mclint:hotpath closures stay allocation-free). The
// interprocedural analyzers share one module-wide call graph
// (internal/lint/callgraph), built once per run. cmd/mclint drives
// the suite over package patterns; selfcheck_test.go keeps the module
// clean from `go test ./...`; the testdata/broken fixtures prove each
// analyzer still fires.
package lint

import (
	"fmt"
	"go/token"

	"cloudmc/internal/lint/analysis"
	"cloudmc/internal/lint/epochbump"
	"cloudmc/internal/lint/freelive"
	"cloudmc/internal/lint/groupsync"
	"cloudmc/internal/lint/horizonarm"
	"cloudmc/internal/lint/hotalloc"
	"cloudmc/internal/lint/loader"
	"cloudmc/internal/lint/maprange"
	"cloudmc/internal/lint/nodeterm"
	"cloudmc/internal/lint/shardsafe"
)

// Analyzers returns the suite in its fixed reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maprange.Analyzer,
		nodeterm.Analyzer,
		epochbump.Analyzer,
		horizonarm.Analyzer,
		shardsafe.Analyzer,
		groupsync.Analyzer,
		freelive.Analyzer,
		hotalloc.Analyzer,
	}
}

// Finding is one diagnostic, resolved to a file position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run loads the packages matched by patterns (relative to dir) and
// applies the whole suite, returning findings in (package, analyzer,
// position) order.
func Run(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// Publish the whole run on every pass so module-wide analyses
	// (the shared call graph, hotalloc's cross-package reachability)
	// can see past the single package; one cache memoizes the graph
	// across all (package, analyzer) passes.
	all := make([]*analysis.PackageInfo, len(pkgs))
	for i, pkg := range pkgs {
		all[i] = &analysis.PackageInfo{
			PkgPath:   pkg.PkgPath,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
	}
	cache := analysis.NewCache()
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			pass := &analysis.Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				AllPackages: all,
				Cache:       cache,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	return findings, nil
}
