// Package loader type-checks Go packages for the mclint analyzers
// using only the standard library and the go tool: `go list -export`
// enumerates the requested packages and compiles export data for
// their whole dependency graph, the requested packages themselves are
// parsed from source, and imports resolve through the gc export-data
// importer. This is the subset of golang.org/x/tools/go/packages that
// a per-package analyzer driver needs, without the dependency.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one source-loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns (relative to dir, typically a module root or a
// fixture directory) and returns the matched packages parsed from
// source with full type information. Test files are not loaded —
// the determinism invariants govern simulation code, not tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			if p.Error != nil {
				return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
			}
			roots = append(roots, p)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("loader: no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range roots {
		var files []*ast.File
		for _, name := range p.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("loader: %v", err)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   p.ImportPath,
			Dir:       p.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
