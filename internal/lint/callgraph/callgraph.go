// Package callgraph is the shared interprocedural substrate of the
// mclint suite: a module-wide static call graph over every
// source-loaded package of a driver run, with function literals
// attributed to their enclosing declaration, mclint directives
// attached to each node, cross-package call edges resolved through
// stable symbol names, and method-set resolution for the small
// interface sets the analyzers care about (memctrl.Policy, obs.Sink,
// memctrl.CommandTrace).
//
// Before this package existed, horizonarm, shardsafe and groupsync
// each hand-rolled their own same-package call-closure walk; they now
// collect only their domain facts per function body and delegate
// callee resolution and reachability (Closure) here. The graph is
// built once per driver run and memoized in the run-wide
// analysis.Cache, so the module-wide analyzers (hotalloc) and the
// per-package ones share one construction.
//
// Resolution is first-order and static: a call edge exists when the
// callee identifier resolves to a *types.Func whose declaration is in
// one of the run's source-loaded packages. Interface method calls,
// function-typed fields and variables resolve to no node — they are
// deliberate closure boundaries (Implementations exposes the method
// sets behind the registered interfaces for analyzers that want to
// reason across that boundary explicitly).
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudmc/internal/lint/analysis"
)

// Call is one static call site inside a node's body (function
// literals included).
type Call struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Name is the called identifier or selector name ("" when the
	// callee expression is itself a call or other non-name form).
	Name string
	// Fn is the resolved callee object, when the identifier resolves
	// to a function or method (including interface methods and
	// functions outside the run's packages). Nil for builtins and
	// dynamic calls.
	Fn *types.Func
	// Callee is the graph node for Fn when its declaration is in one
	// of the run's source-loaded packages; nil otherwise (interface
	// methods, imported-only packages, builtins, dynamic calls).
	Callee *Node
}

// Node is one declared function or method.
type Node struct {
	// Func is the declared object, from its home package's
	// type-checking universe.
	Func *types.Func
	// Decl is the declaration; Decl.Body is non-nil for every node.
	Decl *ast.FuncDecl
	// Pkg and Info are the home package and its type info.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the home package's raw import path.
	PkgPath string
	// Directives are the mclint directives attached to the
	// declaration (trailing comment on its first line, or the line
	// above — which covers doc comments), justifications stripped.
	Directives []string
	// Calls lists every static call site in the body, in source
	// order, function literals attributed to this declaration.
	Calls []Call
	// Callees are the distinct nodes this body calls, in first-call
	// order.
	Callees []*Node
}

// HasDirective reports whether the declaration carries the mclint
// directive d.
func (n *Node) HasDirective(d string) bool {
	for _, got := range n.Directives {
		if got == d {
			return true
		}
	}
	return false
}

// Name returns the function's name (methods unqualified).
func (n *Node) Name() string { return n.Func.Name() }

// Graph is the module-wide call graph of one driver run.
type Graph struct {
	fset   *token.FileSet
	order  []*Node // deterministic: package, file, declaration order
	byName map[string]*Node
	byDecl map[*ast.FuncDecl]*Node
	byPkg  map[*types.Package][]*Node
	pkgs   []*analysis.PackageInfo
}

// cacheKey keys the memoized graph in the run-wide analysis.Cache.
const cacheKey = "callgraph"

// Of returns the call graph for pass's run, building it on first use
// and memoizing it in pass.Cache. When the driver published no
// AllPackages (single-package passes), the graph covers just the
// pass's own package — same-package edges still resolve, cross-package
// edges dangle.
func Of(pass *analysis.Pass) *Graph {
	if v, ok := pass.Cache.Get(cacheKey); ok {
		return v.(*Graph)
	}
	pkgs := pass.AllPackages
	if pkgs == nil {
		pkgs = []*analysis.PackageInfo{{
			PkgPath:   pass.Pkg.Path(),
			Files:     pass.Files,
			Pkg:       pass.Pkg,
			TypesInfo: pass.TypesInfo,
		}}
	}
	g := Build(pass.Fset, pkgs)
	pass.Cache.Put(cacheKey, g)
	return g
}

// Build constructs the graph over pkgs, which must share fset.
func Build(fset *token.FileSet, pkgs []*analysis.PackageInfo) *Graph {
	g := &Graph{
		fset:   fset,
		byName: make(map[string]*Node),
		byDecl: make(map[*ast.FuncDecl]*Node),
		byPkg:  make(map[*types.Package][]*Node),
		pkgs:   pkgs,
	}
	// First pass: one node per declared function body, directives
	// attached; keyed by FullName so a *types.Func from an importing
	// package's universe resolves to the home package's node.
	for _, p := range pkgs {
		for _, f := range p.Files {
			directives := analysis.DirectiveLines(fset, f)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{
					Func:    obj,
					Decl:    fd,
					Pkg:     p.Pkg,
					Info:    p.TypesInfo,
					PkgPath: p.PkgPath,
				}
				line := fset.Position(fd.Pos()).Line
				for _, l := range []int{line - 1, line} {
					n.Directives = append(n.Directives, directives[l]...)
				}
				g.order = append(g.order, n)
				g.byName[obj.FullName()] = n
				g.byDecl[fd] = n
				g.byPkg[p.Pkg] = append(g.byPkg[p.Pkg], n)
			}
		}
	}
	// Second pass: call sites and edges.
	for _, n := range g.order {
		seen := make(map[*Node]bool)
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			c := Call{Site: call}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				c.Name = fun.Name
				c.Fn, _ = n.Info.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				c.Name = fun.Sel.Name
				c.Fn, _ = n.Info.Uses[fun.Sel].(*types.Func)
			}
			if c.Fn != nil {
				c.Callee = g.byName[c.Fn.FullName()]
			}
			n.Calls = append(n.Calls, c)
			if c.Callee != nil && !seen[c.Callee] {
				seen[c.Callee] = true
				n.Callees = append(n.Callees, c.Callee)
			}
			return true
		})
	}
	return g
}

// Nodes returns every node in deterministic (package, file,
// declaration) order.
func (g *Graph) Nodes() []*Node { return g.order }

// PackageNodes returns pkg's nodes in declaration order.
func (g *Graph) PackageNodes(pkg *types.Package) []*Node { return g.byPkg[pkg] }

// DeclNode returns the node for a declaration from one of the run's
// packages, or nil.
func (g *Graph) DeclNode(fd *ast.FuncDecl) *Node { return g.byDecl[fd] }

// NodeOf resolves a function object — from any package universe of
// the run — to its node, or nil when its declaration is not in the
// run's packages.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byName[fn.FullName()]
}

// Closure walks the static call closure of root depth-first in
// first-call order, calling visit once per reached node (root
// included). Returning false prunes the walk below that node: its
// callees are not entered through it (they may still be reached on
// another path).
func (g *Graph) Closure(root *Node, visit func(*Node) bool) {
	if root == nil {
		return
	}
	visited := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		if !visit(n) {
			return
		}
		for _, c := range n.Callees {
			walk(c)
		}
	}
	walk(root)
}

// Impl is one concrete implementation of a registered interface.
type Impl struct {
	// Named is the implementing named type, from its home package's
	// universe; the method set satisfying the interface may be on
	// *Named.
	Named *types.Named
	// Pkg is the home package.
	Pkg *types.Package
}

// Implementations resolves the method sets behind one of the
// registered interface types — identified by the effective package
// path (per analysis.EffectivePath, so fixture re-rooting applies)
// and the interface name, e.g. ("cloudmc/internal/memctrl",
// "Policy"), ("cloudmc/internal/obs", "Sink"),
// ("cloudmc/internal/memctrl", "CommandTrace") — returning every
// named type declared in the run's packages whose value or pointer
// method set implements it. Each candidate package resolves the
// interface in its own type-checking universe (its own scope when it
// declares the interface, its direct imports otherwise), so the
// types.Implements check never crosses universes. Deterministic
// (package, declaration) order.
func (g *Graph) Implementations(ifacePkgPath, ifaceName string) []Impl {
	var impls []Impl
	for _, p := range g.pkgs {
		iface := lookupInterface(p.Pkg, ifacePkgPath, ifaceName)
		if iface == nil {
			continue
		}
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				impls = append(impls, Impl{Named: named, Pkg: p.Pkg})
			}
		}
	}
	return impls
}

// lookupInterface finds the interface (path, name) as seen from pkg's
// universe: pkg's own scope when pkg effectively is that package, a
// direct import's scope otherwise. Paths compare under
// analysis.EffectivePath so fixture packages resolve like the real
// ones.
func lookupInterface(pkg *types.Package, path, name string) *types.Interface {
	resolve := func(p *types.Package) *types.Interface {
		tn, ok := p.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := tn.Type().Underlying().(*types.Interface)
		return iface
	}
	if analysis.EffectivePath(pkg.Path()) == path {
		return resolve(pkg)
	}
	for _, imp := range pkg.Imports() {
		if analysis.EffectivePath(imp.Path()) == path {
			return resolve(imp)
		}
	}
	return nil
}
