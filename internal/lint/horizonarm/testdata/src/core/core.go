// Package core is the horizonarm fixture for the internal/core rules:
// exported entry points reaching EnqueueRead/EnqueueWrite need
// notifyCtrl in their call path, fill-queue mutations need armFill.
package core

// Controller stands in for memctrl.Controller.
type Controller struct{ q []int }

// EnqueueRead mimics the real enqueue signature shape.
func (c *Controller) EnqueueRead(a int) bool { c.q = append(c.q, a); return true }

// EnqueueWrite mimics the real enqueue signature shape.
func (c *Controller) EnqueueWrite(a int) bool { c.q = append(c.q, a); return true }

// System stands in for core.System.
type System struct {
	ctrl  *Controller
	fillq []uint64
}

func (s *System) notifyCtrl(ch int) {}
func (s *System) armFill()          {}

// Good discharges the enqueue obligation through a helper.
func (s *System) Good(a int) {
	s.enqueue(a)
}

func (s *System) enqueue(a int) {
	s.ctrl.EnqueueRead(a)
	s.notifyCtrl(0)
}

// Bad enqueues without ever re-arming.
func (s *System) Bad(a int) { // want `Bad reaches Controller.EnqueueRead/EnqueueWrite but never re-arms`
	s.ctrl.EnqueueWrite(a)
}

// GoodFill pairs the fill-queue insert with armFill.
func (s *System) GoodFill(at uint64) {
	s.fillq = append(s.fillq, at)
	s.armFill()
}

// BadFill inserts without re-arming the fill source.
func (s *System) BadFill(at uint64) { // want `BadFill mutates the fill queue but never re-arms the fill source`
	s.fillq = append(s.fillq, at)
}

// popFill is unexported: not an entry point, so the missing armFill is
// its exported callers' problem (Drain below re-arms).
func (s *System) popFill() {
	s.fillq = s.fillq[1:]
}

// Drain pops then re-arms: the closure contains both.
func (s *System) Drain() {
	s.popFill()
	s.armFill()
}

// GoodClosure shows function-literal bodies count toward the
// enclosing entry point's closure.
func (s *System) GoodClosure(a int) {
	do := func() {
		s.ctrl.EnqueueRead(a)
		s.notifyCtrl(0)
	}
	do()
}

// ReadOnly has no obligation.
func (s *System) ReadOnly() int { return len(s.fillq) }

// Justified demonstrates the escape hatch.
//
//mclint:allow horizonarm -- fixture: caller contractually re-arms
func (s *System) Justified(a int) {
	s.ctrl.EnqueueWrite(a)
}
