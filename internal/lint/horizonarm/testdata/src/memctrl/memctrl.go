// Package memctrl is the horizonarm fixture for the internal/memctrl
// rules: exported entry points mutating the request queues need
// noteEnqueue or a wakeAt write in their call path.
package memctrl

// Request stands in for memctrl.Request.
type Request struct{ ID uint64 }

// Controller stands in for memctrl.Controller.
type Controller struct {
	readQ  []*Request
	writeQ []*Request
	wakeAt uint64
}

func (c *Controller) noteEnqueue(r *Request) {}

// EnqueueGood re-establishes the horizon via noteEnqueue.
func (c *Controller) EnqueueGood(r *Request) {
	c.readQ = append(c.readQ, r)
	c.noteEnqueue(r)
}

// EnqueueBad grows a queue and leaves the horizon stale.
func (c *Controller) EnqueueBad(r *Request) { // want `EnqueueBad mutates the request queues but never re-establishes the event horizon`
	c.writeQ = append(c.writeQ, r)
}

// TickGood mutates through a helper and resets wakeAt, which forces a
// full tick — the other legal discharge.
func (c *Controller) TickGood(now uint64) {
	c.removeHead()
	c.wakeAt = now + 1
}

func (c *Controller) removeHead() {
	if len(c.readQ) > 0 {
		c.readQ = c.readQ[1:]
	}
}

// Peek is read-only: no obligation.
func (c *Controller) Peek() int { return len(c.readQ) }
