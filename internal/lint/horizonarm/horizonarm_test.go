package horizonarm_test

import (
	"testing"

	"cloudmc/internal/lint/analysistest"
	"cloudmc/internal/lint/horizonarm"
)

func TestCoreRules(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("core"), horizonarm.Analyzer)
}

func TestMemctrlRules(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("memctrl"), horizonarm.Analyzer)
}
