// Package horizonarm guards the event-kernel arming contract of
// cloudmc/internal/core and cloudmc/internal/memctrl: any exported
// entry point that can move a controller's NextEvent/EarliestIssue
// horizon earlier must re-arm the kernel wake-up queue somewhere in
// its (intra-package, transitive) call path — otherwise a parked
// source sleeps through work that just became due and the kernel
// diverges from the naive per-cycle loop.
//
// The obligations are keyed to the mutations that can create earlier
// work, and the arming primitives that discharge them:
//
//	internal/core:    a call to Controller.EnqueueRead/EnqueueWrite
//	                  requires notifyCtrl in the call path; an insert
//	                  into the fill queue (s.fillq) requires armFill.
//	internal/memctrl: a mutation of the request queues (readQ/writeQ)
//	                  requires noteEnqueue or a wakeAt write (resetting
//	                  the horizon to "unknown" forces a full tick).
//
// The analysis is a reachability closure over the package's static
// call graph (function literals count as part of their enclosing
// declaration, via the shared callgraph substrate), checked per
// exported function: an entry point whose closure contains an
// obligation but none of its arming primitives is flagged. Unexported
// helpers are deliberately exempt — stepKernel pops the fill queue
// and re-arms in its caller — because the contract binds the
// boundaries other packages can call into.
package horizonarm

import (
	"go/ast"

	"cloudmc/internal/lint/analysis"
	"cloudmc/internal/lint/callgraph"
)

// Analyzer is the horizonarm wake-up arming check.
var Analyzer = &analysis.Analyzer{
	Name: "horizonarm",
	Doc: "requires exported entry points of cloudmc/internal/core and cloudmc/internal/memctrl " +
		"that can move a controller horizon earlier to re-arm the kernel wake-up queue " +
		"(notifyCtrl/armFill/noteEnqueue in the call path)",
	Run: run,
}

// funcFacts is what one function body contributes to the closure.
// Callee resolution and the reachability walk live in the shared
// callgraph substrate; only the domain facts are collected here.
type funcFacts struct {
	callsEnqueue  bool // call to a method named EnqueueRead/EnqueueWrite
	mutatesFillq  bool // assignment through a selector named fillq
	callsNotify   bool // call to notifyCtrl
	callsArmFill  bool // call to armFill
	mutatesQueues bool // assignment through a selector named readQ/writeQ
	callsNote     bool // call to noteEnqueue
	setsWakeAt    bool // assignment through a selector named wakeAt
}

func run(pass *analysis.Pass) error {
	path := pass.EffectivePath()
	isCore := path == "cloudmc/internal/core"
	isMemctrl := path == "cloudmc/internal/memctrl"
	if !isCore && !isMemctrl {
		return nil
	}

	g := callgraph.Of(pass)
	nodes := g.PackageNodes(pass.Pkg)
	facts := make(map[*callgraph.Node]*funcFacts, len(nodes))
	for _, n := range nodes {
		facts[n] = collect(n)
	}

	for _, n := range nodes {
		if !n.Func.Exported() {
			continue
		}
		if pass.Suppressed(n.Decl, "allow horizonarm") {
			continue
		}
		// The arming contract is intra-package: a callee in another
		// package contributes nothing, exactly as before the shared
		// graph (its own package's obligations are its own pass's).
		var cl funcFacts
		g.Closure(n, func(m *callgraph.Node) bool {
			ff, ok := facts[m]
			if !ok {
				return false
			}
			cl.callsEnqueue = cl.callsEnqueue || ff.callsEnqueue
			cl.mutatesFillq = cl.mutatesFillq || ff.mutatesFillq
			cl.callsNotify = cl.callsNotify || ff.callsNotify
			cl.callsArmFill = cl.callsArmFill || ff.callsArmFill
			cl.mutatesQueues = cl.mutatesQueues || ff.mutatesQueues
			cl.callsNote = cl.callsNote || ff.callsNote
			cl.setsWakeAt = cl.setsWakeAt || ff.setsWakeAt
			return true
		})
		if isCore {
			if cl.callsEnqueue && !cl.callsNotify {
				pass.Reportf(n.Decl.Name.Pos(), "exported entry point %s reaches Controller.EnqueueRead/EnqueueWrite "+
					"but never re-arms the kernel wake-up queue (notifyCtrl missing from its call path)", n.Name())
			}
			if cl.mutatesFillq && !cl.callsArmFill {
				pass.Reportf(n.Decl.Name.Pos(), "exported entry point %s mutates the fill queue "+
					"but never re-arms the fill source (armFill missing from its call path)", n.Name())
			}
		}
		if isMemctrl {
			if cl.mutatesQueues && !(cl.callsNote || cl.setsWakeAt) {
				pass.Reportf(n.Decl.Name.Pos(), "exported entry point %s mutates the request queues "+
					"but never re-establishes the event horizon (neither noteEnqueue nor a wakeAt write "+
					"in its call path)", n.Name())
			}
		}
	}
	return nil
}

// collect records one node's direct facts: arming/obligation calls
// from the graph's call sites (matched by name, so cross-package
// calls like core's ctrl.EnqueueRead count), mutations from a body
// walk.
func collect(n *callgraph.Node) *funcFacts {
	ff := &funcFacts{}
	for _, c := range n.Calls {
		switch c.Name {
		case "EnqueueRead", "EnqueueWrite":
			ff.callsEnqueue = true
		case "notifyCtrl":
			ff.callsNotify = true
		case "armFill":
			ff.callsArmFill = true
		case "noteEnqueue":
			ff.callsNote = true
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				noteTarget(ff, lhs)
			}
		case *ast.IncDecStmt:
			noteTarget(ff, s.X)
		}
		return true
	})
	return ff
}

// noteTarget classifies an assignment target by the field it reaches
// through (unwrapping indexing and dereference).
func noteTarget(ff *funcFacts, expr ast.Expr) {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "fillq":
		ff.mutatesFillq = true
	case "readQ", "writeQ":
		ff.mutatesQueues = true
	case "wakeAt":
		ff.setsWakeAt = true
	}
}
