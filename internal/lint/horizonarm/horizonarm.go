// Package horizonarm guards the event-kernel arming contract of
// cloudmc/internal/core and cloudmc/internal/memctrl: any exported
// entry point that can move a controller's NextEvent/EarliestIssue
// horizon earlier must re-arm the kernel wake-up queue somewhere in
// its (intra-package, transitive) call path — otherwise a parked
// source sleeps through work that just became due and the kernel
// diverges from the naive per-cycle loop.
//
// The obligations are keyed to the mutations that can create earlier
// work, and the arming primitives that discharge them:
//
//	internal/core:    a call to Controller.EnqueueRead/EnqueueWrite
//	                  requires notifyCtrl in the call path; an insert
//	                  into the fill queue (s.fillq) requires armFill.
//	internal/memctrl: a mutation of the request queues (readQ/writeQ)
//	                  requires noteEnqueue or a wakeAt write (resetting
//	                  the horizon to "unknown" forces a full tick).
//
// The analysis is a reachability closure over the package's static
// call graph (function literals count as part of their enclosing
// declaration), checked per exported function: an entry point whose
// closure contains an obligation but none of its arming primitives is
// flagged. Unexported helpers are deliberately exempt — stepKernel
// pops the fill queue and re-arms in its caller — because the
// contract binds the boundaries other packages can call into.
package horizonarm

import (
	"go/ast"
	"go/types"

	"cloudmc/internal/lint/analysis"
)

// Analyzer is the horizonarm wake-up arming check.
var Analyzer = &analysis.Analyzer{
	Name: "horizonarm",
	Doc: "requires exported entry points of cloudmc/internal/core and cloudmc/internal/memctrl " +
		"that can move a controller horizon earlier to re-arm the kernel wake-up queue " +
		"(notifyCtrl/armFill/noteEnqueue in the call path)",
	Run: run,
}

// funcFacts is what one function body contributes to the closure.
type funcFacts struct {
	decl *ast.FuncDecl
	// callees are same-package functions this body statically calls.
	callees []*types.Func

	callsEnqueue  bool // call to a method named EnqueueRead/EnqueueWrite
	mutatesFillq  bool // assignment through a selector named fillq
	callsNotify   bool // call to notifyCtrl
	callsArmFill  bool // call to armFill
	mutatesQueues bool // assignment through a selector named readQ/writeQ
	callsNote     bool // call to noteEnqueue
	setsWakeAt    bool // assignment through a selector named wakeAt
}

func run(pass *analysis.Pass) error {
	path := pass.EffectivePath()
	isCore := path == "cloudmc/internal/core"
	isMemctrl := path == "cloudmc/internal/memctrl"
	if !isCore && !isMemctrl {
		return nil
	}

	facts := make(map[*types.Func]*funcFacts)
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[obj] = collect(pass, fd)
			order = append(order, obj)
		}
	}

	for _, obj := range order {
		ff := facts[obj]
		if !obj.Exported() {
			continue
		}
		cl := closure(obj, facts)
		if pass.Suppressed(ff.decl, "allow horizonarm") {
			continue
		}
		if isCore {
			if cl.callsEnqueue && !cl.callsNotify {
				pass.Reportf(ff.decl.Name.Pos(), "exported entry point %s reaches Controller.EnqueueRead/EnqueueWrite "+
					"but never re-arms the kernel wake-up queue (notifyCtrl missing from its call path)", obj.Name())
			}
			if cl.mutatesFillq && !cl.callsArmFill {
				pass.Reportf(ff.decl.Name.Pos(), "exported entry point %s mutates the fill queue "+
					"but never re-arms the fill source (armFill missing from its call path)", obj.Name())
			}
		}
		if isMemctrl {
			if cl.mutatesQueues && !(cl.callsNote || cl.setsWakeAt) {
				pass.Reportf(ff.decl.Name.Pos(), "exported entry point %s mutates the request queues "+
					"but never re-establishes the event horizon (neither noteEnqueue nor a wakeAt write "+
					"in its call path)", obj.Name())
			}
		}
	}
	return nil
}

// collect walks one function body (including its function literals)
// and records its direct facts.
func collect(pass *analysis.Pass, fd *ast.FuncDecl) *funcFacts {
	ff := &funcFacts{decl: fd}
	seen := make(map[*types.Func]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			name, callee := calleeOf(pass, s)
			switch name {
			case "EnqueueRead", "EnqueueWrite":
				ff.callsEnqueue = true
			case "notifyCtrl":
				ff.callsNotify = true
			case "armFill":
				ff.callsArmFill = true
			case "noteEnqueue":
				ff.callsNote = true
			}
			if callee != nil && callee.Pkg() == pass.Pkg && !seen[callee] {
				seen[callee] = true
				ff.callees = append(ff.callees, callee)
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				noteTarget(ff, lhs)
			}
		case *ast.IncDecStmt:
			noteTarget(ff, s.X)
		}
		return true
	})
	return ff
}

// noteTarget classifies an assignment target by the field it reaches
// through (unwrapping indexing and dereference).
func noteTarget(ff *funcFacts, expr ast.Expr) {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "fillq":
		ff.mutatesFillq = true
	case "readQ", "writeQ":
		ff.mutatesQueues = true
	case "wakeAt":
		ff.setsWakeAt = true
	}
}

// calleeOf resolves a call expression to (method/function name, callee
// object if statically known).
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) (string, *types.Func) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fun.Name, fn
		}
		return fun.Name, nil
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fun.Sel.Name, fn
		}
		return fun.Sel.Name, nil
	}
	return "", nil
}

// closure folds facts over the transitive same-package call graph of
// root. Missing bodies (declarations satisfied in assembly, interface
// methods) contribute nothing.
func closure(root *types.Func, facts map[*types.Func]*funcFacts) funcFacts {
	var out funcFacts
	visited := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		ff, ok := facts[fn]
		if !ok {
			return
		}
		out.callsEnqueue = out.callsEnqueue || ff.callsEnqueue
		out.mutatesFillq = out.mutatesFillq || ff.mutatesFillq
		out.callsNotify = out.callsNotify || ff.callsNotify
		out.callsArmFill = out.callsArmFill || ff.callsArmFill
		out.mutatesQueues = out.mutatesQueues || ff.mutatesQueues
		out.callsNote = out.callsNote || ff.callsNote
		out.setsWakeAt = out.setsWakeAt || ff.setsWakeAt
		for _, c := range ff.callees {
			visit(c)
		}
	}
	visit(root)
	return out
}
