// Package analysis is a self-contained, stdlib-only core of the
// golang.org/x/tools/go/analysis API surface that the mclint suite
// needs: an Analyzer runs over one type-checked package (a Pass) and
// reports position-anchored Diagnostics. The build environment for
// this module vendors no third-party code, so the real x/tools module
// is not available; keeping the same shape (Analyzer{Name, Doc, Run},
// Pass.Reportf) means the analyzers port to the upstream API
// mechanically if that ever changes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mclint:allow directives. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description printed by mclint -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// PackageInfo describes one source-loaded package of the current run.
// Drivers that load several packages publish all of them on every Pass
// (AllPackages) so module-wide analyses — the interprocedural call
// graph, cross-package reachability — can see past the single package
// a Pass presents.
type PackageInfo struct {
	PkgPath   string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Cache is a run-wide memo shared by every Pass of one driver run.
// Module-wide computations (the callgraph package's graph) key their
// results here so the first analyzer to need them pays for them once.
type Cache struct {
	m map[string]interface{}
}

// NewCache returns an empty run-wide cache.
func NewCache() *Cache { return &Cache{m: make(map[string]interface{})} }

// Get returns the cached value for key.
func (c *Cache) Get(key string) (interface{}, bool) {
	if c == nil || c.m == nil {
		return nil, false
	}
	v, ok := c.m[key]
	return v, ok
}

// Put stores v under key.
func (c *Cache) Put(key string, v interface{}) {
	if c == nil {
		return
	}
	if c.m == nil {
		c.m = make(map[string]interface{})
	}
	c.m[key] = v
}

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// AllPackages lists every source-loaded package of the run,
	// including the one this Pass presents. Nil when the driver loads
	// one package at a time; module-wide analyses degrade to
	// single-package scope in that case.
	AllPackages []*PackageInfo

	// Cache is the run-wide memo shared across packages and analyzers
	// of one driver run (may be nil for ad-hoc passes).
	Cache *Cache

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	directives map[*ast.File]map[int][]string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// EffectivePath returns the package path the scope rules see. Fixture
// packages live under a testdata directory (so the ordinary build
// never touches them) but must exercise scope-restricted analyzers, so
// a path containing "/testdata/" is re-rooted at cloudmc/internal/:
// everything after the last "/src/" names the simulated package
// ("cloudmc/internal/lint/testdata/broken/src/dram" is analyzed as
// "cloudmc/internal/dram").
func (p *Pass) EffectivePath() string {
	return EffectivePath(p.Pkg.Path())
}

// EffectivePath implements the Pass.EffectivePath mapping for a raw
// package path. A testdata package without an src/ segment is
// re-rooted outside cloudmc/internal/ instead, which gives fixtures a
// way to exercise the out-of-scope side of the scope rules.
func EffectivePath(path string) string {
	i := strings.Index(path, "/testdata/")
	if i < 0 {
		return path
	}
	rest := path[i+len("/testdata/"):]
	if strings.HasPrefix(rest, "src/") {
		return "cloudmc/internal/" + rest[len("src/"):]
	}
	if j := strings.LastIndex(rest, "/src/"); j >= 0 {
		return "cloudmc/internal/" + rest[j+len("/src/"):]
	}
	return "cloudmc/testdata/" + rest
}

// DirectiveLines scans one file's comments for mclint directives. The
// returned map is keyed by the line on which the directive comment
// ends, so both same-line trailing comments and a comment on the line
// above a statement (including a declaration's doc comment) attach
// naturally. Trailing justifications ("directive -- reason") are
// stripped.
func DirectiveLines(fset *token.FileSet, f *ast.File) map[int][]string {
	m := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "mclint:") {
				continue
			}
			d := strings.TrimPrefix(text, "mclint:")
			// Strip a trailing justification: "directive -- reason".
			if k := strings.Index(d, "--"); k >= 0 {
				d = d[:k]
			}
			d = strings.TrimSpace(d)
			line := fset.Position(c.End()).Line
			m[line] = append(m[line], d)
		}
	}
	return m
}

// directivesFor lazily scans a file's comments for mclint directives,
// memoizing per file.
func (p *Pass) directivesFor(f *ast.File) map[int][]string {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	if m, ok := p.directives[f]; ok {
		return m
	}
	m := DirectiveLines(p.Fset, f)
	p.directives[f] = m
	return m
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Suppressed reports whether node carries directive d: an
// "//mclint:<d>" comment ending on the node's first line or on the
// line immediately above it (which covers doc comments). The generic
// escape hatch "allow <analyzer>" is honored for every analyzer in
// addition to any analyzer-specific directive.
func (p *Pass) Suppressed(node ast.Node, d string) bool {
	f := p.fileOf(node.Pos())
	if f == nil {
		return false
	}
	m := p.directivesFor(f)
	line := p.Fset.Position(node.Pos()).Line
	for _, l := range []int{line, line - 1} {
		for _, got := range m[l] {
			if got == d || got == "allow "+p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}
