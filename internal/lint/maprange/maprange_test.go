package maprange_test

import (
	"testing"

	"cloudmc/internal/lint/analysistest"
	"cloudmc/internal/lint/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("mrange"), maprange.Analyzer)
}

// TestOutOfScope checks the analyzer stays silent outside
// cloudmc/internal/ — the fixture has a bare map range and no want
// comments.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/noscope", maprange.Analyzer)
}
