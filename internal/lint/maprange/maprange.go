// Package maprange flags `for range` over a map in simulation
// packages. Go randomizes map iteration order, so any observable
// output derived from a map range — error text listing valid names,
// option ordering, accumulated floating-point sums — varies from run
// to run, which breaks the repo's bit-identical determinism contract
// (naive vs. legacy-scan vs. kernel modes must produce identical
// Metrics, and checkpoint/resume must replay exactly).
//
// A map range is accepted when:
//
//   - the statement carries a `//mclint:order-insensitive` directive
//     (same line or the line above) asserting that the loop body is
//     invariant under iteration order — e.g. it only counts, or
//     writes to distinct keys of another map; or
//   - the loop provably feeds an order-free sink: the statement
//     immediately following the loop is a sort.* call, the standard
//     collect-keys-then-sort idiom.
package maprange

import (
	"go/ast"
	"go/types"
	"strings"

	"cloudmc/internal/lint/analysis"
)

// Analyzer is the maprange determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flags `for range` over a map in simulation packages (cloudmc/internal/...) " +
		"unless justified by //mclint:order-insensitive or followed immediately by a sort.* call",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.EffectivePath(), "cloudmc/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch s := n.(type) {
			case *ast.BlockStmt:
				list = s.List
			case *ast.CaseClause:
				list = s.Body
			case *ast.CommClause:
				list = s.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass, rs) {
					continue
				}
				if pass.Suppressed(rs, "order-insensitive") {
					continue
				}
				if i+1 < len(list) && isSortCall(pass, list[i+1]) {
					continue
				}
				pass.Reportf(rs.Pos(), "range over map has nondeterministic iteration order; "+
					"sort the keys, or justify with //mclint:order-insensitive")
			}
			return true
		})
	}
	return nil
}

// rangesOverMap reports whether rs ranges over a value of map type.
func rangesOverMap(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isSortCall reports whether stmt is an expression statement calling
// into the sort package (sort.Strings, sort.Slice, ...), i.e. the tail
// of the collect-then-sort idiom.
func isSortCall(pass *analysis.Pass, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pn.Imported().Path()
	return p == "sort" || p == "slices"
}
