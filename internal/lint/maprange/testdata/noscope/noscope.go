// Package noscope sits outside the simulation package scope (its
// effective path is not under cloudmc/internal/), so even a bare map
// range must not be flagged.
package noscope

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
