// Package mrange is the maprange analyzer fixture: firing cases, the
// sort-sink exemption, the order-insensitive directive, and non-map
// ranges that must stay silent.
package mrange

import "sort"

// unsortedKeys leaks map iteration order into its result: flagged.
func unsortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `range over map has nondeterministic iteration order`
		out = append(out, k)
	}
	return out
}

// sortedKeys feeds the collect-then-sort idiom: the sort.* call
// immediately after the loop makes the order observable-free.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// count carries the justification directive: a pure count is invariant
// under iteration order.
func count(m map[string]int) int {
	n := 0
	//mclint:order-insensitive -- pure count, no order-dependent effect
	for range m {
		n++
	}
	return n
}

// trailing uses the same-line directive placement.
func trailing(m map[string]int) int {
	n := 0
	for _, v := range m { //mclint:order-insensitive -- sum is commutative
		n += v
	}
	return n
}

// sliceRange must stay silent: slices iterate in index order.
func sliceRange(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// nested maps inside switch bodies are still found.
func nested(mode int, m map[int]int) []int {
	var out []int
	switch mode {
	case 0:
		for k := range m { // want `range over map has nondeterministic iteration order`
			out = append(out, k)
		}
	}
	return out
}
