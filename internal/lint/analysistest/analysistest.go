// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want` comments, mirroring the
// x/tools package of the same name. A fixture file marks an expected
// diagnostic with a trailing comment on the offending line:
//
//	for k := range m { // want `range over map`
//
// The backquoted string is a regexp matched against the diagnostic
// message; several backquoted regexps on one line expect several
// diagnostics. Every reported diagnostic must match an expectation on
// its line and every expectation must be matched exactly once.
//
// Fixtures live under <analyzer>/testdata/src/<name>; the loader
// assigns them their real module path (cloudmc/internal/lint/...),
// which analysis.EffectivePath re-roots at cloudmc/internal/<name> so
// scope-restricted analyzers see the package they expect.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"

	"cloudmc/internal/lint/analysis"
	"cloudmc/internal/lint/loader"
)

// expectation is one `// want` entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE extracts backquoted regexps from a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture package rooted at dir and applies a, failing t
// on any mismatch between diagnostics and want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := loader.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	all := make([]*analysis.PackageInfo, len(pkgs))
	for i, pkg := range pkgs {
		all[i] = &analysis.PackageInfo{
			PkgPath:   pkg.PkgPath,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
	}
	cache := analysis.NewCache()
	for _, pkg := range pkgs {
		var wants []*expectation
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ms := wantRE.FindAllStringSubmatch(text, -1)
					if len(ms) == 0 {
						t.Fatalf("%s: want comment without backquoted regexp", pos)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp: %v", pos, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
		sort.SliceStable(wants, func(i, j int) bool {
			if wants[i].file != wants[j].file {
				return wants[i].file < wants[j].file
			}
			return wants[i].line < wants[j].line
		})

		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			Pkg:         pkg.Types,
			TypesInfo:   pkg.TypesInfo,
			AllPackages: all,
			Cache:       cache,
			Report:      func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}

		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
			}
		}
	}
}

// claim consumes the first unmatched expectation on (file, line) whose
// pattern matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fixture returns the conventional fixture directory for a test:
// testdata/src/<name> under the analyzer package directory.
func Fixture(name string) string {
	return fmt.Sprintf("testdata/src/%s", name)
}
