package freelive_test

import (
	"testing"

	"cloudmc/internal/lint/analysistest"
	"cloudmc/internal/lint/freelive"
)

func TestFreelive(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("memctrl"), freelive.Analyzer)
}
