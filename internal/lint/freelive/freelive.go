// Package freelive guards the free-list lifetime contract of the
// recycled hot-path objects (cloudmc/internal/memctrl's Request
// structs and candidate-group arena, cloudmc/internal/core's
// mshrEntry free list): once such an object is returned to its free
// list, any pointer that survived the recycle point dangles — the
// same storage is reused for an unrelated future request, silently,
// with no tool able to catch it (it is not a use-after-free the race
// detector or GC can see).
//
// The check is a first-order taint analysis over the packages that
// handle recycled objects (memctrl, core, sched): a value whose type
// is a pointer to a recycled type (*Request, *group, *mshrEntry) — or
// a slice/map of such pointers — may flow through locals, parameters
// and returns freely, but every store that parks it somewhere that
// outlives the statement is flagged:
//
//   - into a struct field (directly, through an index/dereference
//     chain, or by appending to a field-rooted slice or writing a
//     field-rooted map);
//   - into a composite literal's field or element (the literal may be
//     stored anywhere);
//   - into a package-level variable;
//   - into a closure, by capture of a tracked variable.
//
// A store site that is part of the ownership discipline — an index
// structure provably cleared before its objects are recycled — is
// annotated //mclint:owns on the destination field's declaration (or
// on the store/capture site itself), with a justification explaining
// why the pointer cannot survive the recycle point.
//
// Additionally, every implementation of the registered interface sets
// that receive recycled pointers (memctrl.Policy, memctrl.CommandTrace,
// obs.Sink — resolved through the shared callgraph substrate's method
// sets) is checked against the policy.go lifetime contract: per-request
// state held past OnComplete must be keyed by value (Request.ID),
// never by pointer, so a field whose type involves *Request in a
// Policy/CommandTrace/Sink implementation is flagged.
package freelive

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudmc/internal/lint/analysis"
	"cloudmc/internal/lint/callgraph"
)

// Analyzer is the freelive free-list lifetime check.
var Analyzer = &analysis.Analyzer{
	Name: "freelive",
	Doc: "flags stores that let a pointer to a free-listed object (memctrl.Request, the candidate-group " +
		"arena, core.mshrEntry) escape into a field, slice, map, package variable or closure not annotated " +
		"//mclint:owns, and Policy/CommandTrace/Sink implementations that key state by *Request instead of Request.ID",
	Run: run,
}

// tracked maps an effective package path to the recycled type names
// whose pointers must not outlive their recycle point.
var tracked = map[string]map[string]bool{
	"cloudmc/internal/memctrl": {"Request": true, "group": true},
	"cloudmc/internal/core":    {"mshrEntry": true},
}

// scope is the set of packages that handle recycled objects.
var scope = map[string]bool{
	"cloudmc/internal/memctrl": true,
	"cloudmc/internal/core":    true,
	"cloudmc/internal/sched":   true,
}

// retainIfaces are the registered interface sets whose implementations
// receive *Request arguments under the policy.go lifetime contract.
var retainIfaces = []struct{ path, name string }{
	{"cloudmc/internal/memctrl", "Policy"},
	{"cloudmc/internal/memctrl", "CommandTrace"},
	{"cloudmc/internal/obs", "Sink"},
}

func run(pass *analysis.Pass) error {
	if !scope[pass.EffectivePath()] {
		return nil
	}
	c := &checker{pass: pass, owns: newOwnsIndex(pass)}
	for _, f := range pass.Files {
		ast.Inspect(f, c.visit)
	}
	c.checkImplementations()
	return nil
}

// checker carries the per-pass state.
type checker struct {
	pass *analysis.Pass
	owns *ownsIndex
}

// trackedNamed reports whether named is one of the recycled types.
func trackedNamed(named *types.Named) bool {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	set, ok := tracked[analysis.EffectivePath(obj.Pkg().Path())]
	return ok && set[obj.Name()]
}

// trackedPtr reports whether t is a pointer to a recycled type.
func trackedPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && trackedNamed(named)
}

// trackedAggregate reports whether t is a slice, array or map holding
// pointers to a recycled type.
func trackedAggregate(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return trackedPtr(u.Elem())
	case *types.Array:
		return trackedPtr(u.Elem())
	case *types.Map:
		return trackedPtr(u.Key()) || trackedPtr(u.Elem())
	}
	return false
}

// describe names t's recycled type for diagnostics.
func describe(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			return "*" + named.Obj().Name()
		}
	case *types.Slice:
		return "[]" + describe(u.Elem())
	case *types.Array:
		return "[...]" + describe(u.Elem())
	case *types.Map:
		if trackedPtr(u.Elem()) {
			return "map of " + describe(u.Elem())
		}
		return "map keyed by " + describe(u.Key())
	}
	return t.String()
}

func (c *checker) visit(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.AssignStmt:
		c.checkAssign(s)
	case *ast.CompositeLit:
		c.checkComposite(s)
	case *ast.FuncLit:
		c.checkCaptures(s)
	}
	return true
}

// checkAssign flags assignments that park a tracked value in a field
// or package variable.
func (c *checker) checkAssign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			c.checkStore(lhs, s.Rhs[i], c.typeOf(s.Rhs[i]))
		}
		return
	}
	// Tuple assignment: component types from the call's result tuple.
	if len(s.Rhs) == 1 {
		if tup, ok := c.typeOf(s.Rhs[0]).(*types.Tuple); ok && tup.Len() == len(s.Lhs) {
			for i, lhs := range s.Lhs {
				c.checkStore(lhs, nil, tup.At(i).Type())
			}
		}
	}
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// checkStore examines one (destination, value) pair. rhs is nil for
// tuple components.
func (c *checker) checkStore(lhs ast.Expr, rhs ast.Expr, rhsType types.Type) {
	if isNil(rhs) {
		return // clearing a slot is the discipline, not a leak
	}
	field, pkgVar := destOf(c.pass, lhs)
	if field == nil && pkgVar == nil {
		return // local-rooted destination: first-order ownership stays with the function
	}
	var leak types.Type
	switch {
	case rhs != nil && isSelfReslice(lhs, rhs):
		return // truncating a field in place introduces no new reference
	case rhs != nil && isAppend(rhs):
		// append grows the destination; only tracked *elements* leak
		// into it (appending untracked structs is fine — their
		// composite literals are checked separately).
		call := rhs.(*ast.CallExpr)
		for _, arg := range call.Args[1:] {
			t := c.typeOf(arg)
			if trackedPtr(t) || (call.Ellipsis != token.NoPos && trackedAggregate(t)) {
				leak = t
				break
			}
		}
	case trackedPtr(rhsType) || trackedAggregate(rhsType):
		leak = rhsType
	}
	if leak == nil {
		return
	}
	if field != nil {
		c.flagField(lhs.Pos(), field, leak, "store")
		return
	}
	if c.owns.at(pkgVar.Pos()) || c.pass.Suppressed(lhs, "owns") {
		return
	}
	c.pass.Reportf(lhs.Pos(), "tracked %s escapes into package-level variable %s — a recycled "+
		"free-list object could be reached through it after its recycle point; if the variable is "+
		"provably cleared before recycle, annotate it //mclint:owns with a justification",
		describe(leak), pkgVar.Name())
}

// flagField reports a tracked value parked in field unless the field's
// declaration (or the store site) carries //mclint:owns.
func (c *checker) flagField(pos token.Pos, field *types.Var, leak types.Type, how string) {
	if c.owns.at(field.Pos()) {
		return
	}
	// Site-level suppression: //mclint:owns on the store line.
	if c.pass.Suppressed(posNode{pos}, "owns") {
		return
	}
	c.pass.Reportf(pos, "tracked %s escapes into field %s (%s) — a recycled free-list object "+
		"could be reached through it after its recycle point; if the index is provably cleared "+
		"before recycle, annotate the field //mclint:owns with a justification",
		describe(leak), field.Name(), how)
}

// posNode adapts a bare position to ast.Node for Pass.Suppressed.
type posNode struct{ pos token.Pos }

func (p posNode) Pos() token.Pos { return p.pos }
func (p posNode) End() token.Pos { return p.pos }

// isNil reports whether e is the predeclared nil.
func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isAppend reports whether e is a call to the builtin append.
func isAppend(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append" && len(call.Args) > 0
}

// isSelfReslice reports whether rhs reslices the destination itself
// (c.q = c.q[:n] and friends), which recycles the field's own backing
// array without introducing a new reference.
func isSelfReslice(lhs, rhs ast.Expr) bool {
	sl, ok := rhs.(*ast.SliceExpr)
	if !ok {
		return false
	}
	return types.ExprString(sl.X) == types.ExprString(lhs)
}

// destOf resolves an assignment destination to the struct field or
// package-level variable it roots in, unwrapping index, dereference
// and parenthesis chains. Both results nil means the destination is
// local-rooted.
func destOf(pass *analysis.Pass, expr ast.Expr) (field *types.Var, pkgVar *types.Var) {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		case *ast.SelectorExpr:
			if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
				if v.IsField() {
					return v, nil
				}
				// Qualified package variable: pkg.Var.
				if id, isID := e.X.(*ast.Ident); isID {
					if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg && isPackageLevel(v) {
						return nil, v
					}
				}
			}
			return nil, nil
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && isPackageLevel(v) {
				return nil, v
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// checkComposite flags composite literals whose fields or elements
// hold tracked values — the literal itself may be stored anywhere, so
// construction is the choke point.
func (c *checker) checkComposite(cl *ast.CompositeLit) {
	t := c.typeOf(cl)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, elt := range cl.Elts {
			var value ast.Expr
			var field *types.Var
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				value = kv.Value
				if key, isID := kv.Key.(*ast.Ident); isID {
					field, _ = c.pass.TypesInfo.Uses[key].(*types.Var)
				}
			} else {
				value = elt
				if i < u.NumFields() {
					field = u.Field(i)
				}
			}
			vt := c.typeOf(value)
			if field == nil || !(trackedPtr(vt) || trackedAggregate(vt)) {
				continue
			}
			c.flagField(value.Pos(), field, vt, "composite literal")
		}
	case *types.Slice, *types.Array, *types.Map:
		for _, elt := range cl.Elts {
			value := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				value = kv.Value
			}
			vt := c.typeOf(value)
			if !trackedPtr(vt) {
				continue
			}
			if c.pass.Suppressed(posNode{value.Pos()}, "owns") {
				continue
			}
			c.pass.Reportf(value.Pos(), "tracked %s escapes into a %s literal — a recycled free-list "+
				"object could be reached through it after its recycle point; annotate the site "+
				"//mclint:owns with a justification if the container is provably cleared before recycle",
				describe(vt), kindName(u))
		}
	}
}

func kindName(t types.Type) string {
	switch t.(type) {
	case *types.Slice:
		return "slice"
	case *types.Array:
		return "array"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// checkCaptures flags function literals that capture a tracked
// variable from their enclosing scope: the closure may outlive the
// captured object's life on the free list.
func (c *checker) checkCaptures(fl *ast.FuncLit) {
	if c.pass.Suppressed(fl, "owns") {
		return
	}
	seen := make(map[*types.Var]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if !trackedPtr(v.Type()) {
			return true
		}
		// Captured = declared outside the literal.
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true
		}
		seen[v] = true
		c.pass.Reportf(id.Pos(), "closure captures tracked %s %s — the closure may outlive the object's "+
			"free-list life and fire after its recycle point; annotate the literal //mclint:owns with a "+
			"justification if the closure provably cannot fire after recycle",
			describe(v.Type()), v.Name())
		return true
	})
}

// checkImplementations applies the policy.go lifetime contract to the
// registered interface sets: implementations must key per-request
// state by Request.ID, never by pointer, so a struct field whose type
// involves *Request is flagged.
func (c *checker) checkImplementations() {
	g := callgraph.Of(c.pass)
	for _, iface := range retainIfaces {
		for _, impl := range g.Implementations(iface.path, iface.name) {
			if impl.Pkg != c.pass.Pkg {
				continue // its home package's pass reports it
			}
			st, ok := impl.Named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				t := f.Type()
				if !(trackedPtr(t) || trackedAggregate(t)) {
					continue
				}
				if c.owns.at(f.Pos()) {
					continue
				}
				c.pass.Reportf(f.Pos(), "%s implements %s.%s but keys state by pointer: field %s involves "+
					"a recycled *Request, which may be reused for an unrelated request after OnComplete — "+
					"key per-request state by value (Request.ID) instead (see the policy.go lifetime contract)",
					impl.Named.Obj().Name(), iface.path, iface.name, f.Name())
			}
		}
	}
}

// ownsIndex answers "does the declaration at pos carry //mclint:owns
// (or allow freelive)?" across every source-loaded file of the run —
// field declarations may live in a different file or package than the
// store being checked.
type ownsIndex struct {
	fset  *token.FileSet
	files []*ast.File
	memo  map[*ast.File]map[int][]string
}

func newOwnsIndex(pass *analysis.Pass) *ownsIndex {
	ix := &ownsIndex{fset: pass.Fset, memo: make(map[*ast.File]map[int][]string)}
	if pass.AllPackages != nil {
		for _, p := range pass.AllPackages {
			ix.files = append(ix.files, p.Files...)
		}
	} else {
		ix.files = pass.Files
	}
	return ix
}

// at reports whether an owns directive is attached to the line of pos
// (or the line above it).
func (ix *ownsIndex) at(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	var file *ast.File
	for _, f := range ix.files {
		if f.FileStart <= pos && pos < f.FileEnd {
			file = f
			break
		}
	}
	if file == nil {
		return false
	}
	m, ok := ix.memo[file]
	if !ok {
		m = analysis.DirectiveLines(ix.fset, file)
		ix.memo[file] = m
	}
	line := ix.fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range m[l] {
			if d == "owns" || d == "allow freelive" {
				return true
			}
		}
	}
	return false
}
