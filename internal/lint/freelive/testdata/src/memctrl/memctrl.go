// Package memctrl is the freelive analyzer fixture: a miniature of
// the real controller's free-list machinery with stores that leak
// recycled pointers past their recycle point, stores that are part of
// the ownership discipline (annotated //mclint:owns), and benign
// local handling that must stay silent.
package memctrl

// Request mirrors the recycled request type.
type Request struct {
	ID   uint64
	Addr uint64
}

// group mirrors the recycled candidate-group arena entry.
type group struct {
	row uint64
}

// lastSeen is a package-level parking spot: flagged.
var lastSeen *Request

// sample is a struct whose composite literal parks a request.
type sample struct {
	id  uint64
	req *Request
}

// Controller mirrors the free-list owner.
type Controller struct {
	//mclint:owns -- fixture: requests are popped from readQ before they can recycle
	readQ []*Request

	leakQ   []*Request
	last    *Request
	scratch *Request
	byAddr  map[uint64]*Request
	hot     *group

	//mclint:owns -- fixture: the free list is the recycle point itself
	freeReq []*Request
}

// Enqueue exercises field stores: the annotated readQ is quiet, every
// bare destination fires.
func (c *Controller) Enqueue(r *Request) {
	c.readQ = append(c.readQ, r)
	c.leakQ = append(c.leakQ, r) // want `tracked \*Request escapes into field leakQ`
	c.last = r                   // want `escapes into field last`
	c.byAddr[r.Addr] = r         // want `escapes into field byAddr`
	lastSeen = r                 // want `escapes into package-level variable lastSeen`
}

// Stash shows site-level suppression on an otherwise-flagged store.
func (c *Controller) Stash(r *Request) {
	c.scratch = r //mclint:owns -- fixture: cleared before the end of the same tick
}

// Cache parks a recycled group handle target: flagged.
func (c *Controller) Cache(g *group) {
	c.hot = g // want `tracked \*group escapes into field hot`
}

// Recycle is the discipline itself: nil-clearing and self-reslicing a
// field stay silent, and the push into the annotated free list too.
func (c *Controller) Recycle(r *Request) *Request {
	c.freeReq = append(c.freeReq, r)
	n := len(c.freeReq)
	out := c.freeReq[n-1]
	c.freeReq[n-1] = nil
	c.freeReq = c.freeReq[:n-1]
	return out
}

// Record parks a request in a composite literal: flagged at the field.
func Record(r *Request) sample {
	return sample{id: r.ID, req: r} // want `escapes into field req`
}

// Snapshot parks requests in a slice literal: flagged.
func Snapshot(r *Request) []*Request {
	return []*Request{r} // want `escapes into a slice literal`
}

// Defer captures a tracked pointer in a closure: flagged at the use.
func Defer(r *Request) func() uint64 {
	return func() uint64 {
		return r.ID // want `closure captures tracked \*Request r`
	}
}

// DeferOwned is the same capture with a justified suppression.
func DeferOwned(r *Request) func() uint64 {
	return func() uint64 { return r.ID } //mclint:owns -- fixture: the closure provably fires before the recycle point
}

// Pick only moves tracked pointers through locals and returns: silent.
func Pick(rs []*Request) *Request {
	var best *Request
	for _, r := range rs {
		if best == nil || r.ID < best.ID {
			best = r
		}
	}
	return best
}

// Policy mirrors the real scheduling interface whose lifetime
// contract freelive enforces on implementations.
type Policy interface {
	Name() string
	OnComplete(r *Request, now uint64)
}

// stickyPolicy keys per-request state by pointer: flagged at the
// field (and the store inside OnComplete fires the escape rule too).
type stickyPolicy struct {
	last *Request // want `keys state by pointer: field last`
}

func (p *stickyPolicy) Name() string { return "sticky" }

func (p *stickyPolicy) OnComplete(r *Request, now uint64) {
	p.last = r // want `escapes into field last`
}

// idPolicy keys by value (Request.ID), per the contract: silent.
type idPolicy struct {
	lastID uint64
}

func (p *idPolicy) Name() string { return "id" }

func (p *idPolicy) OnComplete(r *Request, now uint64) {
	p.lastID = r.ID
}
