// Package memctrl is the hotalloc analyzer fixture: one annotated hot
// path whose call closure allocates in every flagged way, a justified
// //mclint:alloc-ok cold site, a death path that may allocate, and a
// cold function free to allocate outside the closure.
package memctrl

// Request is a minimal queued request.
type Request struct {
	ID   uint64
	Addr uint64
}

// Controller carries the hot-path state.
type Controller struct {
	readQ   []*Request
	byAddr  map[uint64]*Request
	scratch []uint64
	freeReq []*Request
	name    string
}

// Tick is the annotated hot path: its own body and everything it
// reaches through the call graph must be allocation-free.
//
//mclint:hotpath
func (c *Controller) Tick(now uint64) {
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, now)
	c.byAddr = map[uint64]*Request{} // want `map literal in hot path`
	c.rebuild(now)
	c.observe(now)
	c.deferwork(now)
	c.guard(now)
	c.grow()
}

// rebuild allocates in a callee of the hot path: every site flags,
// attributed back to Tick.
func (c *Controller) rebuild(now uint64) {
	buf := make([]uint64, 0, 4) // want `make in hot path`
	buf = append(buf, now)
	other := append(buf, now) // want `append to a different destination`
	_ = other
	r := new(Request)     // want `new in hot path`
	c.byAddr[r.Addr] = r  // want `map write`
	_ = []uint64{now}     // want `slice literal`
	c.name = c.name + "x" // want `string concatenation`
}

// observe boxes a concrete value into an interface argument.
func (c *Controller) observe(now uint64) {
	sink(now) // want `value boxed into interface argument`
}

func sink(v interface{}) {}

// deferwork allocates a closure on the hot path.
func (c *Controller) deferwork(now uint64) {
	f := func() uint64 { return now } // want `function literal \(closure allocation\)`
	_ = f()
}

// guard's panic argument allocates, but death paths are exempt.
func (c *Controller) guard(now uint64) {
	if now == 0 {
		panic("memctrl: zero cycle in " + c.name)
	}
}

// grow's one-time sizing is suppressed with a justification.
func (c *Controller) grow() {
	if c.freeReq == nil {
		c.freeReq = make([]*Request, 0, 8) //mclint:alloc-ok -- fixture: one-time arena sizing on the first tick only
	}
}

// Reset is cold — not reachable from the hot path — and free to
// allocate.
func (c *Controller) Reset() {
	c.byAddr = make(map[uint64]*Request, 8)
	c.readQ = nil
	c.name = c.name + " (reset)"
}
