package hotalloc_test

import (
	"testing"

	"cloudmc/internal/lint/analysistest"
	"cloudmc/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("memctrl"), hotalloc.Analyzer)
}
