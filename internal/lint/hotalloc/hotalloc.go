// Package hotalloc guards the hot-path allocation-freedom contract:
// functions annotated //mclint:hotpath — the per-tick spines of
// cloudmc/internal/memctrl, internal/core and internal/engine whose
// 0 allocs/op steady state the bench gate pins — and everything they
// reach through the module-wide static call graph must not allocate.
// The shared callgraph substrate supplies the cross-package closure;
// interface method calls and function-typed values are closure
// boundaries (the policy/trace/sink implementations behind them are
// governed by their own contracts).
//
// Flagged allocation sources:
//
//   - make and new;
//   - heap-bound composite literals: &T{...}, slice and map literals
//     (a plain struct value T{...} stays on the stack);
//   - possibly-growing append: any append whose destination is not
//     the slice it extends (x = append(x, ...) recycles x's backing
//     capacity and is the free-list idiom, so it is allowed — the
//     bench gate pins the steady state);
//   - map writes (a fresh key may trigger growth);
//   - string concatenation and fmt calls;
//   - value-to-interface boxing at call arguments and assignments
//     (non-pointer concrete values force a heap copy);
//   - function literals (closure allocation).
//
// panic(...) argument subtrees are exempt — death paths may allocate.
// A deliberate exception (a cold branch, a first-use amortized
// allocation, a free-list miss path) is suppressed on the offending
// line (or the line above) with //mclint:alloc-ok -- <justification>.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudmc/internal/lint/analysis"
	"cloudmc/internal/lint/callgraph"
)

// Analyzer is the hotalloc allocation-freedom check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbids allocation (make/new/heap composites/growing append/map writes/boxing/closures/" +
		"string concat/fmt) in //mclint:hotpath functions and their module-wide call closure; " +
		"suppress a deliberate cold or amortized site with //mclint:alloc-ok",
	Run: run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass)

	// Roots: every //mclint:hotpath declaration, module-wide. The
	// reachability map records, per reached node, the first root (in
	// graph order) whose closure contains it, for attribution.
	var roots []*callgraph.Node
	for _, n := range g.Nodes() {
		if n.HasDirective("hotpath") {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reachedBy := make(map[*callgraph.Node]*callgraph.Node)
	for _, root := range roots {
		g.Closure(root, func(n *callgraph.Node) bool {
			if _, ok := reachedBy[n]; !ok {
				reachedBy[n] = root
			}
			return true
		})
	}

	// Each pass reports only its own package's findings, so a
	// violation in a cross-package callee is attributed exactly once,
	// in its home package.
	for _, n := range g.PackageNodes(pass.Pkg) {
		root, hot := reachedBy[n]
		if !hot {
			continue
		}
		check(pass, n, root)
	}
	return nil
}

// check walks one hot function body and reports its allocation sites.
func check(pass *analysis.Pass, n *callgraph.Node, root *callgraph.Node) {
	flag := func(node ast.Node, what string) {
		if pass.Suppressed(node, "alloc-ok") {
			return
		}
		where := ""
		if root != n {
			where = " (reachable from //mclint:hotpath " + root.Name() + ")"
		}
		pass.Reportf(node.Pos(), "%s in hot path%s — the //mclint:hotpath closure must be allocation-free; "+
			"suppress a cold or amortized site with //mclint:alloc-ok -- <justification>", what, where)
	}

	// selfAppend marks append calls whose destination is the extended
	// slice itself (x = append(x, ...)): capacity-recycling, allowed.
	selfAppend := make(map[*ast.CallExpr]bool)

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call, "append") && len(call.Args) > 0 {
					if types.ExprString(call.Args[0]) == types.ExprString(s.Lhs[i]) {
						selfAppend[call] = true
					}
				}
			}
			// Map writes: a fresh key may trigger rehash/growth.
			for _, lhs := range s.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if t := typeOf(pass, idx.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							flag(lhs, "map write (may grow the map)")
						}
					}
				}
			}
			// String concatenation via +=.
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isString(pass, s.Lhs[0]) {
				flag(s, "string concatenation")
			}
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass, s, "panic"):
				return false // death path: panic arguments may allocate
			case isBuiltin(pass, s, "make"):
				flag(s, "make")
			case isBuiltin(pass, s, "new"):
				flag(s, "new")
			case isBuiltin(pass, s, "append"):
				if !selfAppend[s] {
					flag(s, "append to a different destination (copies into fresh backing)")
				}
			case isPkgCall(pass, s, "fmt"):
				flag(s, "fmt call")
			default:
				checkBoxing(pass, s, flag)
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if _, ok := s.X.(*ast.CompositeLit); ok {
					flag(s, "heap composite literal (&T{...})")
				}
			}
		case *ast.CompositeLit:
			if t := typeOf(pass, s); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					flag(s, "slice literal")
				case *types.Map:
					flag(s, "map literal")
				}
			}
		case *ast.BinaryExpr:
			if s.Op == token.ADD && isString(pass, s.X) {
				flag(s, "string concatenation")
			}
		case *ast.FuncLit:
			flag(s, "function literal (closure allocation)")
		}
		return true
	})
}

// checkBoxing flags concrete non-pointer values passed where an
// interface is expected: the conversion copies the value to the heap.
// Pointer-shaped values (pointers, channels, maps, funcs) and
// interface-to-interface assignments box without allocating.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, flag func(ast.Node, string)) {
	sig, ok := typeOfU(pass, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // spread: no per-element conversion
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := typeOf(pass, arg)
		if at == nil || isNilExpr(arg) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue
		}
		flag(arg, "value boxed into interface argument")
	}
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// typeOfU is typeOf with a nil-safe Underlying for signature lookup.
func typeOfU(pass *analysis.Pass, e ast.Expr) types.Type {
	t := typeOf(pass, e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := typeOf(pass, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNilExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isBuiltin reports whether call invokes the named predeclared
// builtin (not shadowed by a local declaration).
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isPkgCall reports whether call is pkg.F(...) for the named imported
// package.
func isPkgCall(pass *analysis.Pass, call *ast.CallExpr, pkg string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Name() == pkg
}
