// Package sim is a deliberately-broken fixture: the CI smoke step
// runs mclint over it and asserts maprange and nodeterm fire. It must
// compile; it must NOT be fixed.
package sim

import (
	"math/rand"
	"time"
)

// Tally ranges over a map with an order-dependent sink (append):
// maprange must flag this.
func Tally(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	return keys
}

// Jitter uses the global math/rand and wall-clock time: nodeterm must
// flag both calls.
func Jitter() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(16))
}
