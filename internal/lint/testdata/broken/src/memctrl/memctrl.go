// Package memctrl is a deliberately-broken fixture: the CI smoke step
// runs mclint over it and asserts horizonarm, groupsync, freelive
// (the un-annotated readQ stores below) and hotalloc fire. It must
// compile; it must NOT be fixed.
package memctrl

// Request is a minimal request.
type Request struct{ Addr uint64 }

// Controller carries the queues, the horizon and the group index the
// linters guard.
type Controller struct {
	readQ  []*Request
	writeQ []*Request
	wakeAt uint64
}

func (c *Controller) noteEnqueue(r *Request) { c.wakeAt = 0 }

func (c *Controller) groupRemove(r *Request) {}

// Enqueue grows readQ and never calls noteEnqueue or touches wakeAt:
// horizonarm must flag this.
func (c *Controller) Enqueue(r *Request) {
	c.readQ = append(c.readQ, r)
}

// EnqueueArmed keeps noteEnqueue reachable so it is not dead code.
func (c *Controller) EnqueueArmed(r *Request) {
	c.readQ = append(c.readQ, r)
	c.noteEnqueue(r)
}

// ObsSampleHook mimics an observability hook that drains the read
// queue into a sample without re-arming the horizon. Observation must
// never mutate controller state; when it does anyway, horizonarm must
// flag it like any other exported queue mutation.
func (c *Controller) ObsSampleHook() int {
	n := len(c.readQ)
	c.readQ = c.readQ[:0]
	return n
}

// DropWrite shrinks the write queue without filing the removal with
// the candidate-group index (groupRemove is reachable but never
// called): groupsync must flag this.
func (c *Controller) DropWrite() {
	c.noteEnqueue(nil)
	c.writeQ = c.writeQ[:len(c.writeQ)-1]
}

// DropWriteFiled keeps groupRemove reachable so it is not dead code.
func (c *Controller) DropWriteFiled(r *Request) {
	c.noteEnqueue(r)
	c.writeQ = c.writeQ[:len(c.writeQ)-1]
	c.groupRemove(r)
}

// Tick is annotated as a hot path but allocates a scratch slice every
// call through its helper: hotalloc must flag the make in rebuild.
//
//mclint:hotpath
func (c *Controller) Tick(now uint64) {
	c.rebuild()
}

func (c *Controller) rebuild() {
	scratch := make([]*Request, 0, len(c.readQ))
	scratch = append(scratch, c.readQ...)
	c.readQ = scratch
}
