// Package memctrl is a deliberately-broken fixture: the CI smoke step
// runs mclint over it and asserts horizonarm fires. It must compile;
// it must NOT be fixed.
package memctrl

// Request is a minimal request.
type Request struct{ Addr uint64 }

// Controller carries the queues and the horizon the linter guards.
type Controller struct {
	readQ  []*Request
	wakeAt uint64
}

func (c *Controller) noteEnqueue(r *Request) { c.wakeAt = 0 }

// Enqueue grows readQ and never calls noteEnqueue or touches wakeAt:
// horizonarm must flag this.
func (c *Controller) Enqueue(r *Request) {
	c.readQ = append(c.readQ, r)
}

// EnqueueArmed keeps noteEnqueue reachable so it is not dead code.
func (c *Controller) EnqueueArmed(r *Request) {
	c.readQ = append(c.readQ, r)
	c.noteEnqueue(r)
}

// ObsSampleHook mimics an observability hook that drains the read
// queue into a sample without re-arming the horizon. Observation must
// never mutate controller state; when it does anyway, horizonarm must
// flag it like any other exported queue mutation.
func (c *Controller) ObsSampleHook() int {
	n := len(c.readQ)
	c.readQ = c.readQ[:0]
	return n
}
