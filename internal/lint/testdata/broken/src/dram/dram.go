// Package dram is a deliberately-broken fixture: the CI smoke step
// runs mclint over it and asserts epochbump fires. It must compile;
// it must NOT be fixed.
package dram

// Bank carries one guarded field and its epoch.
type Bank struct {
	State uint8
	epoch uint32
}

// Precharge mutates Bank.State without bumping the epoch: epochbump
// must flag this.
func (b *Bank) Precharge() {
	b.State = 0
}

// Activate is here so the epoch field is not otherwise unused.
func (b *Bank) Activate() {
	b.epoch++
	b.State = 1
}
