// Package shard is a deliberately-broken fixture: the CI smoke step
// runs mclint over it and asserts shardsafe fires. It must compile;
// it must NOT be fixed.
package shard

// fills is a package-level mutable no shard body may write.
var fills int

type system struct{ fillq []uint64 }

// scheduleFill may only run on the coordinator, after the barrier.
//
//mclint:merge-only
func (s *system) scheduleFill(at uint64) {
	s.fillq = append(s.fillq, at)
	fills++
}

// TickShard leaks both ways: it applies a merge-only effect from
// inside the shard body and bumps a package global. shardsafe must
// flag both.
//
//mclint:shard
func (s *system) TickShard(shard int, now uint64) {
	s.scheduleFill(now)
	fills++
}
