// Package epochbump guards the horizon-cache invalidation contract of
// cloudmc/internal/dram: the memory controller caches per-bank
// earliest-issue horizons stamped with the DRAM constraint epochs
// (Bank.Epoch, Rank.ActEpoch, Channel.DataEpoch) and revalidates them
// by comparison, so every mutation of a timing field MUST bump the
// matching epoch in the same function — otherwise a stale cached
// horizon survives the state change and the fast-forward engine can
// wake late (or skip a legal cycle), silently diverging from the
// naive loop.
//
// The contract, per type:
//
//	Bank:    State, OpenRow, actAllowedAt, colAllowedAt, preAllowedAt -> epoch
//	Rank:    lastActAt, anyActivate, actTimes, actCount              -> actEpoch
//	Channel: dataFreeAt, lastWriteDataEnd, lastReadDataEnd           -> dataEpoch
//
// The command-bus fields (lastCmdAt, anyCmd) are deliberately outside
// the contract: their constraint never exceeds a parked controller's
// current cycle, so the horizon fold's now+1 clamp absorbs them (see
// the dram.Channel.dataEpoch comment).
package epochbump

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudmc/internal/lint/analysis"
)

// Analyzer is the epochbump invalidation-contract check.
var Analyzer = &analysis.Analyzer{
	Name: "epochbump",
	Doc: "requires every function in cloudmc/internal/dram that mutates a timing field " +
		"(bank state, rank ACT window, data-bus busy-until) to bump the matching constraint epoch",
	Run: run,
}

// contractOrder fixes the reporting order over contract's types.
var contractOrder = []string{"Bank", "Rank", "Channel"}

// contract maps a dram type name to its guarded timing fields and the
// epoch field a mutating function must bump.
var contract = map[string]struct {
	fields map[string]bool
	epoch  string
}{
	"Bank": {
		fields: map[string]bool{"State": true, "OpenRow": true,
			"actAllowedAt": true, "colAllowedAt": true, "preAllowedAt": true},
		epoch: "epoch",
	},
	"Rank": {
		fields: map[string]bool{"lastActAt": true, "anyActivate": true,
			"actTimes": true, "actCount": true},
		epoch: "actEpoch",
	},
	"Channel": {
		fields: map[string]bool{"dataFreeAt": true, "lastWriteDataEnd": true,
			"lastReadDataEnd": true},
		epoch: "dataEpoch",
	},
}

func run(pass *analysis.Pass) error {
	if pass.EffectivePath() != "cloudmc/internal/dram" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// firstMut records the first guarded-field mutation per type;
	// bumped records which epochs the function bumps.
	firstMut := make(map[string]token.Pos)
	mutField := make(map[string]string)
	bumped := make(map[string]bool)

	note := func(expr ast.Expr) {
		tname, field, ok := guardedTarget(pass, expr)
		if !ok {
			return
		}
		spec := contract[tname]
		switch {
		case field == spec.epoch:
			bumped[tname] = true
		case spec.fields[field]:
			if _, seen := firstMut[tname]; !seen {
				firstMut[tname] = expr.Pos()
				mutField[tname] = field
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(s.X)
		}
		return true
	})

	for _, tname := range contractOrder {
		pos, mutated := firstMut[tname]
		if !mutated || bumped[tname] {
			continue
		}
		if pass.Suppressed(fd, "allow epochbump") {
			continue
		}
		pass.Reportf(pos, "%s mutates %s.%s but never bumps %s.%s; a cached horizon stamped with "+
			"the old epoch would survive this state change (see the bankHorizon revalidation contract)",
			fd.Name.Name, tname, mutField[tname], tname, contract[tname].epoch)
	}
}

// guardedTarget resolves an assignment target to (type name, field
// name) when it is a selector — possibly through indexing or pointer
// dereference — on a value of one of the contract types declared in
// this package.
func guardedTarget(pass *analysis.Pass, expr ast.Expr) (tname, field string, ok bool) {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	sel, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	name := named.Obj().Name()
	if _, tracked := contract[name]; !tracked {
		return "", "", false
	}
	// Only this package's types: a Bank imported from elsewhere is not
	// under this package's epoch contract.
	if named.Obj().Pkg() != pass.Pkg {
		return "", "", false
	}
	return name, sel.Sel.Name, true
}
