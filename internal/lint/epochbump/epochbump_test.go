package epochbump_test

import (
	"testing"

	"cloudmc/internal/lint/analysistest"
	"cloudmc/internal/lint/epochbump"
)

func TestEpochbump(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("dram"), epochbump.Analyzer)
}
