// Package dram is the epochbump analyzer fixture: a miniature of the
// real cloudmc/internal/dram types (same names, same guarded fields)
// with mutators that bump their epoch, mutators that forget, and
// fields outside the contract.
package dram

// BankState mirrors the real coarse bank state.
type BankState uint8

// Bank mirrors the guarded bank fields: State, OpenRow and the three
// allowed-at thresholds must bump epoch.
type Bank struct {
	State   BankState
	OpenRow int

	epoch uint32

	actAllowedAt uint64
	colAllowedAt uint64
	preAllowedAt uint64

	rowAccesses int
}

// activateGood bumps the epoch alongside its mutations.
func (b *Bank) activateGood(now uint64, row int) {
	b.epoch++
	b.State = 1
	b.OpenRow = row
	b.colAllowedAt = now + 4
	b.preAllowedAt = now + 15
}

// activateBad mutates timing state without bumping the epoch.
func (b *Bank) activateBad(now uint64, row int) {
	b.State = 1 // want `activateBad mutates Bank.State but never bumps Bank.epoch`
	b.OpenRow = row
	b.actAllowedAt = now + 20
}

// countOnly touches a field outside the contract: silent.
func (b *Bank) countOnly() {
	b.rowAccesses++
}

// Rank mirrors the guarded rank ACT-window fields.
type Rank struct {
	Banks []Bank

	lastActAt   uint64
	anyActivate bool
	actTimes    [4]uint64
	actCount    int

	actEpoch uint32
}

// recordGood bumps actEpoch, including through the indexed actTimes
// write.
func (r *Rank) recordGood(now uint64) {
	r.actEpoch++
	r.lastActAt = now
	r.anyActivate = true
	r.actTimes[r.actCount%4] = now
	r.actCount++
}

// recordBad forgets the bump.
func (r *Rank) recordBad(now uint64) {
	r.lastActAt = now // want `recordBad mutates Rank.lastActAt but never bumps Rank.actEpoch`
	r.anyActivate = true
}

// mixed bumps Rank's epoch but not Bank's: only the Bank mutation is
// flagged.
func (r *Rank) mixed(b *Bank, now uint64) {
	r.actEpoch++
	r.lastActAt = now
	b.State = 0 // want `mixed mutates Bank.State but never bumps Bank.epoch`
}

// Channel mirrors the guarded data-bus fields; the command-bus fields
// (lastCmdAt, anyCmd) are deliberately outside the contract.
type Channel struct {
	lastCmdAt uint64
	anyCmd    bool

	dataFreeAt       uint64
	lastWriteDataEnd uint64
	lastReadDataEnd  uint64

	dataEpoch uint32
}

// readGood bumps dataEpoch.
func (c *Channel) readGood(end uint64) {
	c.dataEpoch++
	c.dataFreeAt = end
	c.lastReadDataEnd = end
}

// writeBad forgets it.
func (c *Channel) writeBad(end uint64) {
	c.dataFreeAt = end // want `writeBad mutates Channel.dataFreeAt but never bumps Channel.dataEpoch`
	c.lastWriteDataEnd = end
}

// commandBus touches only untracked fields: silent.
func (c *Channel) commandBus(now uint64) {
	c.lastCmdAt = now
	c.anyCmd = true
}

// resetJustified demonstrates the escape hatch on a declaration.
//
//mclint:allow epochbump -- fixture: caller re-stamps every cache entry
func (b *Bank) resetJustified() {
	b.actAllowedAt = 0
	b.colAllowedAt = 0
}
