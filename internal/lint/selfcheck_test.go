package lint_test

import (
	"strings"
	"testing"

	"cloudmc/internal/lint"
)

// TestModuleIsLintClean runs the full mclint suite over the whole
// module and asserts zero diagnostics. A new violation anywhere in the
// tree fails plain `go test ./...` locally, not just the CI lint job.
func TestModuleIsLintClean(t *testing.T) {
	findings, err := lint.Run("../..", "./...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if len(findings) > 0 {
		var got []string
		for _, f := range findings {
			got = append(got, f.String())
		}
		t.Errorf("module is not mclint-clean (%d finding(s)):\n%s",
			len(findings), strings.Join(got, "\n"))
	}
}
