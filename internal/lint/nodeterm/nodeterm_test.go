package nodeterm_test

import (
	"testing"

	"cloudmc/internal/lint/analysistest"
	"cloudmc/internal/lint/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("ndet"), nodeterm.Analyzer)
}
