// Package nodeterm forbids ambient nondeterminism sources in
// simulation packages: wall-clock reads (time.Now, time.Since), the
// globally seeded math/rand convenience functions (rand.Int, Intn,
// Float64, Shuffle, ...; math/rand/v2 top-level equivalents), and
// environment lookups (os.Getenv, os.LookupEnv, os.Environ). A
// simulation result must be a pure function of its Config and seeds —
// these APIs smuggle host state into the run, which breaks the
// bit-identical equivalence suites and makes checkpoint/resume
// unreplayable.
//
// Explicitly constructed, explicitly seeded generators
// (rand.New(rand.NewSource(seed))) remain legal: the ban covers only
// the package-level functions backed by the shared global source.
// cmd/ binaries are outside the analyzer's scope — wall-clock
// reporting in a CLI is legitimate — as are test files, which are
// never loaded.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"cloudmc/internal/lint/analysis"
)

// Analyzer is the nodeterm ambient-nondeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbids time.Now/time.Since, global math/rand functions, and os environment " +
		"lookups in simulation packages (cloudmc/internal/...)",
	Run: run,
}

// banned maps package path -> banned package-level function names.
// For the math/rand packages the allowed complement is the explicit
// constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8); methods
// on *rand.Rand are always fine and never match a package-level
// object.
var banned = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
	"math/rand": set("Seed", "Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "ExpFloat64", "NormFloat64",
		"Perm", "Shuffle", "Read"),
	"math/rand/v2": set("Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "ExpFloat64", "NormFloat64", "Perm", "Shuffle", "N"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.EffectivePath(), "cloudmc/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method, not a package-level function
			}
			names, ok := banned[fn.Pkg().Path()]
			if !ok || !names[fn.Name()] {
				return true
			}
			if pass.Suppressed(sel, "allow nodeterm") {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s injects ambient nondeterminism into a simulation package; "+
				"derive the value from Config, seeds, or the simulated clock", fn.Pkg().Path(), fn.Name())
			return true
		})
	}
	return nil
}
