// Package ndet is the nodeterm analyzer fixture: each ambient
// nondeterminism source fires once, while explicitly seeded
// generators, methods on *rand.Rand, and justified uses stay silent.
package ndet

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	return time.Now().Unix() // want `time.Now injects ambient nondeterminism`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since injects ambient nondeterminism`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand.Intn injects ambient nondeterminism`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand.Shuffle injects ambient nondeterminism`
}

func env() string {
	return os.Getenv("HOME") // want `os.Getenv injects ambient nondeterminism`
}

func lookup() (string, bool) {
	return os.LookupEnv("HOME") // want `os.LookupEnv injects ambient nondeterminism`
}

// seeded is the legal pattern: an explicit source derived from a
// config seed; constructors and *rand.Rand methods are never flagged.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// justified demonstrates the generic escape hatch.
func justified() string {
	//mclint:allow nodeterm -- fixture demonstrates the escape hatch
	return os.Getenv("HOME")
}

// timeValues shows that using time *types* (not the wall clock) is
// fine.
func timeValues(d time.Duration) time.Duration {
	return d * 2
}
