// Package memctrl is the groupsync analyzer fixture: a miniature of
// the real cloudmc/internal/memctrl controller (same type and field
// names) with queue mutators that maintain the candidate-group index,
// mutators that forget, and mutations outside the contract.
package memctrl

// Request mirrors the real queued request.
type Request struct {
	ID   uint64
	Addr uint64
}

// bankQueue mirrors the guarded per-bank buckets; groups is outside
// the contract (it IS the index).
type bankQueue struct {
	reads  []*Request
	writes []*Request
	groups []int32
	seq    uint64
}

// group mirrors the real group entry: its reads/writes lists share
// field names with bankQueue but are NOT guarded — mutating them is
// the index maintenance itself.
type group struct {
	reads  []*Request
	writes []*Request
}

// Controller mirrors the guarded queue fields plus index state.
type Controller struct {
	readQ     []*Request
	writeQ    []*Request
	writeMode bool

	bankQ      []bankQueue
	grp        []group
	grpPending []*Request
	view       int
}

func (c *Controller) groupNote(r *Request)   { c.grpPending = append(c.grpPending, r) }
func (c *Controller) groupRemove(r *Request) {}
func (c *Controller) groupFold()             {}
func (c *Controller) buildOptions(now uint64, mixed bool) {
	c.groupFold()
	c.view++
}

// enqueueGood mutates queue membership and files the request with the
// index in the same function.
func (c *Controller) enqueueGood(r *Request) {
	c.readQ = append(c.readQ, r)
	bk := &c.bankQ[0]
	bk.reads = append(bk.reads, r)
	bk.seq++
	c.groupNote(r)
}

// enqueueBad mutates queue membership without updating the index.
func (c *Controller) enqueueBad(r *Request) {
	c.readQ = append(c.readQ, r) // want `enqueueBad mutates Controller.readQ but never updates the candidate-group index`
	bk := &c.bankQ[0]
	bk.reads = append(bk.reads, r)
}

// bucketBad mutates a bank bucket without updating the index.
func (c *Controller) bucketBad(r *Request) {
	c.bankQ[0].writes = append(c.bankQ[0].writes, r) // want `bucketBad mutates bankQueue.writes but never updates the candidate-group index`
}

// removeGood edits the queues through pointers (address-taking), with
// the index updated alongside.
func (c *Controller) removeGood(r *Request) {
	q := &c.readQ
	c.groupRemove(r)
	*q = (*q)[:len(*q)-1]
}

// removeBad hands out mutable queue access without any maintenance.
func (c *Controller) removeBad(r *Request) {
	q := &c.writeQ // want `removeBad mutates Controller.writeQ but never updates the candidate-group index`
	*q = (*q)[:len(*q)-1]
}

// flipGood flips drain mode and rebuilds the option set.
func (c *Controller) flipGood(now uint64) {
	c.writeMode = !c.writeMode
	c.buildOptions(now, false)
}

// flipBad flips drain mode with no rebuild.
func (c *Controller) flipBad() {
	c.writeMode = !c.writeMode // want `flipBad mutates Controller.writeMode but never updates the candidate-group index`
}

// groupListsFree mutates a group's own lists: index maintenance
// itself, outside the contract.
func (c *Controller) groupListsFree(r *Request) {
	g := &c.grp[0]
	g.reads = append(g.reads, r)
	g.writes = g.writes[:0]
}

// seqFree mutates only unguarded bookkeeping.
func (c *Controller) seqFree() {
	c.bankQ[0].seq++
	c.view = 0
}

// suppressed documents why it is exempt.
//
//mclint:allow groupsync -- fixture: stats-only reslice audited by hand
func (c *Controller) suppressed() {
	c.readQ = c.readQ[:0]
}
