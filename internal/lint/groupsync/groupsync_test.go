package groupsync_test

import (
	"testing"

	"cloudmc/internal/lint/analysistest"
	"cloudmc/internal/lint/groupsync"
)

func TestGroupsync(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("memctrl"), groupsync.Analyzer)
}
