// Package groupsync guards the candidate-group index maintenance
// contract of cloudmc/internal/memctrl: the controller keeps one live
// group entry per (bankIdx, row) — the input of buildOptions —
// updated incrementally as requests enter and leave the queues. Any
// function that changes queue membership (the readQ/writeQ slices or
// a bankQueue's reads/writes bucket) or flips the write-drain mode
// MUST update the index in the same function, by calling one of the
// maintenance entry points (groupNote, groupRemove, groupEnqueue,
// groupFold) or rebuilding the option set (buildOptions, which folds
// pending updates). Otherwise the index silently diverges from the
// queues and the incremental option builder emits a stale candidate
// set — a divergence only the differential suites would catch, one
// randomized stream too late.
//
// The group type's own reads/writes lists are deliberately outside
// the contract: mutating them IS the index maintenance.
package groupsync

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudmc/internal/lint/analysis"
	"cloudmc/internal/lint/callgraph"
)

// Analyzer is the groupsync maintenance-contract check.
var Analyzer = &analysis.Analyzer{
	Name: "groupsync",
	Doc: "requires every function in cloudmc/internal/memctrl that mutates queue membership " +
		"(readQ/writeQ, bankQueue reads/writes) or the write-drain mode to update the " +
		"candidate-group index in the same function",
	Run: run,
}

// guarded maps a memctrl type name to the fields whose mutation (or
// address-taking — removeRequest edits the queues through pointers)
// requires index maintenance in the same function.
var guarded = map[string]map[string]bool{
	"Controller": {"readQ": true, "writeQ": true, "writeMode": true},
	"bankQueue":  {"reads": true, "writes": true},
}

// syncCalls are the maintenance entry points that discharge the
// obligation.
var syncCalls = map[string]bool{
	"groupNote":    true,
	"groupRemove":  true,
	"groupEnqueue": true,
	"groupFold":    true,
	"buildOptions": true,
}

func run(pass *analysis.Pass) error {
	if pass.EffectivePath() != "cloudmc/internal/memctrl" {
		return nil
	}
	g := callgraph.Of(pass)
	for _, n := range g.PackageNodes(pass.Pkg) {
		if syncCalls[n.Name()] {
			continue // the maintenance paths themselves
		}
		checkFunc(pass, n)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, n *callgraph.Node) {
	fd := n.Decl
	var firstMut token.Pos
	var mutDesc string
	synced := false

	// Discharge: any method call naming a maintenance entry point,
	// from the graph's call list.
	for _, c := range n.Calls {
		if _, isSel := c.Site.Fun.(*ast.SelectorExpr); isSel && syncCalls[c.Name] {
			synced = true
			break
		}
	}

	note := func(expr ast.Expr) {
		tname, field, ok := guardedTarget(pass, expr)
		if !ok {
			return
		}
		if firstMut == token.NoPos {
			firstMut = expr.Pos()
			mutDesc = tname + "." + field
		}
	}

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(s.X)
		case *ast.UnaryExpr:
			// Taking a guarded field's address hands out mutable
			// access (the queue-removal helpers work through
			// pointers), so it carries the same obligation.
			if s.Op == token.AND {
				note(s.X)
			}
		}
		return true
	})

	if firstMut == token.NoPos || synced {
		return
	}
	if pass.Suppressed(fd, "allow groupsync") {
		return
	}
	pass.Reportf(firstMut, "%s mutates %s but never updates the candidate-group index "+
		"(groupNote/groupRemove/groupEnqueue/groupFold, or a rebuild via buildOptions) in the "+
		"same function; the incremental option builder would emit a stale candidate set "+
		"(see the groups.go maintenance contract)",
		fd.Name.Name, mutDesc)
}

// guardedTarget resolves an expression to (type name, field name)
// when it is a selector — possibly through indexing or pointer
// dereference — on a value of one of the guarded types declared in
// this package.
func guardedTarget(pass *analysis.Pass, expr ast.Expr) (tname, field string, ok bool) {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	sel, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	name := named.Obj().Name()
	fields, tracked := guarded[name]
	if !tracked || !fields[sel.Sel.Name] {
		return "", "", false
	}
	// Only this package's types: a Controller imported from elsewhere
	// is not under this package's maintenance contract.
	if named.Obj().Pkg() != pass.Pkg {
		return "", "", false
	}
	return name, sel.Sel.Name, true
}
