package lint_test

import (
	"strings"
	"testing"

	"cloudmc/internal/lint"
)

// TestBrokenFixtureFiresEveryAnalyzer runs the full suite over the
// deliberately-broken packages under testdata/broken and asserts every
// analyzer reports at least once. This is the same check CI's smoke
// step performs with the cmd/mclint binary; keeping it in go test makes
// a silently-dead analyzer fail locally too.
func TestBrokenFixtureFiresEveryAnalyzer(t *testing.T) {
	findings, err := lint.Run(".", "./testdata/broken/src/...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	fired := make(map[string]int)
	for _, f := range findings {
		fired[f.Analyzer]++
	}
	for _, a := range lint.Analyzers() {
		if fired[a.Name] == 0 {
			var got []string
			for _, f := range findings {
				got = append(got, f.String())
			}
			t.Errorf("analyzer %s reported nothing over the broken fixture; findings:\n%s",
				a.Name, strings.Join(got, "\n"))
		}
	}

	// The fixture's ObsSampleHook mutates the read queue from an
	// observability hook without re-arming; horizonarm must flag it
	// specifically — obs code gets no exemption from the arming
	// contract.
	obsFlagged := false
	for _, f := range findings {
		if f.Analyzer == "horizonarm" && strings.Contains(f.Message, "ObsSampleHook") {
			obsFlagged = true
		}
	}
	if !obsFlagged {
		t.Error("horizonarm did not flag the fixture's ObsSampleHook queue mutation")
	}
}
