package lint_test

import (
	"strings"
	"testing"

	"cloudmc/internal/lint"
)

// TestBrokenFixtureFiresEveryAnalyzer runs the full suite over the
// deliberately-broken packages under testdata/broken and asserts every
// analyzer reports at least once. This is the same check CI's smoke
// step performs with the cmd/mclint binary; keeping it in go test makes
// a silently-dead analyzer fail locally too.
func TestBrokenFixtureFiresEveryAnalyzer(t *testing.T) {
	findings, err := lint.Run(".", "./testdata/broken/src/...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	fired := make(map[string]int)
	for _, f := range findings {
		fired[f.Analyzer]++
	}
	for _, a := range lint.Analyzers() {
		if fired[a.Name] == 0 {
			var got []string
			for _, f := range findings {
				got = append(got, f.String())
			}
			t.Errorf("analyzer %s reported nothing over the broken fixture; findings:\n%s",
				a.Name, strings.Join(got, "\n"))
		}
	}
}
