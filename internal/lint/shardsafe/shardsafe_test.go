package shardsafe_test

import (
	"testing"

	"cloudmc/internal/lint/analysistest"
	"cloudmc/internal/lint/shardsafe"
)

func TestShardRules(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("shard"), shardsafe.Analyzer)
}
