// Package shard is the shardsafe fixture: shard-confined roots that
// leak into merge-only primitives or package globals, next to
// coordinator code that does the same things legitimately.
package shard

// tally is a package-level mutable: off-limits to shard bodies.
var tally int

// limits is package-level too; writes through an index are still
// writes to it.
var limits = make([]uint64, 8)

type system struct {
	wake  []uint64
	fill  [][]uint64
	fillq []uint64
}

// scheduleFill mutates the shared fill queue and may only run on the
// coordinator, after the barrier.
//
//mclint:merge-only
func (s *system) scheduleFill(at uint64) {
	s.fillq = append(s.fillq, at)
}

// notifyCtrl re-arms the coordinator-owned wake-up queue.
//
//mclint:merge-only
func (s *system) notifyCtrl(ch int) {}

// tickShard is a shard root: its own body writes only shard-owned
// slots, but the helper it calls does not.
//
//mclint:shard
func (s *system) tickShard(shard int, now uint64) {
	s.wake[shard] = now // shard-owned slot: fine
	s.helper(shard, now)
}

// helper is reached transitively from the tickShard root, so its
// violations are attributed to that closure.
func (s *system) helper(ch int, now uint64) {
	tally++             // want `write to package-level variable tally`
	limits[ch] = now    // want `write to package-level variable limits`
	s.scheduleFill(now) // want `call to merge-only scheduleFill`
}

// merge is coordinator code — not a shard root, not reached from one
// — so the very same operations are legal here.
func (s *system) merge(now uint64) {
	tally++
	s.scheduleFill(now)
	s.notifyCtrl(0)
}

// tickDirect exercises the in-body cases and the shard-ok escape
// hatch, including through a function literal (literals belong to
// their enclosing declaration's closure).
//
//mclint:shard
func (s *system) tickDirect(shard int, now uint64) {
	s.fill[shard] = append(s.fill[shard], now) // shard-owned slot: fine
	s.notifyCtrl(shard)                        //mclint:shard-ok -- fixture: deliberate, justified exception
	f := func() {
		s.scheduleFill(now) // want `call to merge-only scheduleFill`
	}
	f()
}
