// Package shardsafe guards the shard-ownership discipline of the
// parallel kernel (cloudmc/internal/core, see shard.go): a function
// marked with a //mclint:shard directive runs concurrently on pool
// workers during the sharded controller phase, so it — and everything
// it reaches through same-package calls, function literals included —
// may write only shard-owned state. Two violation classes are
// statically checkable and flagged:
//
//  1. a call to a function marked //mclint:merge-only (the
//     coordinator-side primitives that mutate shared structures:
//     scheduleFill, armFill, notifyCtrl in internal/core) — deferred
//     effects must be buffered per shard and merged after the
//     barrier, never applied from inside a shard body;
//  2. a write to a package-level variable (same-package or through an
//     imported package's selector) — package globals are by
//     definition not shard-owned.
//
// Per-index field ownership (shard i writes only slots i mod workers)
// is a dynamic property the race detector covers; this analyzer binds
// the static half of the contract so a refactor that routes a shard
// body into a merge-only primitive fails lint before it ever runs.
//
// A deliberate exception is suppressed on the offending line (or the
// line above) with //mclint:shard-ok, e.g. a branch that is provably
// unreachable while sharding is active.
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudmc/internal/lint/analysis"
	"cloudmc/internal/lint/callgraph"
)

// Analyzer is the shardsafe shard-confinement check.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "forbids //mclint:shard functions (and their same-package call closure) from calling " +
		"//mclint:merge-only primitives or writing package-level variables; suppress a deliberate " +
		"exception with //mclint:shard-ok",
	Run: run,
}

// violation is one candidate finding inside a function body; it is
// reported only if the function turns out to be reachable from a
// shard root. Suppression is already resolved at collection time.
type violation struct {
	pos token.Pos
	msg string // violation text; the reporting root is appended
}

// funcFacts is what one function body contributes to the closure.
// Callee resolution and the reachability walk live in the shared
// callgraph substrate; only the candidate violations are collected
// here.
type funcFacts struct {
	violations []violation
}

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass)
	nodes := g.PackageNodes(pass.Pkg)

	// Resolve which declarations carry the merge-only marker, so call
	// sites can be classified.
	mergeOnly := make(map[*callgraph.Node]bool)
	for _, n := range nodes {
		if pass.Suppressed(n.Decl, "merge-only") {
			mergeOnly[n] = true
		}
	}

	// Collect per-function facts (candidate violations).
	facts := make(map[*callgraph.Node]*funcFacts, len(nodes))
	for _, n := range nodes {
		facts[n] = collect(pass, n, mergeOnly)
	}

	// Report each violation once, attributed to the first shard root
	// (in declaration order) whose closure reaches it. Merge-only
	// bodies never join the shard closure: the call site itself is
	// the finding (or its suppression), and their internals are
	// coordinator code by declaration. The contract is intra-package,
	// so the walk prunes at package boundaries.
	reported := make(map[token.Pos]bool)
	for _, root := range nodes {
		if !pass.Suppressed(root.Decl, "shard") {
			continue
		}
		g.Closure(root, func(m *callgraph.Node) bool {
			cf, ok := facts[m]
			if !ok || mergeOnly[m] {
				return false
			}
			for _, v := range cf.violations {
				if reported[v.pos] {
					continue
				}
				reported[v.pos] = true
				pass.Reportf(v.pos, "%s (in the shard-confined closure of %s)", v.msg, root.Name())
			}
			return true
		})
	}
	return nil
}

// collect records one node's candidate violations: merge-only call
// sites from the graph's call list, package-variable writes from a
// body walk. Suppression (//mclint:shard-ok) is resolved here, at the
// site.
func collect(pass *analysis.Pass, n *callgraph.Node, mergeOnly map[*callgraph.Node]bool) *funcFacts {
	ff := &funcFacts{}
	for _, c := range n.Calls {
		if c.Callee == nil || !mergeOnly[c.Callee] {
			continue
		}
		if pass.Suppressed(c.Site, "shard-ok") {
			continue
		}
		ff.violations = append(ff.violations, violation{
			pos: c.Site.Pos(),
			msg: "call to merge-only " + c.Callee.Name() +
				" — buffer the effect per shard and apply it after the barrier",
		})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				noteWrite(pass, ff, s, lhs)
			}
		case *ast.IncDecStmt:
			noteWrite(pass, ff, s, s.X)
		}
		return true
	})
	return ff
}

// noteWrite flags stmt if the assignment target expr resolves to a
// package-level variable (unwrapping indexing, dereference and field
// selection down to the base object).
func noteWrite(pass *analysis.Pass, ff *funcFacts, stmt ast.Node, expr ast.Expr) {
	v := baseVar(pass, expr)
	if v == nil || v.Parent() == nil {
		return
	}
	// Package-level: the variable's scope is some package scope —
	// this package's or, via a qualified selector, an imported one.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	if pass.Suppressed(stmt, "shard-ok") {
		return
	}
	ff.violations = append(ff.violations, violation{
		pos: stmt.Pos(),
		msg: "write to package-level variable " + v.Name() + " — shard bodies may write only shard-owned state",
	})
}

// baseVar unwraps an assignment target to the variable object it
// roots in, following x[i], *x, (x) and x.f chains. A selector whose
// base is an imported package yields that package's variable.
func baseVar(pass *analysis.Pass, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					v, _ := pass.TypesInfo.Uses[e.Sel].(*types.Var)
					return v
				}
			}
			expr = e.X
			continue
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[e].(*types.Var)
			return v
		default:
			return nil
		}
	}
}
