package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean not zero")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 || m.Count() != 2 {
		t.Fatalf("mean = %f count=%d", m.Value(), m.Count())
	}
	m.AddN(3, 2)
	if m.Value() != 3 || m.Count() != 4 {
		t.Fatalf("after AddN: mean = %f count=%d", m.Value(), m.Count())
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 5)
	if got := tw.Average(100); got != 5 {
		t.Fatalf("constant average = %f, want 5", got)
	}
}

func TestTimeWeightedStep(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)
	tw.Set(50, 10)
	if got := tw.Average(100); got != 5 {
		t.Fatalf("step average = %f, want 5", got)
	}
}

func TestTimeWeightedAnchoredStart(t *testing.T) {
	// A tracker re-anchored mid-run (post-warmup reset) must average
	// over its own window only.
	var tw TimeWeighted
	tw.Set(1000, 4)
	if got := tw.Average(2000); got != 4 {
		t.Fatalf("anchored average = %f, want 4", got)
	}
	if got := tw.Average(1000); got != 0 {
		t.Fatalf("empty window = %f, want 0", got)
	}
}

func TestTimeWeightedIdempotentSets(t *testing.T) {
	var tw TimeWeighted
	for c := uint64(0); c < 10; c++ {
		tw.Set(c, 7)
	}
	if got := tw.Average(10); got != 7 {
		t.Fatalf("repeated sets average = %f, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(8)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(100) // overflow bucket
	h.Add(-5)  // clamps to 0
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(3) != 1 || h.Count(8) != 1 || h.Count(0) != 1 {
		t.Fatalf("unexpected counts: %d %d %d %d", h.Count(1), h.Count(3), h.Count(8), h.Count(0))
	}
	if got := h.Fraction(1); got != 0.4 {
		t.Fatalf("fraction = %f", got)
	}
	if h.Count(100) != 0 {
		t.Fatal("out-of-range count not zero")
	}
}

func TestLatencyHistMean(t *testing.T) {
	var l LatencyHist
	for _, v := range []uint64{10, 20, 30} {
		l.Add(v)
	}
	if l.Mean() != 20 || l.Count() != 3 || l.Max() != 30 {
		t.Fatalf("mean=%f count=%d max=%d", l.Mean(), l.Count(), l.Max())
	}
}

func TestLatencyHistQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		var l LatencyHist
		for _, v := range raw {
			l.Add(uint64(v))
		}
		if len(raw) == 0 {
			return l.Quantile(0.5) == 0
		}
		q50, q90, q99 := l.Quantile(0.5), l.Quantile(0.9), l.Quantile(0.99)
		return q50 <= q90 && q90 <= q99
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyHistQuantileBounds(t *testing.T) {
	var l LatencyHist
	l.Add(100)
	// Quantile returns a bucket upper bound >= the sample.
	if q := l.Quantile(1.0); q < 100 {
		t.Fatalf("q100 = %d < sample", q)
	}
}

func TestLatencyHistSub(t *testing.T) {
	var l LatencyHist
	l.Add(10)
	l.Add(100)
	prev := l // snapshot, as the obs recorder takes at an interval boundary
	l.Add(1000)
	l.Add(1000)
	l.Add(1000)
	d := l.Sub(prev)
	if d.Count() != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count())
	}
	if d.Mean() != 1000 {
		t.Fatalf("delta mean = %f, want 1000", d.Mean())
	}
	// All three window samples are 1000, so every delta quantile lands
	// in 1000's bucket (upper bound 1024).
	if q := d.Quantile(0.5); q != 1024 {
		t.Fatalf("delta p50 = %d, want 1024", q)
	}
	// Subtracting an empty histogram is the identity.
	id := l.Sub(LatencyHist{})
	if id != l {
		t.Fatal("Sub of zero histogram is not the identity")
	}
	// Sub against itself leaves the cumulative max as documented.
	z := l.Sub(l)
	if z.Count() != 0 || z.Max() != l.Max() {
		t.Fatalf("self-delta count=%d max=%d", z.Count(), z.Max())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Fatal("ratio wrong")
	}
	if Ratio(4, 0) != 0 {
		t.Fatal("zero denominator should give 0")
	}
}

func TestMeans(t *testing.T) {
	vs := []float64{1, 2, 4}
	if got := ArithMean(vs); math.Abs(got-7.0/3) > 1e-12 {
		t.Fatalf("arith = %f", got)
	}
	if got := GeoMean(vs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geo = %f", got)
	}
	if got := Median(vs); got != 2 {
		t.Fatalf("median = %f", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("even median = %f", got)
	}
	if ArithMean(nil) != 0 || GeoMean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty inputs should give 0")
	}
}

func TestGeoMeanIgnoresNonPositive(t *testing.T) {
	if got := GeoMean([]float64{2, 0, -3, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("geo with junk = %f, want 4", got)
	}
}
