// Package stats provides the small statistics primitives the simulator
// uses: running means, time-weighted averages for queue occupancies,
// and histograms for latencies and row-activation reuse.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean accumulates a running arithmetic mean.
type Mean struct {
	sum   float64
	count uint64
}

// Add folds one sample into the mean.
func (m *Mean) Add(v float64) {
	m.sum += v
	m.count++
}

// AddN folds n identical samples into the mean.
func (m *Mean) AddN(v float64, n uint64) {
	m.sum += v * float64(n)
	m.count += n
}

// Value returns the current mean (0 if no samples).
func (m *Mean) Value() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Count returns the number of samples.
func (m *Mean) Count() uint64 { return m.count }

// TimeWeighted tracks a piecewise-constant value over simulated time
// and reports its time-weighted average — used for queue lengths
// (paper Figures 5 and 6).
type TimeWeighted struct {
	startCycle uint64
	lastCycle  uint64
	lastValue  float64
	area       float64
	started    bool
}

// Set records that the tracked value changed to v at the given cycle.
// Cycles must be non-decreasing. The first Set anchors the averaging
// window.
func (t *TimeWeighted) Set(cycle uint64, v float64) {
	if t.started && cycle > t.lastCycle {
		t.area += t.lastValue * float64(cycle-t.lastCycle)
	}
	if !t.started {
		t.started = true
		t.startCycle = cycle
	}
	t.lastCycle = cycle
	t.lastValue = v
}

// Average closes the window at endCycle and returns the time-weighted
// average since the first Set.
func (t *TimeWeighted) Average(endCycle uint64) float64 {
	if !t.started || endCycle <= t.startCycle {
		return 0
	}
	area := t.area
	if endCycle > t.lastCycle {
		area += t.lastValue * float64(endCycle-t.lastCycle)
	}
	return area / float64(endCycle-t.startCycle)
}

// Histogram is a fixed-bucket histogram over small non-negative
// integers with a saturating overflow bucket.
type Histogram struct {
	buckets []uint64
	total   uint64
}

// NewHistogram returns a histogram with buckets [0, n) plus an
// overflow bucket at n.
func NewHistogram(n int) *Histogram {
	return &Histogram{buckets: make([]uint64, n+1)}
}

// Add files one observation of value v.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
}

// Count returns the number of observations of exactly v (overflow
// bucket for v >= size).
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns Count(v)/Total.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// LatencyHist is a power-of-two bucketed latency histogram: bucket i
// covers [2^i, 2^(i+1)). It reports mean and quantiles cheaply without
// storing samples.
type LatencyHist struct {
	buckets [40]uint64
	sum     uint64
	count   uint64
	max     uint64
}

// Add files one latency sample (in cycles).
func (l *LatencyHist) Add(cycles uint64) {
	i := 0
	for v := cycles; v > 1 && i < len(l.buckets)-1; v >>= 1 {
		i++
	}
	l.buckets[i]++
	l.sum += cycles
	l.count++
	if cycles > l.max {
		l.max = cycles
	}
}

// Mean returns the mean latency.
func (l *LatencyHist) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return float64(l.sum) / float64(l.count)
}

// Count returns the number of samples.
func (l *LatencyHist) Count() uint64 { return l.count }

// Max returns the largest sample.
func (l *LatencyHist) Max() uint64 { return l.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1)
// using bucket upper edges.
func (l *LatencyHist) Quantile(q float64) uint64 {
	if l.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(l.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range l.buckets {
		cum += b
		if cum >= target {
			return 1 << uint(i+1)
		}
	}
	return l.max
}

// Sub returns the histogram of samples added to l after prev was
// copied from it — the per-interval delta the obs recorder uses to
// compute windowed quantiles from cumulative controller stats. prev
// must be an earlier copy of the same histogram (every prev bucket
// <= the corresponding l bucket). The reported Max is l's cumulative
// max: the bucketed representation cannot recover the window max, so
// Sub keeps the cumulative value as a valid upper bound.
func (l LatencyHist) Sub(prev LatencyHist) LatencyHist {
	var d LatencyHist
	for i := range l.buckets {
		d.buckets[i] = l.buckets[i] - prev.buckets[i]
	}
	d.sum = l.sum - prev.sum
	d.count = l.count - prev.count
	d.max = l.max
	return d
}

// String renders the non-empty buckets, for debugging.
func (l *LatencyHist) String() string {
	var sb strings.Builder
	for i, b := range l.buckets {
		if b == 0 {
			continue
		}
		fmt.Fprintf(&sb, "[%d,%d): %d\n", 1<<uint(i), 1<<uint(i+1), b)
	}
	return sb.String()
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// GeoMean returns the geometric mean of vs, ignoring non-positive
// entries. It returns 0 for an empty input.
func GeoMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// ArithMean returns the arithmetic mean of vs (0 for empty input).
// The paper's Avg_SCO/Avg_TRS/Avg_DSP bars are arithmetic means of the
// normalized per-workload values.
func ArithMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Median returns the median of vs (0 for empty input).
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
