package engine

import (
	"math/rand"
	"testing"
)

func TestRegisterStartsDetached(t *testing.T) {
	q := New()
	a := q.Register("a")
	b := q.Register("b")
	if q.Len() != 2 || q.Name(a) != "a" || q.Name(b) != "b" {
		t.Fatalf("registration bookkeeping broken: len=%d", q.Len())
	}
	if q.Armed(a) != Never || q.Armed(b) != Never {
		t.Fatal("new sources must start detached")
	}
	if q.NextTime() != Never {
		t.Fatalf("NextTime of empty queue = %d, want Never", q.NextTime())
	}
}

// TestPopOrderIsRank pins the deterministic tie-break: sources armed
// for the same cycle pop in registration order regardless of arm
// order, and regardless of which window (ring or heap) held them.
func TestPopOrderIsRank(t *testing.T) {
	q := New()
	ids := make([]ID, 8)
	for i := range ids {
		ids[i] = q.Register("src")
	}
	// Arm in scrambled order, half near (ring) and half far (heap),
	// then advance so the far ones are due at the same cycle.
	far := uint64(ringSlots + 5)
	for _, i := range []int{5, 1, 7, 3} {
		q.Arm(ids[i], far)
	}
	q.AdvanceTo(far - 3) // the remaining arms land in the ring window
	for _, i := range []int{6, 0, 4, 2} {
		q.Arm(ids[i], far)
	}
	q.AdvanceTo(far)
	got := q.PopDue(nil)
	if len(got) != 8 {
		t.Fatalf("popped %d sources, want 8", len(got))
	}
	for i, id := range got {
		if id != ids[i] {
			t.Fatalf("pop order %v violates registration rank", got)
		}
	}
}

func TestRearmAndDisarm(t *testing.T) {
	q := New()
	a := q.Register("a")
	b := q.Register("b")
	q.Arm(a, 10)
	q.Arm(b, 200) // heap
	q.Arm(a, 300) // ring -> heap re-arm
	if q.NextTime() != 200 {
		t.Fatalf("NextTime = %d, want 200", q.NextTime())
	}
	q.Arm(b, 5) // heap -> ring re-arm
	if q.NextTime() != 5 {
		t.Fatalf("NextTime = %d, want 5", q.NextTime())
	}
	q.Disarm(b)
	if q.NextTime() != 300 {
		t.Fatalf("NextTime after disarm = %d, want 300", q.NextTime())
	}
	q.AdvanceTo(300)
	if due := q.PopDue(nil); len(due) != 1 || due[0] != a {
		t.Fatalf("due = %v, want [a]", due)
	}
	if q.Armed(a) != Never {
		t.Fatal("popped source must be detached")
	}
}

func TestClockDiscipline(t *testing.T) {
	q := New()
	a := q.Register("a")
	q.Arm(a, 50)

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	q.AdvanceTo(30)
	expectPanic("regression", func() { q.AdvanceTo(10) })
	expectPanic("skipping an armed wake-up", func() { q.AdvanceTo(51) })
	expectPanic("arming in the past", func() { q.Arm(a, 20) })
	expectPanic("arming at the current cycle", func() {
		b := q.Register("b")
		q.Arm(b, 30)
	})
}

// TestQueueMatchesReferenceModel drives random arm/disarm/advance/pop
// sequences through the queue and a naive map-based model and checks
// NextTime and pop order agree at every step. This is the kernel-level
// half of the differential suite (package core holds the system-level
// half).
func TestQueueMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		q := New()
		n := 2 + rng.Intn(30)
		model := make([]uint64, n) // id -> wake time, Never = detached
		for i := 0; i < n; i++ {
			q.Register("s")
			model[i] = Never
		}
		modelNext := func() uint64 {
			min := uint64(Never)
			for _, at := range model {
				if at < min {
					min = at
				}
			}
			return min
		}
		now := uint64(0)
		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0, 1: // arm a random source at a random future cycle
				id := rng.Intn(n)
				// Mix near (ring) and far (heap) horizons.
				var at uint64
				if rng.Intn(2) == 0 {
					at = now + 1 + uint64(rng.Intn(ringSlots-1))
				} else {
					at = now + uint64(ringSlots) + uint64(rng.Intn(500))
				}
				q.Arm(ID(id), at)
				model[id] = at
			case 2: // disarm
				id := rng.Intn(n)
				q.Disarm(ID(id))
				model[id] = Never
			case 3: // advance to the next event (or nearby) and pop
				next := modelNext()
				if got := q.NextTime(); got != next {
					t.Fatalf("trial %d step %d: NextTime = %d, model says %d", trial, step, got, next)
				}
				if next == Never {
					continue
				}
				now = next
				q.AdvanceTo(now)
				due := q.PopDue(nil)
				var want []ID
				for id, at := range model {
					if at <= now {
						want = append(want, ID(id))
						model[id] = Never
					}
				}
				if len(due) != len(want) {
					t.Fatalf("trial %d step %d: popped %v, model wanted %v", trial, step, due, want)
				}
				for i := range due {
					if due[i] != want[i] {
						t.Fatalf("trial %d step %d: pop order %v, model order %v", trial, step, due, want)
					}
				}
			}
		}
	}
}

func BenchmarkArmPopNear(b *testing.B) {
	q := New()
	const n = 64
	for i := 0; i < n; i++ {
		q.Register("core")
	}
	buf := make([]ID, 0, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := q.Now()
		for id := 0; id < n; id++ {
			q.Arm(ID(id), now+2)
		}
		q.AdvanceTo(now + 2)
		buf = q.PopDue(buf[:0])
	}
}
