package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardPool is the barrier-synchronized worker pool behind the
// kernel's sharded controller phase: a fixed number of shards, each
// round running one function over every shard index concurrently and
// returning only after all shards finished. The pool is the whole
// synchronization story of the parallel kernel — shard bodies write
// only shard-owned slots, and the Run barrier (round publication
// before the round, completion count after it, both sync/atomic)
// gives the coordinator a happens-before edge over everything every
// shard wrote, so the post-round merge reads are race-free without
// any atomics in the shard bodies.
//
// Rounds are microseconds apart on the hot path (one per stepped
// kernel cycle), so the barrier spins: workers watch the round
// counter with a Gosched-yielding spin loop instead of blocking on a
// channel, which would pay a futex wake per round — measured at the
// same order as the controller work being parallelized. A worker
// that spins too long without seeing a round (the kernel is inside a
// long jump, or the coordinator is off doing serial phases) parks on
// a channel and is woken by the next Run, so an idle pool burns no
// CPU beyond the parking threshold.
//
// Lifecycle: NewShardPool allocates, Start spawns the n-1 worker
// goroutines (shard 0 always runs on the caller's goroutine), Run
// executes rounds, Stop joins the workers. A pool that was never
// started still accepts Run — the round executes every shard inline
// in ascending order, which keeps single-step debugging and tests
// free of goroutine plumbing while remaining bit-identical (shard
// bodies are independent by contract, so execution order cannot
// matter).
type ShardPool struct {
	n  int
	fn func(shard int)

	// round is the monotonic round counter workers watch; done counts
	// shard completions of the current round (reset by Run).
	round atomic.Uint32
	done  atomic.Uint32

	// parked counts workers blocked on wake; stopped plus the closed
	// quit channel end the workers. running tracks Start/Stop state on
	// the coordinator.
	parked  atomic.Int32
	stopped atomic.Bool
	wake    chan struct{}
	quit    chan struct{}
	running bool
	wg      sync.WaitGroup

	mu       sync.Mutex
	panicked bool
	panicV   interface{}
}

// spinYield and parkAfter shape the worker wait loop: Gosched every
// spinYield polls (so a spinning worker never starves runnable
// goroutines, GOMAXPROCS=1 included), park after parkAfter polls
// (~hundreds of microseconds of idle spinning at most).
const (
	spinYield = 16
	parkAfter = 1 << 13
)

// NewShardPool returns a pool of n shards (n >= 1). The pool is not
// started; Run on an unstarted pool executes shards inline.
func NewShardPool(n int) *ShardPool {
	if n < 1 {
		panic(fmt.Sprintf("engine: ShardPool with %d shards", n))
	}
	return &ShardPool{n: n}
}

// Shards returns the pool's shard count.
func (p *ShardPool) Shards() int { return p.n }

// Start spawns the worker goroutines. Idempotent; Stop reverses it.
func (p *ShardPool) Start() {
	if p.running {
		return
	}
	p.running = true
	p.stopped.Store(false)
	p.wake = make(chan struct{}, 2*p.n)
	p.quit = make(chan struct{})
	p.wg.Add(p.n - 1)
	seen := p.round.Load()
	for i := 1; i < p.n; i++ {
		go p.worker(i, seen)
	}
}

// Stop joins the worker goroutines. Idempotent; the pool can be
// started again afterwards. Must not be called while a Run is in
// flight.
func (p *ShardPool) Stop() {
	if !p.running {
		return
	}
	p.stopped.Store(true)
	close(p.quit)
	p.wg.Wait()
	p.running = false
}

// Run executes fn(shard) for every shard of the pool and returns when
// all of them finished — the barrier of the sharded kernel phase.
// Shard 0 runs on the calling goroutine. A panic in any shard is
// re-raised on the caller after the barrier (first panic wins), so a
// controller invariant violation surfaces exactly like it does in the
// serial loop.
func (p *ShardPool) Run(fn func(shard int)) {
	if !p.running {
		for shard := 0; shard < p.n; shard++ {
			fn(shard)
		}
		return
	}
	p.fn = fn
	p.done.Store(0)
	p.round.Add(1) // publishes fn: workers acquire via the round load
	// Wake parked workers. A worker parking concurrently with this
	// load re-checks the round counter after announcing itself parked,
	// so an undercount here cannot strand it; an overcount only leaves
	// stale tokens in the buffered channel, causing a benign spurious
	// wakeup later.
	if k := p.parked.Load(); k > 0 {
		for i := int32(0); i < k; i++ {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	}
	p.runShard(0)
	for spins := 1; p.done.Load() != uint32(p.n-1); spins++ {
		if spins%spinYield == 0 {
			runtime.Gosched()
		}
	}
	p.fn = nil
	p.mu.Lock()
	r, bad := p.panicV, p.panicked
	p.panicked, p.panicV = false, nil
	p.mu.Unlock()
	if bad {
		panic(r)
	}
}

// worker is the loop of one pool goroutine: wait for a round, run its
// shard, signal the barrier. seen carries the round counter value at
// spawn so a restarted pool's workers do not mistake an old round for
// a new one.
func (p *ShardPool) worker(shard int, seen uint32) {
	defer p.wg.Done()
	for {
		r, ok := p.awaitRound(seen)
		if !ok {
			return
		}
		seen = r
		p.runShard(shard)
		p.done.Add(1) // releases this shard's writes to the coordinator
	}
}

// awaitRound blocks until the round counter moves past seen (spin,
// then park) or the pool stops.
func (p *ShardPool) awaitRound(seen uint32) (uint32, bool) {
	for spins := 1; ; spins++ {
		if r := p.round.Load(); r != seen {
			return r, true
		}
		if p.stopped.Load() {
			return 0, false
		}
		if spins < parkAfter {
			if spins%spinYield == 0 {
				runtime.Gosched()
			}
			continue
		}
		// Park. Announce first, then re-check: a round published
		// between the spin's last look and the announcement saw
		// parked==0 and sent no token, so the re-check must catch it.
		p.parked.Add(1)
		if r := p.round.Load(); r != seen || p.stopped.Load() {
			p.parked.Add(-1)
			if r != seen {
				return r, true
			}
			return 0, false
		}
		select {
		case <-p.wake:
		case <-p.quit:
		}
		p.parked.Add(-1)
		spins = 1
	}
}

// runShard executes one shard of the current round, converting a
// panic into recorded state so the barrier is reached regardless and
// Run can re-raise it on the coordinator.
func (p *ShardPool) runShard(shard int) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if !p.panicked {
				p.panicked = true
				p.panicV = r
			}
			p.mu.Unlock()
		}
	}()
	p.fn(shard)
}
