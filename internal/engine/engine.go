// Package engine is the simulator's event kernel: a monotonic clock
// plus an indexed wake-up queue over a fixed set of registered event
// sources (cores, controllers, the fill path, ...). Components arm a
// wake-up when they know the next cycle they can change state; the
// simulation loop pops due sources in deterministic order and jumps
// the clock straight to the earliest armed wake-up when nothing is
// active, replacing the O(n) per-step horizon scans of the original
// fast-forward engine with O(1)/O(log n) queue operations.
//
// Determinism: pops are ordered by (wake time, registration rank), so
// two runs that arm the same times in the same order observe the same
// wake-up sequence regardless of queue internals. Registration rank is
// the order of Register calls, which the assembling System fixes by
// construction (the fill path first, then the channel controllers in
// channel order; cores are deliberately not queue sources — they wake
// too often, so the System schedules them through a dense per-core
// wake-time array instead, see core/kernel.go).
//
// The queue is a two-level calendar: wake-ups within ringSlots cycles
// of the clock land in a 64-slot ring (O(1) arm/pop, one occupancy
// bit per slot, the common case — pipeline stalls of a few cycles),
// and farther wake-ups land in an indexed binary min-heap (O(log n),
// the rare case — DRAM timing windows, scheduler quanta). Entries
// never migrate: the heap minimum is consulted alongside the ring, so
// a far wake-up simply becomes due where it sits.
package engine

import (
	"fmt"
	"math/bits"
)

// Never is the "no wake-up armed" sentinel; a source armed at Never is
// detached and only external events (another component's action) can
// make it runnable again.
const Never = ^uint64(0)

// ringSlots is the span of the near calendar window in cycles. 64
// matches one occupancy word: finding the next armed slot is a single
// rotate + trailing-zeros.
const ringSlots = 64

// ID names one registered event source; it doubles as the
// deterministic tie-break rank (lower ID wins at equal wake times).
type ID int32

// Queue is the event kernel. The zero value is not usable; call New.
type Queue struct {
	now uint64

	// at is the armed wake time per source (Never = detached). It is
	// the single source of truth; ring and heap are just indexes.
	at    []uint64
	names []string

	// Near window: ring[t%ringSlots] lists sources armed for cycle t,
	// for t within [now, now+ringSlots). occ has bit (t%ringSlots) set
	// iff that slot is non-empty.
	ring [ringSlots][]ID
	occ  uint64

	// Far window: indexed min-heap ordered by (at, ID); pos maps a
	// source to its heap index (-1 when not in the heap).
	heap []ID
	pos  []int32
}

// New returns an empty kernel with the clock at zero.
func New() *Queue { return &Queue{} }

// Register adds an event source and returns its ID. Registration
// order fixes the deterministic tie-break rank, so callers must
// register sources in the order they want equal-time wake-ups
// delivered. New sources start detached (armed at Never).
func (q *Queue) Register(name string) ID {
	id := ID(len(q.at))
	q.at = append(q.at, Never)
	q.names = append(q.names, name)
	q.pos = append(q.pos, -1)
	return id
}

// Len returns the number of registered sources.
func (q *Queue) Len() int { return len(q.at) }

// Name returns the label a source was registered with.
func (q *Queue) Name(id ID) string { return q.names[id] }

// Now returns the kernel clock.
func (q *Queue) Now() uint64 { return q.now }

// Armed returns the source's current wake time (Never when detached).
func (q *Queue) Armed(id ID) uint64 { return q.at[id] }

// Arm schedules (or re-schedules) a source's wake-up for cycle at.
// Never detaches the source. Arming in the past or present is a bug in
// the caller — a wake-up for the current cycle must be handled
// directly, not queued — and panics.
//
//mclint:hotpath
func (q *Queue) Arm(id ID, at uint64) {
	if at == q.at[id] {
		return
	}
	if at != Never && at <= q.now {
		panic(fmt.Sprintf("engine: arming %s at %d, clock already at %d", q.names[id], at, q.now))
	}
	q.detach(id)
	q.at[id] = at
	if at == Never {
		return
	}
	if at-q.now < ringSlots {
		s := at % ringSlots
		q.ring[s] = append(q.ring[s], id)
		q.occ |= 1 << s
	} else {
		q.heapPush(id)
	}
}

// Disarm detaches a source's wake-up, if any.
func (q *Queue) Disarm(id ID) { q.Arm(id, Never) }

// NextTime returns the earliest armed wake time (Never when nothing is
// armed). It never returns a time before the clock.
//
//mclint:hotpath
func (q *Queue) NextTime() uint64 {
	t := Never
	if q.occ != 0 {
		// Rotate so bit k of r corresponds to slot (now+k)%ringSlots;
		// the first set bit is the offset to the next armed slot.
		r := bits.RotateLeft64(q.occ, -int(q.now%ringSlots))
		t = q.now + uint64(bits.TrailingZeros64(r))
	}
	if len(q.heap) > 0 && q.at[q.heap[0]] < t {
		t = q.at[q.heap[0]]
	}
	return t
}

// Step advances the clock by one cycle. A single-cycle advance can
// reach, but never pass, an armed wake-up (arms are strictly in the
// future), so no event-loss check is needed — this is the hot-path
// complement to AdvanceTo.
//
//mclint:hotpath
func (q *Queue) Step() { q.now++ }

// HasDue reports whether any armed wake-up is due at the current
// clock; the O(1) guard callers use before PopDue.
//
//mclint:hotpath
func (q *Queue) HasDue() bool {
	return q.occ&(1<<(q.now%ringSlots)) != 0 ||
		(len(q.heap) > 0 && q.at[q.heap[0]] <= q.now)
}

// AdvanceTo moves the clock forward to cycle t. The clock is
// monotonic, and may not jump past an armed wake-up: callers jump to
// min(NextTime, bound). Both violations panic — they would silently
// lose events.
//
//mclint:hotpath
func (q *Queue) AdvanceTo(t uint64) {
	if t == q.now {
		return
	}
	if t < q.now {
		panic(fmt.Sprintf("engine: clock regression %d -> %d", q.now, t))
	}
	if nt := q.NextTime(); t > nt {
		panic(fmt.Sprintf("engine: advancing clock to %d past armed wake-up at %d", t, nt))
	}
	q.now = t
}

// PopDue detaches and returns every source whose wake time has arrived
// (at <= Now()), in (time, ID) order, appended to buf. Because the
// clock never passes an armed wake-up, all due sources share the
// current cycle as their wake time and the order reduces to ascending
// ID — the fixed component rank.
//
//mclint:hotpath
func (q *Queue) PopDue(buf []ID) []ID {
	out := buf
	s := q.now % ringSlots
	if q.occ&(1<<s) != 0 {
		slot := q.ring[s]
		for _, id := range slot {
			if q.at[id] == q.now {
				q.at[id] = Never
				out = append(out, id)
			}
		}
		q.ring[s] = slot[:0]
		q.occ &^= 1 << s
	}
	for len(q.heap) > 0 && q.at[q.heap[0]] <= q.now {
		id := q.heapPop()
		q.at[id] = Never
		out = append(out, id)
	}
	// All due wake times equal q.now, so (time, ID) order is ID order.
	// The slices are tiny (the cycle's due sources); insertion sort
	// avoids the sort package's interface overhead on the hot path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// detach removes id from whichever index currently holds it. The at
// entry is left to the caller (Arm overwrites it).
func (q *Queue) detach(id ID) {
	if q.pos[id] >= 0 {
		q.heapRemove(id)
		return
	}
	at := q.at[id]
	if at == Never || at-q.now >= ringSlots {
		return
	}
	s := at % ringSlots
	slot := q.ring[s]
	for i, x := range slot {
		if x == id {
			q.ring[s] = append(slot[:i], slot[i+1:]...) //mclint:alloc-ok -- compaction within the slot's existing backing array: len shrinks by one, capacity always suffices, so append never grows
			break
		}
	}
	if len(q.ring[s]) == 0 {
		q.occ &^= 1 << s
	}
}

// less orders the heap by (wake time, registration rank).
func (q *Queue) less(a, b ID) bool {
	if q.at[a] != q.at[b] {
		return q.at[a] < q.at[b]
	}
	return a < b
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = int32(i)
	q.pos[q.heap[j]] = int32(j)
}

func (q *Queue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[p]) {
			return
		}
		q.swap(i, p)
		i = p
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.less(q.heap[r], q.heap[l]) {
			m = r
		}
		if !q.less(q.heap[m], q.heap[i]) {
			return
		}
		q.swap(i, m)
		i = m
	}
}

func (q *Queue) heapPush(id ID) {
	q.pos[id] = int32(len(q.heap))
	q.heap = append(q.heap, id)
	q.up(len(q.heap) - 1)
}

func (q *Queue) heapRemove(id ID) {
	i := int(q.pos[id])
	q.pos[id] = -1
	last := len(q.heap) - 1
	if i != last {
		q.heap[i] = q.heap[last]
		q.pos[q.heap[i]] = int32(i)
	}
	q.heap = q.heap[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
}

func (q *Queue) heapPop() ID {
	id := q.heap[0]
	q.heapRemove(id)
	return id
}
