package engine

import (
	"strings"
	"testing"
)

// TestShardPoolBarrier proves the barrier: every shard's writes are
// visible to the caller after Run returns, across many rounds.
func TestShardPoolBarrier(t *testing.T) {
	const shards, rounds, perShard = 4, 200, 32
	p := NewShardPool(shards)
	p.Start()
	defer p.Stop()

	sums := make([]uint64, shards*perShard)
	for round := 0; round < rounds; round++ {
		p.Run(func(shard int) {
			for i := shard * perShard; i < (shard+1)*perShard; i++ {
				sums[i]++
			}
		})
	}
	for i, v := range sums {
		if v != rounds {
			t.Fatalf("slot %d saw %d increments, want %d", i, v, rounds)
		}
	}
}

// TestShardPoolInlineWithoutStart pins the unstarted-pool contract:
// Run executes every shard on the caller, in ascending order.
func TestShardPoolInlineWithoutStart(t *testing.T) {
	p := NewShardPool(3)
	var order []int
	p.Run(func(shard int) { order = append(order, shard) })
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("inline run order = %v, want [0 1 2]", order)
	}
}

// TestShardPoolPanicPropagates checks that a worker-shard panic is
// re-raised on the coordinator after the barrier, and that the pool
// survives for further rounds.
func TestShardPoolPanicPropagates(t *testing.T) {
	p := NewShardPool(4)
	p.Start()
	defer p.Stop()

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic in shard 2 did not propagate")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
				t.Fatalf("unexpected panic value %v", r)
			}
		}()
		p.Run(func(shard int) {
			if shard == 2 {
				panic("boom in shard 2")
			}
		})
	}()

	// The pool must still work after a panicked round.
	n := make([]int, 4)
	p.Run(func(shard int) { n[shard] = shard + 1 })
	for i, v := range n {
		if v != i+1 {
			t.Fatalf("post-panic round: shard %d wrote %d", i, v)
		}
	}
}

// TestShardPoolRestart exercises Stop/Start cycles — advanceKernel
// starts and stops the pool once per Advance chunk.
func TestShardPoolRestart(t *testing.T) {
	p := NewShardPool(2)
	for cycle := 0; cycle < 3; cycle++ {
		p.Start()
		hits := make([]int, 2)
		p.Run(func(shard int) { hits[shard]++ })
		p.Stop()
		p.Stop() // idempotent
		if hits[0] != 1 || hits[1] != 1 {
			t.Fatalf("cycle %d: hits = %v", cycle, hits)
		}
	}
	if p.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", p.Shards())
	}
}
