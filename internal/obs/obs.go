// Package obs is the simulator's observability subsystem: an interval
// recorder that turns cumulative controller/core counters into a
// per-interval time series (IPC, windowed read-latency quantiles, row
// hit/miss/conflict, queue depths, MSHR occupancy, park/wake counts,
// bandwidth utilization), with pluggable sinks (JSONL and CSV) and a
// command-level trace writer for the memctrl CommandTrace hook.
//
// Design rules:
//
//   - Zero overhead when off. Nothing in this package is touched
//     unless a Recorder or trace is attached; core.System pays one
//     nil-check per Advance call and memctrl one nil-check per issued
//     command.
//   - Observation never mutates behavior. Snapshots copy counters;
//     samples are pure deltas. A run with obs on is bit-identical (in
//     core.Metrics) to the same run with obs off — enforced by a
//     differential test in internal/core.
//   - Deterministic. No wall clock, no maps iterated in emit paths;
//     everything is keyed to the simulated cycle. Wall-clock concerns
//     (sims/sec, HTTP status) live in cmd/internal/monitor.
//   - Parallel-safe by construction. Interval snapshots are taken by
//     the kernel coordinator between stepped cycles — never while the
//     sharded controller phase is in flight — and counters are merged
//     in ascending channel order, so Recorder output (JSONL and CSV)
//     is byte-identical under core.Config.Workers > 1. Only the
//     TraceWriter sees concurrency (controllers tick in parallel) and
//     only in file-line order; see its doc for the (cycle, channel)
//     sort key that recovers the serial byte stream.
package obs

import (
	"cloudmc/internal/stats"
)

// Snapshot is a copy of the simulator's cumulative counters at one
// cycle. core.System builds one per interval boundary; the Recorder
// differences consecutive snapshots into Samples.
type Snapshot struct {
	// Cycle is the simulated cycle the snapshot was taken at.
	Cycle uint64
	// Retired is instructions retired summed over all cores.
	Retired uint64
	// DemandMisses counts demand L2 misses (MSHR allocations).
	DemandMisses uint64
	// StallLoad/StallStore are memory-stall cycles summed over cores.
	StallLoad  uint64
	StallStore uint64
	// MSHROccupancy is the instantaneous number of in-flight misses.
	MSHROccupancy int
	// Controllers holds one entry per memory channel.
	Controllers []CtrlCounters
	// Tenants holds one entry per tenant for multi-tenant systems;
	// nil otherwise.
	Tenants []TenantCounters
}

// CtrlCounters is one controller's cumulative counters plus the
// instantaneous queue depths at the snapshot cycle.
type CtrlCounters struct {
	Channel         int
	ReadsServed     uint64
	WritesServed    uint64
	RowHits         uint64
	RowMisses       uint64
	RowConflicts    uint64
	ForwardedReads  uint64
	EnqueueFailures uint64
	Parks           uint64
	Wakes           uint64
	Activates       uint64
	Precharges      uint64
	DataBusBusy     uint64
	ReadQLen        int
	WriteQLen       int
	// ReadLatency is a copy of the controller's cumulative latency
	// histogram; windowed quantiles come from LatencyHist.Sub.
	ReadLatency stats.LatencyHist
}

// TenantCounters is one tenant's cumulative counters.
type TenantCounters struct {
	Name           string
	Cores          int
	Retired        uint64
	DemandMisses   uint64
	ReadsServed    uint64
	WritesServed   uint64
	RowHits        uint64
	RowMisses      uint64
	RowConflicts   uint64
	ReadLatencySum uint64
}

// Sample is one recorded interval: the delta between two snapshots
// plus derived rates. It is the JSONL schema (one object per line)
// that .github/validate_obs.py checks in CI.
type Sample struct {
	// Run labels the simulation this sample belongs to (workload
	// acronym for mcsim, the study-cell key for mcmix).
	Run string `json:"run,omitempty"`
	// Phase is "warmup" or "measure"; the recorder re-anchors at the
	// warmup-boundary stats reset exactly like aggregate Stats.
	Phase string `json:"phase"`
	// Interval is the 0-based interval index within the phase.
	Interval int `json:"interval"`
	// Cycle is the interval's end cycle; Cycles its length (the final
	// interval of a run may be shorter than the configured period).
	Cycle  uint64 `json:"cycle"`
	Cycles uint64 `json:"cycles"`

	Retired      uint64  `json:"retired"`
	IPC          float64 `json:"ipc"`
	DemandMisses uint64  `json:"demand_misses"`
	StallLoad    uint64  `json:"stall_load"`
	StallStore   uint64  `json:"stall_store"`
	MSHR         int     `json:"mshr"`

	Controllers []CtrlSample   `json:"controllers"`
	Tenants     []TenantSample `json:"tenants,omitempty"`
}

// CtrlSample is one controller's interval delta.
type CtrlSample struct {
	Channel         int     `json:"channel"`
	Reads           uint64  `json:"reads"`
	Writes          uint64  `json:"writes"`
	RowHits         uint64  `json:"row_hits"`
	RowMisses       uint64  `json:"row_misses"`
	RowConflicts    uint64  `json:"row_conflicts"`
	RowHitRate      float64 `json:"row_hit_rate"`
	Forwarded       uint64  `json:"forwarded"`
	EnqueueFailures uint64  `json:"enqueue_failures"`
	ReadQLen        int     `json:"read_q"`
	WriteQLen       int     `json:"write_q"`
	LatMean         float64 `json:"lat_mean"`
	LatP50          uint64  `json:"lat_p50"`
	LatP95          uint64  `json:"lat_p95"`
	LatP99          uint64  `json:"lat_p99"`
	Activates       uint64  `json:"activates"`
	Precharges      uint64  `json:"precharges"`
	// BWUtil is data-bus-busy cycles / interval cycles (Figure 7's
	// utilization, time-resolved).
	BWUtil float64 `json:"bw_util"`
	// Parks/Wakes are engine telemetry: they depend on the loop mode
	// (always zero in naive mode) and are excluded from the
	// cross-mode alignment equivalence.
	Parks uint64 `json:"parks"`
	Wakes uint64 `json:"wakes"`
}

// TenantSample is one tenant's interval delta.
type TenantSample struct {
	Tenant       int     `json:"tenant"`
	Name         string  `json:"name"`
	Retired      uint64  `json:"retired"`
	IPC          float64 `json:"ipc"`
	DemandMisses uint64  `json:"demand_misses"`
	Reads        uint64  `json:"reads"`
	Writes       uint64  `json:"writes"`
	RowHitRate   float64 `json:"row_hit_rate"`
	// AvgReadLatency is the mean queue+service latency of the
	// tenant's reads completed in the interval, in cycles.
	AvgReadLatency float64 `json:"avg_read_latency"`
}

// delta differences two snapshots into a Sample. prev must be an
// earlier snapshot of the same system (same controller and tenant
// counts).
func delta(run, phase string, interval int, prev, cur *Snapshot) Sample {
	cycles := cur.Cycle - prev.Cycle
	s := Sample{
		Run:          run,
		Phase:        phase,
		Interval:     interval,
		Cycle:        cur.Cycle,
		Cycles:       cycles,
		Retired:      cur.Retired - prev.Retired,
		DemandMisses: cur.DemandMisses - prev.DemandMisses,
		StallLoad:    cur.StallLoad - prev.StallLoad,
		StallStore:   cur.StallStore - prev.StallStore,
		MSHR:         cur.MSHROccupancy,
	}
	if cycles > 0 {
		s.IPC = float64(s.Retired) / float64(cycles)
	}
	s.Controllers = make([]CtrlSample, len(cur.Controllers))
	for i := range cur.Controllers {
		c, p := &cur.Controllers[i], &prev.Controllers[i]
		lat := c.ReadLatency.Sub(p.ReadLatency)
		cs := CtrlSample{
			Channel:         c.Channel,
			Reads:           c.ReadsServed - p.ReadsServed,
			Writes:          c.WritesServed - p.WritesServed,
			RowHits:         c.RowHits - p.RowHits,
			RowMisses:       c.RowMisses - p.RowMisses,
			RowConflicts:    c.RowConflicts - p.RowConflicts,
			Forwarded:       c.ForwardedReads - p.ForwardedReads,
			EnqueueFailures: c.EnqueueFailures - p.EnqueueFailures,
			ReadQLen:        c.ReadQLen,
			WriteQLen:       c.WriteQLen,
			LatMean:         lat.Mean(),
			LatP50:          lat.Quantile(0.50),
			LatP95:          lat.Quantile(0.95),
			LatP99:          lat.Quantile(0.99),
			Activates:       c.Activates - p.Activates,
			Precharges:      c.Precharges - p.Precharges,
			Parks:           c.Parks - p.Parks,
			Wakes:           c.Wakes - p.Wakes,
		}
		if total := cs.RowHits + cs.RowMisses + cs.RowConflicts; total > 0 {
			cs.RowHitRate = float64(cs.RowHits) / float64(total)
		}
		if cycles > 0 {
			cs.BWUtil = float64(c.DataBusBusy-p.DataBusBusy) / float64(cycles)
		}
		s.Controllers[i] = cs
	}
	if len(cur.Tenants) > 0 {
		s.Tenants = make([]TenantSample, len(cur.Tenants))
		for i := range cur.Tenants {
			c, p := &cur.Tenants[i], &prev.Tenants[i]
			ts := TenantSample{
				Tenant:       i,
				Name:         c.Name,
				Retired:      c.Retired - p.Retired,
				DemandMisses: c.DemandMisses - p.DemandMisses,
				Reads:        c.ReadsServed - p.ReadsServed,
				Writes:       c.WritesServed - p.WritesServed,
			}
			if cycles > 0 && c.Cores > 0 {
				ts.IPC = float64(ts.Retired) / float64(cycles) / float64(c.Cores)
			}
			hits := c.RowHits - p.RowHits
			total := hits + (c.RowMisses - p.RowMisses) + (c.RowConflicts - p.RowConflicts)
			if total > 0 {
				ts.RowHitRate = float64(hits) / float64(total)
			}
			if ts.Reads > 0 {
				ts.AvgReadLatency = float64(c.ReadLatencySum-p.ReadLatencySum) / float64(ts.Reads)
			}
			s.Tenants[i] = ts
		}
	}
	return s
}
