package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"

	"cloudmc/internal/dram"
)

// TraceWriter records every DRAM command as one JSONL line:
//
//	{"run":"DS","cycle":123,"cmd":"ACT","channel":0,"rank":1,"bank":3,"row":7041,"tenant":0}
//
// It satisfies memctrl.CommandTrace structurally (obs does not import
// memctrl). Lines are appended to an internal buffer and flushed to
// the underlying writer in whole-line blocks, so multiple
// TraceWriters (one per study cell in an mcmix sweep) can share one
// *os.File: each flush is a single Write of complete lines.
//
// tenant -1 marks commands without an attributable requester
// (page-policy precharges); the "tenant" field is omitted then.
//
// Command is safe for concurrent callers; under the sharded kernel
// (core.Config.Workers > 1) controllers of different channels tick in
// parallel and interleave their lines nondeterministically. The
// commands themselves are bit-identical to a serial run — only file
// order varies — and (cycle, channel) is a total order over the
// lines (one command per controller per cycle), so a stable sort by
// that key reproduces the serial trace byte for byte. A serial run
// already emits in (cycle, channel) order.
type TraceWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix []byte // `{"run":"<label>","cycle":` pre-encoded
	buf    []byte
	events uint64
	err    error
}

// traceFlushAt is the buffered-bytes threshold that triggers a write
// to the underlying writer.
const traceFlushAt = 32 << 10

// NewTraceWriter returns a trace writer labelling every line with
// run. The caller owns w; call Flush before closing it.
func NewTraceWriter(w io.Writer, run string) *TraceWriter {
	label, _ := json.Marshal(run) // pre-escape once; Marshal of a string cannot fail
	prefix := append([]byte(`{"run":`), label...)
	prefix = append(prefix, `,"cycle":`...)
	return &TraceWriter{w: w, prefix: prefix, buf: make([]byte, 0, traceFlushAt+512)}
}

// Command appends one trace line. It is the memctrl.CommandTrace
// implementation; cmd.Kind.String() supplies the ACT/PRE/RD/WR
// mnemonic.
func (t *TraceWriter) Command(now uint64, cmd dram.Command, tenant int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	b := append(t.buf, t.prefix...)
	b = strconv.AppendUint(b, now, 10)
	b = append(b, `,"cmd":"`...)
	b = append(b, cmd.Kind.String()...)
	b = append(b, `","channel":`...)
	b = strconv.AppendInt(b, int64(cmd.Loc.Channel), 10)
	b = append(b, `,"rank":`...)
	b = strconv.AppendInt(b, int64(cmd.Loc.Rank), 10)
	b = append(b, `,"bank":`...)
	b = strconv.AppendInt(b, int64(cmd.Loc.Bank), 10)
	b = append(b, `,"row":`...)
	b = strconv.AppendInt(b, int64(cmd.Loc.Row), 10)
	if tenant >= 0 {
		b = append(b, `,"tenant":`...)
		b = strconv.AppendInt(b, int64(tenant), 10)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if len(t.buf) >= traceFlushAt {
		t.flushLocked()
	}
}

// Events returns the number of commands traced so far.
func (t *TraceWriter) Events() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Flush writes any buffered lines to the underlying writer.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
	return t.err
}

// Err returns the first write error encountered, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *TraceWriter) flushLocked() {
	if len(t.buf) == 0 {
		return
	}
	if _, err := t.w.Write(t.buf); err != nil && t.err == nil {
		t.err = err
	}
	t.buf = t.buf[:0]
}
