package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cloudmc/internal/dram"
	"cloudmc/internal/stats"
)

// snapAt fabricates a cumulative snapshot where every counter equals
// a base value scaled from the cycle, so deltas are predictable.
func snapAt(cycle, retired uint64) *Snapshot {
	var lat stats.LatencyHist
	for i := uint64(0); i < retired/10; i++ {
		lat.Add(100)
	}
	return &Snapshot{
		Cycle:        cycle,
		Retired:      retired,
		DemandMisses: retired / 10,
		Controllers: []CtrlCounters{{
			Channel:     0,
			ReadsServed: retired / 10,
			RowHits:     retired / 20,
			RowMisses:   retired / 40,
			DataBusBusy: cycle / 2,
			ReadLatency: lat,
		}},
	}
}

func TestRecorderDeltaSeries(t *testing.T) {
	r := NewRecorder("DS", 100)
	r.Prime(snapAt(0, 0))
	if nb := r.NextBoundary(); nb != 100 {
		t.Fatalf("next boundary = %d, want 100", nb)
	}
	r.Record(snapAt(100, 1000))
	r.Record(snapAt(200, 3000))
	got := r.Samples()
	if len(got) != 2 {
		t.Fatalf("samples = %d, want 2", len(got))
	}
	s0, s1 := got[0], got[1]
	if s0.Phase != "warmup" || s0.Interval != 0 || s0.Cycle != 100 || s0.Cycles != 100 {
		t.Fatalf("sample 0 header: %+v", s0)
	}
	if s0.Retired != 1000 || s0.IPC != 10 {
		t.Fatalf("sample 0 retired=%d ipc=%f", s0.Retired, s0.IPC)
	}
	if s1.Retired != 2000 || s1.Interval != 1 {
		t.Fatalf("sample 1 retired=%d interval=%d", s1.Retired, s1.Interval)
	}
	if s1.Controllers[0].Reads != 200 {
		t.Fatalf("sample 1 reads = %d, want 200", s1.Controllers[0].Reads)
	}
	// Interval delta latency: 200 new samples of 100 cycles each.
	if m := s1.Controllers[0].LatMean; m != 100 {
		t.Fatalf("sample 1 lat mean = %f, want 100", m)
	}
	if bw := s1.Controllers[0].BWUtil; bw != 0.5 {
		t.Fatalf("sample 1 bw util = %f, want 0.5", bw)
	}
}

func TestRecorderResetZeroesIntervalState(t *testing.T) {
	r := NewRecorder("DS", 100)
	r.Prime(snapAt(0, 0))
	r.Record(snapAt(100, 1000))
	// Warmup boundary: aggregate stats reset, recorder re-anchors.
	r.Reset(snapAt(120, 1200))
	if got := r.Samples(); len(got) != 0 {
		t.Fatalf("samples survive Reset: %d", len(got))
	}
	if nb := r.NextBoundary(); nb != 220 {
		t.Fatalf("next boundary after Reset = %d, want 220", nb)
	}
	r.Record(snapAt(220, 2200))
	got := r.Samples()
	if len(got) != 1 || got[0].Phase != "measure" || got[0].Interval != 0 {
		t.Fatalf("post-reset sample: %+v", got)
	}
	// Delta anchored at the reset snapshot, not the pre-reset one.
	if got[0].Retired != 1000 || got[0].Cycles != 100 {
		t.Fatalf("post-reset delta retired=%d cycles=%d", got[0].Retired, got[0].Cycles)
	}
}

func TestRecorderSkipsPassedBoundaries(t *testing.T) {
	r := NewRecorder("DS", 100)
	r.Prime(snapAt(0, 0))
	// A direct-stepped system may blow past several boundaries before
	// recording; the next boundary must land beyond the snapshot.
	r.Record(snapAt(350, 3500))
	if nb := r.NextBoundary(); nb != 400 {
		t.Fatalf("next boundary = %d, want 400", nb)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder("MR", 50, NewJSONLSink(&buf))
	r.Prime(snapAt(0, 0))
	r.Record(snapAt(50, 500))
	r.Record(snapAt(100, 1500))
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var s Sample
	if err := json.Unmarshal([]byte(lines[1]), &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.Run != "MR" || s.Cycle != 100 || s.Retired != 1000 {
		t.Fatalf("round-tripped sample: %+v", s)
	}
}

func TestCSVSinkShape(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder("DS", 50, NewCSVSink(&buf))
	r.Prime(snapAt(0, 0))
	r.Record(snapAt(50, 500))
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + sys row + one controller row (no tenants in fixture).
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	for _, row := range lines[1:] {
		if n := len(strings.Split(row, ",")); n != len(header) {
			t.Fatalf("row has %d fields, header %d: %s", n, len(header), row)
		}
	}
	if !strings.HasPrefix(lines[0], "run,phase,interval,cycle,cycles,scope") {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.Contains(lines[1], ",sys,") || !strings.Contains(lines[2], ",mc0,") {
		t.Fatalf("scopes:\n%s", buf.String())
	}
}

func TestTraceWriterSchema(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, "DS")
	tw.Command(17, dram.Command{Kind: dram.CmdActivate,
		Loc: dram.Location{Channel: 0, Rank: 1, Bank: 3, Row: 7041}}, 2)
	tw.Command(20, dram.Command{Kind: dram.CmdPrecharge,
		Loc: dram.Location{Channel: 0, Rank: 1, Bank: 3, Row: 7041}}, -1)
	if err := tw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if tw.Events() != 2 {
		t.Fatalf("events = %d, want 2", tw.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var ev struct {
		Run     string `json:"run"`
		Cycle   uint64 `json:"cycle"`
		Cmd     string `json:"cmd"`
		Channel int    `json:"channel"`
		Rank    int    `json:"rank"`
		Bank    int    `json:"bank"`
		Row     int    `json:"row"`
		Tenant  *int   `json:"tenant"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if ev.Run != "DS" || ev.Cycle != 17 || ev.Cmd != "ACT" || ev.Rank != 1 || ev.Bank != 3 || ev.Row != 7041 {
		t.Fatalf("event: %+v", ev)
	}
	if ev.Tenant == nil || *ev.Tenant != 2 {
		t.Fatalf("tenant: %v", ev.Tenant)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if ev.Cmd != "PRE" {
		t.Fatalf("cmd: %s", ev.Cmd)
	}
}

func TestTraceWriterFlushThreshold(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, "DS")
	cmd := dram.Command{Kind: dram.CmdRead, Loc: dram.Location{Rank: 1, Bank: 2, Row: 3}}
	for i := uint64(0); i < 2000; i++ {
		tw.Command(i, cmd, 0)
	}
	if buf.Len() == 0 {
		t.Fatal("buffer never auto-flushed")
	}
	// Auto-flushes end on line boundaries.
	if b := buf.Bytes(); b[len(b)-1] != '\n' {
		t.Fatal("flush split a line")
	}
	tw.Flush()
	if n := strings.Count(buf.String(), "\n"); n != 2000 {
		t.Fatalf("trace lines = %d, want 2000", n)
	}
}
