package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"sync"
)

// Sink receives every recorded sample. Emit is called from the
// simulation thread at interval boundaries; Flush once at the end of
// the run. Sinks shared between concurrently-running recorders (the
// mcmix sweep attaches one recorder per study cell) must be wrapped
// with SyncSink.
type Sink interface {
	Emit(s *Sample) error
	Flush() error
}

// JSONLSink writes one JSON object per sample per line — the schema
// is the Sample struct's json tags, documented in README
// "Observability" and validated in CI by .github/validate_obs.py.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink returns a buffered JSONL sink over w. The caller owns
// w (closing files is the CLI's job); call Flush before closing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes s as one JSON line.
func (j *JSONLSink) Emit(s *Sample) error { return j.enc.Encode(s) }

// Flush drains the buffer to the underlying writer.
func (j *JSONLSink) Flush() error { return j.bw.Flush() }

// csvHeader is the flat CSV schema: one row per (interval, scope),
// where scope is "sys" (whole-system aggregates), "mc<channel>" (one
// controller) or "tenant<i>/<name>". Fields that do not apply to a
// scope are left zero: sys rows have no latency quantiles (per-bucket
// histograms are per-controller), mc rows no IPC, tenant rows no
// queue depths.
var csvHeader = []string{
	"run", "phase", "interval", "cycle", "cycles", "scope",
	"ipc", "retired", "demand_misses", "stall_load", "stall_store", "mshr",
	"reads", "writes", "row_hits", "row_misses", "row_conflicts", "row_hit_rate",
	"forwarded", "enqueue_failures", "read_q", "write_q",
	"lat_mean", "lat_p50", "lat_p95", "lat_p99", "avg_read_latency",
	"activates", "precharges", "bw_util", "parks", "wakes",
}

// CSVSink writes the flattened per-scope schema. Unlike the JSONL
// sink it is row-oriented so the output loads directly into
// spreadsheet/pandas-style tooling without JSON unnesting.
type CSVSink struct {
	bw          *bufio.Writer
	wroteHeader bool
	row         []string
}

// NewCSVSink returns a buffered CSV sink over w; the header row is
// written on the first Emit.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{bw: bufio.NewWriter(w)}
}

// Emit writes one row per scope (sys, each controller, each tenant)
// for the sample.
func (c *CSVSink) Emit(s *Sample) error {
	if !c.wroteHeader {
		c.wroteHeader = true
		if err := c.writeRow(csvHeader); err != nil {
			return err
		}
	}
	// sys row: system aggregates plus controller sums.
	var reads, writes, hits, misses, conflicts, fwd, efail uint64
	var rq, wq int
	var bw float64
	for i := range s.Controllers {
		cs := &s.Controllers[i]
		reads += cs.Reads
		writes += cs.Writes
		hits += cs.RowHits
		misses += cs.RowMisses
		conflicts += cs.RowConflicts
		fwd += cs.Forwarded
		efail += cs.EnqueueFailures
		rq += cs.ReadQLen
		wq += cs.WriteQLen
		bw += cs.BWUtil
	}
	if n := len(s.Controllers); n > 0 {
		bw /= float64(n)
	}
	hitRate := 0.0
	if total := hits + misses + conflicts; total > 0 {
		hitRate = float64(hits) / float64(total)
	}
	c.reset(s, "sys")
	c.add(ftoa(s.IPC), utoa(s.Retired), utoa(s.DemandMisses), utoa(s.StallLoad), utoa(s.StallStore), itoa(s.MSHR))
	c.add(utoa(reads), utoa(writes), utoa(hits), utoa(misses), utoa(conflicts), ftoa(hitRate))
	c.add(utoa(fwd), utoa(efail), itoa(rq), itoa(wq))
	c.add("0", "0", "0", "0", "0")
	c.add("0", "0", ftoa(bw), "0", "0")
	if err := c.writeRow(c.row); err != nil {
		return err
	}
	for i := range s.Controllers {
		cs := &s.Controllers[i]
		c.reset(s, "mc"+strconv.Itoa(cs.Channel))
		c.add("0", "0", "0", "0", "0", "0")
		c.add(utoa(cs.Reads), utoa(cs.Writes), utoa(cs.RowHits), utoa(cs.RowMisses), utoa(cs.RowConflicts), ftoa(cs.RowHitRate))
		c.add(utoa(cs.Forwarded), utoa(cs.EnqueueFailures), itoa(cs.ReadQLen), itoa(cs.WriteQLen))
		c.add(ftoa(cs.LatMean), utoa(cs.LatP50), utoa(cs.LatP95), utoa(cs.LatP99), "0")
		c.add(utoa(cs.Activates), utoa(cs.Precharges), ftoa(cs.BWUtil), utoa(cs.Parks), utoa(cs.Wakes))
		if err := c.writeRow(c.row); err != nil {
			return err
		}
	}
	for i := range s.Tenants {
		ts := &s.Tenants[i]
		c.reset(s, "tenant"+strconv.Itoa(ts.Tenant)+"/"+ts.Name)
		c.add(ftoa(ts.IPC), utoa(ts.Retired), utoa(ts.DemandMisses), "0", "0", "0")
		c.add(utoa(ts.Reads), utoa(ts.Writes), "0", "0", "0", ftoa(ts.RowHitRate))
		c.add("0", "0", "0", "0")
		c.add("0", "0", "0", "0", ftoa(ts.AvgReadLatency))
		c.add("0", "0", "0", "0", "0")
		if err := c.writeRow(c.row); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the buffer to the underlying writer.
func (c *CSVSink) Flush() error { return c.bw.Flush() }

// reset starts a new row with the shared sample prefix. Scope strings
// (run labels, tenant acronyms) contain no commas or quotes, so plain
// comma joining is valid CSV.
func (c *CSVSink) reset(s *Sample, scope string) {
	c.row = c.row[:0]
	c.add(s.Run, s.Phase, itoa(s.Interval), utoa(s.Cycle), utoa(s.Cycles), scope)
}

func (c *CSVSink) add(fields ...string) { c.row = append(c.row, fields...) }

func (c *CSVSink) writeRow(fields []string) error {
	for i, f := range fields {
		if i > 0 {
			if err := c.bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := c.bw.WriteString(f); err != nil {
			return err
		}
	}
	return c.bw.WriteByte('\n')
}

func utoa(v uint64) string { return strconv.FormatUint(v, 10) }
func itoa(v int) string    { return strconv.Itoa(v) }
func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// syncSink serializes a shared sink across goroutines.
type syncSink struct {
	mu sync.Mutex
	s  Sink
}

// SyncSink wraps s so Emit/Flush are safe to call from concurrent
// recorders (one per parallel study cell, all writing one file).
func SyncSink(s Sink) Sink { return &syncSink{s: s} }

func (y *syncSink) Emit(s *Sample) error {
	y.mu.Lock()
	defer y.mu.Unlock()
	return y.s.Emit(s)
}

func (y *syncSink) Flush() error {
	y.mu.Lock()
	defer y.mu.Unlock()
	return y.s.Flush()
}
