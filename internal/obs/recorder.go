package obs

import (
	"sync"
)

// Recorder samples a simulation every Interval simulated cycles: the
// system hands it cumulative Snapshots at interval boundaries and the
// Recorder differences them into Samples, keeps the in-memory time
// series, and forwards each sample to its sinks.
//
// Lifecycle: core.System.AttachRecorder calls Prime once at attach;
// Record fires at every crossed interval boundary inside Advance;
// Reset fires at the warmup-boundary stats reset (re-anchoring the
// series exactly like aggregate Stats); Run records one final partial
// interval if the run ends off-boundary.
//
// The Recorder is mutex-guarded so a wall-clock status goroutine (the
// cmd-layer HTTP monitor) can read Latest/LastCycle while the
// simulation thread records.
type Recorder struct {
	run      string
	interval uint64
	sinks    []Sink

	mu      sync.Mutex
	phase   string
	prev    *Snapshot
	next    uint64 // next interval boundary (absolute cycle)
	nth     int    // interval index within the current phase
	samples []Sample
	err     error
}

// NewRecorder returns a recorder sampling every interval cycles,
// labelling samples with run and forwarding them to sinks (which may
// be empty: the in-memory series is always kept). interval must be
// positive.
func NewRecorder(run string, interval uint64, sinks ...Sink) *Recorder {
	if interval == 0 {
		panic("obs: recorder interval must be positive")
	}
	return &Recorder{run: run, interval: interval, sinks: sinks, phase: "warmup"}
}

// Run returns the recorder's run label.
func (r *Recorder) Run() string { return r.run }

// Interval returns the sampling period in cycles.
func (r *Recorder) Interval() uint64 { return r.interval }

// Prime anchors the series at snap without emitting a sample. The
// system calls it once at attach time.
func (r *Recorder) Prime(snap *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prev = snap
	r.next = snap.Cycle + r.interval
	r.nth = 0
}

// Reset re-anchors the series at snap and drops accumulated samples,
// switching the phase to "measure". core.System calls it at the
// warmup-boundary stats reset so interval state zeroes exactly like
// aggregate Stats (warmup samples already emitted to sinks remain
// there, tagged phase "warmup").
func (r *Recorder) Reset(snap *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.phase = "measure"
	r.prev = snap
	r.next = snap.Cycle + r.interval
	r.nth = 0
	r.samples = r.samples[:0]
}

// Record closes the interval ending at snap.Cycle: it appends the
// delta sample, emits it to every sink, and advances the next
// boundary past snap.Cycle. A snapshot at the anchor cycle (zero
// elapsed cycles) is ignored.
func (r *Recorder) Record(snap *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.prev == nil || snap.Cycle <= r.prev.Cycle {
		return
	}
	s := delta(r.run, r.phase, r.nth, r.prev, snap)
	r.prev = snap
	r.nth++
	for r.next <= snap.Cycle {
		r.next += r.interval
	}
	r.samples = append(r.samples, s)
	for _, sink := range r.sinks {
		if err := sink.Emit(&s); err != nil && r.err == nil {
			r.err = err
		}
	}
}

// NextBoundary returns the absolute cycle of the next interval
// boundary. core.System chunks Advance at this cycle so samples land
// on identical cycles in every loop mode.
func (r *Recorder) NextBoundary() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// LastCycle returns the cycle of the last snapshot seen (via Prime,
// Reset or Record); 0 before Prime.
func (r *Recorder) LastCycle() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.prev == nil {
		return 0
	}
	return r.prev.Cycle
}

// Samples returns a copy of the in-memory series for the current
// phase.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, len(r.samples))
	copy(out, r.samples)
	return out
}

// Latest returns the most recent sample, if any.
func (r *Recorder) Latest() (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return Sample{}, false
	}
	return r.samples[len(r.samples)-1], true
}

// Flush flushes every sink.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sink := range r.sinks {
		if err := sink.Flush(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// Err returns the first sink error encountered, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
