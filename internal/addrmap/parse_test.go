package addrmap

import "testing"

func TestParseSchemeRoundTrip(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
}

// TestParseSchemeErrorDeterministic pins the valid-name list in the
// error to the Schemes declaration order: two calls must produce
// byte-identical messages. A map-ordered implementation fails this
// almost surely within a few runs.
func TestParseSchemeErrorDeterministic(t *testing.T) {
	_, err1 := ParseScheme("nope")
	_, err2 := ParseScheme("nope")
	if err1 == nil || err2 == nil {
		t.Fatal("ParseScheme accepted an unknown name")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("error message varies between calls:\n%s\n%s", err1, err2)
	}
	want := `addrmap: unknown scheme "nope" (valid: RoRaBaCoCh, RoRaBaChCo, RoRaChBaCo, RoChRaBaCo)`
	if err1.Error() != want {
		t.Fatalf("error = %q, want %q", err1, want)
	}
}
