package addrmap

import (
	"fmt"

	"cloudmc/internal/dram"
)

// TenantBanks assigns one tenant a contiguous, power-of-two slice of
// the combined per-channel bank index space (rank*Banks + bank) plus
// the base of its physical address range. Bank partitioning is the
// address-mapping form of OS page coloring: the tenant's addresses are
// rebased to its own slice and decoded through a reduced geometry that
// only owns its banks, so two tenants can never collide on a bank —
// the bank- and row-conflict channel of the memory-DoS literature is
// closed by construction.
type TenantBanks struct {
	// Base is the tenant's physical base address; it is subtracted
	// before decoding so the tenant's slice of the address space
	// enumerates its own partition from offset zero.
	Base uint64
	// Start is the first combined bank index (rank*Banks + bank) of
	// the tenant's slice.
	Start int
	// Count is the number of bank indices in the slice; it must be a
	// power of two so the slice is a decodable bit field.
	Count int
}

// partition is one tenant's compiled mapping state.
type partition struct {
	m     *Mapper // reduced-geometry mapper over the tenant's banks
	start int     // first combined bank index
	base  uint64
}

// PartitionedMapper decodes addresses tenant-aware: each tenant's
// traffic is confined to its own bank slice, while unattributed
// traffic (tenant < 0 or out of range) falls back to the shared base
// mapping. The zero value is not usable; call NewPartitioned.
type PartitionedMapper struct {
	base  *Mapper
	geo   dram.Geometry
	parts []partition
}

// NewPartitioned builds a tenant-partitioned mapper. Slices must be
// disjoint, power-of-two sized, and fit in the combined bank index
// space; the scheme applies to each tenant's reduced geometry exactly
// as it does to the full machine.
func NewPartitioned(scheme Scheme, geo dram.Geometry, tenants []TenantBanks) (*PartitionedMapper, error) {
	base, err := New(scheme, geo)
	if err != nil {
		return nil, err
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("addrmap: partitioned mapper needs at least one tenant")
	}
	total := geo.BanksPerChannel()
	used := make([]bool, total)
	pm := &PartitionedMapper{base: base, geo: geo}
	for ti, tb := range tenants {
		if tb.Count <= 0 || tb.Count&(tb.Count-1) != 0 {
			return nil, fmt.Errorf("addrmap: tenant %d bank count %d must be a positive power of two", ti, tb.Count)
		}
		if tb.Start < 0 || tb.Start+tb.Count > total {
			return nil, fmt.Errorf("addrmap: tenant %d bank slice [%d,%d) outside [0,%d)", ti, tb.Start, tb.Start+tb.Count, total)
		}
		for i := tb.Start; i < tb.Start+tb.Count; i++ {
			if used[i] {
				return nil, fmt.Errorf("addrmap: tenant %d bank slice overlaps an earlier tenant at index %d", ti, i)
			}
			used[i] = true
		}
		sub := geo
		if tb.Count >= geo.Banks {
			sub.Ranks = tb.Count / geo.Banks
		} else {
			sub.Ranks = 1
			sub.Banks = tb.Count
		}
		m, err := New(scheme, sub)
		if err != nil {
			return nil, err
		}
		pm.parts = append(pm.parts, partition{m: m, start: tb.Start, base: tb.Base})
	}
	return pm, nil
}

// Base returns the shared (unpartitioned) mapper used for
// unattributed traffic.
func (pm *PartitionedMapper) Base() *Mapper { return pm.base }

// TenantCapacity returns the number of bytes tenant t's partition can
// hold (its bank count's share of the machine).
func (pm *PartitionedMapper) TenantCapacity(t int) uint64 {
	return pm.parts[t].m.Geometry().TotalBytes()
}

// DecodeFor splits a physical byte address into DRAM coordinates under
// tenant t's partition. The tenant's address is rebased to its slice
// and decoded through its reduced geometry; the decoded rank/bank pair
// is then translated back into the machine's combined bank index
// space. Addresses beyond the partition capacity wrap within the
// partition (exactly as the base mapper wraps beyond the machine), so
// a tenant can never escape its slice.
func (pm *PartitionedMapper) DecodeFor(t int, addr uint64) dram.Location {
	if t < 0 || t >= len(pm.parts) {
		return pm.base.Decode(addr)
	}
	p := &pm.parts[t]
	loc := p.m.Decode(addr - p.base)
	sub := p.m.Geometry()
	g := p.start + loc.Rank*sub.Banks + loc.Bank
	loc.Rank = g / pm.geo.Banks
	loc.Bank = g % pm.geo.Banks
	return loc
}
