package addrmap

import (
	"testing"
	"testing/quick"

	"cloudmc/internal/dram"
)

// twoTenantPartition carves testGeo's 16 combined bank indices into
// two 8-bank slices with 1GB-spaced base addresses.
func twoTenantPartition(t *testing.T, scheme Scheme, channels int) (*PartitionedMapper, []TenantBanks) {
	t.Helper()
	tb := []TenantBanks{
		{Base: 0, Start: 0, Count: 8},
		{Base: 1 << 30, Start: 8, Count: 8},
	}
	pm, err := NewPartitioned(scheme, testGeo(channels), tb)
	if err != nil {
		t.Fatal(err)
	}
	return pm, tb
}

// TestPartitionedDisjointBanks is the isolation property test: under
// every scheme and channel count, no address of one tenant may ever
// decode to a (channel, rank, bank) another tenant can reach. The
// address streams deliberately range far beyond each tenant's
// partition capacity — even wrapped (aliased) addresses must stay
// inside the owner's slice.
func TestPartitionedDisjointBanks(t *testing.T) {
	for _, scheme := range Schemes {
		for _, ch := range []int{1, 2, 4} {
			pm, tb := twoTenantPartition(t, scheme, ch)
			geo := testGeo(ch)
			seen := make([]map[[3]int]bool, len(tb))
			for ti := range tb {
				seen[ti] = map[[3]int]bool{}
			}
			for ti, part := range tb {
				rng := uint64(0x9e3779b97f4a7c15) * uint64(ti+1)
				for n := 0; n < 4000; n++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					addr := part.Base + rng%(4<<30)&^63
					loc := pm.DecodeFor(ti, addr)
					if loc.Channel < 0 || loc.Channel >= geo.Channels ||
						loc.Rank < 0 || loc.Rank >= geo.Ranks ||
						loc.Bank < 0 || loc.Bank >= geo.Banks ||
						loc.Row < 0 || loc.Row >= geo.Rows ||
						loc.Column < 0 || loc.Column >= geo.Columns {
						t.Fatalf("%v ch=%d tenant %d: out-of-range location %+v", scheme, ch, ti, loc)
					}
					seen[ti][[3]int{loc.Channel, loc.Rank, loc.Bank}] = true
				}
			}
			for key := range seen[0] {
				if seen[1][key] {
					t.Fatalf("%v ch=%d: tenants share bank ch%d/ra%d/ba%d", scheme, ch, key[0], key[1], key[2])
				}
			}
			// Both tenants must still spread over every channel (bank
			// partitioning must not silently serialize channels).
			for ti := range tb {
				chans := map[int]bool{}
				for key := range seen[ti] {
					chans[key[0]] = true
				}
				if len(chans) != geo.Channels {
					t.Fatalf("%v ch=%d tenant %d only reaches channels %v", scheme, ch, ti, chans)
				}
			}
		}
	}
}

// TestPartitionedBankSliceExact pins the slice arithmetic: tenant 0's
// combined bank index (rank*Banks+bank) must stay in [0,8) and tenant
// 1's in [8,16).
func TestPartitionedBankSliceExact(t *testing.T) {
	pm, tb := twoTenantPartition(t, RoRaBaCoCh, 1)
	geo := testGeo(1)
	for ti, part := range tb {
		f := func(raw uint64) bool {
			loc := pm.DecodeFor(ti, part.Base+raw)
			g := loc.Rank*geo.Banks + loc.Bank
			return g >= part.Start && g < part.Start+part.Count
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("tenant %d: %v", ti, err)
		}
	}
}

// TestPartitionedDistinctAddressesDistinctLocations: within a
// tenant's partition capacity, the reduced-geometry decode must stay
// a bijection — no two blocks of the tenant may share a DRAM location.
func TestPartitionedDistinctAddressesDistinctLocations(t *testing.T) {
	pm, tb := twoTenantPartition(t, RoRaBaCoCh, 2)
	for ti, part := range tb {
		locs := map[dram.Location]uint64{}
		for n := uint64(0); n < 3000; n++ {
			addr := part.Base + n*64
			loc := pm.DecodeFor(ti, addr)
			if prev, dup := locs[loc]; dup {
				t.Fatalf("tenant %d: addresses %#x and %#x share location %v", ti, prev, addr, loc)
			}
			locs[loc] = addr
		}
	}
}

// TestPartitionedUnattributedFallsBack: tenant -1 (and out-of-range
// tenants) must decode through the shared base mapper.
func TestPartitionedUnattributedFallsBack(t *testing.T) {
	pm, _ := twoTenantPartition(t, RoRaBaChCo, 2)
	base := MustNew(RoRaBaChCo, testGeo(2))
	for _, addr := range []uint64{0, 64, 4096, 1 << 20, 123456789 &^ 63} {
		if got, want := pm.DecodeFor(-1, addr), base.Decode(addr); got != want {
			t.Fatalf("fallback decode(%#x) = %v, want %v", addr, got, want)
		}
		if got, want := pm.DecodeFor(99, addr), base.Decode(addr); got != want {
			t.Fatalf("out-of-range tenant decode(%#x) = %v, want %v", addr, got, want)
		}
	}
}

// TestPartitionedCapacity: a tenant's capacity is its bank share of
// the machine.
func TestPartitionedCapacity(t *testing.T) {
	pm, _ := twoTenantPartition(t, RoRaBaCoCh, 1)
	total := testGeo(1).TotalBytes()
	if got := pm.TenantCapacity(0); got != total/2 {
		t.Fatalf("half-machine tenant capacity = %d, want %d", got, total/2)
	}
}

// TestPartitionedValidation rejects malformed carve-ups.
func TestPartitionedValidation(t *testing.T) {
	geo := testGeo(1)
	cases := []struct {
		name string
		tb   []TenantBanks
	}{
		{"overlap", []TenantBanks{{Start: 0, Count: 8}, {Start: 4, Count: 8}}},
		{"non-pow2", []TenantBanks{{Start: 0, Count: 6}, {Start: 8, Count: 8}}},
		{"out of range", []TenantBanks{{Start: 12, Count: 8}}},
		{"zero count", []TenantBanks{{Start: 0, Count: 0}}},
		{"empty", nil},
	}
	for _, c := range cases {
		if _, err := NewPartitioned(RoRaBaCoCh, geo, c.tb); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
	if _, err := NewPartitioned(RoRaBaCoCh, geo, []TenantBanks{{Start: 0, Count: 8}, {Start: 8, Count: 8}}); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
}
