// Package addrmap maps physical addresses onto DRAM coordinates
// (channel, rank, bank, row, column) under the interleaving schemes
// studied in the paper (§4.3).
//
// Scheme names read most-significant field first. For example
// RoRaBaCoCh places the channel-select bits at the bottom (just above
// the block offset), so consecutive cache blocks alternate between
// channels, while RoChRaBaCo places them at the top, so each channel
// owns a contiguous half/quarter of the address space.
package addrmap

import (
	"fmt"
	"math/bits"
	"strings"

	"cloudmc/internal/dram"
)

// Scheme selects one of the studied address-interleaving schemes.
type Scheme uint8

const (
	// RoRaBaCoCh is the paper's baseline: Row|Rank|Bank|Column|Channel,
	// channel bits lowest (block-granularity channel interleaving).
	RoRaBaCoCh Scheme = iota
	// RoRaBaChCo: Row|Rank|Bank|Channel|Column — channel interleaving
	// at row-buffer granularity, keeping sequential blocks in one row.
	RoRaBaChCo
	// RoRaChBaCo: Row|Rank|Channel|Bank|Column.
	RoRaChBaCo
	// RoChRaBaCo: Row|Channel|Rank|Bank|Column.
	RoChRaBaCo
)

// Schemes lists every supported scheme in the order the paper
// introduces them.
var Schemes = []Scheme{RoRaBaCoCh, RoRaBaChCo, RoRaChBaCo, RoChRaBaCo}

var schemeNames = map[Scheme]string{
	RoRaBaCoCh: "RoRaBaCoCh",
	RoRaBaChCo: "RoRaBaChCo",
	RoRaChBaCo: "RoRaChBaCo",
	RoChRaBaCo: "RoChRaBaCo",
}

func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// ParseScheme converts a scheme name (as printed by String) back to a
// Scheme value. Matching and the valid-name error text walk Schemes in
// declaration order, never the schemeNames map, so the error message
// is identical from run to run.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes {
		if schemeNames[s] == name {
			return s, nil
		}
	}
	valid := make([]string, 0, len(Schemes))
	for _, s := range Schemes {
		valid = append(valid, schemeNames[s])
	}
	return 0, fmt.Errorf("addrmap: unknown scheme %q (valid: %s)", name, strings.Join(valid, ", "))
}

// field identifies one DRAM coordinate.
type field uint8

const (
	fieldChannel field = iota
	fieldRank
	fieldBank
	fieldRow
	fieldColumn
)

// order returns the scheme's fields from least-significant to
// most-significant (above the block offset).
func (s Scheme) order() [5]field {
	switch s {
	case RoRaBaCoCh:
		return [5]field{fieldChannel, fieldColumn, fieldBank, fieldRank, fieldRow}
	case RoRaBaChCo:
		return [5]field{fieldColumn, fieldChannel, fieldBank, fieldRank, fieldRow}
	case RoRaChBaCo:
		return [5]field{fieldColumn, fieldBank, fieldChannel, fieldRank, fieldRow}
	case RoChRaBaCo:
		return [5]field{fieldColumn, fieldBank, fieldRank, fieldChannel, fieldRow}
	default:
		panic(fmt.Sprintf("addrmap: unknown scheme %d", uint8(s)))
	}
}

// Mapper performs address decode/encode for one geometry and scheme.
// The zero value is not usable; call New.
type Mapper struct {
	scheme  Scheme
	geo     dram.Geometry
	offBits uint
	widths  [5]uint // bit width per field, indexed by field
}

// New builds a Mapper. The geometry must have power-of-two dimensions.
func New(scheme Scheme, geo dram.Geometry) (*Mapper, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	log2 := func(v int) uint { return uint(bits.TrailingZeros64(uint64(v))) }
	m := &Mapper{
		scheme:  scheme,
		geo:     geo,
		offBits: log2(geo.BlockBytes),
	}
	m.widths[fieldChannel] = log2(geo.Channels)
	m.widths[fieldRank] = log2(geo.Ranks)
	m.widths[fieldBank] = log2(geo.Banks)
	m.widths[fieldRow] = log2(geo.Rows)
	m.widths[fieldColumn] = log2(geo.Columns)
	return m, nil
}

// MustNew is New but panics on error; for use with known-good
// geometries in tests and examples.
func MustNew(scheme Scheme, geo dram.Geometry) *Mapper {
	m, err := New(scheme, geo)
	if err != nil {
		panic(err)
	}
	return m
}

// Scheme returns the mapper's interleaving scheme.
func (m *Mapper) Scheme() Scheme { return m.scheme }

// Geometry returns the mapper's geometry.
func (m *Mapper) Geometry() dram.Geometry { return m.geo }

// AddressBits returns the number of significant physical address bits.
func (m *Mapper) AddressBits() uint {
	total := m.offBits
	for _, w := range m.widths {
		total += w
	}
	return total
}

// Decode splits a physical byte address into DRAM coordinates.
// Address bits above the modeled capacity are ignored (wrapped).
func (m *Mapper) Decode(addr uint64) dram.Location {
	a := addr >> m.offBits
	var vals [5]int
	for _, f := range m.scheme.order() {
		w := m.widths[f]
		vals[f] = int(a & ((1 << w) - 1))
		a >>= w
	}
	return dram.Location{
		Channel: vals[fieldChannel],
		Rank:    vals[fieldRank],
		Bank:    vals[fieldBank],
		Row:     vals[fieldRow],
		Column:  vals[fieldColumn],
	}
}

// Encode is the inverse of Decode: it reconstructs the block-aligned
// physical address of a location.
func (m *Mapper) Encode(loc dram.Location) uint64 {
	vals := [5]int{
		fieldChannel: loc.Channel,
		fieldRank:    loc.Rank,
		fieldBank:    loc.Bank,
		fieldRow:     loc.Row,
		fieldColumn:  loc.Column,
	}
	var a uint64
	order := m.scheme.order()
	for i := len(order) - 1; i >= 0; i-- {
		f := order[i]
		a = a<<m.widths[f] | uint64(vals[f])
	}
	return a << m.offBits
}
