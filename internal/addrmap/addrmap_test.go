package addrmap

import (
	"testing"
	"testing/quick"

	"cloudmc/internal/dram"
)

func testGeo(channels int) dram.Geometry {
	return dram.Geometry{
		Channels: channels, Ranks: 2, Banks: 8,
		Rows: 1 << 12, Columns: 128, BlockBytes: 64,
	}
}

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, s := range Schemes {
		parsed, err := ParseScheme(s.String())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if parsed != s {
			t.Fatalf("round trip %v -> %v", s, parsed)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestDecodeEncodeRoundTripAllSchemes(t *testing.T) {
	for _, scheme := range Schemes {
		for _, ch := range []int{1, 2, 4} {
			m := MustNew(scheme, testGeo(ch))
			f := func(raw uint64) bool {
				addr := (raw % (m.Geometry().TotalBytes())) &^ 63
				l := m.Decode(addr)
				return m.Encode(l) == addr
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatalf("%v channels=%d: %v", scheme, ch, err)
			}
		}
	}
}

func TestDecodeRangesInBounds(t *testing.T) {
	for _, scheme := range Schemes {
		geo := testGeo(4)
		m := MustNew(scheme, geo)
		f := func(raw uint64) bool {
			l := m.Decode(raw)
			return l.Channel >= 0 && l.Channel < geo.Channels &&
				l.Rank >= 0 && l.Rank < geo.Ranks &&
				l.Bank >= 0 && l.Bank < geo.Banks &&
				l.Row >= 0 && l.Row < geo.Rows &&
				l.Column >= 0 && l.Column < geo.Columns
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}

func TestRoRaBaCoChInterleavesBlocksAcrossChannels(t *testing.T) {
	m := MustNew(RoRaBaCoCh, testGeo(2))
	a := m.Decode(0)
	b := m.Decode(64)
	if a.Channel == b.Channel {
		t.Fatal("consecutive blocks should alternate channels under RoRaBaCoCh")
	}
	// And consecutive blocks on the same channel share a row.
	c := m.Decode(128)
	if a.Channel != c.Channel || !a.SameRow(c) {
		t.Fatal("alternate blocks should share a row on the same channel")
	}
}

func TestRoRaBaChCoKeepsRowsSequential(t *testing.T) {
	m := MustNew(RoRaBaChCo, testGeo(2))
	geo := m.Geometry()
	rowBytes := uint64(geo.RowBufferBytes())
	a := m.Decode(0)
	b := m.Decode(rowBytes - 64)
	if a.Channel != b.Channel || !a.SameRow(b) {
		t.Fatal("a full row-buffer span should stay in one row under RoRaBaChCo")
	}
	c := m.Decode(rowBytes)
	if a.Channel == c.Channel {
		t.Fatal("next row-buffer span should switch channels under RoRaBaChCo")
	}
}

func TestRoChRaBaCoSplitsAddressSpaceByChannel(t *testing.T) {
	geo := testGeo(2)
	m := MustNew(RoChRaBaCo, geo)
	// Below the channel boundary everything maps to channel 0.
	span := uint64(geo.Ranks*geo.Banks*geo.Columns*geo.BlockBytes) - 64
	if m.Decode(0).Channel != m.Decode(span).Channel {
		t.Fatal("addresses within one rank/bank/column span should share a channel")
	}
}

func TestColumnBitsAreLowestAfterOffset(t *testing.T) {
	// For every scheme except RoRaBaCoCh, consecutive blocks stay in
	// the same row (column bits lowest).
	for _, scheme := range []Scheme{RoRaBaChCo, RoRaChBaCo, RoChRaBaCo} {
		m := MustNew(scheme, testGeo(2))
		a, b := m.Decode(0), m.Decode(64)
		if !a.SameRow(b) {
			t.Errorf("%v: consecutive blocks land in different rows", scheme)
		}
	}
}

func TestAddressBits(t *testing.T) {
	m := MustNew(RoRaBaCoCh, testGeo(2))
	// 1 ch bit + 1 rank + 3 bank + 12 row + 7 col + 6 offset = 30 bits.
	if got := m.AddressBits(); got != 30 {
		t.Fatalf("AddressBits = %d, want 30", got)
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	geo := testGeo(1)
	geo.Columns = 100
	if _, err := New(RoRaBaCoCh, geo); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestDistinctAddressesDistinctLocations(t *testing.T) {
	// Decode must be injective over the modeled capacity: two distinct
	// block addresses never collide on the same location.
	for _, scheme := range Schemes {
		m := MustNew(scheme, testGeo(2))
		seen := make(map[dram.Location]uint64)
		for i := 0; i < 2000; i++ {
			addr := uint64(i) * 64
			l := m.Decode(addr)
			if prev, dup := seen[l]; dup {
				t.Fatalf("%v: %#x and %#x both map to %v", scheme, prev, addr, l)
			}
			seen[l] = addr
		}
	}
}
