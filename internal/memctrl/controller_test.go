package memctrl

import (
	"testing"

	"cloudmc/internal/dram"
	"cloudmc/internal/pagepolicy"
)

// frPolicy is a minimal FR-FCFS used to drive the controller in tests
// without importing package sched (which would be an import cycle in
// spirit: sched already imports memctrl).
type frPolicy struct{}

func (frPolicy) Name() string { return "test-frfcfs" }
func (frPolicy) Pick(v *View) int {
	best := -1
	bestHit := false
	for i := range v.Options {
		o := &v.Options[i]
		switch {
		case best == -1, o.RowHit && !bestHit,
			o.RowHit == bestHit && o.Req.ID < v.Options[best].Req.ID:
			best = i
			bestHit = o.RowHit
		}
	}
	return best
}
func (frPolicy) OnEnqueue(*Request, uint64)               {}
func (frPolicy) OnComplete(*Request, uint64)              {}
func (frPolicy) OnIssue(*View, int, dram.Command, uint64) {}
func (frPolicy) Tick(uint64)                              {}

// idlePolicy never issues anything; used to observe queue state.
type idlePolicy struct{ frPolicy }

func (idlePolicy) Pick(*View) int { return -1 }

func testController(t *testing.T, policy Policy, page pagepolicy.Policy) *Controller {
	t.Helper()
	geo := dram.Geometry{Channels: 1, Ranks: 2, Banks: 4, Rows: 1 << 10, Columns: 32, BlockBytes: 64}
	ch := dram.NewChannel(0, geo, dram.DDR3_1600())
	ctl, err := New(DefaultConfig(), ch, policy, page)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func rloc(rank, bank, row, col int) dram.Location {
	return dram.Location{Channel: 0, Rank: rank, Bank: bank, Row: row, Column: col}
}

// addrFor synthesizes a unique address per location for queue lookups.
func addrFor(l dram.Location) uint64 {
	return uint64(l.Rank)<<40 | uint64(l.Bank)<<32 | uint64(l.Row)<<16 | uint64(l.Column)<<6
}

func runCycles(ctl *Controller, from, to uint64) uint64 {
	for now := from; now < to; now++ {
		ctl.Tick(now)
	}
	return to
}

func TestReadCompletesWithCallback(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewOpenAdaptive())
	var doneAt uint64
	l := rloc(0, 0, 3, 1)
	if !ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l), l, ReadDemand, func(at uint64) { doneAt = at }) {
		t.Fatal("enqueue failed")
	}
	runCycles(ctl, 0, 300)
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	if ctl.Stats.ReadsServed != 1 {
		t.Fatalf("reads served = %d", ctl.Stats.ReadsServed)
	}
	if ctl.Stats.RowMisses != 1 || ctl.Stats.RowHits != 0 {
		t.Fatalf("classification: hits=%d misses=%d conflicts=%d",
			ctl.Stats.RowHits, ctl.Stats.RowMisses, ctl.Stats.RowConflicts)
	}
	// Latency must cover activate + CAS + burst at minimum.
	tim := ctl.Channel().Tim
	min := uint64(tim.RCD + tim.CAS + tim.Burst)
	if got := uint64(ctl.Stats.ReadLatency.Mean()); got < min {
		t.Fatalf("latency %d below device minimum %d", got, min)
	}
}

func TestRowHitClassification(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewOpen())
	l1 := rloc(0, 0, 3, 1)
	l2 := rloc(0, 0, 3, 2) // same row: should hit
	ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l1), l1, ReadDemand, nil)
	ctl.EnqueueRead(0, Source{Core: 2}, addrFor(l2), l2, ReadDemand, nil)
	runCycles(ctl, 0, 400)
	if ctl.Stats.RowHits != 1 || ctl.Stats.RowMisses != 1 {
		t.Fatalf("hits=%d misses=%d", ctl.Stats.RowHits, ctl.Stats.RowMisses)
	}
}

func TestRowConflictClassification(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewOpen())
	l1 := rloc(0, 0, 3, 1)
	l2 := rloc(0, 0, 9, 2) // same bank, different row: conflict
	ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l1), l1, ReadDemand, nil)
	runCycles(ctl, 0, 100)
	ctl.EnqueueRead(100, Source{Core: 2}, addrFor(l2), l2, ReadDemand, nil)
	runCycles(ctl, 100, 500)
	if ctl.Stats.RowConflicts != 1 {
		t.Fatalf("conflicts=%d (hits=%d misses=%d)",
			ctl.Stats.RowConflicts, ctl.Stats.RowHits, ctl.Stats.RowMisses)
	}
}

func TestWriteForwardingServesReadFromWriteQueue(t *testing.T) {
	ctl := testController(t, idlePolicy{}, pagepolicy.NewOpenAdaptive())
	l := rloc(0, 1, 5, 0)
	addr := addrFor(l)
	ctl.EnqueueWrite(0, Source{Core: 1}, addr, l, nil)
	var done bool
	ctl.EnqueueRead(1, Source{Core: 2}, addr, l, ReadDemand, func(uint64) { done = true })
	runCycles(ctl, 0, 20)
	if !done {
		t.Fatal("forwarded read not completed")
	}
	if ctl.Stats.ForwardedReads != 1 {
		t.Fatalf("forwarded = %d", ctl.Stats.ForwardedReads)
	}
	if r, _ := ctl.QueueLens(); r != 0 {
		t.Fatal("forwarded read should not occupy the read queue")
	}
}

func TestWriteCoalescing(t *testing.T) {
	ctl := testController(t, idlePolicy{}, pagepolicy.NewOpenAdaptive())
	l := rloc(0, 1, 5, 0)
	ctl.EnqueueWrite(0, Source{Core: 1}, addrFor(l), l, nil)
	ctl.EnqueueWrite(1, Source{Core: 1}, addrFor(l), l, nil)
	if _, w := ctl.QueueLens(); w != 1 {
		t.Fatalf("write queue = %d, want 1 (coalesced)", w)
	}
}

func TestBackpressureWhenReadQueueFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadQueueCap = 4
	geo := dram.Geometry{Channels: 1, Ranks: 2, Banks: 4, Rows: 1 << 10, Columns: 32, BlockBytes: 64}
	ch := dram.NewChannel(0, geo, dram.DDR3_1600())
	ctl, err := New(cfg, ch, idlePolicy{}, pagepolicy.NewOpenAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l := rloc(0, 0, i+1, 0)
		if !ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l), l, ReadDemand, nil) {
			t.Fatalf("enqueue %d rejected early", i)
		}
	}
	l := rloc(0, 0, 9, 0)
	if ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l), l, ReadDemand, nil) {
		t.Fatal("enqueue accepted beyond capacity")
	}
	if ctl.Stats.EnqueueFailures != 1 {
		t.Fatalf("failures = %d", ctl.Stats.EnqueueFailures)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteHi = 8
	cfg.WriteLo = 2
	geo := dram.Geometry{Channels: 1, Ranks: 2, Banks: 4, Rows: 1 << 10, Columns: 32, BlockBytes: 64}
	ch := dram.NewChannel(0, geo, dram.DDR3_1600())
	ctl, err := New(cfg, ch, frPolicy{}, pagepolicy.NewCloseAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	// Keep a steady read supply and push writes past the watermark.
	for i := 0; i < 8; i++ {
		l := rloc(0, i%4, 100+i, 0)
		ctl.EnqueueWrite(0, Source{Core: 1}, addrFor(l), l, nil)
	}
	runCycles(ctl, 0, 2000)
	if ctl.Stats.WritesServed < 6 {
		t.Fatalf("writes served = %d, drain did not engage", ctl.Stats.WritesServed)
	}
	if _, w := ctl.QueueLens(); w > cfg.WriteLo {
		t.Fatalf("write queue %d above low watermark after drain", w)
	}
}

func TestOpportunisticWriteDrainWhenIdle(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewOpenAdaptive())
	l := rloc(1, 2, 7, 0)
	ctl.EnqueueWrite(0, Source{Core: 1}, addrFor(l), l, nil)
	runCycles(ctl, 0, 400)
	if ctl.Stats.WritesServed != 1 {
		t.Fatal("idle controller did not drain the lone write")
	}
}

func TestPagePolicyCloseIsCounted(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewClose())
	l := rloc(0, 0, 3, 1)
	ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l), l, ReadDemand, nil)
	runCycles(ctl, 0, 500)
	if ctl.Stats.PolicyCloses != 1 {
		t.Fatalf("policy closes = %d, want 1", ctl.Stats.PolicyCloses)
	}
	// The bank must be idle again.
	if _, open := ctl.Channel().OpenRow(0, 0); open {
		t.Fatal("row left open under close-page policy")
	}
}

func TestOpenPolicyLeavesRowOpen(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewOpen())
	l := rloc(0, 0, 3, 1)
	ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l), l, ReadDemand, nil)
	runCycles(ctl, 0, 500)
	row, open := ctl.Channel().OpenRow(0, 0)
	if !open || row != 3 {
		t.Fatalf("row state = (%d, %v), want (3, true)", row, open)
	}
	if ctl.Stats.PolicyCloses != 0 {
		t.Fatal("open policy precharged proactively")
	}
}

func TestPendingCloseCancelledBySameRowArrival(t *testing.T) {
	// Under close-adaptive, a same-row request arriving before the
	// precharge becomes legal must cancel the close and be served as a
	// row hit.
	ctl := testController(t, frPolicy{}, pagepolicy.NewCloseAdaptive())
	l1 := rloc(0, 0, 3, 1)
	ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l1), l1, ReadDemand, nil)
	// Run just past the column access; tRTP has not elapsed.
	tim := ctl.Channel().Tim
	colAt := uint64(tim.RCD) + 2
	runCycles(ctl, 0, colAt+1)
	l2 := rloc(0, 0, 3, 2)
	ctl.EnqueueRead(colAt+1, Source{Core: 2}, addrFor(l2), l2, ReadDemand, nil)
	runCycles(ctl, colAt+1, 600)
	if ctl.Stats.RowHits != 1 {
		t.Fatalf("hits = %d; pending close was not cancelled", ctl.Stats.RowHits)
	}
}

func TestQueueLengthStats(t *testing.T) {
	ctl := testController(t, idlePolicy{}, pagepolicy.NewOpenAdaptive())
	for i := 0; i < 4; i++ {
		l := rloc(0, 0, i+1, 0)
		ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l), l, ReadDemand, nil)
	}
	runCycles(ctl, 0, 100)
	if got := ctl.Stats.ReadQ.Average(100); got < 3.9 {
		t.Fatalf("read queue average = %f, want ~4", got)
	}
}

func TestResetStatsPreservesQueueState(t *testing.T) {
	ctl := testController(t, idlePolicy{}, pagepolicy.NewOpenAdaptive())
	l := rloc(0, 0, 1, 0)
	ctl.EnqueueRead(0, Source{Core: 1}, addrFor(l), l, ReadDemand, nil)
	runCycles(ctl, 0, 50)
	ctl.ResetStats(50)
	if r, _ := ctl.QueueLens(); r != 1 {
		t.Fatal("reset dropped queued request")
	}
	if ctl.Stats.ReadsServed != 0 {
		t.Fatal("reset kept counters")
	}
}

func TestRequestAge(t *testing.T) {
	r := Request{Arrival: 100}
	if r.Age(150) != 50 || r.Age(50) != 0 {
		t.Fatal("age arithmetic wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.WriteLo = bad.WriteHi
	if err := bad.Validate(); err == nil {
		t.Fatal("WriteLo >= WriteHi accepted")
	}
	bad = good
	bad.ReadQueueCap = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero read queue accepted")
	}
	bad = good
	bad.WriteHi = bad.WriteQueueCap + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("WriteHi above capacity accepted")
	}
}

func TestViewOldestOption(t *testing.T) {
	v := &View{Options: []Option{
		{Req: &Request{ID: 5}},
		{Req: &Request{ID: 2}},
		{Req: &Request{ID: 9}},
	}}
	if got := v.OldestOption(); got != 1 {
		t.Fatalf("oldest = %d, want 1", got)
	}
	empty := &View{}
	if empty.OldestOption() != -1 {
		t.Fatal("empty view should return -1")
	}
}
