//go:build mclintdebug

package memctrl

// debugLifetime turns on the free-list lifetime assertions (see
// assertRecycleClean): build with -tags mclintdebug to have every
// request recycle verified against the writeByAddr index. The flag is
// a compile-time constant so the release build carries no branch at
// all on the retire path.
const debugLifetime = true
