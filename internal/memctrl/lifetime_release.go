//go:build !mclintdebug

package memctrl

// debugLifetime is off in release builds: the recycle-path assertion
// compiles away entirely. Build with -tags mclintdebug to enable it.
const debugLifetime = false
