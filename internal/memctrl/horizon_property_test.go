package memctrl

import (
	"math/rand"
	"reflect"
	"testing"

	"cloudmc/internal/dram"
	"cloudmc/internal/pagepolicy"
	"cloudmc/internal/stats"
)

// This file is the correctness suite of the per-bank horizon cache:
//
//   - refIdleHorizon is a straight port of the pre-cache idleHorizon
//     (one EarliestIssue per queued request plus a full bank scan for
//     pending closes); the harness asserts the cached fold computes
//     the identical horizon at every park, so the per-(rank, bank,
//     kind) dedupe provably changed nothing.
//   - VerifyParkHorizon brute-forces every parked window cycle by
//     cycle against CanIssue, proving horizons exact: never late,
//     never early.
//   - A fast-forward controller and a naive per-cycle twin replay the
//     same randomized request stream; their statistics and device
//     state must match bit for bit.

// refIdleHorizon re-derives the idle horizon the way the pre-cache
// implementation did: one earliestFor per considered request, a full
// rank×bank scan for surviving pending closes, the policy event, and
// the now+1 clamp.
func refIdleHorizon(c *Controller, now uint64) uint64 {
	h := dram.Never
	primary, secondary := c.consideredQueues(considersWrites(c.policy))
	for _, r := range primary {
		if at := c.earliestFor(r); at < h {
			h = at
		}
	}
	for _, r := range secondary {
		if at := c.earliestFor(r); at < h {
			h = at
		}
	}
	for rank := 0; rank < c.ch.Geo.Ranks; rank++ {
		for bank := 0; bank < c.ch.Geo.Banks; bank++ {
			if !c.pendingClose[rank*c.ch.Geo.Banks+bank] {
				continue
			}
			b := c.ch.Bank(rank, bank)
			if b.State != dram.BankActive {
				continue
			}
			cmd := dram.Command{Kind: dram.CmdPrecharge, Loc: dram.Location{
				Channel: c.ch.ID, Rank: rank, Bank: bank, Row: b.OpenRow,
			}}
			if at := c.ch.EarliestIssue(cmd); at < h {
				h = at
			}
		}
	}
	if eh, ok := c.policy.(EventHorizon); ok {
		if at := eh.NextPolicyEvent(now); at < h {
			h = at
		}
	}
	if h <= now {
		h = now + 1
	}
	return h
}

// timedPolicy is frPolicy plus a self-re-arming quantum, so the
// harness exercises the EventHorizon fold and wake-ups that come from
// the policy rather than from DRAM timing.
type timedPolicy struct {
	frPolicy
	quantum uint64
	next    uint64
}

func (p *timedPolicy) Tick(now uint64) {
	if now >= p.next {
		p.next = now + p.quantum
	}
}

func (p *timedPolicy) NextPolicyEvent(uint64) uint64 { return p.next }

// declinePolicy issues only every fourth pick, leaving declined
// options on the table — the controller must stay hot for those.
type declinePolicy struct {
	frPolicy
	n int
}

func (p *declinePolicy) Pick(v *View) int {
	p.n++
	if p.n%4 != 0 {
		return -1
	}
	return p.frPolicy.Pick(v)
}

// horizonHarness replays one randomized request stream through a
// fast-forward controller and a naive per-cycle twin, checking at
// every cycle that the fast-forward horizon is exact and identical to
// the reference computation, and at the end that both controllers
// observed bit-identical statistics and device state.
func horizonHarness(t *testing.T, seed int64, cycles uint64,
	mkPolicy func() Policy, mkPage func() pagepolicy.Policy) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	geo := dram.Geometry{
		Channels: 1,
		Ranks:    1 + rng.Intn(2),
		Banks:    2 << rng.Intn(3), // 2, 4 or 8
		Rows:     1 << 10, Columns: 32, BlockBytes: 64,
	}
	cfg := DefaultConfig()
	cfg.ReadQueueCap = 8 + rng.Intn(57)
	cfg.WriteQueueCap = 8 + rng.Intn(57)
	cfg.WriteHi = 1 + rng.Intn(cfg.WriteQueueCap)
	cfg.WriteLo = rng.Intn(cfg.WriteHi)

	build := func(ff bool) *Controller {
		ctl, err := New(cfg, dram.NewChannel(0, geo, dram.DDR3_1600()), mkPolicy(), mkPage())
		if err != nil {
			t.Fatal(err)
		}
		ctl.SetFastForward(ff)
		return ctl
	}
	fast, naive := build(true), build(false)

	// A bursty stream with hot rows (hits), row conflicts, and write
	// phases, so parks happen in every regime: empty queues, drain
	// shadows, tFAW stalls, pending closes.
	var fastDone, naiveDone int
	enqProb := 0.02 + rng.Float64()*0.2
	writeFrac := rng.Float64() * 0.8
	for now := uint64(0); now < cycles; now++ {
		if rng.Float64() < enqProb {
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				loc := dram.Location{
					Channel: 0,
					Rank:    rng.Intn(geo.Ranks),
					Bank:    rng.Intn(geo.Banks),
					Row:     rng.Intn(4), // few rows: conflicts and hits
					Column:  rng.Intn(geo.Columns),
				}
				addr := uint64(now)<<32 | uint64(rng.Intn(1<<16))<<6
				src := Source{Core: rng.Intn(4), Tenant: -1}
				if rng.Float64() < writeFrac {
					a := fast.EnqueueWrite(now, src, addr, loc, func(uint64) { fastDone++ })
					b := naive.EnqueueWrite(now, src, addr, loc, func(uint64) { naiveDone++ })
					if a != b {
						t.Fatalf("cycle %d: write accept diverged (fast %v, naive %v)", now, a, b)
					}
				} else {
					a := fast.EnqueueRead(now, src, addr, loc, ReadDemand, func(uint64) { fastDone++ })
					b := naive.EnqueueRead(now, src, addr, loc, ReadDemand, func(uint64) { naiveDone++ })
					if a != b {
						t.Fatalf("cycle %d: read accept diverged (fast %v, naive %v)", now, a, b)
					}
				}
			}
			// An enqueue into a parked controller must leave the
			// re-armed horizon exact without a full tick.
			if err := fast.VerifyParkHorizon(now, 2000); err != nil {
				t.Fatalf("cycle %d (post-enqueue): %v", now, err)
			}
		}
		fast.Tick(now)
		naive.Tick(now)
		if err := fast.VerifyParkHorizon(now, 2000); err != nil {
			t.Fatalf("cycle %d: %v", now, err)
		}
		if w := fast.ParkHorizon(); w > now+1 {
			if ref := refIdleHorizon(fast, now); ref != w {
				t.Fatalf("cycle %d: cached horizon %d != per-request reference %d", now, w, ref)
			}
		}
	}

	if fastDone != naiveDone {
		t.Fatalf("completions diverged: fast %d, naive %d", fastDone, naiveDone)
	}
	// The time-weighted trackers sample at different cycles (the naive
	// twin samples every cycle, the fast-forward controller only at
	// ticks and enqueues) but must integrate to the same area.
	fs, ns := fast.Stats, naive.Stats
	if fq, nq := fs.ReadQ.Average(cycles), ns.ReadQ.Average(cycles); fq != nq {
		t.Fatalf("read-queue occupancy diverged: fast %v, naive %v", fq, nq)
	}
	if fq, nq := fs.WriteQ.Average(cycles), ns.WriteQ.Average(cycles); fq != nq {
		t.Fatalf("write-queue occupancy diverged: fast %v, naive %v", fq, nq)
	}
	fs.ReadQ, fs.WriteQ = stats.TimeWeighted{}, stats.TimeWeighted{}
	ns.ReadQ, ns.WriteQ = stats.TimeWeighted{}, stats.TimeWeighted{}
	// Parks/Wakes are engine telemetry, definitionally zero in the
	// naive loop; everything architectural must still match exactly.
	fs.Parks, fs.Wakes = 0, 0
	ns.Parks, ns.Wakes = 0, 0
	if !reflect.DeepEqual(fs, ns) {
		t.Fatalf("controller stats diverged:\nfast:  %+v\nnaive: %+v", fs, ns)
	}
	if !reflect.DeepEqual(fast.Channel().Stats, naive.Channel().Stats) {
		t.Fatalf("device stats diverged:\nfast:  %+v\nnaive: %+v", fast.Channel().Stats, naive.Channel().Stats)
	}
	for rank := 0; rank < geo.Ranks; rank++ {
		for bank := 0; bank < geo.Banks; bank++ {
			fr, fo := fast.Channel().OpenRow(rank, bank)
			nr, no := naive.Channel().OpenRow(rank, bank)
			if fr != nr || fo != no {
				t.Fatalf("bank (%d,%d) state diverged: fast (%d,%v) naive (%d,%v)", rank, bank, fr, fo, nr, no)
			}
		}
	}
}

// TestHorizonExactnessRandomized sweeps the harness across policies
// (plain FR-FCFS, a timed EventHorizon policy, an option-declining
// policy) and every page policy, including the stateful predictive
// ones whose ShouldClose schedule the enqueue fast path must not
// perturb.
func TestHorizonExactnessRandomized(t *testing.T) {
	policies := map[string]func() Policy{
		"frfcfs":  func() Policy { return frPolicy{} },
		"timed":   func() Policy { return &timedPolicy{quantum: 700} },
		"decline": func() Policy { return &declinePolicy{} },
	}
	pages := map[string]func() pagepolicy.Policy{
		"open":          func() pagepolicy.Policy { return pagepolicy.NewOpen() },
		"close":         func() pagepolicy.Policy { return pagepolicy.NewClose() },
		"openadaptive":  func() pagepolicy.Policy { return pagepolicy.NewOpenAdaptive() },
		"closeadaptive": func() pagepolicy.Policy { return pagepolicy.NewCloseAdaptive() },
		"rbpp":          func() pagepolicy.Policy { return pagepolicy.NewRBPP(4) },
		"abpp":          func() pagepolicy.Policy { return pagepolicy.NewABPP(4) },
	}
	cycles := uint64(12_000)
	if testing.Short() {
		cycles = 3_000
	}
	seed := int64(42)
	for pname, mkPolicy := range policies {
		for gname, mkPage := range pages {
			seed++
			s := seed
			t.Run(pname+"/"+gname, func(t *testing.T) {
				horizonHarness(t, s, cycles, mkPolicy, mkPage)
			})
		}
	}
}

// TestEnqueueReArmsParkWithoutFullScan pins the tentpole behavior: a
// request that cannot issue for a while (a precharge in the tWR
// shadow of a just-drained write) lands in a parked controller and
// re-arms the horizon to exactly the cycle its command becomes legal
// — without resetting the horizon to "unknown".
func TestEnqueueReArmsParkWithoutFullScan(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewOpen())
	ctl.SetFastForward(true)
	// W1 opens row 3; W2 needs row 9 in the same bank, so after W1's
	// column access the controller parks in write mode waiting for the
	// precharge to clear the tWR shadow.
	l1 := rloc(0, 0, 3, 1)
	l2 := rloc(0, 0, 9, 0)
	ctl.EnqueueWrite(0, Source{Core: 1}, addrFor(l1), l1, nil)
	ctl.EnqueueWrite(0, Source{Core: 1}, addrFor(l2), l2, nil)

	var now uint64
	for now = 0; now < 200; now++ {
		ctl.Tick(now)
		if ctl.Stats.WritesServed == 1 && ctl.ParkHorizon() > now+1 {
			break
		}
	}
	if ctl.Stats.WritesServed != 1 {
		t.Fatal("first write never drained")
	}
	now++

	// Another row-9 write lands in the parked controller: same command
	// class, so the established horizon must survive untouched — an
	// O(1) re-arm, not a reset to "unknown".
	l3 := rloc(0, 0, 9, 1)
	if !ctl.EnqueueWrite(now, Source{Core: 1}, addrFor(l3), l3, nil) {
		t.Fatal("enqueue failed")
	}
	want := ctl.Channel().EarliestIssue(dram.Command{Kind: dram.CmdPrecharge, Loc: l2})
	if w := ctl.ParkHorizon(); w != want {
		t.Fatalf("park horizon after enqueue = %d, want EarliestIssue(PRE) = %d", w, want)
	}
	if w := ctl.ParkHorizon(); w <= now {
		t.Fatalf("controller woke immediately (horizon %d <= now %d); expected a parked re-arm", w, now)
	}
	if err := ctl.VerifyParkHorizon(now, 2000); err != nil {
		t.Fatal(err)
	}
	for ; now < ctl.ParkHorizon(); now++ {
		ctl.Tick(now) // provable no-ops until the horizon
	}
	for end := now + 600; now < end && ctl.Stats.WritesServed < 3; now++ {
		ctl.Tick(now)
	}
	if ctl.Stats.WritesServed != 3 {
		t.Fatalf("re-armed writes never served (served %d)", ctl.Stats.WritesServed)
	}
}
