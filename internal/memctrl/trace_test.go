package memctrl

import (
	"testing"

	"cloudmc/internal/dram"
	"cloudmc/internal/pagepolicy"
)

// traceEvent is one captured CommandTrace invocation.
type traceEvent struct {
	now    uint64
	cmd    dram.Command
	tenant int
}

// captureTrace records every traced command for assertions.
type captureTrace struct{ events []traceEvent }

func (c *captureTrace) Command(now uint64, cmd dram.Command, tenant int) {
	c.events = append(c.events, traceEvent{now, cmd, tenant})
}

// TestTraceRecordsCommandSequence drives one read to an idle bank and
// checks the trace reports exactly ACT then RD at the request's
// location with the requester's tenant.
func TestTraceRecordsCommandSequence(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewOpen())
	tr := &captureTrace{}
	ctl.SetTrace(tr)
	l := rloc(0, 2, 7, 1)
	if !ctl.EnqueueRead(0, Source{Core: 1, Tenant: 3}, addrFor(l), l, ReadDemand, nil) {
		t.Fatal("enqueue failed")
	}
	runCycles(ctl, 0, 300)
	if len(tr.events) != 2 {
		t.Fatalf("traced %d commands, want 2 (ACT, RD): %+v", len(tr.events), tr.events)
	}
	act, rd := tr.events[0], tr.events[1]
	if act.cmd.Kind != dram.CmdActivate || rd.cmd.Kind != dram.CmdRead {
		t.Fatalf("command kinds: %v, %v", act.cmd.Kind, rd.cmd.Kind)
	}
	if act.cmd.Loc.Rank != 0 || act.cmd.Loc.Bank != 2 || act.cmd.Loc.Row != 7 {
		t.Fatalf("ACT location: %+v", act.cmd.Loc)
	}
	if act.tenant != 3 || rd.tenant != 3 {
		t.Fatalf("tenants: %d, %d", act.tenant, rd.tenant)
	}
	if rd.now < act.now+uint64(ctl.Channel().Tim.RCD) {
		t.Fatalf("RD at %d violates tRCD after ACT at %d", rd.now, act.now)
	}
}

// TestTracePolicyCloseUnattributed checks a page-policy precharge on
// an idle cycle is traced with tenant -1 and the row being closed.
func TestTracePolicyCloseUnattributed(t *testing.T) {
	// Close-page policy: after the read completes the policy closes
	// the row from tryPendingClose (no conflicting request involved).
	ctl := testController(t, frPolicy{}, pagepolicy.NewClose())
	tr := &captureTrace{}
	ctl.SetTrace(tr)
	l := rloc(1, 1, 5, 0)
	if !ctl.EnqueueRead(0, Source{Core: 0, Tenant: 0}, addrFor(l), l, ReadDemand, nil) {
		t.Fatal("enqueue failed")
	}
	runCycles(ctl, 0, 500)
	var pre *traceEvent
	for i := range tr.events {
		if tr.events[i].cmd.Kind == dram.CmdPrecharge {
			pre = &tr.events[i]
		}
	}
	if pre == nil {
		t.Fatalf("no PRE traced: %+v", tr.events)
	}
	if pre.tenant != -1 {
		t.Fatalf("policy close tenant = %d, want -1", pre.tenant)
	}
	if pre.cmd.Loc.Row != 5 || pre.cmd.Loc.Rank != 1 || pre.cmd.Loc.Bank != 1 {
		t.Fatalf("PRE traces closed row: %+v", pre.cmd.Loc)
	}
}

// TestParkWakeCounters checks the engine telemetry: with the fast
// path on, serving a request then going idle parks the controller
// once, and the next enqueue's full tick counts one wake.
func TestParkWakeCounters(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewClose())
	ctl.SetFastForward(true)
	l := rloc(0, 0, 3, 1)
	if !ctl.EnqueueRead(0, Source{}, addrFor(l), l, ReadDemand, nil) {
		t.Fatal("enqueue failed")
	}
	now := uint64(0)
	for ; now < 2000; now++ {
		ctl.Tick(now)
		if ctl.Pending() == 0 && ctl.Stats.Parks > 0 {
			break
		}
	}
	if ctl.Stats.Parks == 0 {
		t.Fatal("controller never parked after draining")
	}
	if ctl.Stats.Wakes >= ctl.Stats.Parks {
		t.Fatalf("wakes %d >= parks %d before any wake-up", ctl.Stats.Wakes, ctl.Stats.Parks)
	}
	wakesBefore := ctl.Stats.Wakes
	l2 := rloc(0, 1, 9, 0)
	if !ctl.EnqueueRead(now+1, Source{}, addrFor(l2), l2, ReadDemand, nil) {
		t.Fatal("enqueue failed")
	}
	runCycles(ctl, now+1, now+400)
	if ctl.Stats.Wakes <= wakesBefore {
		t.Fatal("wake-up full tick did not count a wake")
	}
	if ctl.Stats.Wakes > ctl.Stats.Parks {
		t.Fatalf("wakes %d exceed parks %d", ctl.Stats.Wakes, ctl.Stats.Parks)
	}
}
