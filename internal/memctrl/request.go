// Package memctrl implements the per-channel memory controller: the
// read and write request queues, write-drain mode, command generation
// under DRAM timing legality, page-management hooks, and the
// scheduling-policy interface that the algorithms in package sched
// implement.
package memctrl

import (
	"fmt"

	"cloudmc/internal/dram"
)

// RequestKind distinguishes the traffic classes the controller sees.
type RequestKind uint8

const (
	// ReadDemand is a load-miss read; a core is stalled on it.
	ReadDemand RequestKind = iota
	// ReadStore is a store-miss (write-allocate) line fill.
	ReadStore
	// ReadPrefetch is a non-demand read (the DMA/IO agent uses it).
	ReadPrefetch
	// WriteBack is a dirty-line eviction or DMA write.
	WriteBack
)

func (k RequestKind) String() string {
	switch k {
	case ReadDemand:
		return "load-read"
	case ReadStore:
		return "store-read"
	case ReadPrefetch:
		return "prefetch"
	case WriteBack:
		return "write"
	default:
		return fmt.Sprintf("RequestKind(%d)", uint8(k))
	}
}

// IsWrite reports whether the request occupies the write queue.
func (k RequestKind) IsWrite() bool { return k == WriteBack }

// Source identifies where a request originated: the issuing core and
// the tenant that owns the traffic. Solo (single-tenant) systems tag
// everything with tenant 0.
type Source struct {
	// Core is the requesting core, or -1 for DMA/IO traffic.
	Core int
	// Tenant is the owning tenant, or -1 when the traffic cannot be
	// attributed.
	Tenant int
}

// Request is one memory transaction queued at a controller.
type Request struct {
	// ID is unique per controller, assigned at enqueue, and increases
	// in arrival order; policies use it as a stable age tie-breaker.
	ID uint64
	// Core is the requesting core (or -1 for DMA/IO traffic).
	Core int
	// Tenant is the owning tenant (or -1 for unattributed traffic);
	// per-tenant accounting and tenant-aware scheduling key on it.
	Tenant int
	// Addr is the physical block address.
	Addr uint64
	// Loc is the decoded DRAM coordinate of Addr.
	Loc dram.Location
	// Kind classifies the request.
	Kind RequestKind
	// Arrival is the cycle the request entered the controller.
	Arrival uint64

	// OnDone, if non-nil, is invoked when the request's data transfer
	// completes (reads: data arrived; writes: data written).
	OnDone func(now uint64)

	// triggeredActivate records that this request caused a row
	// activation, i.e. it is a row miss for hit-rate accounting.
	triggeredActivate bool
	// triggeredConflict records that this request required closing
	// another row first.
	triggeredConflict bool
	// Batched marks PAR-BS batch membership (owned by the policy).
	Batched bool
}

// Age returns how long the request has been waiting at cycle now.
func (r *Request) Age(now uint64) uint64 {
	if now < r.Arrival {
		return 0
	}
	return now - r.Arrival
}
