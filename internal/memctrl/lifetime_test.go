package memctrl

import "testing"

// TestAssertRecycleClean exercises the debug-build recycle assertion
// directly, so the check is covered whether or not the suite runs
// with -tags mclintdebug.
func TestAssertRecycleClean(t *testing.T) {
	c := &Controller{writeByAddr: make(map[uint64]*Request)}

	// Clean recycle: the request left every index; no panic.
	r := &Request{ID: 1, Addr: 0x40}
	c.assertRecycleClean(r)

	// A different write queued at the same address is legal — the
	// assertion is an identity check, not an address check.
	other := &Request{ID: 2, Addr: 0x40}
	c.writeByAddr[other.Addr] = other
	c.assertRecycleClean(r)

	// Poisoned index: recycling a request writeByAddr still reaches
	// must panic, and remove the stale entry so the map stays usable.
	c.writeByAddr[r.Addr] = r
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("assertRecycleClean did not panic on a request still indexed by writeByAddr")
			}
		}()
		c.assertRecycleClean(r)
	}()
	if got, ok := c.writeByAddr[r.Addr]; ok && got == r {
		t.Fatalf("assertRecycleClean left the stale writeByAddr entry in place")
	}
}

// TestDebugLifetimeGateCompiles pins that the debugLifetime constant
// exists in both build flavors (the release value is asserted here;
// the mclintdebug CI race job compiles the other).
func TestDebugLifetimeGateCompiles(t *testing.T) {
	if debugLifetime {
		t.Log("running with -tags mclintdebug: recycle assertions active")
	}
}
