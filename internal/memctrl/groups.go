package memctrl

import "cloudmc/internal/dram"

// This file maintains the candidate-group index: one live entry per
// (bankIdx, row) holding the queued requests of that group, kept
// incrementally by the enqueue and remove paths so the busy-path
// option builder is O(live groups) with cached legality instead of
// O(queued requests) with a full per-tick rebuild. The index is the
// authoritative input of buildOptions; buildOptionsRef (the straight-
// port per-tick rebuild it replaced) survives as the reference twin
// that VerifyCandidateGroups and the property suites compare against.
//
// Ordering invariant. The option list must reproduce the reference
// rebuild bit for bit, and the reference emits groups in first-
// appearance order scanning the primary queue then the secondary one.
// Queues hold requests in ascending ID order (IDs are assigned at
// enqueue and removal preserves order), so first appearance in a
// queue is ascending min-ID-in-that-queue. The index therefore keeps
// two order arrays: readOrder (every group with >= 1 queued read,
// ascending by the ID of its oldest read) and writeOrder (likewise
// for writes). modeReads iterates readOrder, modeWrites writeOrder,
// and modeBoth iterates readOrder then the read-free suffix of
// writeOrder — exactly the reference's read-queue-then-write-queue
// first-appearance order.
//
// Maintenance is cheap because IDs are monotone: a request entering a
// group is always its newest member, so a group entering an order
// array goes to the tail (its min ID exceeds every older group's) and
// an enqueue never reorders anything. Removal pops some request —
// when it was the group's oldest of its kind the group's sort key
// grows, so it is deleted at its old key and re-inserted at the new
// one (two binary searches plus memmoves over int32 handles).

// noID is the "no request" sentinel for the per-bank oldest-ID index;
// it compares greater than every real ID.
const noID = ^uint64(0)

// group is one live candidate group: the queued requests targeting a
// single (bankIdx, row), split by kind and held oldest-first, plus
// the group's cached candidate command (see groupOption).
type group struct {
	row    int
	bank   int32 // bankIdx = rank*banks + bank
	rankNo int32 // bank's rank — stored so the hot path never divides
	bankNo int32 // bank number within the rank

	// bankRef and rankRef point at the group's dram bank and rank.
	// dram.Channel never reallocates its Ranks or Banks slices after
	// construction, so the pointers are stable and save the option
	// builder a double slice index per group per tick.
	bankRef *dram.Bank
	rankRef *dram.Rank

	// reads and writes hold the group's queued requests in ascending
	// ID order; index 0 is the group's oldest of that kind.
	//mclint:owns -- groupRemove pops the request from its group at issue/forward time, before its recycle; popGroupReq nils the vacated slot
	reads []*Request
	//mclint:owns -- groupRemove pops the request from its group at issue/coalesce time, before its recycle; popGroupReq nils the vacated slot
	writes []*Request

	// Cached candidate command: the option this group generated last
	// time it was examined. Valid while the representative request and
	// the dram constraint epochs the command's legality depends on are
	// unchanged (bank epoch always; rank ACT epoch for ACTIVATE, the
	// tRRD/tFAW window; channel data epoch for column accesses). The
	// command bus needs no stamp: at option-build time the controller
	// has not issued this cycle, so the bus term of EarliestIssue never
	// exceeds the current cycle and the now >= optAt test is exact (the
	// same argument that lets dram.Channel omit a command-bus epoch).
	cacheOK   bool
	optKind   dram.CommandKind
	optAt     uint64
	repID     uint64
	bankEpoch uint32
	rankEpoch uint32
	dataEpoch uint32
}

// allocGroup takes a group entry from the free list (or grows the
// arena) and initializes it for r's (row, bank). Request slices keep
// their capacity across recycling, so a steady-state controller stops
// allocating entirely; the arena is pre-sized at construction for the
// worst case (one group per queued request).
func (c *Controller) allocGroup(r *Request, bank int32) int32 {
	var h int32
	if n := len(c.grpFree); n > 0 {
		h = c.grpFree[n-1]
		c.grpFree = c.grpFree[:n-1]
	} else {
		c.grp = append(c.grp, group{})
		h = int32(len(c.grp) - 1)
	}
	g := &c.grp[h]
	g.row, g.bank = r.Loc.Row, bank
	g.rankNo, g.bankNo = int32(r.Loc.Rank), int32(r.Loc.Bank)
	g.rankRef = &c.ch.Ranks[r.Loc.Rank]
	g.bankRef = &g.rankRef.Banks[r.Loc.Bank]
	g.reads = g.reads[:0]
	g.writes = g.writes[:0]
	g.cacheOK = false
	return h
}

// groupNote records a freshly enqueued request for the index. The
// work of filing it into its group is deferred to the next option
// build (groupFold): an enqueue into a parked controller must stay
// O(1) and allocation-free, and the index is not consulted until the
// next full tick — a tick that may never come for requests that are
// invisible under the current queue mode (reads during a write
// drain), making eager maintenance pure waste on the park path.
func (c *Controller) groupNote(r *Request) {
	c.grpPending = append(c.grpPending, r)
}

// groupFold drains the enqueue spill list into the index, in arrival
// (ID) order so groupEnqueue's tail-append invariant holds. Called at
// the top of every option build and by VerifyCandidateGroups; nothing
// reads the index before one of those runs.
func (c *Controller) groupFold() {
	if cap(c.grp) == 0 && len(c.grpPending) > 0 {
		// First fold: size the arena for the batch in one allocation
		// instead of growing geometrically through it.
		c.grp = make([]group, 0, len(c.grpPending)) //mclint:alloc-ok -- one-time arena sizing: cap(c.grp)==0 only before the first fold of a controller's life; the arena is reused (grpFree) forever after
	}
	for i, r := range c.grpPending {
		c.groupEnqueue(r)
		c.grpPending[i] = nil
	}
	c.grpPending = c.grpPending[:0]
}

// groupEnqueue adds r to its (bankIdx, row) group, creating the group
// if needed. O(groups in r's bank) for the row lookup — a handful —
// and O(1) for the order arrays: r is the newest request in the
// index, so a group it creates (or gives its first request of r's
// kind) has the largest min-ID key and belongs at the tail.
func (c *Controller) groupEnqueue(r *Request) {
	bk := int32(r.Loc.Rank*c.ch.Geo.Banks + r.Loc.Bank)
	bq := &c.bankQ[bk]
	h := int32(-1)
	for _, gh := range bq.groups {
		if c.grp[gh].row == r.Loc.Row {
			h = gh
			break
		}
	}
	if h < 0 {
		h = c.allocGroup(r, bk)
		bq.groups = append(bq.groups, h)
	}
	g := &c.grp[h]
	if r.Kind.IsWrite() {
		if len(g.writes) == 0 {
			c.writeOrder = append(c.writeOrder, h)
		}
		g.writes = append(g.writes, r)
		if r.ID < c.bankMinWrite[bk] {
			c.bankMinWrite[bk] = r.ID
		}
	} else {
		if len(g.reads) == 0 {
			c.readOrder = append(c.readOrder, h)
		}
		g.reads = append(g.reads, r)
		if r.ID < c.bankMinRead[bk] {
			c.bankMinRead[bk] = r.ID
		}
	}
	// The cached candidate needs no invalidation: it is keyed to the
	// representative's ID, and a representative change is detected at
	// use (groupOption compares repID before trusting the cache).
}

// groupRemove deletes r from its group, repairing the order arrays
// and the per-bank oldest-ID index, and frees the group when it
// empties. The served request is normally its group's oldest of its
// kind (options carry the min-ID representative), making this a head
// pop; any position is handled for robustness.
func (c *Controller) groupRemove(r *Request) {
	bk := int32(r.Loc.Rank*c.ch.Geo.Banks + r.Loc.Bank)
	bq := &c.bankQ[bk]
	h, gi := int32(-1), -1
	for i, gh := range bq.groups {
		if c.grp[gh].row == r.Loc.Row {
			h, gi = gh, i
			break
		}
	}
	if h < 0 {
		panic("memctrl: removing request with no candidate group")
	}
	g := &c.grp[h]
	if r.Kind.IsWrite() {
		oldKey := g.writes[0].ID
		popGroupReq(&g.writes, r)
		if len(g.writes) == 0 {
			c.orderDelete(&c.writeOrder, h, oldKey, true)
		} else if g.writes[0].ID != oldKey {
			c.orderDelete(&c.writeOrder, h, oldKey, true)
			c.orderInsert(&c.writeOrder, h, g.writes[0].ID, true)
		}
		if r.ID == c.bankMinWrite[bk] {
			c.rescanBankMin(bk)
		}
	} else {
		oldKey := g.reads[0].ID
		popGroupReq(&g.reads, r)
		if len(g.reads) == 0 {
			c.orderDelete(&c.readOrder, h, oldKey, false)
		} else if g.reads[0].ID != oldKey {
			c.orderDelete(&c.readOrder, h, oldKey, false)
			c.orderInsert(&c.readOrder, h, g.reads[0].ID, false)
		}
		if r.ID == c.bankMinRead[bk] {
			c.rescanBankMin(bk)
		}
	}
	if len(g.reads) == 0 && len(g.writes) == 0 {
		last := len(bq.groups) - 1
		bq.groups[gi] = bq.groups[last]
		bq.groups = bq.groups[:last]
		c.grpFree = append(c.grpFree, h)
	}
}

// popGroupReq removes r from a group's kind list, preserving ID order
// and clearing the vacated tail slot so recycled requests are not
// pinned by stale capacity.
func popGroupReq(s *[]*Request, r *Request) {
	q := *s
	for i, x := range q {
		if x == r {
			n := len(q)
			copy(q[i:], q[i+1:])
			q[n-1] = nil
			*s = q[:n-1]
			return
		}
	}
	panic("memctrl: request missing from its candidate group")
}

// orderKey returns a group's current sort key in the given order
// array: the ID of its oldest request of that kind.
func (c *Controller) orderKey(h int32, writes bool) uint64 {
	g := &c.grp[h]
	if writes {
		return g.writes[0].ID
	}
	return g.reads[0].ID
}

// orderDelete removes handle h from an order array. oldKey is h's
// sort key at insertion time (its group may already hold a different
// head); every other entry's key is current, so a binary search
// against oldKey lands on h directly. Keys are request IDs and
// therefore unique.
func (c *Controller) orderDelete(order *[]int32, h int32, oldKey uint64, writes bool) {
	s := *order
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		k := oldKey
		if s[mid] != h {
			k = c.orderKey(s[mid], writes)
		}
		if k < oldKey {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s) || s[lo] != h {
		panic("memctrl: candidate group missing from its order array")
	}
	copy(s[lo:], s[lo+1:])
	*order = s[:len(s)-1]
}

// orderInsert places handle h into an order array at its key's sorted
// position.
func (c *Controller) orderInsert(order *[]int32, h int32, key uint64, writes bool) {
	s := *order
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.orderKey(s[mid], writes) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = h
	*order = s
}

// rescanBankMin recomputes one bank's oldest-ID index from its live
// groups — O(groups in the bank), called only when the removed
// request was the bank's oldest of its kind.
func (c *Controller) rescanBankMin(bk int32) {
	bq := &c.bankQ[bk]
	minR, minW := uint64(noID), uint64(noID)
	for _, gh := range bq.groups {
		g := &c.grp[gh]
		if len(g.reads) > 0 && g.reads[0].ID < minR {
			minR = g.reads[0].ID
		}
		if len(g.writes) > 0 && g.writes[0].ID < minW {
			minW = g.writes[0].ID
		}
	}
	c.bankMinRead[bk], c.bankMinWrite[bk] = minR, minW
}

// groupOption regenerates group g's candidate command with rep as its
// representative (the group's oldest considered request) and appends
// it to optBuf when legal at now, returning 1 when the candidate is a
// row hit (legal or not — PendingRowHits counts both). The command
// kind and earliest-issue cycle are cached per group; a cache hit
// costs a few epoch compares and no dram legality call, so a tick in
// which a bank's constraints did not move regenerates that bank's
// options without touching the channel. dataE is c.ch.DataEpoch(),
// hoisted by the caller once per tick. Column commands are the top of
// the CommandKind enum, so kind >= CmdRead tests "row hit" in one
// compare.
func (c *Controller) groupOption(now uint64, g *group, rep *Request, oldest uint64, dataE uint32) int {
	if g.cacheOK && g.repID == rep.ID && g.bankEpoch == g.bankRef.Epoch() &&
		(g.optKind != dram.CmdActivate || g.rankEpoch == g.rankRef.ActEpoch()) &&
		(g.optKind < dram.CmdRead || g.dataEpoch == dataE) {
		if now >= g.optAt {
			c.optBuf = append(c.optBuf, Option{
				Cmd: dram.Command{Kind: g.optKind, Loc: rep.Loc}, Req: rep,
				RowHit: g.optKind >= dram.CmdRead, BankOldestID: oldest,
			})
		}
		if g.optKind >= dram.CmdRead {
			return 1
		}
		return 0
	}
	return c.groupOptionMiss(now, g, rep, oldest)
}

// groupOptionMiss is groupOption's cache-miss path: recompute the
// candidate command through dram and restamp the cache. Split out so
// the hit path above stays small enough to stay cheap per group.
func (c *Controller) groupOptionMiss(now uint64, g *group, rep *Request, oldest uint64) int {
	bank := g.bankRef
	var kind dram.CommandKind
	rowHit := false
	switch {
	case bank.State == dram.BankIdle:
		kind = dram.CmdActivate
	case bank.OpenRow == g.row:
		kind = dram.CmdRead
		if rep.Kind.IsWrite() {
			kind = dram.CmdWrite
		}
		rowHit = true
	default:
		kind = dram.CmdPrecharge
	}
	at := c.ch.EarliestIssue(dram.Command{Kind: kind, Loc: rep.Loc})
	g.cacheOK = true
	g.optKind, g.optAt, g.repID = kind, at, rep.ID
	g.bankEpoch = bank.Epoch()
	g.rankEpoch = g.rankRef.ActEpoch()
	g.dataEpoch = c.ch.DataEpoch()
	if now >= at {
		c.optBuf = append(c.optBuf, Option{
			Cmd: dram.Command{Kind: kind, Loc: rep.Loc}, Req: rep,
			RowHit: rowHit, BankOldestID: oldest,
		})
	}
	if rowHit {
		return 1
	}
	return 0
}
