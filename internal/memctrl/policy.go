package memctrl

import "cloudmc/internal/dram"

// Option is one issuable command the controller offers to the
// scheduling policy this cycle. Every option is legal under DRAM
// timing when offered.
type Option struct {
	// Cmd is the DRAM command.
	Cmd dram.Command
	// Req is the queued request this command advances. For a
	// PRECHARGE generated to resolve a row conflict, Req is the
	// conflicting (waiting) request, not the one that opened the row.
	//mclint:owns -- options live in the controller's per-tick scratch buffer, rebuilt every decision cycle and never read across a tick; a queued request cannot recycle within its tick
	Req *Request
	// RowHit reports that Cmd is a column access to an already-open
	// row.
	RowHit bool
	// BankOldestID is the ID of the oldest request (in the set the
	// controller considered this cycle) targeting the same bank as
	// Cmd. FCFS-style policies use it to enforce per-bank arrival
	// order.
	BankOldestID uint64
}

// View is the controller state a scheduling policy sees when asked to
// pick a command.
type View struct {
	// Now is the current cycle.
	Now uint64
	// Options are the legal commands this cycle. Policies must either
	// return an index into this slice or -1 (issue nothing).
	Options []Option
	// ReadQLen and WriteQLen are the current queue occupancies.
	ReadQLen, WriteQLen int
	// WriteMode reports that the controller is draining writes.
	WriteMode bool
	// PendingRowHits is the number of queued requests (both queues)
	// whose target row is currently open.
	PendingRowHits int
	// Channel identifies the controller's channel.
	Channel int
	// ReadQueue and WriteQueue expose the controller's queues in
	// arrival order. Policies must treat them as read-only; they are
	// valid only for the duration of the Pick call. Policies that need
	// whole-queue visibility (PAR-BS batching) use these.
	//mclint:owns -- aliases of the live queues, valid only within one Pick call; queue membership cannot change (and so nothing can recycle) while the policy holds the View
	ReadQueue, WriteQueue []*Request
}

// OldestOption returns the index of the option whose request is
// oldest, or -1 if there are no options. Policies use it as a common
// building block and as the starvation fallback.
func (v *View) OldestOption() int {
	best := -1
	for i := range v.Options {
		if best == -1 || v.Options[i].Req.ID < v.Options[best].Req.ID {
			best = i
		}
	}
	return best
}

// Policy is a memory scheduling algorithm. The controller computes the
// set of legal commands (Options) each decision cycle; the policy
// chooses among them. Request-level algorithms (FCFS, FR-FCFS, PAR-BS,
// ATLAS) rank options by their associated request; the RL scheduler
// values each command directly.
//
// Fast-forward contract: on cycles where the controller is provably
// inert (no completion due, no legal command, nothing issued), the
// controller may skip the Tick and OnIssue calls entirely. Policies
// for which those calls are NOT no-ops on such cycles — e.g. anything
// with clock-driven state — must implement EventHorizon so the
// controller knows when it must wake up and run them.
//
// Lifetime contract: a *Request is owned by the controller and
// recycled through a free list once its transfer completes. Policies
// may hold the pointer from OnEnqueue until their OnComplete call for
// that request returns, and no longer: after OnComplete the same
// *Request may be reused for an unrelated future enqueue (same
// pointer, new ID/address/tenant). Policies that need per-request
// state past completion must key it by value (Request.ID), never by
// pointer. (All shipped policies drop the pointer in OnComplete;
// PAR-BS re-reads the queues from View each Pick.)
type Policy interface {
	// Name returns the algorithm name used in reports.
	Name() string
	// Pick returns the index of the option to issue, or -1 to issue
	// nothing this cycle.
	Pick(v *View) int
	// OnEnqueue is called when a request enters a queue.
	OnEnqueue(r *Request, now uint64)
	// OnComplete is called when a request's data transfer completes.
	OnComplete(r *Request, now uint64)
	// OnIssue is called after the controller issues the picked
	// command; issued reports what was actually sent (it may be a
	// forced write-drain command rather than the policy's pick).
	OnIssue(v *View, picked int, issued dram.Command, now uint64)
	// Tick is called once per controller cycle before Pick, for
	// policies with time-based state (ATLAS quanta, RL exploration).
	Tick(now uint64)
}

// EventHorizon is implemented by scheduling policies with
// clock-driven state changes (the ATLAS quantum rollover).
// NextPolicyEvent returns the next cycle at which the policy's Tick
// must observe the clock even if the controller is otherwise inert;
// the fast-forward engine never skips past it. Policies without timed
// state need not implement the interface.
//
// Contract: OnEnqueue must not move NextPolicyEvent earlier. An
// enqueue into a parked controller re-arms the established horizon in
// O(1) from the new request's own command and does not re-read the
// policy event until the next full tick; a policy that advanced its
// event inside OnEnqueue could therefore be woken late. (All shipped
// policies keep OnEnqueue stateless; sched's horizon tests pin this.)
type EventHorizon interface {
	NextPolicyEvent(now uint64) uint64
}

// WriteAware is implemented by policies that schedule writes as
// first-class actions (the RL scheduler). For such policies the
// controller offers read and write options together every cycle
// instead of alternating between read mode and write-drain mode.
type WriteAware interface {
	ConsidersWrites() bool
}

// considersWrites reports whether p opts into mixed read/write views.
func considersWrites(p Policy) bool {
	wa, ok := p.(WriteAware)
	return ok && wa.ConsidersWrites()
}
