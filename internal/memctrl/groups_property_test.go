package memctrl_test

import (
	"math/rand"
	"os"
	"testing"

	"cloudmc/internal/dram"
	"cloudmc/internal/memctrl"
	"cloudmc/internal/pagepolicy"
	"cloudmc/internal/sched"
)

// This file is the correctness suite of the incremental candidate-
// group index: a randomized request stream drives one controller
// through enqueues, serves, write-mode flips, and page-policy row
// transitions, and VerifyCandidateGroups re-derives the full index
// from scratch between ticks — structural invariants first, then the
// incremental buildOptions output (options, order, PendingRowHits,
// BankOldestID) compared bit for bit against buildOptionsRef, the
// preserved straight-port rebuild. It lives in the external test
// package so it can sweep the real schedulers (sched imports memctrl).

// groupsHarness replays one randomized stream and verifies the group
// index every checkEvery cycles. The stream mirrors the horizon
// harness: bursty arrivals, few rows (hits and conflicts), and a
// write fraction high enough to flip drain mode back and forth.
func groupsHarness(t *testing.T, seed int64, cycles uint64, checkEvery uint64,
	mkPolicy func() memctrl.Policy, mkPage func() pagepolicy.Policy) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	geo := dram.Geometry{
		Channels: 1,
		Ranks:    1 + rng.Intn(2),
		Banks:    2 << rng.Intn(3), // 2, 4 or 8
		Rows:     1 << 10, Columns: 32, BlockBytes: 64,
	}
	cfg := memctrl.DefaultConfig()
	cfg.ReadQueueCap = 8 + rng.Intn(57)
	cfg.WriteQueueCap = 8 + rng.Intn(57)
	cfg.WriteHi = 1 + rng.Intn(cfg.WriteQueueCap)
	cfg.WriteLo = rng.Intn(cfg.WriteHi)

	ctl, err := memctrl.New(cfg, dram.NewChannel(0, geo, dram.DDR3_1600()), mkPolicy(), mkPage())
	if err != nil {
		t.Fatal(err)
	}
	ctl.SetFastForward(true)

	enqProb := 0.05 + rng.Float64()*0.3
	writeFrac := rng.Float64() * 0.8
	for now := uint64(0); now < cycles; now++ {
		if rng.Float64() < enqProb {
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				loc := dram.Location{
					Channel: 0,
					Rank:    rng.Intn(geo.Ranks),
					Bank:    rng.Intn(geo.Banks),
					Row:     rng.Intn(4), // few rows: conflicts and hits
					Column:  rng.Intn(geo.Columns),
				}
				addr := uint64(now)<<32 | uint64(rng.Intn(1<<16))<<6
				src := memctrl.Source{Core: rng.Intn(4), Tenant: -1}
				if rng.Float64() < writeFrac {
					ctl.EnqueueWrite(now, src, addr, loc, nil)
				} else {
					ctl.EnqueueRead(now, src, addr, loc, memctrl.ReadDemand, nil)
				}
			}
		}
		// Between ticks — before any command has been issued at cycle
		// now — the index must reproduce the reference rebuild exactly.
		if now%checkEvery == 0 {
			if err := ctl.VerifyCandidateGroups(now); err != nil {
				t.Fatalf("cycle %d: %v", now, err)
			}
		}
		ctl.Tick(now)
	}
	if err := ctl.VerifyCandidateGroups(cycles); err != nil {
		t.Fatalf("final (cycle %d): %v", cycles, err)
	}
}

// groupsMatrix is the scheduler × page-policy sweep shared by the PR
// suite and the nightly soak: every studied scheduler (the QoS
// partitioner is exercised through its own suite) against every page
// policy, including the stateful predictive ones whose row
// transitions the index must track.
func groupsMatrix(t *testing.T, cycles, checkEvery uint64) {
	pages := map[string]func() pagepolicy.Policy{
		"open":          func() pagepolicy.Policy { return pagepolicy.NewOpen() },
		"close":         func() pagepolicy.Policy { return pagepolicy.NewClose() },
		"openadaptive":  func() pagepolicy.Policy { return pagepolicy.NewOpenAdaptive() },
		"closeadaptive": func() pagepolicy.Policy { return pagepolicy.NewCloseAdaptive() },
		"rbpp":          func() pagepolicy.Policy { return pagepolicy.NewRBPP(4) },
		"abpp":          func() pagepolicy.Policy { return pagepolicy.NewABPP(4) },
	}
	seed := int64(137)
	for _, kind := range sched.Kinds {
		factory := sched.NewFactoryOpts(kind, sched.Opts{Cores: 4, Seed: 99})
		for gname, mkPage := range pages {
			seed++
			s := seed
			t.Run(kind.String()+"/"+gname, func(t *testing.T) {
				groupsHarness(t, s, cycles, checkEvery,
					func() memctrl.Policy { return factory(0) }, mkPage)
			})
		}
	}
}

// TestCandidateGroupsDifferential pins the incremental option builder
// to the straight-port reference across the full scheduler × page-
// policy matrix on a randomized stream.
func TestCandidateGroupsDifferential(t *testing.T) {
	cycles := uint64(6_000)
	if testing.Short() {
		cycles = 1_500
	}
	groupsMatrix(t, cycles, 1)
}

// TestNightlyCandidateGroupsSoak is the extended soak: much longer
// streams with sparser verification (the structural pass is O(queue)
// per call), unlocked by MCSIM_NIGHTLY=1 like the core nightly suite.
func TestNightlyCandidateGroupsSoak(t *testing.T) {
	if os.Getenv("MCSIM_NIGHTLY") == "" {
		t.Skip("nightly soak; set MCSIM_NIGHTLY=1 to run")
	}
	cycles := uint64(400_000)
	if testing.Short() {
		cycles = 100_000
	}
	groupsMatrix(t, cycles, 7)
}
