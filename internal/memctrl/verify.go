package memctrl

import (
	"fmt"

	"cloudmc/internal/dram"
)

// This file is diagnostic/test support for the event-horizon machinery:
// a brute-force, cycle-by-cycle re-derivation of "when could this
// parked controller act" from the raw legality rules, independent of
// the per-bank horizon cache and of dram.Channel.EarliestIssue. The
// exactness property suites (memctrl horizon tests and the core
// kernel differential tests) call it whenever a controller parks or
// re-arms; production code never does.

// ParkHorizon returns the controller's established event horizon: the
// earliest future cycle at which its state can change, or 0 when the
// horizon is unknown and the next tick runs in full. In-flight
// completions are not part of it (NextEvent folds those in).
func (c *Controller) ParkHorizon() uint64 { return c.wakeAt }

// VerifyParkHorizon checks that the event horizon established at
// cycle now is exact, by replaying the parked window cycle by cycle
// against dram.Channel.CanIssue:
//
//   - never late: no queued request's next command, no surviving
//     pending close and no policy event becomes actionable strictly
//     before wakeAt;
//   - never early: at wakeAt itself something is actionable (unless
//     the horizon is Never or was clamped to now+1, where there is no
//     skipped window to verify).
//
// The scan is capped at maxScan cycles past now; a horizon further
// out than the cap is only checked for lateness within the cap. The
// check is pure — no controller, policy or device state is mutated —
// so tests can call it at every park without perturbing the replay.
func (c *Controller) VerifyParkHorizon(now uint64, maxScan uint64) error {
	if !c.fastPath || c.wakeAt == 0 || c.wakeAt <= now+1 {
		return nil // hot or unknown: no skipped window
	}

	// actionable reports whether any option (or surviving pending
	// close) would be legal at cycle t, from the same queue selection
	// the parking fold used and the same per-request commands
	// buildOptions would generate. Bank and queue state are frozen
	// while parked, so evaluating the predicate at future t against
	// current state is exactly what the per-cycle loop would see.
	actionable := func(t uint64) bool {
		check := func(q []*Request) bool {
			for _, r := range q {
				if c.ch.CanIssue(t, c.commandFor(r)) {
					return true
				}
			}
			return false
		}
		if c.parkMode != modeWrites && check(c.readQ) {
			return true
		}
		if c.parkMode != modeReads && check(c.writeQ) {
			return true
		}
		for b, pending := range c.pendingClose {
			if !pending {
				continue
			}
			rank := b / c.ch.Geo.Banks
			bankNo := b % c.ch.Geo.Banks
			bank := c.ch.Bank(rank, bankNo)
			if bank.State != dram.BankActive {
				continue
			}
			cmd := dram.Command{Kind: dram.CmdPrecharge, Loc: dram.Location{
				Channel: c.ch.ID, Rank: rank, Bank: bankNo, Row: bank.OpenRow,
			}}
			if c.ch.CanIssue(t, cmd) {
				return true
			}
		}
		return false
	}

	policyEvent := uint64(dram.Never)
	if eh, ok := c.policy.(EventHorizon); ok {
		policyEvent = eh.NextPolicyEvent(now)
	}

	limit := c.wakeAt
	capped := false
	if maxScan > 0 && limit-now > maxScan {
		limit = now + maxScan
		capped = true
	}
	for t := now + 1; t < limit; t++ {
		if actionable(t) {
			return fmt.Errorf("memctrl: late horizon: actionable at cycle %d but parked until %d (established at %d)", t, c.wakeAt, now)
		}
		if policyEvent <= t {
			return fmt.Errorf("memctrl: late horizon: policy event at %d but parked until %d (established at %d)", policyEvent, c.wakeAt, now)
		}
	}
	if capped || c.wakeAt == dram.Never {
		return nil
	}
	if !actionable(c.wakeAt) && policyEvent != c.wakeAt {
		return fmt.Errorf("memctrl: early horizon: nothing actionable at wake cycle %d (established at %d)", c.wakeAt, now)
	}
	return nil
}

// VerifyCandidateGroups checks the incremental candidate-group index
// (groups.go) against first principles: the structural invariants the
// maintenance paths promise, then a behavioral comparison of
// buildOptions against buildOptionsRef, the preserved straight-port
// rebuild. It is the group-index twin of VerifyParkHorizon; the
// property suites call it between ticks, production code never does.
//
// Precondition: call at a cycle boundary, before any command has been
// issued at cycle now. The cached-legality argument (see group's
// cacheOK comment) relies on the command bus being untouched this
// cycle; calling mid-tick after an issue can report false mismatches.
// The check folds pending enqueues and refreshes the per-group caches
// and c.view — all state the next tick would recompute anyway — but
// issues nothing and consults no policy.
func (c *Controller) VerifyCandidateGroups(now uint64) error {
	c.groupFold()

	// Structural pass. Live handles are the ones reachable from the
	// per-bank group lists; together with the free list they must
	// partition the arena.
	live := make(map[int32]int32, len(c.grp)) // handle -> bankIdx
	rows := make(map[int64]bool)              // bankIdx<<32|row dedup
	for bk := range c.bankQ {
		for _, h := range c.bankQ[bk].groups {
			if h < 0 || int(h) >= len(c.grp) {
				return fmt.Errorf("memctrl: groups: bank %d lists out-of-range handle %d", bk, h)
			}
			if _, ok := live[h]; ok {
				return fmt.Errorf("memctrl: groups: handle %d listed by two banks", h)
			}
			live[h] = int32(bk)
			g := &c.grp[h]
			if g.bank != int32(bk) {
				return fmt.Errorf("memctrl: groups: handle %d in bank %d claims bank %d", h, bk, g.bank)
			}
			if int(g.rankNo)*c.ch.Geo.Banks+int(g.bankNo) != bk {
				return fmt.Errorf("memctrl: groups: handle %d rank/bank %d/%d disagrees with bank index %d", h, g.rankNo, g.bankNo, bk)
			}
			if g.bankRef != c.ch.Bank(int(g.rankNo), int(g.bankNo)) || g.rankRef != &c.ch.Ranks[g.rankNo] {
				return fmt.Errorf("memctrl: groups: handle %d has stale bank/rank pointers", h)
			}
			if len(g.reads) == 0 && len(g.writes) == 0 {
				return fmt.Errorf("memctrl: groups: handle %d is live but empty", h)
			}
			key := int64(g.bank)<<32 | int64(int32(g.row))
			if rows[key] {
				return fmt.Errorf("memctrl: groups: bank %d row %d has two groups", bk, g.row)
			}
			rows[key] = true
			for _, lst := range [][]*Request{g.reads, g.writes} {
				for i, r := range lst {
					if r.Loc.Row != g.row || r.Loc.Rank != int(g.rankNo) || r.Loc.Bank != int(g.bankNo) {
						return fmt.Errorf("memctrl: groups: request %d filed in wrong group (bank %d row %d)", r.ID, bk, g.row)
					}
					if i > 0 && lst[i-1].ID >= r.ID {
						return fmt.Errorf("memctrl: groups: handle %d list not ID-ascending at request %d", h, r.ID)
					}
				}
			}
		}
	}
	for _, h := range c.grpFree {
		if h < 0 || int(h) >= len(c.grp) {
			return fmt.Errorf("memctrl: groups: free list holds out-of-range handle %d", h)
		}
		if _, ok := live[h]; ok {
			return fmt.Errorf("memctrl: groups: handle %d is both live and free", h)
		}
	}
	if len(live)+len(c.grpFree) != len(c.grp) {
		return fmt.Errorf("memctrl: groups: arena of %d entries splits into %d live + %d free", len(c.grp), len(live), len(c.grpFree))
	}

	// Every queued request must be filed in its group's kind list, and
	// the totals must match (so no group holds a stale extra).
	nFiled := 0
	for h := range live { //mclint:order-insensitive -- summing sizes
		nFiled += len(c.grp[h].reads) + len(c.grp[h].writes)
	}
	if nFiled != len(c.readQ)+len(c.writeQ) {
		return fmt.Errorf("memctrl: groups: %d requests filed, %d queued", nFiled, len(c.readQ)+len(c.writeQ))
	}
	find := func(r *Request) error {
		bk := int32(r.Loc.Rank*c.ch.Geo.Banks + r.Loc.Bank)
		for _, h := range c.bankQ[bk].groups {
			g := &c.grp[h]
			if g.row != r.Loc.Row {
				continue
			}
			lst := g.reads
			if r.Kind.IsWrite() {
				lst = g.writes
			}
			for _, x := range lst {
				if x == r {
					return nil
				}
			}
		}
		return fmt.Errorf("memctrl: groups: queued request %d not filed in any group", r.ID)
	}
	for _, r := range c.readQ {
		if err := find(r); err != nil {
			return err
		}
	}
	for _, r := range c.writeQ {
		if err := find(r); err != nil {
			return err
		}
	}

	// Order arrays: exactly the groups holding that kind, ascending by
	// oldest-member ID.
	checkOrder := func(name string, order []int32, writes bool) error {
		seen := make(map[int32]bool, len(order))
		prev := uint64(0)
		for i, h := range order {
			if _, ok := live[h]; !ok {
				return fmt.Errorf("memctrl: groups: %s holds dead handle %d", name, h)
			}
			if seen[h] {
				return fmt.Errorf("memctrl: groups: %s holds handle %d twice", name, h)
			}
			seen[h] = true
			key := c.orderKey(h, writes)
			if i > 0 && key <= prev {
				return fmt.Errorf("memctrl: groups: %s not key-ascending at handle %d", name, h)
			}
			prev = key
		}
		want := 0
		for h := range live { //mclint:order-insensitive -- membership count; order picks at most which error reports first
			n := len(c.grp[h].reads)
			if writes {
				n = len(c.grp[h].writes)
			}
			if n > 0 {
				want++
				if !seen[h] {
					return fmt.Errorf("memctrl: groups: handle %d missing from %s", h, name)
				}
			}
		}
		if want != len(order) {
			return fmt.Errorf("memctrl: groups: %s lists %d groups, want %d", name, len(order), want)
		}
		return nil
	}
	if err := checkOrder("readOrder", c.readOrder, false); err != nil {
		return err
	}
	if err := checkOrder("writeOrder", c.writeOrder, true); err != nil {
		return err
	}

	// Per-bank oldest-ID index.
	for bk := range c.bankQ {
		minR, minW := uint64(noID), uint64(noID)
		for _, h := range c.bankQ[bk].groups {
			g := &c.grp[h]
			if len(g.reads) > 0 && g.reads[0].ID < minR {
				minR = g.reads[0].ID
			}
			if len(g.writes) > 0 && g.writes[0].ID < minW {
				minW = g.writes[0].ID
			}
		}
		if c.bankMinRead[bk] != minR || c.bankMinWrite[bk] != minW {
			return fmt.Errorf("memctrl: groups: bank %d oldest-ID index (%d, %d), want (%d, %d)",
				bk, c.bankMinRead[bk], c.bankMinWrite[bk], minR, minW)
		}
	}

	// Behavioral pass: the incremental build must reproduce the
	// reference rebuild bit for bit, in every queue-selection mode the
	// current state can express.
	for _, mixed := range []bool{false, true} {
		ref, refHits := c.buildOptionsRef(now, mixed)
		c.buildOptions(now, mixed)
		got, gotHits := c.view.Options, c.view.PendingRowHits
		if len(got) != len(ref) {
			return fmt.Errorf("memctrl: groups: mixed=%v: %d options, reference built %d", mixed, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				return fmt.Errorf("memctrl: groups: mixed=%v: option %d = %+v, reference built %+v", mixed, i, got[i], ref[i])
			}
		}
		if gotHits != refHits {
			return fmt.Errorf("memctrl: groups: mixed=%v: PendingRowHits %d, reference counted %d", mixed, gotHits, refHits)
		}
	}
	return nil
}
