package memctrl

import (
	"fmt"

	"cloudmc/internal/dram"
)

// This file is diagnostic/test support for the event-horizon machinery:
// a brute-force, cycle-by-cycle re-derivation of "when could this
// parked controller act" from the raw legality rules, independent of
// the per-bank horizon cache and of dram.Channel.EarliestIssue. The
// exactness property suites (memctrl horizon tests and the core
// kernel differential tests) call it whenever a controller parks or
// re-arms; production code never does.

// ParkHorizon returns the controller's established event horizon: the
// earliest future cycle at which its state can change, or 0 when the
// horizon is unknown and the next tick runs in full. In-flight
// completions are not part of it (NextEvent folds those in).
func (c *Controller) ParkHorizon() uint64 { return c.wakeAt }

// VerifyParkHorizon checks that the event horizon established at
// cycle now is exact, by replaying the parked window cycle by cycle
// against dram.Channel.CanIssue:
//
//   - never late: no queued request's next command, no surviving
//     pending close and no policy event becomes actionable strictly
//     before wakeAt;
//   - never early: at wakeAt itself something is actionable (unless
//     the horizon is Never or was clamped to now+1, where there is no
//     skipped window to verify).
//
// The scan is capped at maxScan cycles past now; a horizon further
// out than the cap is only checked for lateness within the cap. The
// check is pure — no controller, policy or device state is mutated —
// so tests can call it at every park without perturbing the replay.
func (c *Controller) VerifyParkHorizon(now uint64, maxScan uint64) error {
	if !c.fastPath || c.wakeAt == 0 || c.wakeAt <= now+1 {
		return nil // hot or unknown: no skipped window
	}

	// actionable reports whether any option (or surviving pending
	// close) would be legal at cycle t, from the same queue selection
	// the parking fold used and the same per-request commands
	// buildOptions would generate. Bank and queue state are frozen
	// while parked, so evaluating the predicate at future t against
	// current state is exactly what the per-cycle loop would see.
	actionable := func(t uint64) bool {
		check := func(q []*Request) bool {
			for _, r := range q {
				if c.ch.CanIssue(t, c.commandFor(r)) {
					return true
				}
			}
			return false
		}
		if c.parkMode != modeWrites && check(c.readQ) {
			return true
		}
		if c.parkMode != modeReads && check(c.writeQ) {
			return true
		}
		for b, pending := range c.pendingClose {
			if !pending {
				continue
			}
			rank := b / c.ch.Geo.Banks
			bankNo := b % c.ch.Geo.Banks
			bank := c.ch.Bank(rank, bankNo)
			if bank.State != dram.BankActive {
				continue
			}
			cmd := dram.Command{Kind: dram.CmdPrecharge, Loc: dram.Location{
				Channel: c.ch.ID, Rank: rank, Bank: bankNo, Row: bank.OpenRow,
			}}
			if c.ch.CanIssue(t, cmd) {
				return true
			}
		}
		return false
	}

	policyEvent := uint64(dram.Never)
	if eh, ok := c.policy.(EventHorizon); ok {
		policyEvent = eh.NextPolicyEvent(now)
	}

	limit := c.wakeAt
	capped := false
	if maxScan > 0 && limit-now > maxScan {
		limit = now + maxScan
		capped = true
	}
	for t := now + 1; t < limit; t++ {
		if actionable(t) {
			return fmt.Errorf("memctrl: late horizon: actionable at cycle %d but parked until %d (established at %d)", t, c.wakeAt, now)
		}
		if policyEvent <= t {
			return fmt.Errorf("memctrl: late horizon: policy event at %d but parked until %d (established at %d)", policyEvent, c.wakeAt, now)
		}
	}
	if capped || c.wakeAt == dram.Never {
		return nil
	}
	if !actionable(c.wakeAt) && policyEvent != c.wakeAt {
		return fmt.Errorf("memctrl: early horizon: nothing actionable at wake cycle %d (established at %d)", c.wakeAt, now)
	}
	return nil
}
