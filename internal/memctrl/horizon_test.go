package memctrl

import (
	"testing"

	"cloudmc/internal/dram"
	"cloudmc/internal/pagepolicy"
)

// TestControllerNextEventSparse checks the horizon against a scripted
// sparse workload where no arrivals occur inside skipped windows: the
// fast-forwarding run must issue and complete everything at the same
// cycles as the per-cycle run.
func TestControllerNextEventSparse(t *testing.T) {
	type arrival struct {
		at    uint64
		l     dram.Location
		write bool
	}
	arrivals := []arrival{
		{at: 0, l: rloc(0, 0, 5, 0)},
		{at: 3, l: rloc(0, 0, 5, 1)},   // row hit behind the first
		{at: 7, l: rloc(0, 1, 9, 0)},   // bank parallelism
		{at: 400, l: rloc(1, 2, 3, 0)}, // long idle gap before
		{at: 410, l: rloc(1, 2, 4, 0)}, // conflict: needs precharge
		{at: 900, l: rloc(0, 3, 1, 0), write: true},
		{at: 905, l: rloc(0, 0, 5, 2)},  // reopens earlier row
		{at: 2500, l: rloc(1, 0, 8, 0)}, // another idle stretch
	}
	run := func(fast bool) ([]uint64, *Controller) {
		ctl := testController(t, frPolicy{}, pagepolicy.NewOpenAdaptive())
		ctl.SetFastForward(fast)
		var completions []uint64
		idx := 0
		now := uint64(0)
		const end = 6000
		for now < end {
			for idx < len(arrivals) && arrivals[idx].at == now {
				a := arrivals[idx]
				if a.write {
					if !ctl.EnqueueWrite(now, Source{Core: 0}, addrFor(a.l), a.l, func(at uint64) { completions = append(completions, at) }) {
						t.Fatal("write rejected")
					}
				} else {
					if !ctl.EnqueueRead(now, Source{Core: 0}, addrFor(a.l), a.l, ReadDemand, func(at uint64) { completions = append(completions, at) }) {
						t.Fatal("read rejected")
					}
				}
				idx++
			}
			ctl.Tick(now)
			if !fast {
				now++
				continue
			}
			next := ctl.NextEvent(now + 1)
			if next <= now {
				t.Fatalf("NextEvent stuck at %d", now)
			}
			// Never skip past the next scripted arrival.
			if idx < len(arrivals) && next > arrivals[idx].at {
				next = arrivals[idx].at
			}
			if next > end {
				next = end
			}
			now = next
		}
		return completions, ctl
	}

	naiveDone, naiveCtl := run(false)
	fastDone, fastCtl := run(true)

	if len(naiveDone) != len(fastDone) {
		t.Fatalf("completion counts differ: naive %d, fast %d", len(naiveDone), len(fastDone))
	}
	for i := range naiveDone {
		if naiveDone[i] != fastDone[i] {
			t.Fatalf("completion %d at cycle %d (naive) vs %d (fast)", i, naiveDone[i], fastDone[i])
		}
	}
	ns, fs := &naiveCtl.Stats, &fastCtl.Stats
	if ns.ReadsServed != fs.ReadsServed || ns.WritesServed != fs.WritesServed ||
		ns.RowHits != fs.RowHits || ns.RowMisses != fs.RowMisses || ns.RowConflicts != fs.RowConflicts ||
		ns.PolicyCloses != fs.PolicyCloses || ns.ConflictCloses != fs.ConflictCloses {
		t.Fatalf("served/classification stats diverged:\nnaive: %+v\nfast:  %+v", ns, fs)
	}
	if ns.ReadLatency.Mean() != fs.ReadLatency.Mean() {
		t.Fatalf("latency diverged: naive %v, fast %v", ns.ReadLatency.Mean(), fs.ReadLatency.Mean())
	}
	const end = 6000
	if ns.ReadQ.Average(end) != fs.ReadQ.Average(end) || ns.WriteQ.Average(end) != fs.WriteQ.Average(end) {
		t.Fatalf("queue averages diverged: naive %v/%v, fast %v/%v",
			ns.ReadQ.Average(end), ns.WriteQ.Average(end), fs.ReadQ.Average(end), fs.WriteQ.Average(end))
	}
	if fastCtl.NextEvent(end) == end {
		t.Fatal("idle controller should report a future (or Never) event horizon")
	}
}

// TestNextEventIdleController pins the trivial horizons: a quiescent
// controller reports Never-like horizons, a freshly enqueued request
// resets them to now.
func TestNextEventIdleController(t *testing.T) {
	ctl := testController(t, frPolicy{}, pagepolicy.NewOpen())
	ctl.SetFastForward(true)
	ctl.Tick(0)
	if got := ctl.NextEvent(1); got == 1 {
		t.Fatal("empty controller must not demand a tick every cycle")
	}
	l := rloc(0, 0, 1, 0)
	ctl.EnqueueRead(5, Source{Core: 0}, addrFor(l), l, ReadDemand, nil)
	if got := ctl.NextEvent(5); got != 5 {
		t.Fatalf("enqueue must reset the horizon: NextEvent = %d, want 5", got)
	}
	// With the fast path disabled the controller always ticks.
	ctl.SetFastForward(false)
	if got := ctl.NextEvent(9); got != 9 {
		t.Fatalf("naive controller NextEvent = %d, want 9", got)
	}
}
