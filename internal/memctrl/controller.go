package memctrl

import (
	"fmt"
	"math/bits"

	"cloudmc/internal/dram"
	"cloudmc/internal/pagepolicy"
	"cloudmc/internal/stats"
)

// Config holds the controller's queue and write-drain parameters.
type Config struct {
	// ReadQueueCap and WriteQueueCap bound the queues; enqueue fails
	// (backpressure) when full.
	ReadQueueCap  int
	WriteQueueCap int
	// WriteHi and WriteLo are the write-drain watermarks: the
	// controller switches to draining writes when the write queue
	// reaches WriteHi and back to reads when it falls to WriteLo.
	WriteHi int
	WriteLo int
	// ForwardLatency is the latency of serving a read straight from
	// the write queue (store-to-load forwarding inside the MC).
	ForwardLatency int
}

// DefaultConfig returns the queue configuration used by the study:
// queues sized comfortably above the occupancies the paper observes
// (§4.1.3 reports at most 10 reads and 50 writes outstanding).
func DefaultConfig() Config {
	return Config{
		ReadQueueCap:   64,
		WriteQueueCap:  64,
		WriteHi:        40,
		WriteLo:        16,
		ForwardLatency: 4,
	}
}

// Validate reports an error for inconsistent parameters.
func (c Config) Validate() error {
	if c.ReadQueueCap <= 0 || c.WriteQueueCap <= 0 {
		return fmt.Errorf("memctrl: queue capacities must be positive (read %d, write %d)", c.ReadQueueCap, c.WriteQueueCap)
	}
	if c.WriteHi <= 0 || c.WriteHi > c.WriteQueueCap {
		return fmt.Errorf("memctrl: WriteHi %d out of range (cap %d)", c.WriteHi, c.WriteQueueCap)
	}
	if c.WriteLo < 0 || c.WriteLo >= c.WriteHi {
		return fmt.Errorf("memctrl: WriteLo %d must be in [0, WriteHi)", c.WriteLo)
	}
	if c.ForwardLatency < 1 {
		return fmt.Errorf("memctrl: ForwardLatency must be >= 1")
	}
	return nil
}

// Stats accumulates controller-level statistics over a measurement
// window.
type Stats struct {
	// ReadsServed and WritesServed count completed transfers.
	ReadsServed  uint64
	WritesServed uint64
	// RowHits/RowMisses/RowConflicts classify every column access:
	// hit = served from an already-open row; miss = required an
	// activation of an idle bank; conflict = required closing another
	// row first.
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
	// ReadLatency tracks queue+service latency of reads (arrival at
	// the controller to last data beat).
	ReadLatency stats.LatencyHist
	// ReadQ and WriteQ are time-weighted queue-occupancy trackers.
	ReadQ  stats.TimeWeighted
	WriteQ stats.TimeWeighted
	// ForwardedReads counts reads served from the write queue.
	ForwardedReads uint64
	// EnqueueFailures counts rejected enqueues (backpressure).
	EnqueueFailures uint64
	// PolicyCloses counts precharges issued by the page policy;
	// ConflictCloses counts precharges forced by conflicting requests.
	PolicyCloses   uint64
	ConflictCloses uint64
	// Parks counts ticks that parked the controller behind a
	// multi-cycle event horizon; Wakes counts full ticks that ended
	// such a parked window. Engine telemetry for the obs recorder, not
	// architecture: both stay zero with the fast path off, and neither
	// feeds core.Metrics, so the bit-identity suites ignore them.
	Parks uint64
	Wakes uint64
}

// RowHitRate returns hits / (hits + misses + conflicts).
func (s *Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// TenantStats accumulates one tenant's share of the controller
// statistics; enabled by TrackTenants and indexed by Request.Tenant.
type TenantStats struct {
	// ReadsServed and WritesServed count completed transfers.
	ReadsServed  uint64
	WritesServed uint64
	// ReadLatencySum is the summed queue+service latency of the
	// tenant's served reads (divide by ReadsServed for the mean).
	ReadLatencySum uint64
	// RowHits/RowMisses/RowConflicts classify the tenant's column
	// accesses like the controller-wide counters.
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
}

// RowHitRate returns hits / (hits + misses + conflicts).
func (s *TenantStats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// completion is an in-flight data transfer.
type completion struct {
	at uint64
	//mclint:owns -- the retire loop pops the completion and recycles its request in the same iteration; nothing reads the slot afterwards (inflightHd advances past it)
	req *Request
}

// CommandTrace receives every DRAM command the controller issues —
// the command-level observability hook. Implementations must not
// mutate controller or channel state; the simulation must stay
// bit-identical with or without a trace attached. tenant is the
// issuing request's tenant index, or -1 for commands without an
// attributable requester (page-policy precharges on idle cycles).
// For precharges the command's Loc.Row is the row being closed.
// Reads forwarded from the write queue never touch DRAM and are
// therefore not traced.
//
// Under the sharded kernel (core.Config.Workers > 1) controllers of
// different channels tick concurrently, so an implementation shared
// across channels must be safe for concurrent Command calls
// (obs.TraceWriter locks internally). Calls for one channel are
// always serialized; cross-channel line order in a shared sink is
// scheduling-dependent, which is why consumers sort by the
// documented (cycle, channel) key — a total order, since a
// controller issues at most one command per cycle.
type CommandTrace interface {
	Command(now uint64, cmd dram.Command, tenant int)
}

// Controller is one per-channel memory controller.
type Controller struct {
	cfg    Config
	ch     *dram.Channel
	policy Policy
	page   pagepolicy.Policy
	// pagePure records whether page's ShouldClose is a pure function
	// of its context (pagepolicy.IsPure); it widens the enqueue fast
	// path (see noteEnqueue).
	pagePure bool

	//mclint:owns -- a request leaves readQ at issue/forward time (removeRequest), strictly before its recycle in Tick step 1
	readQ []*Request
	//mclint:owns -- a request leaves writeQ at issue or coalesce time (removeRequest), strictly before its recycle in Tick step 1
	writeQ []*Request

	// writeByAddr indexes the write queue by block address: the
	// read-forwarding and write-coalescing checks every enqueue runs
	// are point lookups here instead of O(writeQ) scans. Addresses
	// are unique within the queue (coalescing guarantees it), and the
	// map is only ever probed — never iterated — so it introduces no
	// ordering sensitivity.
	//mclint:owns -- the entry is deleted when its write issues (issue deletes by Addr), before the request can recycle; debug builds assert residue at the recycle point (assertRecycleClean)
	writeByAddr map[uint64]*Request

	// inflight holds issued column accesses ordered by completion
	// time (insertion keeps it sorted; it stays tiny). It is a
	// head-indexed ring: retiring advances inflightHd instead of
	// reslicing, so the backing array's capacity is reused forever
	// rather than creeping forward and reallocating.
	inflight   []completion
	inflightHd int

	// freeReq recycles Request structs: a request retired in Tick
	// step 1 goes back on the list and the next enqueue reuses it, so
	// the steady-state busy path allocates nothing. Safe because the
	// controller owns the full lifecycle — requests leave every queue,
	// bucket and group at issue time, policies do not retain pointers
	// past OnComplete (the Policy contract), and OnDone callbacks
	// receive only the completion cycle.
	//mclint:owns -- freeReq IS the free list; entering it is the recycle point itself
	freeReq []*Request

	writeMode bool
	nextID    uint64

	// pendingClose marks banks whose open row the page policy has
	// decided to precharge once timing allows; indexed rank*banks+bank.
	// All writes go through setPendingClose so the per-bank horizon
	// cache and the pendingCloseN count stay coherent.
	pendingClose []bool
	// pendingCloseN counts set pendingClose flags. While it is
	// non-zero an enqueue falls back to a full wake-up tick, which
	// keeps the page policy's ShouldClose re-validation schedule (a
	// stateful call for the predictive policies) bit-identical to the
	// pre-bank-granular engine.
	pendingCloseN int

	// fastPath enables the event-horizon tick skip; off, Tick runs its
	// full body every cycle exactly like the original lockstep loop.
	fastPath bool
	// wakeAt is the event horizon: the earliest future cycle at which
	// this controller's state can change (a command becoming legal, a
	// pending page-policy close, or a timed policy event). While
	// now < wakeAt and no in-flight transfer completes, Tick is a
	// provable no-op and returns immediately. Zero means "unknown —
	// run the full tick". An enqueue into a parked controller usually
	// lowers it in O(1) (see noteEnqueue) instead of resetting it.
	wakeAt uint64
	// parkMode is the queue-selection mode (modeReads/modeWrites/
	// modeBoth) the horizon fold used when wakeAt was established by
	// idleHorizon. It is consulted only while wakeAt > now, which
	// implies it was recorded by the parking tick (the hot path's
	// wakeAt = now+1 is already <= now by the time anyone looks).
	parkMode uint8

	// bankQ buckets the queued requests per (rank, bank) so horizon
	// recomputation after a change touches only the affected bank's
	// requests instead of rescanning both queues; bankHzn caches each
	// bank's earliest-issue horizon, revalidated against the dram
	// constraint epochs. Both are indexed rank*banks+bank.
	bankQ   []bankQueue
	bankHzn []bankHorizon

	// Candidate-group index (see groups.go): one live entry per
	// (bankIdx, row), maintained incrementally by the enqueue and
	// remove paths, consumed by buildOptions. grp is the group arena
	// (handles are indices, grpFree recycles them); readOrder and
	// writeOrder keep the groups with queued reads/writes sorted by
	// oldest-member ID; bankMinRead/bankMinWrite are the per-bank
	// oldest-ID index (noID when the bank has none of that kind);
	// grpPending spools enqueued requests until the next option build
	// folds them in (the enqueue path stays O(1)).
	grp     []group
	grpFree []int32
	//mclint:owns -- groupFold drains and nils every pending slot before any read of the index; a request cannot recycle while still queued, and it is queued for as long as it is pending
	grpPending   []*Request
	readOrder    []int32
	writeOrder   []int32
	bankMinRead  []uint64
	bankMinWrite []uint64

	// scratch buffers reused across cycles to avoid allocation.
	optBuf []Option
	view   View

	// Straight-port reference rebuild state, used only by
	// buildOptionsRef (the per-tick O(queue) twin VerifyCandidateGroups
	// and the property suites compare the incremental index against).
	// The (rank, bank, row) grouping and per-bank oldest-ID index use
	// epoch-stamped open addressing (no per-call clearing, no runtime
	// map machinery).
	refBuf     []Option
	groups     groupTable
	gkOrder    []uint32 // slot indices into groups, insertion order
	bankOldest []uint64 // per bankIdx; valid iff bankEpoch matches
	bankEpoch  []uint32

	// tenants holds per-tenant accounting when TrackTenants enabled it
	// (multi-tenant systems); nil otherwise.
	tenants []TenantStats

	// trace, when non-nil, observes every issued DRAM command. The hot
	// loop pays exactly one nil-check branch per issued command when
	// tracing is off.
	trace CommandTrace
	// parked distinguishes a wake-up full tick from a hot full tick so
	// Stats.Wakes counts parked windows ended, not ticks run.
	parked bool

	Stats Stats
}

// Queue-selection modes: which queues the controller offers to the
// policy. consideredQueues, the horizon fold and the enqueue-time
// projection all derive the mode from the same rules so the event
// horizon is always "the first cycle an option appears" for the queue
// set the next full tick will actually consider.
const (
	modeReads uint8 = iota
	modeWrites
	modeBoth
)

// Horizon class bits: the command classes a bank's queued requests
// need under the current bank state. At most one EarliestIssue call
// per set bit replaces one call per queued request — requests to the
// same (rank, bank) needing the same command share one computation.
const (
	hznAct uint8 = 1 << iota
	hznRead
	hznWrite
	hznPre
)

// bankQueue holds the queued requests targeting one (rank, bank),
// maintained incrementally by the enqueue and remove paths. Bucket
// order is irrelevant (only class membership is derived from it), so
// removal swaps with the tail. seq bumps on every membership or
// pendingClose change and invalidates the bank's cached horizon.
type bankQueue struct {
	//mclint:owns -- removeRequest deletes the request from its bank bucket at issue/forward time, before its recycle
	reads []*Request
	//mclint:owns -- removeRequest deletes the request from its bank bucket at issue/coalesce time, before its recycle
	writes []*Request
	seq    uint32
	// groups holds the handles of this bank's live candidate groups
	// (one per distinct queued row; see groups.go). Order is
	// irrelevant — the global readOrder/writeOrder arrays carry the
	// option ordering — so removal swaps with the tail.
	groups []int32
}

// bankHorizon is one bank's cached earliest-issue horizon: the first
// cycle any command advancing the bank's queued requests (or its
// surviving pending close) can become legal, assuming no intervening
// command. The stamps record the state it was computed from; the
// entry is exact while they all still match (bank commands bump the
// bank epoch, rank ACTIVATEs the rank epoch, column accesses the
// channel data epoch, bucket changes the seq). The command-bus
// constraint needs no stamp: it never exceeds the parked controller's
// current cycle, so the fold's now+1 clamp absorbs it (see
// dram.Channel.DataEpoch).
type bankHorizon struct {
	at        uint64
	mask      uint8
	mode      uint8
	valid     bool
	seq       uint32
	bankEpoch uint32
	rankEpoch uint32
	dataEpoch uint32
}

// groupTable indexes queued requests by (bankIdx, row), keeping the
// oldest request of each group. Slots are invalidated wholesale by
// bumping the epoch; load factor stays at or below 50% because the
// table is sized by the queue capacities.
type groupTable struct {
	slots []groupSlot
	mask  uint64
	shift uint
	epoch uint32
}

type groupSlot struct {
	key   uint64
	epoch uint32
	//mclint:owns -- reference-rebuild scratch: every slot is epoch-invalidated at the top of each buildOptionsRef call, so a stale pointer is never dereferenced
	req *Request
}

// newGroupTable sizes the table for at most maxGroups resident
// entries: the smallest power of two >= 2*maxGroups (minimum 8),
// keeping the load factor at or below 50%.
func newGroupTable(maxGroups int) groupTable {
	n := uint(bits.Len64(2*uint64(maxGroups) - 1))
	if n < 3 {
		n = 3
	}
	return groupTable{slots: make([]groupSlot, uint64(1)<<n), mask: uint64(1)<<n - 1, shift: 64 - n}
}

// reset invalidates every slot in O(1) by advancing the epoch. It
// reports whether the epoch wrapped, so callers can clear their own
// epoch-stamped side tables in the same (once per 2^32 resets) stroke.
func (t *groupTable) reset() (wrapped bool) {
	t.epoch++
	if t.epoch == 0 {
		// Wrapped: stale slots could alias the new epoch; clear once
		// every 2^32 resets.
		for i := range t.slots {
			t.slots[i] = groupSlot{}
		}
		t.epoch = 1
		wrapped = true
	}
	return wrapped
}

// slot returns the slot index for key, probing past live entries with
// other keys; the returned slot either matches key or is free this
// epoch.
func (t *groupTable) slot(key uint64) uint32 {
	i := (key * 0x9e3779b97f4a7c15) >> t.shift
	for {
		s := &t.slots[i]
		if s.epoch != t.epoch || s.key == key {
			return uint32(i)
		}
		i = (i + 1) & t.mask
	}
}

// New builds a controller for channel ch with the given scheduling and
// page-management policies.
func New(cfg Config, ch *dram.Channel, policy Policy, page pagepolicy.Policy) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ch == nil || policy == nil || page == nil {
		return nil, fmt.Errorf("memctrl: nil channel, policy, or page policy")
	}
	banks := ch.Geo.Ranks * ch.Geo.Banks
	c := &Controller{
		cfg:          cfg,
		ch:           ch,
		policy:       policy,
		page:         page,
		pagePure:     pagepolicy.IsPure(page),
		pendingClose: make([]bool, banks),
		bankQ:        make([]bankQueue, banks),
		bankHzn:      make([]bankHorizon, banks),
		bankMinRead:  make([]uint64, banks),
		bankMinWrite: make([]uint64, banks),
		// Pre-size the enqueue spill list for the worst case (every
		// queued request pending at once) so the enqueue path never
		// grows it; the arena and order arrays grow amortized on the
		// busy path and are recycled thereafter.
		grpPending:  make([]*Request, 0, cfg.ReadQueueCap+cfg.WriteQueueCap),
		writeByAddr: make(map[uint64]*Request, cfg.WriteQueueCap),
	}
	for i := 0; i < banks; i++ {
		c.bankMinRead[i] = noID
		c.bankMinWrite[i] = noID
	}
	return c, nil
}

// Channel exposes the underlying DRAM channel (for device statistics).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// SetFastForward toggles the event-horizon tick skip. The produced
// statistics are bit-identical either way; the flag exists so the
// naive loop stays available as the equivalence baseline.
func (c *Controller) SetFastForward(on bool) {
	c.fastPath = on
	c.wakeAt = 0
	c.parked = false
}

// SetTrace installs a command-level trace (nil disables tracing).
// Tracing is observation only: it never changes what the controller
// issues or when, so traced runs stay bit-identical to untraced ones.
func (c *Controller) SetTrace(t CommandTrace) { c.trace = t }

// Policy exposes the scheduling policy.
func (c *Controller) Policy() Policy { return c.policy }

// PagePolicy exposes the page-management policy.
func (c *Controller) PagePolicy() pagepolicy.Policy { return c.page }

// QueueLens returns current read and write queue occupancies.
func (c *Controller) QueueLens() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// Pending returns the number of requests queued or in flight.
func (c *Controller) Pending() int {
	return len(c.readQ) + len(c.writeQ) + len(c.inflight) - c.inflightHd
}

// EnqueueRead queues a read. It returns false when the read queue is
// full; the caller must retry later (modelling backpressure into the
// cache hierarchy). Reads that match a queued write's address are
// served by forwarding without touching DRAM.
//
//mclint:hotpath
func (c *Controller) EnqueueRead(now uint64, src Source, addr uint64, loc dram.Location, kind RequestKind, onDone func(uint64)) bool {
	if kind.IsWrite() {
		panic("memctrl: EnqueueRead called with a write kind")
	}
	if _, ok := c.writeByAddr[addr]; ok {
		c.Stats.ForwardedReads++
		r := c.newRequest()
		*r = Request{
			ID: c.nextID, Core: src.Core, Tenant: src.Tenant, Addr: addr, Loc: loc,
			Kind: kind, Arrival: now, OnDone: onDone,
		}
		c.nextID++
		c.scheduleCompletion(r, now+uint64(c.cfg.ForwardLatency))
		return true
	}
	if len(c.readQ) >= c.cfg.ReadQueueCap {
		c.Stats.EnqueueFailures++
		return false
	}
	r := c.newRequest()
	*r = Request{
		ID: c.nextID, Core: src.Core, Tenant: src.Tenant, Addr: addr, Loc: loc,
		Kind: kind, Arrival: now, OnDone: onDone,
	}
	c.nextID++
	c.readQ = append(c.readQ, r)
	bk := &c.bankQ[r.Loc.Rank*c.ch.Geo.Banks+r.Loc.Bank]
	bk.reads = append(bk.reads, r)
	bk.seq++
	c.groupNote(r)
	c.noteEnqueue(r, now)
	c.policy.OnEnqueue(r, now)
	return true
}

// EnqueueWrite queues a writeback. It returns false when the write
// queue is full. A write to an address already queued is merged.
//
//mclint:hotpath
func (c *Controller) EnqueueWrite(now uint64, src Source, addr uint64, loc dram.Location, onDone func(uint64)) bool {
	if _, ok := c.writeByAddr[addr]; ok {
		// Coalesce: the queued write already covers this block.
		if onDone != nil {
			onDone(now)
		}
		return true
	}
	if len(c.writeQ) >= c.cfg.WriteQueueCap {
		c.Stats.EnqueueFailures++
		return false
	}
	r := c.newRequest()
	*r = Request{
		ID: c.nextID, Core: src.Core, Tenant: src.Tenant, Addr: addr, Loc: loc,
		Kind: WriteBack, Arrival: now, OnDone: onDone,
	}
	c.nextID++
	c.writeQ = append(c.writeQ, r)
	c.writeByAddr[addr] = r //mclint:alloc-ok -- the map is pre-sized to WriteQueueCap at construction and never holds more than the queue cap, so steady-state writes never grow it
	bk := &c.bankQ[r.Loc.Rank*c.ch.Geo.Banks+r.Loc.Bank]
	bk.writes = append(bk.writes, r)
	bk.seq++
	c.groupNote(r)
	c.noteEnqueue(r, now)
	c.policy.OnEnqueue(r, now)
	return true
}

// newRequest returns a Request from the free list, or a fresh one.
// Callers overwrite every field (*r = Request{...}), so recycled
// structs carry no state across lives.
func (c *Controller) newRequest() *Request {
	if n := len(c.freeReq); n > 0 {
		r := c.freeReq[n-1]
		c.freeReq[n-1] = nil
		c.freeReq = c.freeReq[:n-1]
		return r
	}
	return &Request{} //mclint:alloc-ok -- free-list cold path: taken only until the working set of in-flight requests has been minted once; steady state always pops the list
}

// assertRecycleClean verifies, immediately before r returns to the
// free list, that no index still reaches it. Today that means the
// writeByAddr dedup map: a write is deleted from it at issue time, so
// a surviving identity-match entry is a lifetime bug that would let a
// future EnqueueRead forward stale data from a recycled struct. The
// check is compiled in always but called only when debugLifetime is
// set (-tags mclintdebug); the stale entry is removed before
// panicking so tests can recover and keep the controller usable.
func (c *Controller) assertRecycleClean(r *Request) {
	if c.writeByAddr[r.Addr] == r {
		delete(c.writeByAddr, r.Addr)
		panic(fmt.Sprintf("memctrl: recycling request %d (addr %#x) still indexed by writeByAddr — dropped reference discipline violated", r.ID, r.Addr))
	}
}

func (c *Controller) scheduleCompletion(r *Request, at uint64) {
	if c.inflightHd > 0 && len(c.inflight) == cap(c.inflight) {
		// Out of room at the tail but retired slots sit at the front:
		// compact instead of letting append reallocate.
		n := copy(c.inflight, c.inflight[c.inflightHd:])
		for i := n; i < len(c.inflight); i++ {
			c.inflight[i] = completion{}
		}
		c.inflight = c.inflight[:n]
		c.inflightHd = 0
	}
	i := len(c.inflight)
	c.inflight = append(c.inflight, completion{})
	for i > c.inflightHd && c.inflight[i-1].at > at {
		c.inflight[i] = c.inflight[i-1]
		i--
	}
	c.inflight[i] = completion{at: at, req: r}
}

// noteEnqueue re-establishes the event horizon after r entered a
// queue. The legacy engine reset wakeAt to "unknown", forcing a full
// tick — an O(queued requests + ranks×banks) rescan — even when the
// new request cannot issue for hundreds of cycles (write-drain
// shadows, tFAW stalls). A parked controller instead re-arms in O(1):
// existing requests cannot act before the established horizon, the
// bank state is frozen while parked, so the only new wake-up
// candidate is the enqueued request's own next command.
//
// The fast path requires three things, otherwise it falls back to the
// full wake-up exactly as before:
//   - an established horizon (wakeAt > now; a hot controller ticks
//     this cycle regardless, so nothing is saved or risked);
//   - no pending page-policy close whose decision this enqueue could
//     affect: the full tick after an enqueue re-validates closes via
//     ShouldClose with the new queue contents. For a pure policy
//     (pagepolicy.IsPure) only the enqueued bank's context changes, so
//     only a close pending on that bank forces the fallback; for the
//     stateful predictive policies every ShouldClose call mutates
//     predictor state, so any pending close anywhere does;
//   - an unchanged queue-selection mode: a drain-watermark crossing or
//     an empty-read-queue transition changes which queues the next
//     tick considers, invalidating every bank's horizon at once.
func (c *Controller) noteEnqueue(r *Request, now uint64) {
	if !c.fastPath || c.wakeAt == 0 || c.wakeAt <= now {
		c.wakeAt = 0
		return
	}
	if c.pendingCloseN > 0 {
		if !c.pagePure || c.pendingClose[r.Loc.Rank*c.ch.Geo.Banks+r.Loc.Bank] {
			c.wakeAt = 0
			return
		}
	}
	if c.projectedMode() != c.parkMode {
		c.wakeAt = 0
		return
	}
	if c.requestConsidered(r) {
		if at := c.earliestFor(r); at < c.wakeAt {
			// at <= now simply makes NextEvent report "due now"; the
			// full tick then runs this cycle like the legacy reset.
			c.wakeAt = at
		}
	}
	// The skipped wake-up tick would have sampled the queues; sample
	// here so the time-weighted trackers see the length change at the
	// cycle it happened. A tick this cycle re-sets the same values
	// (zero-width, no double counting).
	c.Stats.ReadQ.Set(now, float64(len(c.readQ)))
	c.Stats.WriteQ.Set(now, float64(len(c.writeQ)))
}

// projectedMode returns the queue-selection mode the next full tick
// will use: the drain-mode hysteresis applied to the current queue
// lengths, without mutating writeMode (the flag itself advances only
// inside Tick, which sees the same lengths — queue contents cannot
// change between this projection and that tick without another
// projection running).
func (c *Controller) projectedMode() uint8 {
	return c.modeFor(c.advanceDrainFlag(c.writeMode), considersWrites(c.policy))
}

// advanceDrainFlag applies the write-drain watermark hysteresis to wm
// under the current queue lengths, without writing it back. Tick's
// step 3 commits the result; projectedMode only peeks at it — both
// must apply the same rule, so it lives here once.
func (c *Controller) advanceDrainFlag(wm bool) bool {
	if !wm && len(c.writeQ) >= c.cfg.WriteHi {
		return true
	}
	if wm && len(c.writeQ) <= c.cfg.WriteLo {
		return false
	}
	return wm
}

// requestConsidered reports whether r's queue is in the set the next
// tick offers to the policy under the parked mode. A write enqueued
// while reads are being served (or vice versa) adds no wake-up
// candidate: it stays invisible to the option builder until the mode
// changes, and every mode change forces a full wake-up.
func (c *Controller) requestConsidered(r *Request) bool {
	switch c.parkMode {
	case modeBoth:
		return true
	case modeWrites:
		return r.Kind.IsWrite()
	default:
		return !r.Kind.IsWrite()
	}
}

// setPendingClose writes one pendingClose flag, keeping the count and
// the bank's horizon cache coherent.
func (c *Controller) setPendingClose(idx int, v bool) {
	if c.pendingClose[idx] == v {
		return
	}
	c.pendingClose[idx] = v
	if v {
		c.pendingCloseN++
	} else {
		c.pendingCloseN--
	}
	c.bankQ[idx].seq++
}

// Tick advances the controller by one cycle: completes finished
// transfers, updates drain mode, asks the policy for a command, and
// issues it (or a page-policy precharge when the bus is free).
//
// When the previous full tick established an event horizon (wakeAt)
// and no transfer completes this cycle, the tick returns immediately:
// the queue contents, bank states, drain mode and policy state are all
// provably unchanged, and the skipped queue-occupancy samples are
// recovered exactly by the time-weighted trackers.
//
// Tick confines itself to this controller's state (its channel, banks,
// queues, policy, trackers) plus the OnDone and trace callbacks — the
// property that lets the sharded kernel tick controllers of different
// channels concurrently. Anything new reaching shared state from
// inside Tick must go through a per-channel buffer the way OnDone
// completions do (core's fill buffering), or lock like
// obs.TraceWriter.
//
//mclint:hotpath
func (c *Controller) Tick(now uint64) {
	if c.fastPath && now < c.wakeAt && (len(c.inflight) == c.inflightHd || c.inflight[c.inflightHd].at > now) {
		return
	}
	if c.parked {
		c.parked = false
		c.Stats.Wakes++
	}

	// 1. Retire completed transfers. The retired Request goes back on
	// the free list — every reference to it (queues, buckets, groups,
	// options) was dropped at issue time, and OnComplete is the last
	// contact the policy contract allows.
	for len(c.inflight) > c.inflightHd && c.inflight[c.inflightHd].at <= now {
		done := c.inflight[c.inflightHd]
		c.inflight[c.inflightHd] = completion{}
		c.inflightHd++
		ts := c.tenantStatsFor(done.req)
		if !done.req.Kind.IsWrite() {
			c.Stats.ReadsServed++
			c.Stats.ReadLatency.Add(done.at - done.req.Arrival)
			if ts != nil {
				ts.ReadsServed++
				ts.ReadLatencySum += done.at - done.req.Arrival
			}
		} else {
			c.Stats.WritesServed++
			if ts != nil {
				ts.WritesServed++
			}
		}
		if done.req.OnDone != nil {
			done.req.OnDone(now)
		}
		c.policy.OnComplete(done.req, now)
		if debugLifetime {
			c.assertRecycleClean(done.req)
		}
		c.freeReq = append(c.freeReq, done.req)
	}
	if c.inflightHd == len(c.inflight) && c.inflightHd > 0 {
		c.inflight = c.inflight[:0]
		c.inflightHd = 0
	}

	// 2. Queue-occupancy statistics.
	c.Stats.ReadQ.Set(now, float64(len(c.readQ)))
	c.Stats.WriteQ.Set(now, float64(len(c.writeQ)))

	c.policy.Tick(now)

	// 3. Drain-mode hysteresis (skipped for write-aware policies,
	// which see both queues every cycle).
	mixed := considersWrites(c.policy)
	if !mixed {
		c.writeMode = c.advanceDrainFlag(c.writeMode)
	}

	// 4. Build the option set and let the policy pick.
	c.buildOptions(now, mixed)
	issued := dram.Command{Kind: dram.CmdNop}
	picked := -1
	if len(c.view.Options) > 0 {
		picked = c.policy.Pick(&c.view)
		if picked >= len(c.view.Options) {
			panic(fmt.Sprintf("memctrl: policy %s picked option %d of %d", c.policy.Name(), picked, len(c.view.Options)))
		}
	}
	closed := false
	if picked >= 0 {
		opt := c.view.Options[picked]
		c.issue(now, opt)
		issued = opt.Cmd
	} else {
		// 5. Idle cycle: give the page policy a chance to close rows.
		if cmd, ok := c.tryPendingClose(now); ok {
			issued = cmd
			closed = true
		}
	}
	c.policy.OnIssue(&c.view, picked, issued, now)

	// 6. Establish the event horizon for the cycles ahead. If anything
	// happened — or could have happened (options the policy declined
	// must be re-offered next cycle) — the controller stays hot.
	if !c.fastPath {
		return
	}
	if picked >= 0 || closed || len(c.view.Options) > 0 {
		c.wakeAt = now + 1
		return
	}
	c.wakeAt = c.idleHorizon(now)
	if c.wakeAt > now+1 {
		c.parked = true
		c.Stats.Parks++
	}
}

// idleHorizon computes the earliest future cycle at which this
// controller could act, given that nothing is legal now: the first
// cycle a queued request's next command becomes issuable, the first
// cycle a surviving pending page-policy close becomes issuable, and
// the policy's next timed event. It is called only after a full tick
// in which tryPendingClose has already re-validated (and pruned) the
// pendingClose flags, exactly as the per-cycle loop would have on the
// first skipped cycle; because queue contents and bank state are
// frozen until the next enqueue, completion or wake-up, those
// validations cannot change during the skipped window.
//
// The computation is a fold over per-bank horizons cached in bankHzn:
// a bank whose bucket, bank state, rank activation window and (for
// column classes) data-bus state are unchanged since the last fold
// reuses its cached value, so re-parking after a localized change
// costs O(changed banks) instead of O(queued requests).
func (c *Controller) idleHorizon(now uint64) uint64 {
	mode := c.queueMode(considersWrites(c.policy))
	c.parkMode = mode

	h := dram.Never
	for b := range c.bankQ {
		bq := &c.bankQ[b]
		if len(bq.reads) == 0 && len(bq.writes) == 0 && !c.pendingClose[b] {
			continue
		}
		if at := c.bankHorizon(b, mode); at < h {
			h = at
		}
	}

	if eh, ok := c.policy.(EventHorizon); ok {
		if at := eh.NextPolicyEvent(now); at < h {
			h = at
		}
	}
	if h <= now {
		h = now + 1
	}
	return h
}

// bankHorizon returns the earliest cycle any command advancing bank
// b's queued requests (under the given queue mode) or its surviving
// pending close can become legal, from the cache when the stamps
// still match and recomputed otherwise.
func (c *Controller) bankHorizon(b int, mode uint8) uint64 {
	rank := b / c.ch.Geo.Banks
	bankNo := b % c.ch.Geo.Banks
	bq := &c.bankQ[b]
	bank := c.ch.Bank(rank, bankNo)
	hz := &c.bankHzn[b]
	if hz.valid && hz.mode == mode && hz.seq == bq.seq &&
		hz.bankEpoch == bank.Epoch() &&
		(hz.mask&hznAct == 0 || hz.rankEpoch == c.ch.Ranks[rank].ActEpoch()) &&
		(hz.mask&(hznRead|hznWrite) == 0 || hz.dataEpoch == c.ch.DataEpoch()) {
		return hz.at
	}

	// Recompute: classify the bucket into command classes relative to
	// the current bank state (the per-(rank, bank, kind) dedupe — one
	// EarliestIssue per class, not one per request), then take the
	// earliest legal cycle over the classes present.
	useReads := mode != modeWrites
	useWrites := mode != modeReads
	var mask uint8
	if bank.State == dram.BankIdle {
		if (useReads && len(bq.reads) > 0) || (useWrites && len(bq.writes) > 0) {
			mask |= hznAct
		}
	} else {
		if useReads {
			for _, r := range bq.reads {
				if r.Loc.Row == bank.OpenRow {
					mask |= hznRead
				} else {
					mask |= hznPre
				}
			}
		}
		if useWrites {
			for _, r := range bq.writes {
				if r.Loc.Row == bank.OpenRow {
					mask |= hznWrite
				} else {
					mask |= hznPre
				}
			}
		}
		if c.pendingClose[b] {
			mask |= hznPre
		}
	}

	loc := dram.Location{Channel: c.ch.ID, Rank: rank, Bank: bankNo, Row: bank.OpenRow}
	at := dram.Never
	if mask&hznAct != 0 {
		if e := c.ch.EarliestIssue(dram.Command{Kind: dram.CmdActivate, Loc: loc}); e < at {
			at = e
		}
	}
	if mask&hznRead != 0 {
		if e := c.ch.EarliestIssue(dram.Command{Kind: dram.CmdRead, Loc: loc}); e < at {
			at = e
		}
	}
	if mask&hznWrite != 0 {
		if e := c.ch.EarliestIssue(dram.Command{Kind: dram.CmdWrite, Loc: loc}); e < at {
			at = e
		}
	}
	if mask&hznPre != 0 {
		if e := c.ch.EarliestIssue(dram.Command{Kind: dram.CmdPrecharge, Loc: loc}); e < at {
			at = e
		}
	}

	*hz = bankHorizon{
		at:        at,
		mask:      mask,
		mode:      mode,
		valid:     true,
		seq:       bq.seq,
		bankEpoch: bank.Epoch(),
		rankEpoch: c.ch.Ranks[rank].ActEpoch(),
		dataEpoch: c.ch.DataEpoch(),
	}
	return at
}

// commandFor returns the next command advancing r — the same command
// buildOptions would generate for r's group given the current bank
// state.
func (c *Controller) commandFor(r *Request) dram.Command {
	bank := c.ch.Bank(r.Loc.Rank, r.Loc.Bank)
	var kind dram.CommandKind
	switch {
	case bank.State == dram.BankIdle:
		kind = dram.CmdActivate
	case bank.OpenRow == r.Loc.Row:
		kind = dram.CmdRead
		if r.Kind.IsWrite() {
			kind = dram.CmdWrite
		}
	default:
		kind = dram.CmdPrecharge
	}
	return dram.Command{Kind: kind, Loc: r.Loc}
}

// earliestFor returns the earliest cycle the next command advancing r
// becomes legal.
func (c *Controller) earliestFor(r *Request) uint64 {
	return c.ch.EarliestIssue(c.commandFor(r))
}

// NextEvent reports the earliest cycle >= now at which this controller
// can change state: the established event horizon or the next
// in-flight completion, whichever comes first. A result of now means
// the controller must tick every cycle (horizon unknown or work due).
func (c *Controller) NextEvent(now uint64) uint64 {
	if !c.fastPath {
		return now
	}
	h := c.wakeAt
	if len(c.inflight) > c.inflightHd && c.inflight[c.inflightHd].at < h {
		h = c.inflight[c.inflightHd].at
	}
	if h < now {
		return now
	}
	return h
}

// effectiveWriteMode reports whether the controller serves writes this
// cycle: either drain mode, or opportunistically when no reads wait.
// Defined on modeFor so the rule cannot drift from the horizon's
// queue selection.
func (c *Controller) effectiveWriteMode() bool {
	return c.modeFor(c.writeMode, false) == modeWrites
}

// modeFor derives the queue-selection mode from a drain flag and the
// current queue lengths. It is the single source of the selection
// rules: buildOptions/idleHorizon (via queueMode, with the current
// writeMode flag) and the enqueue-time projection (via projectedMode,
// with the hysteresis-advanced flag) must agree by construction — the
// event horizon is "the first cycle an option appears", so deriving
// it from a different queue set than the option builder would make
// the controller wake from the wrong queues.
func (c *Controller) modeFor(wm, mixed bool) uint8 {
	if mixed {
		// Safety valve: when the write queue is nearly full, offer
		// only write-advancing options so the policy cannot wedge the
		// cache hierarchy.
		if len(c.writeQ) >= c.cfg.WriteQueueCap-4 {
			return modeWrites
		}
		return modeBoth
	}
	// Drain mode, or opportunistic writes when no reads wait.
	if wm || (len(c.readQ) == 0 && len(c.writeQ) > 0) {
		return modeWrites
	}
	return modeReads
}

// queueMode is the mode this tick's option builder uses.
func (c *Controller) queueMode(mixed bool) uint8 {
	return c.modeFor(c.writeMode, mixed)
}

// consideredQueues returns the queues whose requests the controller
// offers to the policy this cycle.
func (c *Controller) consideredQueues(mixed bool) (primary, secondary []*Request) {
	switch c.queueMode(mixed) {
	case modeWrites:
		return c.writeQ, nil
	case modeBoth:
		return c.readQ, c.writeQ
	default:
		return c.readQ, nil
	}
}

// buildOptions computes the set of legal commands for this cycle into
// c.view from the incremental candidate-group index (groups.go):
// at most one command per live (rank, bank, row) group, emitted in
// the same first-appearance order as the reference rebuild. The cost
// is O(live groups) per tick with a cheap epoch-stamped cache hit per
// group; dram legality is recomputed only for groups whose
// representative changed or whose bank's constraint epochs moved.
func (c *Controller) buildOptions(now uint64, mixed bool) {
	c.groupFold()
	c.optBuf = c.optBuf[:0]
	grp := c.grp
	dataE := c.ch.DataEpoch()
	var pendingHits int
	switch c.queueMode(mixed) {
	case modeWrites:
		for _, h := range c.writeOrder {
			g := &grp[h]
			pendingHits += c.groupOption(now, g, g.writes[0], c.bankMinWrite[g.bank], dataE)
		}
	case modeBoth:
		// Reference order: groups with queued reads first (ascending
		// oldest-read ID — their first appearance scanning the read
		// queue), then write-only groups (ascending oldest-write ID).
		for _, h := range c.readOrder {
			g := &grp[h]
			rep := g.reads[0]
			if len(g.writes) > 0 && g.writes[0].ID < rep.ID {
				rep = g.writes[0]
			}
			oldest := c.bankMinRead[g.bank]
			if c.bankMinWrite[g.bank] < oldest {
				oldest = c.bankMinWrite[g.bank]
			}
			pendingHits += c.groupOption(now, g, rep, oldest, dataE)
		}
		for _, h := range c.writeOrder {
			g := &grp[h]
			if len(g.reads) > 0 {
				continue // already emitted via readOrder
			}
			oldest := c.bankMinRead[g.bank]
			if c.bankMinWrite[g.bank] < oldest {
				oldest = c.bankMinWrite[g.bank]
			}
			pendingHits += c.groupOption(now, g, g.writes[0], oldest, dataE)
		}
	default:
		// Read-only mode is the bulk of busy-path ticks; the cache-hit
		// test of groupOption is open-coded here because the per-group
		// call otherwise dominates the deep-queue profile (the function
		// is too large to inline).
		bankMin := c.bankMinRead
		for _, h := range c.readOrder {
			g := &grp[h]
			rep := g.reads[0]
			if g.cacheOK && g.repID == rep.ID && g.bankEpoch == g.bankRef.Epoch() &&
				(g.optKind != dram.CmdActivate || g.rankEpoch == g.rankRef.ActEpoch()) &&
				(g.optKind < dram.CmdRead || g.dataEpoch == dataE) {
				if g.optKind >= dram.CmdRead {
					pendingHits++
				}
				if now >= g.optAt {
					c.optBuf = append(c.optBuf, Option{
						Cmd: dram.Command{Kind: g.optKind, Loc: rep.Loc}, Req: rep,
						RowHit: g.optKind >= dram.CmdRead, BankOldestID: bankMin[g.bank],
					})
				}
				continue
			}
			pendingHits += c.groupOptionMiss(now, g, rep, bankMin[g.bank])
		}
	}

	c.view = View{
		Now:            now,
		Options:        c.optBuf,
		ReadQLen:       len(c.readQ),
		WriteQLen:      len(c.writeQ),
		WriteMode:      c.effectiveWriteMode(),
		PendingRowHits: pendingHits,
		Channel:        c.ch.ID,
		ReadQueue:      c.readQ,
		WriteQueue:     c.writeQ,
	}
}

// buildOptionsRef is the straight-port reference rebuild: the per-tick
// O(queue) grouping pass buildOptions replaced, preserved verbatim as
// the exactness twin. VerifyCandidateGroups and the differential
// property suites regenerate the option list through it and require
// bit-identical output from the incremental index; production code
// never calls it.
func (c *Controller) buildOptionsRef(now uint64, mixed bool) ([]Option, int) {
	if c.groups.slots == nil {
		// The reference state is allocated on first use: production
		// code never rebuilds, so an ordinary controller should not
		// pay for the twin's table.
		c.groups = newGroupTable(c.cfg.ReadQueueCap + c.cfg.WriteQueueCap)
		c.bankOldest = make([]uint64, len(c.bankQ))
		c.bankEpoch = make([]uint32, len(c.bankQ))
	}
	c.refBuf = c.refBuf[:0]
	if c.groups.reset() {
		// bankEpoch is stamped with groups.epoch; a wrap makes ancient
		// stamps alias the fresh epoch, so clear them together.
		for i := range c.bankEpoch {
			c.bankEpoch[i] = 0
		}
	}
	c.gkOrder = c.gkOrder[:0]
	epoch := c.groups.epoch

	collect := func(q []*Request) {
		for _, r := range q {
			bk := r.Loc.Rank*c.ch.Geo.Banks + r.Loc.Bank
			key := uint64(bk)<<32 | uint64(uint32(r.Loc.Row))
			si := c.groups.slot(key)
			s := &c.groups.slots[si]
			if s.epoch != epoch {
				*s = groupSlot{key: key, epoch: epoch, req: r}
				c.gkOrder = append(c.gkOrder, si)
			} else if r.ID < s.req.ID {
				s.req = r
			}
			if c.bankEpoch[bk] != epoch || r.ID < c.bankOldest[bk] {
				c.bankEpoch[bk] = epoch
				c.bankOldest[bk] = r.ID
			}
		}
	}
	var pendingHits int
	primary, secondary := c.consideredQueues(mixed)
	collect(primary)
	if secondary != nil {
		collect(secondary)
	}

	for _, si := range c.gkOrder {
		r := c.groups.slots[si].req
		// The group's (rank, bank, row) is the representative
		// request's own location.
		loc := r.Loc
		oldest := c.bankOldest[loc.Rank*c.ch.Geo.Banks+loc.Bank]
		bank := c.ch.Bank(loc.Rank, loc.Bank)
		switch {
		case bank.State == dram.BankIdle:
			cmd := dram.Command{Kind: dram.CmdActivate, Loc: loc}
			if c.ch.CanIssue(now, cmd) {
				c.refBuf = append(c.refBuf, Option{Cmd: cmd, Req: r, BankOldestID: oldest})
			}
		case bank.OpenRow == loc.Row:
			pendingHits++
			kind := dram.CmdRead
			if r.Kind.IsWrite() {
				kind = dram.CmdWrite
			}
			cmd := dram.Command{Kind: kind, Loc: loc}
			if c.ch.CanIssue(now, cmd) {
				c.refBuf = append(c.refBuf, Option{Cmd: cmd, Req: r, RowHit: true, BankOldestID: oldest})
			}
		default:
			cmd := dram.Command{Kind: dram.CmdPrecharge, Loc: loc}
			if c.ch.CanIssue(now, cmd) {
				c.refBuf = append(c.refBuf, Option{Cmd: cmd, Req: r, BankOldestID: oldest})
			}
		}
	}

	return c.refBuf, pendingHits
}

// issue applies the chosen option and performs request/page-policy
// bookkeeping.
func (c *Controller) issue(now uint64, opt Option) {
	loc := opt.Cmd.Loc
	bankIdx := loc.Rank*c.ch.Geo.Banks + loc.Bank
	switch opt.Cmd.Kind {
	case dram.CmdActivate:
		c.ch.Issue(now, opt.Cmd)
		if c.trace != nil {
			c.trace.Command(now, opt.Cmd, opt.Req.Tenant)
		}
		opt.Req.triggeredActivate = true
		c.setPendingClose(bankIdx, false)
		c.page.OnActivate(loc)
	case dram.CmdPrecharge:
		bank := c.ch.Bank(loc.Rank, loc.Bank)
		closed := dram.Location{Channel: loc.Channel, Rank: loc.Rank, Bank: loc.Bank, Row: bank.OpenRow}
		accesses := bank.RowAccesses()
		c.ch.Issue(now, opt.Cmd)
		if c.trace != nil {
			// Trace the row being closed, not the requester's target row.
			c.trace.Command(now, dram.Command{Kind: dram.CmdPrecharge, Loc: closed}, opt.Req.Tenant)
		}
		opt.Req.triggeredConflict = true
		c.setPendingClose(bankIdx, false)
		c.Stats.ConflictCloses++
		c.page.OnRowClosed(closed, accesses, true)
	case dram.CmdRead, dram.CmdWrite:
		finish := c.ch.Issue(now, opt.Cmd)
		if c.trace != nil {
			c.trace.Command(now, opt.Cmd, opt.Req.Tenant)
		}
		c.classify(opt.Req)
		c.removeRequest(opt.Req)
		c.scheduleCompletion(opt.Req, finish)
		// Consult the page policy with the post-access queue state.
		same, other := c.pendingForRow(loc)
		ctx := pagepolicy.CloseContext{
			Loc:             loc,
			Accesses:        c.ch.Bank(loc.Rank, loc.Bank).RowAccesses(),
			PendingSameRow:  same,
			PendingOtherRow: other,
		}
		c.setPendingClose(bankIdx, c.page.ShouldClose(ctx))
	default:
		panic(fmt.Sprintf("memctrl: cannot issue %v", opt.Cmd))
	}
}

// classify files the row-buffer outcome of a column access.
func (c *Controller) classify(r *Request) {
	ts := c.tenantStatsFor(r)
	switch {
	case r.triggeredConflict:
		c.Stats.RowConflicts++
		if ts != nil {
			ts.RowConflicts++
		}
	case r.triggeredActivate:
		c.Stats.RowMisses++
		if ts != nil {
			ts.RowMisses++
		}
	default:
		c.Stats.RowHits++
		if ts != nil {
			ts.RowHits++
		}
	}
}

// tenantStatsFor returns the per-tenant accumulator for a request, or
// nil when tracking is off or the request is unattributed.
func (c *Controller) tenantStatsFor(r *Request) *TenantStats {
	if r.Tenant < 0 || r.Tenant >= len(c.tenants) {
		return nil
	}
	return &c.tenants[r.Tenant]
}

// TrackTenants allocates per-tenant accounting for tenants [0, n);
// multi-tenant systems call it once at construction. Zero disables
// tracking.
func (c *Controller) TrackTenants(n int) {
	if n <= 0 {
		c.tenants = nil
		return
	}
	c.tenants = make([]TenantStats, n)
}

// TenantStatsSlice exposes the per-tenant accumulators (nil when
// tracking is off).
func (c *Controller) TenantStatsSlice() []TenantStats { return c.tenants }

// pendingForRow counts queued requests that would hit loc's row (same)
// and queued requests to the same bank needing another row (other).
//
// Writes count only while the controller is draining them: queued
// writebacks wait thousands of cycles for the drain watermark, and
// treating them as "pending work for another row" the whole time would
// make the open-adaptive policy close every row immediately —
// destroying precisely the speculative open-row hits it exists to
// capture.
func (c *Controller) pendingForRow(loc dram.Location) (same, other int) {
	// The bank's candidate groups partition its queued requests by
	// row, so counting group sizes replaces the full-queue scan.
	countWrites := c.effectiveWriteMode() || considersWrites(c.policy)
	bq := &c.bankQ[loc.Rank*c.ch.Geo.Banks+loc.Bank]
	for _, gh := range bq.groups {
		g := &c.grp[gh]
		n := len(g.reads)
		if countWrites {
			n += len(g.writes)
		}
		if g.row == loc.Row {
			same += n
		} else {
			other += n
		}
	}
	return same, other
}

// tryPendingClose issues at most one page-policy precharge on an
// otherwise idle command cycle, re-validating the decision against the
// current queue state.
func (c *Controller) tryPendingClose(now uint64) (dram.Command, bool) {
	for rank := 0; rank < c.ch.Geo.Ranks; rank++ {
		for bank := 0; bank < c.ch.Geo.Banks; bank++ {
			idx := rank*c.ch.Geo.Banks + bank
			if !c.pendingClose[idx] {
				continue
			}
			b := c.ch.Bank(rank, bank)
			if b.State != dram.BankActive {
				c.setPendingClose(idx, false)
				continue
			}
			loc := dram.Location{Channel: c.ch.ID, Rank: rank, Bank: bank, Row: b.OpenRow}
			same, other := c.pendingForRow(loc)
			ctx := pagepolicy.CloseContext{
				Loc:             loc,
				Accesses:        b.RowAccesses(),
				PendingSameRow:  same,
				PendingOtherRow: other,
			}
			if !c.page.ShouldClose(ctx) {
				c.setPendingClose(idx, false)
				continue
			}
			cmd := dram.Command{Kind: dram.CmdPrecharge, Loc: loc}
			if !c.ch.CanIssue(now, cmd) {
				continue // keep pending; retry next idle cycle
			}
			accesses := b.RowAccesses()
			c.ch.Issue(now, cmd)
			if c.trace != nil {
				c.trace.Command(now, cmd, -1)
			}
			c.setPendingClose(idx, false)
			c.Stats.PolicyCloses++
			c.page.OnRowClosed(loc, accesses, false)
			return cmd, true
		}
	}
	return dram.Command{Kind: dram.CmdNop}, false
}

// removeRequest deletes r from whichever queue holds it, from its
// bank bucket, and from its candidate group.
func (c *Controller) removeRequest(r *Request) {
	bk := &c.bankQ[r.Loc.Rank*c.ch.Geo.Banks+r.Loc.Bank]
	q, bq := &c.readQ, &bk.reads
	if r.Kind.IsWrite() {
		q, bq = &c.writeQ, &bk.writes
		delete(c.writeByAddr, r.Addr)
	}
	bk.seq++
	inBucket := false
	for i, x := range *bq {
		if x == r {
			last := len(*bq) - 1
			(*bq)[i] = (*bq)[last]
			(*bq)[last] = nil
			*bq = (*bq)[:last]
			inBucket = true
			break
		}
	}
	if !inBucket {
		panic("memctrl: removing request not in its bank bucket")
	}
	c.groupRemove(r)
	// Queues are ID-ascending (IDs assigned at enqueue, removals
	// preserve order), so r's position is a binary search away.
	s := *q
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].ID < r.ID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s) || s[lo] != r {
		panic("memctrl: removing request not in queue")
	}
	n := len(s)
	copy(s[lo:], s[lo+1:])
	s[n-1] = nil
	*q = s[:n-1]
}

// ResetStats zeroes the measurement counters (e.g. after warmup)
// without disturbing queue or bank state. now re-anchors the
// time-weighted trackers.
func (c *Controller) ResetStats(now uint64) {
	c.Stats = Stats{}
	c.Stats.ReadQ.Set(now, float64(len(c.readQ)))
	c.Stats.WriteQ.Set(now, float64(len(c.writeQ)))
	c.ch.Stats = dram.Stats{}
	for i := range c.tenants {
		c.tenants[i] = TenantStats{}
	}
}
