package tenant

import "math"

// Fairness summarizes a mix run against per-tenant solo baselines.
// With IPC_alone[i] the tenant's throughput running alone on the same
// cores and IPC_shared[i] its throughput inside the mix:
//
//	slowdown[i]      = IPC_alone[i] / IPC_shared[i]
//	weighted speedup = sum_i IPC_shared[i] / IPC_alone[i]
//	harmonic speedup = N / sum_i slowdown[i]
//	max slowdown     = max_i slowdown[i]
//
// Weighted speedup measures system throughput (N is the upper bound,
// reached with zero interference), harmonic speedup balances
// throughput and fairness, and max slowdown is the victim's-eye view
// the memory-DoS literature reports.
type Fairness struct {
	// Slowdowns is per tenant, in mix order.
	Slowdowns       []float64
	WeightedSpeedup float64
	HarmonicSpeedup float64
	MaxSlowdown     float64
}

// ComputeFairness derives the fairness summary from per-tenant solo
// and shared throughputs (same order, same length). A tenant with a
// zero solo baseline is excluded (slowdown 0 — nothing to slow down).
// A tenant with a positive baseline but zero shared throughput is a
// fully starved victim — the worst DoS outcome, not a skip: its
// slowdown and MaxSlowdown are +Inf, it contributes nothing to the
// weighted speedup, and the harmonic speedup collapses to 0.
func ComputeFairness(solo, shared []float64) Fairness {
	if len(solo) != len(shared) {
		panic("tenant: solo/shared length mismatch")
	}
	f := Fairness{Slowdowns: make([]float64, len(solo))}
	var slowSum float64
	n := 0
	for i := range solo {
		if solo[i] <= 0 {
			continue
		}
		n++
		if shared[i] <= 0 {
			f.Slowdowns[i] = math.Inf(1)
			f.MaxSlowdown = math.Inf(1)
			slowSum = math.Inf(1)
			continue
		}
		s := solo[i] / shared[i]
		f.Slowdowns[i] = s
		f.WeightedSpeedup += shared[i] / solo[i]
		slowSum += s
		if s > f.MaxSlowdown {
			f.MaxSlowdown = s
		}
	}
	if slowSum > 0 {
		f.HarmonicSpeedup = float64(n) / slowSum
	}
	return f
}
