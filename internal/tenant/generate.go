package tenant

import (
	"fmt"

	"cloudmc/internal/workload"
)

// genRNG is a deterministic xorshift64* stream for mix generation,
// independent of the simulation RNGs (generating scenarios must not
// perturb their draws).
type genRNG struct{ s uint64 }

func newGenRNG(seed uint64) genRNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return genRNG{s: seed ^ 0xd6e8feb86659fd93}
}

func (r *genRNG) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

func (r *genRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// genAttemptsPerMix bounds the rejection sampling in GenerateMixes: a
// duplicate draw is retried at most this many times per requested mix
// before the cross-product is declared exhausted.
const genAttemptsPerMix = 1000

// GenerateMixes deterministically samples n distinct colocation mixes
// of mixCores total cores each from the full Table 1 profile
// cross-product — the ROADMAP's "larger-N mixes" axis, built to sweep
// 32- and 64-core machines beyond the hand-picked StudyMixes. Each
// mix splits its cores evenly among 2, 3 or 4 tenants (a divisor of
// mixCores, chosen per mix) and draws every tenant's profile
// uniformly, with replacement, from the twelve Table 1 workloads, so
// repeated-profile pairs (DS+DS) and cross-category mixes are all
// reachable. The same (seed, n, mixCores) triple always yields the
// same mixes, in the same order, so study caches and result tables
// stay reproducible across runs.
func GenerateMixes(seed uint64, n, mixCores int) ([]Mix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tenant: mix count %d must be positive", n)
	}
	var splits []int
	for _, t := range []int{2, 3, 4} {
		if mixCores >= 2*t && mixCores%t == 0 {
			splits = append(splits, t)
		}
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("tenant: mix size %d cannot be split among tenants (want >= 4 total cores, divisible by 2, 3, or 4, with at least 2 cores per tenant)", mixCores)
	}
	profiles := workload.All()
	rng := newGenRNG(seed)
	seen := make(map[string]bool, n)
	out := make([]Mix, 0, n)
	for attempts := 0; len(out) < n; attempts++ {
		if attempts >= genAttemptsPerMix*n {
			return nil, fmt.Errorf("tenant: could not draw %d distinct mixes of %d cores (profile cross-product exhausted after %d attempts; found %d)",
				n, mixCores, attempts, len(out))
		}
		t := splits[rng.intn(len(splits))]
		specs := make([]Spec, t)
		for i := range specs {
			specs[i] = Spec{Profile: profiles[rng.intn(len(profiles))], Cores: mixCores / t}
		}
		m := NewMix("", specs...)
		if seen[m.Name] {
			continue
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	return out, nil
}
