// Package tenant describes multi-tenant colocation scenarios: how one
// simulated machine's cores are partitioned among independent
// workloads, and the fairness metrics (slowdown, weighted/harmonic
// speedup, maximum slowdown) the interference literature evaluates
// mixes with. The paper characterizes each cloud workload running
// alone; multi-tenant clouds run them colocated, where a hostile
// neighbor can slow a victim by an order of magnitude (Zhang et al.,
// Memory DoS Attacks in Multi-tenant Clouds). This package supplies
// the scenario vocabulary; package core runs the mixes and package
// experiment studies them.
package tenant

import (
	"fmt"
	"strings"

	"cloudmc/internal/workload"
)

// Spec assigns a slice of the machine to one tenant.
type Spec struct {
	// Name labels the tenant in metrics and tables; empty defaults to
	// the profile acronym.
	Name string
	// Profile is the tenant's workload.
	Profile workload.Profile
	// Cores is the number of cores the tenant owns on this machine;
	// zero keeps the profile's own core count.
	Cores int
}

// Label returns the display name.
func (s Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Profile.Acronym
}

// CoreCount returns the effective core allocation.
func (s Spec) CoreCount() int {
	if s.Cores > 0 {
		return s.Cores
	}
	return s.Profile.Cores
}

// Adjusted returns the profile resized to the tenant's core
// allocation; the per-core intensity pattern cycles over the allotted
// cores exactly as it does over a full machine.
func (s Spec) Adjusted() workload.Profile {
	p := s.Profile
	p.Cores = s.CoreCount()
	return p
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	if s.Cores < 0 {
		return fmt.Errorf("tenant %s: negative core count %d", s.Label(), s.Cores)
	}
	return s.Adjusted().Validate()
}

// Mix is one colocation scenario: the tenants sharing a machine.
type Mix struct {
	// Name identifies the mix in caches and tables; it must be unique
	// within a study.
	Name string
	// Tenants lists the colocated workloads; core assignment follows
	// slice order (tenant 0 gets cores [0, n0), tenant 1 the next n1,
	// and so on).
	Tenants []Spec
}

// NewMix builds a named mix; an empty name is derived by joining
// label:cores pairs with '+' (e.g. "DS:8+HOG:8"). The core counts are
// part of the derived name because study caches and result tables key
// on it: two mixes differing only in core allocation must not collide.
func NewMix(name string, tenants ...Spec) Mix {
	m := Mix{Name: name, Tenants: tenants}
	if m.Name == "" {
		labels := make([]string, len(tenants))
		for i, t := range tenants {
			labels[i] = fmt.Sprintf("%s:%d", t.Label(), t.CoreCount())
		}
		m.Name = strings.Join(labels, "+")
	}
	return m
}

// Pair is the common two-tenant scenario: a and b each on `cores`
// cores.
func Pair(a, b workload.Profile, cores int) Mix {
	return NewMix("",
		Spec{Profile: a, Cores: cores},
		Spec{Profile: b, Cores: cores},
	)
}

// TotalCores sums the tenants' core allocations.
func (m Mix) TotalCores() int {
	total := 0
	for _, t := range m.Tenants {
		total += t.CoreCount()
	}
	return total
}

// Footprint sums the tenants' address-space footprints (region sizes
// only; the core-side layout adds negligible alignment padding).
func (m Mix) Footprint() uint64 {
	var total uint64
	for _, t := range m.Tenants {
		p := t.Adjusted()
		total += workload.NewLayout(p).Limit
	}
	return total
}

// Validate reports the first problem with the mix.
func (m Mix) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("tenant: mix has no name")
	}
	if len(m.Tenants) < 2 {
		return fmt.Errorf("tenant: mix %s needs at least two tenants", m.Name)
	}
	for _, t := range m.Tenants {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("mix %s: %w", m.Name, err)
		}
	}
	return nil
}

// StudyMixes returns the canonical colocation scenarios of the
// fairness study: same-category pairs, cross-category pairs, two
// adversary (MemoryHog) pairs, and one four-way mix. Every pair splits
// the 16-core pod evenly; the four-way mix gives each tenant four
// cores.
func StudyMixes() []Mix {
	pair := func(a, b workload.Profile) Mix { return Pair(a, b, 8) }
	return []Mix{
		pair(workload.DataServing(), workload.MapReduce()),
		pair(workload.WebSearch(), workload.TPCHQ6()),
		pair(workload.WebFrontend(), workload.MediaStreaming()),
		pair(workload.TPCC1(), workload.TPCC2()),
		pair(workload.SPECweb99(), workload.TPCHQ2()),
		pair(workload.SATSolver(), workload.TPCHQ17()),
		pair(workload.DataServing(), workload.MemoryHog()),
		pair(workload.WebSearch(), workload.MemoryHog()),
		pair(workload.TPCHQ6(), workload.MemoryHog()),
		NewMix("",
			Spec{Profile: workload.DataServing(), Cores: 4},
			Spec{Profile: workload.MapReduce(), Cores: 4},
			Spec{Profile: workload.WebSearch(), Cores: 4},
			Spec{Profile: workload.SATSolver(), Cores: 4},
		),
	}
}
