package tenant

import "testing"

// checkDisjoint asserts shares are contiguous-from-zero-or-later,
// non-overlapping, in order, and within [0, total).
func checkDisjoint(t *testing.T, shares []Share, total int) {
	t.Helper()
	end := 0
	for i, s := range shares {
		if s.Count < 1 {
			t.Fatalf("share %d empty: %+v", i, s)
		}
		if s.Start < end {
			t.Fatalf("share %d overlaps predecessor: %+v (prev end %d)", i, s, end)
		}
		end = s.Start + s.Count
	}
	if end > total {
		t.Fatalf("shares exceed total %d: %+v", total, shares)
	}
}

func TestCarvePow2Proportional(t *testing.T) {
	shares, err := CarvePow2(16, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	checkDisjoint(t, shares, 16)
	if shares[0].Count != 8 || shares[1].Count != 8 {
		t.Fatalf("even split of 16 = %+v", shares)
	}

	shares, err = CarvePow2(16, []int{12, 4})
	if err != nil {
		t.Fatal(err)
	}
	checkDisjoint(t, shares, 16)
	if shares[0].Count != 8 || shares[1].Count != 4 {
		t.Fatalf("12:4 carve of 16 = %+v (want pow2 rounding 8,4)", shares)
	}

	shares, err = CarvePow2(16, []int{4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	checkDisjoint(t, shares, 16)
	for i, s := range shares {
		if s.Count != 4 {
			t.Fatalf("share %d = %+v, want count 4", i, s)
		}
	}
}

func TestCarvePow2PowersOfTwoAlways(t *testing.T) {
	weightSets := [][]int{{1, 15}, {3, 5, 8}, {1, 1, 1}, {7, 9}, {16}, {5, 5, 5, 1}}
	for _, w := range weightSets {
		shares, err := CarvePow2(16, w)
		if err != nil {
			t.Fatalf("weights %v: %v", w, err)
		}
		checkDisjoint(t, shares, 16)
		for i, s := range shares {
			if s.Count&(s.Count-1) != 0 {
				t.Fatalf("weights %v share %d count %d not a power of two", w, i, s.Count)
			}
		}
	}
}

func TestCarvePow2PathologicalWeightsStillFit(t *testing.T) {
	// The minimum-one bump oversubscribes 4 units among weights
	// {1,1,1,100} unless the carve halves the big slice.
	shares, err := CarvePow2(4, []int{1, 1, 1, 100})
	if err != nil {
		t.Fatal(err)
	}
	checkDisjoint(t, shares, 4)
}

func TestCarvePow2Errors(t *testing.T) {
	if _, err := CarvePow2(12, []int{1}); err == nil {
		t.Fatal("non-power-of-two total accepted")
	}
	if _, err := CarvePow2(4, []int{1, 1, 1, 1, 1}); err == nil {
		t.Fatal("more tenants than units accepted")
	}
	if _, err := CarvePow2(8, []int{2, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := CarvePow2(8, nil); err == nil {
		t.Fatal("empty weights accepted")
	}
}

func TestCarveProportionalExact(t *testing.T) {
	shares, err := CarveProportional(16, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	checkDisjoint(t, shares, 16)
	if shares[0].Count != 8 || shares[1].Count != 8 {
		t.Fatalf("even split = %+v", shares)
	}

	// Largest remainder: 16 * {5,5,6}/16 = {5,5,6} exactly.
	shares, err = CarveProportional(16, []int{5, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0].Count != 5 || shares[1].Count != 5 || shares[2].Count != 6 {
		t.Fatalf("5:5:6 carve = %+v", shares)
	}
}

func TestCarveProportionalAssignsEveryUnit(t *testing.T) {
	weightSets := [][]int{{1, 15}, {3, 5, 8}, {1, 1, 1}, {7, 9}, {1, 100}, {2, 3, 5, 7}}
	for _, w := range weightSets {
		shares, err := CarveProportional(16, w)
		if err != nil {
			t.Fatalf("weights %v: %v", w, err)
		}
		checkDisjoint(t, shares, 16)
		sum := 0
		for _, s := range shares {
			sum += s.Count
		}
		if sum != 16 {
			t.Fatalf("weights %v assigned %d of 16 units: %+v", w, sum, shares)
		}
	}
}

func TestCarveProportionalMinimumOne(t *testing.T) {
	shares, err := CarveProportional(16, []int{1, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if shares[0].Count < 1 {
		t.Fatalf("starved tenant 0: %+v", shares)
	}
}
