package tenant

import (
	"strings"
	"testing"
)

func TestGenerateMixesDeterministic(t *testing.T) {
	a, err := GenerateMixes(7, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMixes(7, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("generated %d and %d mixes, want 10", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("same seed diverged at mix %d: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
	c, err := GenerateMixes(8, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Name == c[i].Name {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical mix sequences")
	}
}

func TestGenerateMixesShape(t *testing.T) {
	for _, size := range []int{8, 12, 32, 64} {
		mixes, err := GenerateMixes(1, 20, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		names := map[string]bool{}
		for _, m := range mixes {
			if err := m.Validate(); err != nil {
				t.Fatalf("size %d: generated invalid mix %q: %v", size, m.Name, err)
			}
			if got := m.TotalCores(); got != size {
				t.Fatalf("size %d: mix %q has %d cores", size, m.Name, got)
			}
			if n := len(m.Tenants); n < 2 || n > 4 {
				t.Fatalf("size %d: mix %q has %d tenants, want 2-4", size, m.Name, n)
			}
			per := m.Tenants[0].CoreCount()
			for _, sp := range m.Tenants {
				if sp.CoreCount() != per {
					t.Fatalf("size %d: mix %q splits cores unevenly", size, m.Name)
				}
			}
			if names[m.Name] {
				t.Fatalf("size %d: duplicate mix %q", size, m.Name)
			}
			names[m.Name] = true
		}
	}
}

func TestGenerateMixesRejectsBadArguments(t *testing.T) {
	if _, err := GenerateMixes(1, 0, 32); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("n=0 accepted or unhelpful error: %v", err)
	}
	for _, size := range []int{0, 1, 2, 5, 7} {
		_, err := GenerateMixes(1, 3, size)
		if err == nil {
			t.Fatalf("mix size %d accepted", size)
		}
		if !strings.Contains(err.Error(), "divisible by 2, 3, or 4") {
			t.Fatalf("mix size %d: error does not explain the constraint: %v", size, err)
		}
	}
	// Size 6 splits as 2x3 or 3x2 but not 4; must be accepted.
	if _, err := GenerateMixes(1, 3, 6); err != nil {
		t.Fatalf("mix size 6 rejected: %v", err)
	}
	// Asking for more distinct mixes than the cross-product holds must
	// fail with the exhaustion error, not loop forever. Size 4 only
	// splits as 2x2 over 12 profiles -> at most 144 distinct mixes.
	if _, err := GenerateMixes(1, 200, 4); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("cross-product exhaustion not reported: %v", err)
	}
}
