package tenant

import "fmt"

// Share is one tenant's contiguous slice of a partitioned hardware
// resource (bank indices, LLC ways): the half-open range
// [Start, Start+Count).
type Share struct {
	Start int
	Count int
}

// CarvePow2 splits `total` resource units (a power of two) into
// disjoint contiguous slices, one per weight, each a power of two and
// at least one unit, sized as close to proportional with the weights
// as the power-of-two constraint allows. Slices are assigned in order
// from index 0; units left over by rounding stay unassigned. The
// partitioned address mapper needs power-of-two slices so each
// tenant's slice is itself a decodable bit field.
func CarvePow2(total int, weights []int) ([]Share, error) {
	if total <= 0 || total&(total-1) != 0 {
		return nil, fmt.Errorf("tenant: carve total %d must be a positive power of two", total)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("tenant: carve needs at least one weight")
	}
	if len(weights) > total {
		return nil, fmt.Errorf("tenant: cannot carve %d units among %d tenants", total, len(weights))
	}
	wsum := 0
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("tenant: carve weight %d of tenant %d must be positive", w, i)
		}
		wsum += w
	}
	counts := make([]int, len(weights))
	sum := 0
	for i, w := range weights {
		c := prevPow2(total * w / wsum)
		if c < 1 {
			c = 1
		}
		counts[i] = c
		sum += c
	}
	// The minimum-one bump can oversubscribe pathological weightings;
	// halve the largest slice until the carve fits.
	for sum > total {
		big := -1
		for i, c := range counts {
			if c > 1 && (big < 0 || c > counts[big]) {
				big = i
			}
		}
		if big < 0 {
			return nil, fmt.Errorf("tenant: cannot carve %d units among %d tenants", total, len(weights))
		}
		counts[big] /= 2
		sum -= counts[big]
	}
	out := make([]Share, len(weights))
	start := 0
	for i, c := range counts {
		out[i] = Share{Start: start, Count: c}
		start += c
	}
	return out, nil
}

// CarveProportional splits `total` resource units into disjoint
// contiguous slices proportional to the weights (largest-remainder
// rounding, ties to the lower index), each at least one unit. Every
// unit is assigned. LLC way-partitioning uses it: way counts need not
// be powers of two.
func CarveProportional(total int, weights []int) ([]Share, error) {
	if total <= 0 {
		return nil, fmt.Errorf("tenant: carve total %d must be positive", total)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("tenant: carve needs at least one weight")
	}
	if len(weights) > total {
		return nil, fmt.Errorf("tenant: cannot carve %d units among %d tenants", total, len(weights))
	}
	wsum := 0
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("tenant: carve weight %d of tenant %d must be positive", w, i)
		}
		wsum += w
	}
	counts := make([]int, len(weights))
	rem := make([]int, len(weights)) // remainder numerators, scale wsum
	sum := 0
	for i, w := range weights {
		counts[i] = total * w / wsum
		rem[i] = total*w - counts[i]*wsum
		sum += counts[i]
	}
	for sum < total {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		sum++
	}
	// Guarantee every tenant at least one unit, taking from the largest.
	for i := range counts {
		for counts[i] < 1 {
			big := -1
			for j, c := range counts {
				if c > 1 && (big < 0 || c > counts[big]) {
					big = j
				}
			}
			if big < 0 {
				return nil, fmt.Errorf("tenant: cannot carve %d units among %d tenants", total, len(weights))
			}
			counts[big]--
			counts[i]++
		}
	}
	out := make([]Share, len(weights))
	start := 0
	for i, c := range counts {
		out[i] = Share{Start: start, Count: c}
		start += c
	}
	return out, nil
}

// prevPow2 returns the largest power of two <= v (0 for v < 1).
func prevPow2(v int) int {
	p := 0
	for q := 1; q <= v; q <<= 1 {
		p = q
	}
	return p
}
