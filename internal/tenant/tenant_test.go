package tenant

import (
	"math"
	"testing"

	"cloudmc/internal/workload"
)

func TestSpecDefaults(t *testing.T) {
	sp := Spec{Profile: workload.DataServing()}
	if sp.Label() != "DS" {
		t.Fatalf("Label = %q, want DS", sp.Label())
	}
	if sp.CoreCount() != 16 {
		t.Fatalf("CoreCount = %d, want the profile's 16", sp.CoreCount())
	}
	sp.Cores = 4
	sp.Name = "victim"
	if sp.Label() != "victim" || sp.CoreCount() != 4 {
		t.Fatalf("overrides ignored: label %q cores %d", sp.Label(), sp.CoreCount())
	}
	if got := sp.Adjusted().Cores; got != 4 {
		t.Fatalf("Adjusted cores = %d, want 4", got)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixNaming(t *testing.T) {
	m := Pair(workload.DataServing(), workload.MemoryHog(), 8)
	if m.Name != "DS:8+HOG:8" {
		t.Fatalf("derived name = %q, want DS:8+HOG:8", m.Name)
	}
	// Core counts are part of the derived name: mixes differing only
	// in allocation must get distinct names (study caches key on it).
	if n4 := Pair(workload.DataServing(), workload.MemoryHog(), 4).Name; n4 == m.Name {
		t.Fatalf("4-core and 8-core pairs share the name %q", n4)
	}
	if m.TotalCores() != 16 {
		t.Fatalf("TotalCores = %d, want 16", m.TotalCores())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixValidateRejectsSingletons(t *testing.T) {
	m := NewMix("solo", Spec{Profile: workload.DataServing()})
	if m.Validate() == nil {
		t.Fatal("single-tenant mix must be rejected")
	}
}

// TestComputeFairnessGolden pins the fairness algebra to hand-computed
// values: solo IPCs (2.0, 1.0), shared IPCs (1.0, 0.8) give slowdowns
// (2.0, 1.25), weighted speedup 0.5+0.8=1.3, harmonic speedup
// 2/(2.0+1.25)=0.6153..., max slowdown 2.0.
func TestComputeFairnessGolden(t *testing.T) {
	f := ComputeFairness([]float64{2.0, 1.0}, []float64{1.0, 0.8})
	want := Fairness{
		Slowdowns:       []float64{2.0, 1.25},
		WeightedSpeedup: 1.3,
		HarmonicSpeedup: 2 / 3.25,
		MaxSlowdown:     2.0,
	}
	near := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
	for i := range want.Slowdowns {
		if !near(f.Slowdowns[i], want.Slowdowns[i]) {
			t.Fatalf("slowdown[%d] = %v, want %v", i, f.Slowdowns[i], want.Slowdowns[i])
		}
	}
	if !near(f.WeightedSpeedup, want.WeightedSpeedup) ||
		!near(f.HarmonicSpeedup, want.HarmonicSpeedup) ||
		!near(f.MaxSlowdown, want.MaxSlowdown) {
		t.Fatalf("fairness = %+v, want %+v", f, want)
	}
}

func TestComputeFairnessSkipsDeadTenants(t *testing.T) {
	f := ComputeFairness([]float64{0, 2.0}, []float64{1.0, 1.0})
	if f.Slowdowns[0] != 0 {
		t.Fatalf("dead tenant slowdown = %v, want 0", f.Slowdowns[0])
	}
	if math.Abs(f.WeightedSpeedup-0.5) > 1e-12 || math.Abs(f.HarmonicSpeedup-0.5) > 1e-12 {
		t.Fatalf("speedups over live tenants wrong: %+v", f)
	}
}

// A victim with a positive baseline and zero shared throughput is a
// fully starved tenant — the worst DoS outcome. It must dominate the
// fairness summary, not vanish from it.
func TestComputeFairnessStarvedVictim(t *testing.T) {
	f := ComputeFairness([]float64{2.0, 1.0}, []float64{0, 0.9})
	if !math.IsInf(f.Slowdowns[0], 1) || !math.IsInf(f.MaxSlowdown, 1) {
		t.Fatalf("starved victim must be +Inf: %+v", f)
	}
	if f.HarmonicSpeedup != 0 {
		t.Fatalf("harmonic speedup = %v, want 0 under starvation", f.HarmonicSpeedup)
	}
	if math.Abs(f.WeightedSpeedup-0.9) > 1e-12 {
		t.Fatalf("weighted speedup = %v, want the survivor's 0.9", f.WeightedSpeedup)
	}
}

// TestStudyMixes checks the canonical scenarios are usable: at least
// eight, unique names, all valid, and every footprint inside the 32GB
// machine.
func TestStudyMixes(t *testing.T) {
	mixes := StudyMixes()
	if len(mixes) < 8 {
		t.Fatalf("only %d canonical mixes, want >= 8", len(mixes))
	}
	seen := map[string]bool{}
	const capacity = 32 << 30
	for _, m := range mixes {
		if seen[m.Name] {
			t.Fatalf("duplicate mix name %q", m.Name)
		}
		seen[m.Name] = true
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.TotalCores() != 16 {
			t.Fatalf("mix %s uses %d cores, want the full 16-core pod", m.Name, m.TotalCores())
		}
		if fp := m.Footprint(); fp > capacity {
			t.Fatalf("mix %s footprint %d exceeds capacity", m.Name, fp)
		}
	}
	// The adversary must feature: the whole point of the subsystem is
	// interference studies.
	hogs := 0
	for _, m := range mixes {
		for _, sp := range m.Tenants {
			if sp.Profile.Acronym == "HOG" {
				hogs++
			}
		}
	}
	if hogs < 2 {
		t.Fatalf("only %d MemoryHog appearances in the canonical mixes", hogs)
	}
}
